# Empty compiler generated dependencies file for bench_fig3_4_5_representations.
# This may be replaced when dependencies are built.
