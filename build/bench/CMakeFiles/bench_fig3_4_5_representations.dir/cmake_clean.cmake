file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_4_5_representations.dir/bench_fig3_4_5_representations.cpp.o"
  "CMakeFiles/bench_fig3_4_5_representations.dir/bench_fig3_4_5_representations.cpp.o.d"
  "bench_fig3_4_5_representations"
  "bench_fig3_4_5_representations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_4_5_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
