# Empty dependencies file for bench_ablation_seqlen.
# This may be replaced when dependencies are built.
