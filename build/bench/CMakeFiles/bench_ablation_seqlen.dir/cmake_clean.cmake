file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_seqlen.dir/bench_ablation_seqlen.cpp.o"
  "CMakeFiles/bench_ablation_seqlen.dir/bench_ablation_seqlen.cpp.o.d"
  "bench_ablation_seqlen"
  "bench_ablation_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
