file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_representations.dir/bench_table5_representations.cpp.o"
  "CMakeFiles/bench_table5_representations.dir/bench_table5_representations.cpp.o.d"
  "bench_table5_representations"
  "bench_table5_representations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_representations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
