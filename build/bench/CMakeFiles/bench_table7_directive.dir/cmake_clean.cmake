file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_directive.dir/bench_table7_directive.cpp.o"
  "CMakeFiles/bench_table7_directive.dir/bench_table7_directive.cpp.o.d"
  "bench_table7_directive"
  "bench_table7_directive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_directive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
