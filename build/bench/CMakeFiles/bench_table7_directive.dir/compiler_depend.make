# Empty compiler generated dependencies file for bench_table7_directive.
# This may be replaced when dependencies are built.
