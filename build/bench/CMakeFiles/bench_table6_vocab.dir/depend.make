# Empty dependencies file for bench_table6_vocab.
# This may be replaced when dependencies are built.
