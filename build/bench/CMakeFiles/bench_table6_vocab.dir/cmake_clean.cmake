file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_vocab.dir/bench_table6_vocab.cpp.o"
  "CMakeFiles/bench_table6_vocab.dir/bench_table6_vocab.cpp.o.d"
  "bench_table6_vocab"
  "bench_table6_vocab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_vocab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
