file(REMOVE_RECURSE
  "CMakeFiles/bench_schedule_extension.dir/bench_schedule_extension.cpp.o"
  "CMakeFiles/bench_schedule_extension.dir/bench_schedule_extension.cpp.o.d"
  "bench_schedule_extension"
  "bench_schedule_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schedule_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
