# Empty dependencies file for bench_schedule_extension.
# This may be replaced when dependencies are built.
