# Empty compiler generated dependencies file for bench_table9_10_clauses.
# This may be replaced when dependencies are built.
