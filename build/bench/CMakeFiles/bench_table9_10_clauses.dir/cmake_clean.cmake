file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_10_clauses.dir/bench_table9_10_clauses.cpp.o"
  "CMakeFiles/bench_table9_10_clauses.dir/bench_table9_10_clauses.cpp.o.d"
  "bench_table9_10_clauses"
  "bench_table9_10_clauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_clauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
