# Empty dependencies file for bench_ablation_pretrain.
# This may be replaced when dependencies are built.
