file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pretrain.dir/bench_ablation_pretrain.cpp.o"
  "CMakeFiles/bench_ablation_pretrain.dir/bench_ablation_pretrain.cpp.o.d"
  "bench_ablation_pretrain"
  "bench_ablation_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
