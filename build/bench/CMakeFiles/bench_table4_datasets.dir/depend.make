# Empty dependencies file for bench_table4_datasets.
# This may be replaced when dependencies are built.
