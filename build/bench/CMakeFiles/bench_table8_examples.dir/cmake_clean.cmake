file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_examples.dir/bench_table8_examples.cpp.o"
  "CMakeFiles/bench_table8_examples.dir/bench_table8_examples.cpp.o.d"
  "bench_table8_examples"
  "bench_table8_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
