file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_corpus.dir/bench_table3_corpus.cpp.o"
  "CMakeFiles/bench_table3_corpus.dir/bench_table3_corpus.cpp.o.d"
  "bench_table3_corpus"
  "bench_table3_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
