file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_2_pitfalls.dir/bench_table1_2_pitfalls.cpp.o"
  "CMakeFiles/bench_table1_2_pitfalls.dir/bench_table1_2_pitfalls.cpp.o.d"
  "bench_table1_2_pitfalls"
  "bench_table1_2_pitfalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_pitfalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
