# Empty dependencies file for bench_table1_2_pitfalls.
# This may be replaced when dependencies are built.
