# Empty compiler generated dependencies file for clpp_cli.
# This may be replaced when dependencies are built.
