file(REMOVE_RECURSE
  "CMakeFiles/clpp_cli.dir/clpp_cli.cpp.o"
  "CMakeFiles/clpp_cli.dir/clpp_cli.cpp.o.d"
  "clpp_cli"
  "clpp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
