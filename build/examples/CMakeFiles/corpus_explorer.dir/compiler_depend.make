# Empty compiler generated dependencies file for corpus_explorer.
# This may be replaced when dependencies are built.
