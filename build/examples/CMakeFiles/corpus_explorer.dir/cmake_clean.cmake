file(REMOVE_RECURSE
  "CMakeFiles/corpus_explorer.dir/corpus_explorer.cpp.o"
  "CMakeFiles/corpus_explorer.dir/corpus_explorer.cpp.o.d"
  "corpus_explorer"
  "corpus_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
