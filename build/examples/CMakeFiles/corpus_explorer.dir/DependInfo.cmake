
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/corpus_explorer.cpp" "examples/CMakeFiles/corpus_explorer.dir/corpus_explorer.cpp.o" "gcc" "examples/CMakeFiles/corpus_explorer.dir/corpus_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/clpp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/clpp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/clpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/clpp_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/tokenize/CMakeFiles/clpp_tokenize.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/clpp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/clpp_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/s2s/CMakeFiles/clpp_s2s.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/clpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/clpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
