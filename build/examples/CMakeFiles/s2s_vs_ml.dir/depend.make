# Empty dependencies file for s2s_vs_ml.
# This may be replaced when dependencies are built.
