# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for s2s_vs_ml.
