file(REMOVE_RECURSE
  "CMakeFiles/s2s_vs_ml.dir/s2s_vs_ml.cpp.o"
  "CMakeFiles/s2s_vs_ml.dir/s2s_vs_ml.cpp.o.d"
  "s2s_vs_ml"
  "s2s_vs_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_vs_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
