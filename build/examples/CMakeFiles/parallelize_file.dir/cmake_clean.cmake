file(REMOVE_RECURSE
  "CMakeFiles/parallelize_file.dir/parallelize_file.cpp.o"
  "CMakeFiles/parallelize_file.dir/parallelize_file.cpp.o.d"
  "parallelize_file"
  "parallelize_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallelize_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
