# Empty dependencies file for parallelize_file.
# This may be replaced when dependencies are built.
