file(REMOVE_RECURSE
  "CMakeFiles/nn_gradcheck_test.dir/nn_gradcheck_test.cpp.o"
  "CMakeFiles/nn_gradcheck_test.dir/nn_gradcheck_test.cpp.o.d"
  "nn_gradcheck_test"
  "nn_gradcheck_test.pdb"
  "nn_gradcheck_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_gradcheck_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
