# Empty compiler generated dependencies file for frontend_fuzz_test.
# This may be replaced when dependencies are built.
