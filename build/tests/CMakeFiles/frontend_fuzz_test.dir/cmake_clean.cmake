file(REMOVE_RECURSE
  "CMakeFiles/frontend_fuzz_test.dir/frontend_fuzz_test.cpp.o"
  "CMakeFiles/frontend_fuzz_test.dir/frontend_fuzz_test.cpp.o.d"
  "frontend_fuzz_test"
  "frontend_fuzz_test.pdb"
  "frontend_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
