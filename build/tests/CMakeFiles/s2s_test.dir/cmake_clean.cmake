file(REMOVE_RECURSE
  "CMakeFiles/s2s_test.dir/s2s_test.cpp.o"
  "CMakeFiles/s2s_test.dir/s2s_test.cpp.o.d"
  "s2s_test"
  "s2s_test.pdb"
  "s2s_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
