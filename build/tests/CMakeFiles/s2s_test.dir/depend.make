# Empty dependencies file for s2s_test.
# This may be replaced when dependencies are built.
