
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tokenize_test.cpp" "tests/CMakeFiles/tokenize_test.dir/tokenize_test.cpp.o" "gcc" "tests/CMakeFiles/tokenize_test.dir/tokenize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tokenize/CMakeFiles/clpp_tokenize.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/clpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/clpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
