file(REMOVE_RECURSE
  "CMakeFiles/tokenize_test.dir/tokenize_test.cpp.o"
  "CMakeFiles/tokenize_test.dir/tokenize_test.cpp.o.d"
  "tokenize_test"
  "tokenize_test.pdb"
  "tokenize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tokenize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
