# Empty dependencies file for tokenize_test.
# This may be replaced when dependencies are built.
