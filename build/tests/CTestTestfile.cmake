# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_layers_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_test[1]_include.cmake")
include("/root/repo/build/tests/nn_training_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/s2s_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/tokenize_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/advisor_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
