file(REMOVE_RECURSE
  "CMakeFiles/clpp_tokenize.dir/representation.cpp.o"
  "CMakeFiles/clpp_tokenize.dir/representation.cpp.o.d"
  "CMakeFiles/clpp_tokenize.dir/vocabulary.cpp.o"
  "CMakeFiles/clpp_tokenize.dir/vocabulary.cpp.o.d"
  "libclpp_tokenize.a"
  "libclpp_tokenize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_tokenize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
