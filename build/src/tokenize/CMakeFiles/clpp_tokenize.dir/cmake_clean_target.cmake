file(REMOVE_RECURSE
  "libclpp_tokenize.a"
)
