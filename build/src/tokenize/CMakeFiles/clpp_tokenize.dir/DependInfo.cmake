
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tokenize/representation.cpp" "src/tokenize/CMakeFiles/clpp_tokenize.dir/representation.cpp.o" "gcc" "src/tokenize/CMakeFiles/clpp_tokenize.dir/representation.cpp.o.d"
  "/root/repo/src/tokenize/vocabulary.cpp" "src/tokenize/CMakeFiles/clpp_tokenize.dir/vocabulary.cpp.o" "gcc" "src/tokenize/CMakeFiles/clpp_tokenize.dir/vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/clpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/clpp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
