# Empty dependencies file for clpp_tokenize.
# This may be replaced when dependencies are built.
