file(REMOVE_RECURSE
  "libclpp_frontend.a"
)
