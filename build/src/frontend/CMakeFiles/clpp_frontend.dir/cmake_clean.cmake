file(REMOVE_RECURSE
  "CMakeFiles/clpp_frontend.dir/ast.cpp.o"
  "CMakeFiles/clpp_frontend.dir/ast.cpp.o.d"
  "CMakeFiles/clpp_frontend.dir/dfs.cpp.o"
  "CMakeFiles/clpp_frontend.dir/dfs.cpp.o.d"
  "CMakeFiles/clpp_frontend.dir/lexer.cpp.o"
  "CMakeFiles/clpp_frontend.dir/lexer.cpp.o.d"
  "CMakeFiles/clpp_frontend.dir/parser.cpp.o"
  "CMakeFiles/clpp_frontend.dir/parser.cpp.o.d"
  "CMakeFiles/clpp_frontend.dir/pragma.cpp.o"
  "CMakeFiles/clpp_frontend.dir/pragma.cpp.o.d"
  "CMakeFiles/clpp_frontend.dir/printer.cpp.o"
  "CMakeFiles/clpp_frontend.dir/printer.cpp.o.d"
  "libclpp_frontend.a"
  "libclpp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
