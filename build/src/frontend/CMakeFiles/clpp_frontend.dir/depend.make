# Empty dependencies file for clpp_frontend.
# This may be replaced when dependencies are built.
