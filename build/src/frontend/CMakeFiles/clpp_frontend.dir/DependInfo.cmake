
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/ast.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/ast.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/ast.cpp.o.d"
  "/root/repo/src/frontend/dfs.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/dfs.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/dfs.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/lexer.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/lexer.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/parser.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/parser.cpp.o.d"
  "/root/repo/src/frontend/pragma.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/pragma.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/pragma.cpp.o.d"
  "/root/repo/src/frontend/printer.cpp" "src/frontend/CMakeFiles/clpp_frontend.dir/printer.cpp.o" "gcc" "src/frontend/CMakeFiles/clpp_frontend.dir/printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
