file(REMOVE_RECURSE
  "CMakeFiles/clpp_codegen.dir/families.cpp.o"
  "CMakeFiles/clpp_codegen.dir/families.cpp.o.d"
  "CMakeFiles/clpp_codegen.dir/generator.cpp.o"
  "CMakeFiles/clpp_codegen.dir/generator.cpp.o.d"
  "CMakeFiles/clpp_codegen.dir/names.cpp.o"
  "CMakeFiles/clpp_codegen.dir/names.cpp.o.d"
  "libclpp_codegen.a"
  "libclpp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
