# Empty dependencies file for clpp_codegen.
# This may be replaced when dependencies are built.
