
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/families.cpp" "src/codegen/CMakeFiles/clpp_codegen.dir/families.cpp.o" "gcc" "src/codegen/CMakeFiles/clpp_codegen.dir/families.cpp.o.d"
  "/root/repo/src/codegen/generator.cpp" "src/codegen/CMakeFiles/clpp_codegen.dir/generator.cpp.o" "gcc" "src/codegen/CMakeFiles/clpp_codegen.dir/generator.cpp.o.d"
  "/root/repo/src/codegen/names.cpp" "src/codegen/CMakeFiles/clpp_codegen.dir/names.cpp.o" "gcc" "src/codegen/CMakeFiles/clpp_codegen.dir/names.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/corpus/CMakeFiles/clpp_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/clpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
