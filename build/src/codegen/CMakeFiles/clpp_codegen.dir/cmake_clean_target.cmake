file(REMOVE_RECURSE
  "libclpp_codegen.a"
)
