file(REMOVE_RECURSE
  "CMakeFiles/clpp_baselines.dir/bow.cpp.o"
  "CMakeFiles/clpp_baselines.dir/bow.cpp.o.d"
  "libclpp_baselines.a"
  "libclpp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
