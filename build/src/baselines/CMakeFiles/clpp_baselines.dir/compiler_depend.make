# Empty compiler generated dependencies file for clpp_baselines.
# This may be replaced when dependencies are built.
