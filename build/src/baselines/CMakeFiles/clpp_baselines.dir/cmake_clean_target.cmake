file(REMOVE_RECURSE
  "libclpp_baselines.a"
)
