
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/cli.cpp" "src/support/CMakeFiles/clpp_support.dir/cli.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/cli.cpp.o.d"
  "/root/repo/src/support/csv.cpp" "src/support/CMakeFiles/clpp_support.dir/csv.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/csv.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/support/CMakeFiles/clpp_support.dir/histogram.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/histogram.cpp.o.d"
  "/root/repo/src/support/json.cpp" "src/support/CMakeFiles/clpp_support.dir/json.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/json.cpp.o.d"
  "/root/repo/src/support/plot.cpp" "src/support/CMakeFiles/clpp_support.dir/plot.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/plot.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/support/CMakeFiles/clpp_support.dir/strings.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/strings.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/support/CMakeFiles/clpp_support.dir/table.cpp.o" "gcc" "src/support/CMakeFiles/clpp_support.dir/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
