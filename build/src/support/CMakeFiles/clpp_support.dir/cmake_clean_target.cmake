file(REMOVE_RECURSE
  "libclpp_support.a"
)
