# Empty compiler generated dependencies file for clpp_support.
# This may be replaced when dependencies are built.
