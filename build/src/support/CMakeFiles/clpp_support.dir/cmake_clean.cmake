file(REMOVE_RECURSE
  "CMakeFiles/clpp_support.dir/cli.cpp.o"
  "CMakeFiles/clpp_support.dir/cli.cpp.o.d"
  "CMakeFiles/clpp_support.dir/csv.cpp.o"
  "CMakeFiles/clpp_support.dir/csv.cpp.o.d"
  "CMakeFiles/clpp_support.dir/histogram.cpp.o"
  "CMakeFiles/clpp_support.dir/histogram.cpp.o.d"
  "CMakeFiles/clpp_support.dir/json.cpp.o"
  "CMakeFiles/clpp_support.dir/json.cpp.o.d"
  "CMakeFiles/clpp_support.dir/plot.cpp.o"
  "CMakeFiles/clpp_support.dir/plot.cpp.o.d"
  "CMakeFiles/clpp_support.dir/strings.cpp.o"
  "CMakeFiles/clpp_support.dir/strings.cpp.o.d"
  "CMakeFiles/clpp_support.dir/table.cpp.o"
  "CMakeFiles/clpp_support.dir/table.cpp.o.d"
  "libclpp_support.a"
  "libclpp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
