file(REMOVE_RECURSE
  "libclpp_core.a"
)
