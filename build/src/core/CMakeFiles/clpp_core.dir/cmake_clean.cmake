file(REMOVE_RECURSE
  "CMakeFiles/clpp_core.dir/advisor.cpp.o"
  "CMakeFiles/clpp_core.dir/advisor.cpp.o.d"
  "CMakeFiles/clpp_core.dir/dataset.cpp.o"
  "CMakeFiles/clpp_core.dir/dataset.cpp.o.d"
  "CMakeFiles/clpp_core.dir/explain.cpp.o"
  "CMakeFiles/clpp_core.dir/explain.cpp.o.d"
  "CMakeFiles/clpp_core.dir/metrics.cpp.o"
  "CMakeFiles/clpp_core.dir/metrics.cpp.o.d"
  "CMakeFiles/clpp_core.dir/pipeline.cpp.o"
  "CMakeFiles/clpp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/clpp_core.dir/pragformer.cpp.o"
  "CMakeFiles/clpp_core.dir/pragformer.cpp.o.d"
  "CMakeFiles/clpp_core.dir/trainer.cpp.o"
  "CMakeFiles/clpp_core.dir/trainer.cpp.o.d"
  "libclpp_core.a"
  "libclpp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
