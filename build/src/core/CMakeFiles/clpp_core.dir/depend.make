# Empty dependencies file for clpp_core.
# This may be replaced when dependencies are built.
