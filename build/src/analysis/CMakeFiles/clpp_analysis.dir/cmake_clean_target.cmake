file(REMOVE_RECURSE
  "libclpp_analysis.a"
)
