# Empty dependencies file for clpp_analysis.
# This may be replaced when dependencies are built.
