
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/accesses.cpp" "src/analysis/CMakeFiles/clpp_analysis.dir/accesses.cpp.o" "gcc" "src/analysis/CMakeFiles/clpp_analysis.dir/accesses.cpp.o.d"
  "/root/repo/src/analysis/depend.cpp" "src/analysis/CMakeFiles/clpp_analysis.dir/depend.cpp.o" "gcc" "src/analysis/CMakeFiles/clpp_analysis.dir/depend.cpp.o.d"
  "/root/repo/src/analysis/loopinfo.cpp" "src/analysis/CMakeFiles/clpp_analysis.dir/loopinfo.cpp.o" "gcc" "src/analysis/CMakeFiles/clpp_analysis.dir/loopinfo.cpp.o.d"
  "/root/repo/src/analysis/sideeffects.cpp" "src/analysis/CMakeFiles/clpp_analysis.dir/sideeffects.cpp.o" "gcc" "src/analysis/CMakeFiles/clpp_analysis.dir/sideeffects.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/frontend/CMakeFiles/clpp_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
