file(REMOVE_RECURSE
  "CMakeFiles/clpp_analysis.dir/accesses.cpp.o"
  "CMakeFiles/clpp_analysis.dir/accesses.cpp.o.d"
  "CMakeFiles/clpp_analysis.dir/depend.cpp.o"
  "CMakeFiles/clpp_analysis.dir/depend.cpp.o.d"
  "CMakeFiles/clpp_analysis.dir/loopinfo.cpp.o"
  "CMakeFiles/clpp_analysis.dir/loopinfo.cpp.o.d"
  "CMakeFiles/clpp_analysis.dir/sideeffects.cpp.o"
  "CMakeFiles/clpp_analysis.dir/sideeffects.cpp.o.d"
  "libclpp_analysis.a"
  "libclpp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
