# Empty dependencies file for clpp_nn.
# This may be replaced when dependencies are built.
