file(REMOVE_RECURSE
  "CMakeFiles/clpp_nn.dir/activations.cpp.o"
  "CMakeFiles/clpp_nn.dir/activations.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/attention.cpp.o"
  "CMakeFiles/clpp_nn.dir/attention.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/clpp_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/embedding.cpp.o"
  "CMakeFiles/clpp_nn.dir/embedding.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/layer.cpp.o"
  "CMakeFiles/clpp_nn.dir/layer.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/layernorm.cpp.o"
  "CMakeFiles/clpp_nn.dir/layernorm.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/linear.cpp.o"
  "CMakeFiles/clpp_nn.dir/linear.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/loss.cpp.o"
  "CMakeFiles/clpp_nn.dir/loss.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/mlm.cpp.o"
  "CMakeFiles/clpp_nn.dir/mlm.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/clpp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/clpp_nn.dir/transformer.cpp.o"
  "CMakeFiles/clpp_nn.dir/transformer.cpp.o.d"
  "libclpp_nn.a"
  "libclpp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
