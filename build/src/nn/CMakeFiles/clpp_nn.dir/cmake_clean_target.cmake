file(REMOVE_RECURSE
  "libclpp_nn.a"
)
