
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/clpp_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/attention.cpp" "src/nn/CMakeFiles/clpp_nn.dir/attention.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/attention.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/clpp_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/embedding.cpp" "src/nn/CMakeFiles/clpp_nn.dir/embedding.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/embedding.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/clpp_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/layernorm.cpp" "src/nn/CMakeFiles/clpp_nn.dir/layernorm.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/layernorm.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/clpp_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/clpp_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/mlm.cpp" "src/nn/CMakeFiles/clpp_nn.dir/mlm.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/mlm.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/clpp_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/nn/CMakeFiles/clpp_nn.dir/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/clpp_nn.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/clpp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/clpp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
