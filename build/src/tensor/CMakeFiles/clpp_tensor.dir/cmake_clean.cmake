file(REMOVE_RECURSE
  "CMakeFiles/clpp_tensor.dir/io.cpp.o"
  "CMakeFiles/clpp_tensor.dir/io.cpp.o.d"
  "CMakeFiles/clpp_tensor.dir/ops.cpp.o"
  "CMakeFiles/clpp_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/clpp_tensor.dir/tensor.cpp.o"
  "CMakeFiles/clpp_tensor.dir/tensor.cpp.o.d"
  "libclpp_tensor.a"
  "libclpp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
