# Empty compiler generated dependencies file for clpp_tensor.
# This may be replaced when dependencies are built.
