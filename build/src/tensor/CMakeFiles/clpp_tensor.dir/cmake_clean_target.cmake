file(REMOVE_RECURSE
  "libclpp_tensor.a"
)
