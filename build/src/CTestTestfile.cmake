# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("tensor")
subdirs("nn")
subdirs("frontend")
subdirs("analysis")
subdirs("s2s")
subdirs("corpus")
subdirs("codegen")
subdirs("tokenize")
subdirs("baselines")
subdirs("core")
