# Empty compiler generated dependencies file for clpp_s2s.
# This may be replaced when dependencies are built.
