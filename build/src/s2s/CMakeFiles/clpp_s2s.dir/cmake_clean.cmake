file(REMOVE_RECURSE
  "CMakeFiles/clpp_s2s.dir/compar.cpp.o"
  "CMakeFiles/clpp_s2s.dir/compar.cpp.o.d"
  "CMakeFiles/clpp_s2s.dir/compiler.cpp.o"
  "CMakeFiles/clpp_s2s.dir/compiler.cpp.o.d"
  "libclpp_s2s.a"
  "libclpp_s2s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_s2s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
