file(REMOVE_RECURSE
  "libclpp_s2s.a"
)
