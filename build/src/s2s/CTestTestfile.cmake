# CMake generated Testfile for 
# Source directory: /root/repo/src/s2s
# Build directory: /root/repo/build/src/s2s
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
