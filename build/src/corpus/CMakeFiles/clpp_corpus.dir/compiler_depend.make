# Empty compiler generated dependencies file for clpp_corpus.
# This may be replaced when dependencies are built.
