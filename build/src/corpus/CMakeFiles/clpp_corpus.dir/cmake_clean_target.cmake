file(REMOVE_RECURSE
  "libclpp_corpus.a"
)
