file(REMOVE_RECURSE
  "CMakeFiles/clpp_corpus.dir/corpus.cpp.o"
  "CMakeFiles/clpp_corpus.dir/corpus.cpp.o.d"
  "CMakeFiles/clpp_corpus.dir/record.cpp.o"
  "CMakeFiles/clpp_corpus.dir/record.cpp.o.d"
  "libclpp_corpus.a"
  "libclpp_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clpp_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
