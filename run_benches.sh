#!/bin/sh
# Regenerates bench_output.txt by running every bench harness in order.
#
# Each bench runs with observability on (CLPP_OBS=1) and exports its
# artifacts into $OUT_DIR (default bench_artifacts/):
#   BENCH_<name>.trace.json    Chrome trace_event JSON (chrome://tracing)
#   BENCH_<name>.metrics.json  clpp::obs metrics snapshot
# and bench_micro_kernels additionally writes its google-benchmark report
# next to them as BENCH_bench_micro_kernels.json. After the loop the
# per-bench artifacts are merged into $OUT_DIR/BENCH_summary.json, the
# single-file capture clpp-profdiff compares runs with.
cd "$(dirname "$0")"
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-bench_artifacts}"
mkdir -p "$OUT_DIR"
for b in "$BUILD_DIR"/bench/bench_*; do
  name=$(basename "$b")
  extra=""
  case "$name" in
    bench_micro_kernels)
      extra="--benchmark_out=$OUT_DIR/BENCH_${name}.json --benchmark_out_format=json"
      ;;
  esac
  echo "########## $b ##########"
  CLPP_OBS=1 \
  CLPP_TRACE_OUT="$OUT_DIR/BENCH_${name}.trace.json" \
  CLPP_METRICS_OUT="$OUT_DIR/BENCH_${name}.metrics.json" \
  "$b" $extra
  echo
done

if [ -x "$BUILD_DIR/examples/clpp-profdiff" ]; then
  "$BUILD_DIR/examples/clpp-profdiff" --summarize "$OUT_DIR"
fi
