#!/bin/sh
# Regenerates bench_output.txt by running every bench harness in order.
#
# Each bench runs with observability on (CLPP_OBS=1) and exports its
# artifacts into $OUT_DIR (default bench_artifacts/):
#   BENCH_<name>.trace.json    Chrome trace_event JSON (chrome://tracing)
#   BENCH_<name>.metrics.json  clpp::obs metrics snapshot
# and the google-benchmark harnesses (bench_micro_kernels, bench_serve)
# additionally write their reports next to them as BENCH_<name>.json. After
# the loop the per-bench artifacts are merged into $OUT_DIR/BENCH_summary.json,
# the single-file capture clpp-profdiff compares runs with.
#
# BENCH_GLOB narrows the sweep to space-separated glob patterns (e.g.
# BENCH_GLOB='bench_micro_kernels bench_serve' for the CI perf job, which
# times a stable subset rather than every paper table).
cd "$(dirname "$0")"
BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-bench_artifacts}"
BENCH_GLOB="${BENCH_GLOB:-bench_*}"
mkdir -p "$OUT_DIR"
for pattern in $BENCH_GLOB; do
for b in "$BUILD_DIR"/bench/$pattern; do
  [ -x "$b" ] || continue
  name=$(basename "$b")
  extra=""
  case "$name" in
    bench_micro_kernels|bench_serve|bench_analysis)
      extra="--benchmark_out=$OUT_DIR/BENCH_${name}.json --benchmark_out_format=json"
      ;;
  esac
  echo "########## $b ##########"
  CLPP_OBS=1 \
  CLPP_TRACE_OUT="$OUT_DIR/BENCH_${name}.trace.json" \
  CLPP_METRICS_OUT="$OUT_DIR/BENCH_${name}.metrics.json" \
  "$b" $extra
  echo
done
done

# When the serve bench ran, also capture a loadgen stats artifact
# (clpp.serve_loadgen.v1: throughput + client/server latency percentiles +
# queue-wait vs compute split). clpp-profdiff ignores its shape; it is the
# input scripts/check_slo.sh evaluates against slo/budgets.json.
if [ -f "$OUT_DIR/BENCH_bench_serve.json" ] && [ -x "$BUILD_DIR/examples/clpp-serve" ]; then
  echo "########## clpp-serve --loadgen ##########"
  "$BUILD_DIR/examples/clpp-serve" --random-model --no-analysis --no-compar \
    --loadgen 128 --stats-out "$OUT_DIR/BENCH_serve_loadgen.stats.json"
  echo
fi

if [ -x "$BUILD_DIR/examples/clpp-profdiff" ]; then
  "$BUILD_DIR/examples/clpp-profdiff" --summarize "$OUT_DIR"
fi
