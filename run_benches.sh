#!/bin/sh
# Regenerates bench_output.txt by running every bench harness in order.
cd "$(dirname "$0")"
for b in build/bench/bench_*; do
  echo "########## $b ##########"
  $b
  echo
done
