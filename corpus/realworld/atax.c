/* PolyBench/C 4.2 `atax` (y = A' * (A * x)).
 *
 * expected: the outer i loop is NOT parallelizable — every iteration
 * accumulates into all of y (y[j] read and written at every i), an exact
 * loop-carried dependence at the i level. The tmp[i] accumulation is
 * pinned to the iteration and does not block it. */
void atax(double A[2000][1900], double *x, double *y, double *tmp,
          int nx, int ny) {
    int i, j;
    for (i = 0; i < nx; i++) {
        tmp[i] = 0.0;
        for (j = 0; j < ny; j++)
            tmp[i] = tmp[i] + A[i][j] * x[j];
        for (j = 0; j < ny; j++)
            y[j] = y[j] + A[i][j] * tmp[i];
    }
}
