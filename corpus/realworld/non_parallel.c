/* First-order IIR filter (exponential smoothing) — the canonical serial
 * loop every parallelization survey opens with.
 *
 * expected: NOT parallelizable — loop-carried dependence on y with
 * direction < and distance exactly 1; no clause or safelen can license
 * it, and `omp simd` on it is an error (simd-unsafe-carried-dependence). */
void iir(double *y, double *x, double alpha, int n) {
    int i;
    for (i = 1; i < n; i++)
        y[i] = y[i - 1] + alpha * x[i];
}
