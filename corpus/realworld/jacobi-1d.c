/* PolyBench/C 4.2 `jacobi-1d`, 3-point stencil with explicit copy-back.
 *
 * expected: the outer time loop is NOT parallelizable — iteration t reads
 * the A written at t-1 (and writes the B read back at t-1). The v2 engine
 * proves the cross-loop A/B dependences exactly through the imperfect
 * nest; the seed engine compared the differing invariant subscript texts
 * ("i" vs "i - 1") and gave up as unknown. Each inner space loop on its
 * own is parallelizable. */
void jacobi_1d(double *A, double *B, int tsteps, int n) {
    int t, i;
    for (t = 0; t < tsteps; t++) {
        for (i = 1; i < n - 1; i++)
            B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
        for (i = 1; i < n - 1; i++)
            A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
    }
}
