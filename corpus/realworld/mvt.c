/* PolyBench/C 4.2 `mvt`, first mat-vect half (x1 = x1 + A * y_1).
 *
 * expected: outer i loop parallelizable, exact — x1[i] is pinned to the
 * iteration (strong SIV, distance 0), A and y_1 are read-only. */
void mvt(double A[2000][2000], double *x1, double *y_1, int n) {
    int i, j;
#pragma omp parallel for private(j)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            x1[i] = x1[i] + A[i][j] * y_1[j];
}
