/* PolyBench/C 4.2 `gemm` (C = alpha*A*B + beta*C), arrays linearized
 * row-major the way tuned C codes ship it.
 *
 * expected: outer i loop parallelizable with private(j, k); the v2 engine
 * resolves the C[i * nj + j] subscripts exactly (identical-subscript rule
 * pins every pair to the same i), where the seed engine reported
 * "subscript too complex" and refused the directive. */
void gemm(double *C, double *A, double *B, double alpha, double beta,
          int ni, int nj, int nk) {
    int i, j, k;
#pragma omp parallel for schedule(static) private(j, k)
    for (i = 0; i < ni; i++) {
        for (j = 0; j < nj; j++)
            C[i * nj + j] = C[i * nj + j] * beta;
        for (k = 0; k < nk; k++)
            for (j = 0; j < nj; j++)
                C[i * nj + j] = C[i * nj + j] + alpha * A[i * nk + k] * B[k * nj + j];
    }
}
