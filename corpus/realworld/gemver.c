/* PolyBench/C 4.2 `gemver`, rank-two update (A = A + u1*v1' + u2*v2').
 *
 * expected: outer i loop parallelizable, exact — each A[i][j] is written
 * exactly once at iteration (i, j); u1/v1/u2/v2 are read-only. */
void gemver(double A[2000][2000], double *u1, double *v1, double *u2,
            double *v2, int n) {
    int i, j;
#pragma omp parallel for private(j)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
}
