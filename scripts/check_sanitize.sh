#!/bin/sh
# Sanitizer gate: build with -DCLPP_SANITIZE=ON (ASan + UBSan) and run the
# functional test suite. Perf-labeled tests are excluded — they time hot
# loops and are meaningless (and slow) under instrumentation.
#
#   $ scripts/check_sanitize.sh                 # everything but perf
#   $ CTEST_ARGS="-L resil" scripts/check_sanitize.sh   # just the resil suite
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-asan}"

# Instrumented builds are the slowest in CI; ccache (when installed) turns
# the rebuild into a cache probe on unchanged translation units.
LAUNCHER=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

cmake -B "$BUILD_DIR" -S . -DCLPP_SANITIZE=ON -DCMAKE_BUILD_TYPE=Debug $LAUNCHER >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

cd "$BUILD_DIR"
# halt_on_error keeps a UBSan report from being silently non-fatal.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
ctest --output-on-failure -j "$(nproc)" -LE perf ${CTEST_ARGS:-}
echo "check_sanitize: elapsed $(($(date +%s) - START_S))s"
