#!/bin/sh
# Static-analysis gate: clang-tidy over src/ with the checked-in .clang-tidy
# profile (bugprone-*, performance-*, concurrency-*), driven by the
# compile_commands.json that every CMake configure exports.
#
# Warn-only by default — findings are printed but the job succeeds — so the
# gate can ride in CI while the backlog is burned down. STRICT=1 promotes
# findings to a non-zero exit. When clang-tidy is not installed the script
# reports and exits 0: the job is advisory and must not fail environments
# (dev containers, minimal runners) that lack the tool.
#
#   BUILD_DIR  build tree to (re)configure for compile_commands.json
#              (default build-static; an existing configured tree is reused)
#   STRICT     non-empty -> exit 1 when clang-tidy reports any finding
#   JOBS       parallel clang-tidy processes (default: nproc)
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-static}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

TIDY="$(command -v clang-tidy || true)"
if [ -z "$TIDY" ]; then
  echo "check_static: clang-tidy not found; skipping (advisory gate)." >&2
  exit 0
fi
echo "check_static: using $TIDY ($("$TIDY" --version | head -2 | tail -1))"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # CLPP_NATIVE=OFF: clang-tidy chokes on -march=native flags it does not
  # recognize when the host compiler is GCC.
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DCLPP_NATIVE=OFF >/dev/null
fi
[ -f "$BUILD_DIR/compile_commands.json" ] || {
  echo "check_static: no compile_commands.json in $BUILD_DIR" >&2
  exit 1
}

# All first-party translation units; tests and benches are out of scope
# (gtest/gbenchmark macros trip bugprone-* constantly).
FILES=$(find src -name '*.cpp' | sort)

LOG=$(mktemp)
trap 'rm -f "$LOG"' EXIT
FAILED=0
# shellcheck disable=SC2086  # word-splitting FILES is intended
echo "$FILES" | xargs -P "$JOBS" -n 8 \
  "$TIDY" -p "$BUILD_DIR" --quiet 2>/dev/null >"$LOG" || FAILED=1

if [ -s "$LOG" ]; then
  cat "$LOG"
  COUNT=$(grep -c "warning:" "$LOG" || true)
  echo "check_static: $COUNT clang-tidy finding(s) in src/" >&2
  if [ -n "$STRICT" ]; then
    exit 1
  fi
  echo "check_static: warn-only (set STRICT=1 to enforce)." >&2
else
  [ "$FAILED" -eq 0 ] || { echo "check_static: clang-tidy crashed" >&2; exit 1; }
  echo "check_static: clean."
fi
echo "check_static: elapsed $(($(date +%s) - START_S))s"
