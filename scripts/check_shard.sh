#!/bin/sh
# Fault-injection gate for the sharded serving front end (DESIGN.md §12):
# start `clpp-serve --listen` with four shard workers and a CLPP_FAULTS plan
# that crashes every first-generation worker mid-burst, then drive the
# socket load generator against it. Two things must hold:
#
#   1. Zero lost requests. The loadgen itself exits 1 when any request went
#      unanswered, and clpp-slo re-checks `lost` (plus the supervisor's
#      `unavailable` count) against the hard-zero ceilings in the "shard"
#      block of slo/budgets.json — a shard crash may cost latency, never an
#      answer.
#   2. Client latency/error/throughput stay inside the same budget block.
#
# The gate also asserts the crash actually happened (artifact's server
# stats show deaths > 0): a fault-tolerance gate whose fault never fires is
# just a smoke test wearing a helmet.
#
# The whole drill then runs a second time with the result cache enabled
# (--cache-cap, DESIGN.md §13): crash recovery must still lose nothing,
# and the loadgen's verdict-identity check must report zero mismatches —
# cached answers under shard churn have to be bitwise-identical to fresh
# ones.
#
#   $ scripts/check_shard.sh
#   $ WARN_ONLY=1 scripts/check_shard.sh   # report violations but exit 0
#   $ REQUESTS=64 SHARDS=2 scripts/check_shard.sh
#
# Artifacts land in $OUT_DIR (default shard_artifacts/):
#   SHARD_loadgen.stats.json   clpp.shard_loadgen.v1 (client + server stats)
#   SHARD_verdict.json         clpp-slo --json verdict
#   SHARD_cached.stats.json    second pass with the result cache on
#   SHARD_cached_verdict.json  clpp-slo verdict for the cached pass
#   flights/                   per-shard flight-recorder dumps from the
#                              injected crashes (shard<i>.gen1.flight.jsonl)
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-perf}"
OUT_DIR="${OUT_DIR:-shard_artifacts}"
REQUESTS="${REQUESTS:-200}"
CONCURRENCY="${CONCURRENCY:-8}"
SHARDS="${SHARDS:-4}"
CACHE_CAP="${CACHE_CAP:-4096}"
# Crash every gen-1 worker on its 3rd burst: late enough that the worker
# has answered some requests (exercising buffered-response harvest), early
# enough that plenty of accepted work is still pending (exercising
# redispatch). Restarted generations clear the plan and stay up.
FAULT_PLAN="${FAULT_PLAN:-shard.batch:3}"
# The cached pass crashes on the FIRST burst instead: once the demo mix's
# eight snippets are cached, almost nothing reaches a shard, so a third
# burst may never arrive — but the first one always does.
CACHED_FAULT_PLAN="${CACHED_FAULT_PLAN:-shard.batch:1}"
BUDGET="${BUDGET:-slo/budgets.json}"
WARN_ONLY="${WARN_ONLY:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target clpp-serve clpp-slo >/dev/null

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR/flights"

# run_pass <label> <fault-plan> <stats-file> <verdict-file> [server args...]
# Starts the front end under the fault plan, drives the loadgen, stops the
# server, and asserts zero loss + deaths > 0 + the shard budget block.
run_pass() {
  PASS_LABEL="$1"; PASS_PLAN="$2"; PASS_STATS="$3"; PASS_VERDICT="$4"
  shift 4
  PORT_FILE="$OUT_DIR/port.$PASS_LABEL"
  rm -f "$PORT_FILE"

  echo "== front end ($PASS_LABEL): $SHARDS shards, fault plan $PASS_PLAN =="
  CLPP_FAULTS="$PASS_PLAN" "$BUILD_DIR/examples/clpp-serve" \
    --random-model --no-analysis --no-compar \
    --listen --shards "$SHARDS" --port-file "$PORT_FILE" \
    --flight-dir "$OUT_DIR/flights" "$@" &
  SERVER_PID=$!
  trap 'kill "$SERVER_PID" 2>/dev/null || true' EXIT

  # The listener writes the ephemeral port after bind; give it a few seconds.
  i=0
  while [ ! -s "$PORT_FILE" ]; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
      echo "check_shard: front end never wrote $PORT_FILE" >&2
      exit 1
    fi
    kill -0 "$SERVER_PID" 2>/dev/null || {
      echo "check_shard: front end exited before binding" >&2; exit 1; }
    sleep 0.1
  done
  PORT=$(cat "$PORT_FILE")

  echo "== socket loadgen ($PASS_LABEL): $REQUESTS requests, $CONCURRENCY clients, port $PORT =="
  LOADGEN_RC=0
  "$BUILD_DIR/examples/clpp-serve" --connect "$PORT" \
    --loadgen "$REQUESTS" --concurrency "$CONCURRENCY" \
    --stats-out "$OUT_DIR/$PASS_STATS" || LOADGEN_RC=$?

  # Graceful stop: SIGTERM drains the supervisor and prints final stats.
  kill "$SERVER_PID" 2>/dev/null || true
  wait "$SERVER_PID" 2>/dev/null || true
  trap - EXIT

  if [ "$LOADGEN_RC" -ne 0 ]; then
    echo "check_shard: $PASS_LABEL loadgen lost requests or saw verdict drift (exit $LOADGEN_RC)" >&2
    [ -n "$WARN_ONLY" ] || exit 1
  fi

  # The fault plan must have fired: every gen-1 shard inherits it, so the
  # server stats embedded in the artifact report deaths and a flight dump
  # per crash. A missing/zero count means the gate tested nothing.
  deaths=$(sed -n 's/.*"deaths":\([0-9][0-9]*\).*/\1/p' "$OUT_DIR/$PASS_STATS")
  if [ -z "$deaths" ] || [ "$deaths" -eq 0 ]; then
    echo "check_shard: $PASS_LABEL fault plan never fired (deaths=${deaths:-absent})" >&2
    exit 1
  fi
  dumps=$(ls "$OUT_DIR/flights" 2>/dev/null | wc -l)
  echo "check_shard: $PASS_LABEL: $deaths shard deaths, $dumps flight dumps harvested"

  echo "== budgets ($PASS_LABEL: $BUDGET, shard block) =="
  "$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" --json \
    --stats "$OUT_DIR/$PASS_STATS" \
    > "$OUT_DIR/$PASS_VERDICT" || true

  if "$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" \
    --stats "$OUT_DIR/$PASS_STATS"; then
    echo "check_shard: $PASS_LABEL: crash recovery lost nothing and met every budget"
  else
    if [ -n "$WARN_ONLY" ]; then
      echo "check_shard: $PASS_LABEL budget violations (WARN_ONLY set; not failing)" >&2
    else
      echo "check_shard: $PASS_LABEL budget violations" >&2
      exit 1
    fi
  fi
}

run_pass nocache "$FAULT_PLAN" SHARD_loadgen.stats.json SHARD_verdict.json
run_pass cached "$CACHED_FAULT_PLAN" \
  SHARD_cached.stats.json SHARD_cached_verdict.json --cache-cap "$CACHE_CAP"

# The cached pass must actually have served from the cache, or the second
# drill degenerates into a rerun of the first.
cached=$(sed -n 's/.*"cached_responses":\([0-9][0-9]*\).*/\1/p' \
  "$OUT_DIR/SHARD_cached.stats.json")
if [ -z "$cached" ] || [ "$cached" -eq 0 ]; then
  echo "check_shard: cached pass never hit the cache (cached_responses=${cached:-absent})" >&2
  exit 1
fi
echo "check_shard: cached pass served $cached responses from the cache"
echo "check_shard: elapsed $(($(date +%s) - START_S))s"
