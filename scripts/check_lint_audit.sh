#!/bin/sh
# Lint self-audit gate: clpp-lint seeds directive defects into a generated
# corpus and must catch 100% of them, while conservative disagreement on
# clean loops (e.g. linearized matmul subscripts the analyzer cannot prove
# safe) stays under 10% of linted records — the guarantee the linter PR
# established (tests/lint_test.cpp LintAudit suite), continuously enforced.
#
#   $ scripts/check_lint_audit.sh
#   $ SIZE=1000 BUGGY=0.25 scripts/check_lint_audit.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci-release}"
SIZE="${SIZE:-400}"
BUGGY="${BUGGY:-0.15}"

if [ ! -x "$BUILD_DIR/examples/clpp-lint" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target clpp-lint >/dev/null
fi

# --audit exits 1 whenever seeded bugs are (correctly) reported as errors,
# so exit codes 0 and 1 both mean "the audit ran"; judge on the report.
rc=0
report=$("$BUILD_DIR/examples/clpp-lint" --audit --json --size "$SIZE" --buggy "$BUGGY") || rc=$?
if [ "$rc" -gt 1 ]; then
  echo "check_lint_audit: clpp-lint --audit failed (rc=$rc)" >&2
  exit "$rc"
fi

echo "$report" | python3 -c '
import json, sys
report = json.load(sys.stdin)
seeded, caught = report["seeded_bugs"], report["bugs_caught"]
false_pos, linted = report["clean_flagged"], report["linted"]
print(f"lint audit: {caught}/{seeded} seeded bugs caught, "
      f"{false_pos}/{linted} clean loops flagged")
if seeded == 0:
    sys.exit("check_lint_audit: corpus seeded no bugs; raise SIZE/BUGGY")
if caught != seeded:
    sys.exit(f"check_lint_audit: catch rate {caught/seeded:.0%} < 100%")
if false_pos * 10 >= linted:
    sys.exit(f"check_lint_audit: {false_pos} clean loops flagged "
             f"(>= 10% of {linted} linted)")
'
