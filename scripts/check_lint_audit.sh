#!/bin/sh
# Lint self-audit gate: clpp-lint seeds directive defects into a generated
# corpus — worksharing AND omp simd families — and must catch 100% of them
# with ZERO clean records flagged. The v2 dependence engine made the
# zero-false-positive bar reachable (the seed engine's conservative bails
# on linearized matmul subscripts used to flag clean loops); this gate
# keeps both properties from regressing (tests/lint_test.cpp LintAudit and
# LintAuditSimd suites, continuously enforced).
#
#   $ scripts/check_lint_audit.sh
#   $ SIZE=1000 BUGGY=0.25 scripts/check_lint_audit.sh
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-ci-release}"
SIZE="${SIZE:-400}"
BUGGY="${BUGGY:-0.15}"

if [ ! -x "$BUILD_DIR/examples/clpp-lint" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$BUILD_DIR" -j --target clpp-lint >/dev/null
fi

# --audit exits 1 whenever seeded bugs are (correctly) reported as errors,
# so exit codes 0 and 1 both mean "the audit ran"; judge on the report.
rc=0
report=$("$BUILD_DIR/examples/clpp-lint" --audit --json --size "$SIZE" --buggy "$BUGGY") || rc=$?
if [ "$rc" -gt 1 ]; then
  echo "check_lint_audit: clpp-lint --audit failed (rc=$rc)" >&2
  exit "$rc"
fi

echo "$report" | python3 -c '
import json, sys
report = json.load(sys.stdin)
seeded, caught = report["seeded_bugs"], report["bugs_caught"]
false_pos, linted = report["clean_flagged"], report["linted"]
simd_seeded = sum(1 for row in report["rows"]
                  if row.get("bug", "").startswith("simd-"))
print(f"lint audit: {caught}/{seeded} seeded bugs caught "
      f"({simd_seeded} simd), {false_pos}/{linted} clean loops flagged")
if seeded == 0:
    sys.exit("check_lint_audit: corpus seeded no bugs; raise SIZE/BUGGY")
if simd_seeded == 0:
    sys.exit("check_lint_audit: no simd-* bugs seeded; the simd families "
             "are not in the mix (raise SIZE, or the generator regressed)")
if caught != seeded:
    sys.exit(f"check_lint_audit: catch rate {caught/seeded:.0%} < 100%")
if false_pos > 0:
    sys.exit(f"check_lint_audit: {false_pos} clean loops flagged "
             f"(the bar is zero false positives)")
'
echo "check_lint_audit: elapsed $(($(date +%s) - START_S))s"
