#!/bin/sh
# Scaling + cache-effectiveness gate for the sharded front end
# (DESIGN.md §13): run bench/shard_scaling_bench — a closed-loop,
# multi-process load generator that forks a fresh listener per point —
# across 1/2/4-shard distinct-request mixes and an 80%-duplicate mix with
# the result cache on and off, then judge the clpp.shard_scaling.v1
# artifact against the "scaling" block of slo/budgets.json:
#
#   1. Near-linear distinct-mix scaling. per_core_speedup normalizes the
#      curve at min(shards, ncores) — shard processes cannot scale past
#      the runner's cores, and the gate must not pretend they can.
#   2. Cache effectiveness: >= 3x throughput at 80% duplicates vs the
#      same point with the cache off, with a hit-rate floor.
#   3. Hard zeros: no lost requests, and bitwise-identical verdicts for
#      every snippet across cached and uncached serving — the cache may
#      only ever change latency, never an answer. The bench itself exits
#      nonzero on either violation; clpp-slo re-checks both.
#
# OMP_NUM_THREADS is pinned to 1 so per-shard OpenMP inference does not
# compete with the shard processes for cores: shards are the scale-out
# axis under test.
#
#   $ scripts/check_scaling.sh
#   $ WARN_ONLY=1 scripts/check_scaling.sh   # report violations but exit 0
#   $ POINTS="1 2" REQUESTS=48 scripts/check_scaling.sh
#
# Artifacts land in $OUT_DIR (default scaling_artifacts/):
#   SCALING_bench.stats.json   clpp.shard_scaling.v1 (per-point throughput
#                              + latency percentiles, scaling + cache_win)
#   SCALING_verdict.json       clpp-slo --json verdict
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-perf}"
OUT_DIR="${OUT_DIR:-scaling_artifacts}"
POINTS="${POINTS:-1 2 4}"
REQUESTS="${REQUESTS:-96}"
DUP_REQUESTS="${DUP_REQUESTS:-256}"
CONCURRENCY="${CONCURRENCY:-8}"
DUP_RATE="${DUP_RATE:-0.8}"
BUDGET="${BUDGET:-slo/budgets.json}"
WARN_ONLY="${WARN_ONLY:-}"
export OMP_NUM_THREADS=1

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target shard_scaling_bench clpp-slo >/dev/null

rm -rf "$OUT_DIR"
mkdir -p "$OUT_DIR"

echo "== scaling bench: points [$POINTS], dup rate $DUP_RATE =="
BENCH_RC=0
"$BUILD_DIR/bench/shard_scaling_bench" \
  --points "$POINTS" --requests "$REQUESTS" --dup-requests "$DUP_REQUESTS" \
  --concurrency "$CONCURRENCY" --dup-rate "$DUP_RATE" \
  --out "$OUT_DIR/SCALING_bench.stats.json" || BENCH_RC=$?

if [ "$BENCH_RC" -ne 0 ]; then
  echo "check_scaling: bench lost requests or saw verdict drift (exit $BENCH_RC)" >&2
  [ -n "$WARN_ONLY" ] || exit 1
fi

echo "== budgets ($BUDGET, scaling block) =="
"$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" --json \
  --stats "$OUT_DIR/SCALING_bench.stats.json" \
  > "$OUT_DIR/SCALING_verdict.json" || true

SLO_RC=0
"$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" \
  --stats "$OUT_DIR/SCALING_bench.stats.json" || SLO_RC=$?

if [ "$SLO_RC" -eq 0 ]; then
  echo "check_scaling: scaling curve, cache win, and verdict identity all green"
else
  if [ -n "$WARN_ONLY" ]; then
    echo "check_scaling: budget violations (WARN_ONLY set; not failing)" >&2
  else
    echo "check_scaling: budget violations" >&2
    echo "check_scaling: elapsed $(($(date +%s) - START_S))s"
    exit 1
  fi
fi
echo "check_scaling: elapsed $(($(date +%s) - START_S))s"
