#!/bin/sh
# Schema-contract gate: generate one artifact per schema-versioned JSON
# document the tools emit, then validate every one of them with clpp-schema
# (a structural required-key check over the declared "clpp.<name>.v1"). A
# producer renaming or dropping a top-level field without bumping its
# version string fails here before any consumer (clpp-slo, clpp-profdiff,
# clpp-insight, dashboards) breaks downstream.
#
#   $ scripts/check_schemas.sh
#   $ BUILD_DIR=build scripts/check_schemas.sh
#
# Covered: clpp.lint.v1, clpp.explain.v1, clpp.serve_loadgen.v1 (quality
# block included), clpp.metrics_stream.v1, clpp.flight.v1, clpp.slo_budget.v1,
# clpp.slo_verdict.v1, clpp.insight_report.v1, clpp.shard_loadgen.v1,
# clpp.shard_stats.v1 (a sharded --listen front end's final stats document,
# cache block included), and clpp.shard_scaling.v1 (a tiny scaling-bench run).
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-ci-release}"
OUT_DIR="${OUT_DIR:-schema_artifacts}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j \
  --target clpp-schema clpp-lint clpp-serve clpp-slo clpp-insight \
  shard_scaling_bench >/dev/null

BIN="$BUILD_DIR/examples"
mkdir -p "$OUT_DIR"

echo "== generating artifacts =="

# clpp.lint.v1 — lint report over a real kernel (exit 1 = findings, fine).
"$BIN/clpp-lint" --json corpus/realworld/gemm.c \
  > "$OUT_DIR/lint.json" || true

# clpp.explain.v1 — dependence-engine decision provenance for the same file.
"$BIN/clpp-lint" --explain --json corpus/realworld/gemm.c \
  > "$OUT_DIR/explain.json"

# clpp.serve_loadgen.v1 (carries the clpp.insight.v1 quality block) plus a
# clpp.metrics_stream.v1 jsonl streamed while the loadgen runs.
CLPP_OBS=1 CLPP_METRICS_STREAM="$OUT_DIR/metrics_stream.jsonl" \
  CLPP_METRICS_STREAM_MS=50 \
  "$BIN/clpp-serve" --random-model --no-analysis --no-compar \
  --loadgen 32 --concurrency 4 --stats-out "$OUT_DIR/loadgen.json" >/dev/null

# clpp.flight.v1 — the CLI fatal boundary (report_cli_error) dumps the
# flight recorder when a dump path is armed; a usage error is the cheapest
# deterministic fatal.
CLPP_FLIGHT_OUT="$OUT_DIR/flight.json" \
  "$BIN/clpp-insight" --realworld corpus/realworld >/dev/null 2>&1 || true
test -s "$OUT_DIR/flight.json" || {
  echo "check_schemas: fatal path produced no flight dump" >&2; exit 1; }

# clpp.shard_loadgen.v1 — socket loadgen against a small sharded front end;
# the front end's stdout is the bare clpp.shard_stats.v1 stats document it
# prints after draining on SIGTERM. A stale port file from an aborted run
# would point the loadgen at a dead port, so remove it first; the trap keeps
# a `set -e` abort anywhere below from orphaning the front end.
rm -f "$OUT_DIR/shard_port"
"$BIN/clpp-serve" --random-model --no-analysis --no-compar \
  --listen --shards 2 --port-file "$OUT_DIR/shard_port" \
  > "$OUT_DIR/shard_stats.json" &
SHARD_PID=$!
trap 'kill "$SHARD_PID" 2>/dev/null || true' EXIT
i=0
while [ ! -s "$OUT_DIR/shard_port" ]; do
  i=$((i + 1))
  [ "$i" -gt 50 ] && { echo "check_schemas: no shard port" >&2; exit 1; }
  sleep 0.1
done
"$BIN/clpp-serve" --connect "$(cat "$OUT_DIR/shard_port")" \
  --loadgen 16 --concurrency 4 \
  --stats-out "$OUT_DIR/shard_loadgen.json" >/dev/null
kill "$SHARD_PID"
wait "$SHARD_PID" 2>/dev/null || true
trap - EXIT
test -s "$OUT_DIR/shard_stats.json" || {
  echo "check_schemas: listen front end printed no stats document" >&2
  exit 1; }

# clpp.shard_scaling.v1 — a tiny run of the closed-loop scaling bench
# (two points, a handful of requests) exercises the full artifact shape:
# per-point series, the scaling and cache_win summary blocks, and the
# verdict-identity verdict.
OMP_NUM_THREADS=1 "$BUILD_DIR/bench/shard_scaling_bench" \
  --points "1 2" --requests 24 --dup-requests 32 --concurrency 4 \
  --out "$OUT_DIR/shard_scaling.json" >/dev/null

# clpp.slo_verdict.v1 — evaluate the loadgen artifact we just produced.
"$BIN/clpp-slo" --budget slo/budgets.json --quality-warn-only --json \
  --stats "$OUT_DIR/loadgen.json" > "$OUT_DIR/slo_verdict.json" || true

# clpp.insight_report.v1 — offline model-quality report over the kernels.
"$BIN/clpp-insight" --realworld corpus/realworld --random-model --json \
  > "$OUT_DIR/insight_report.json"

echo "== validating =="
"$BIN/clpp-schema" \
  "$OUT_DIR/lint.json" \
  "$OUT_DIR/explain.json" \
  "$OUT_DIR/loadgen.json" \
  "$OUT_DIR/shard_loadgen.json" \
  "$OUT_DIR/shard_stats.json" \
  "$OUT_DIR/shard_scaling.json" \
  "$OUT_DIR/metrics_stream.jsonl" \
  "$OUT_DIR/flight.json" \
  "$OUT_DIR/slo_verdict.json" \
  "$OUT_DIR/insight_report.json" \
  slo/budgets.json

echo "check_schemas: all artifacts conform"
echo "check_schemas: elapsed $(($(date +%s) - START_S))s"
