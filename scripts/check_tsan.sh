#!/bin/sh
# ThreadSanitizer gate for the serving scheduler and the observability
# plumbing it leans on: build with -DCLPP_SANITIZE_THREAD=ON and run the
# `serve`-, `obs`-, `shard`-, and `cache`-labeled tests (request queue,
# micro-batching
# workers, backpressure, drain-on-shutdown, sharded histograms under
# concurrent writers, flight-recorder rings, the metrics streamer thread,
# and the shard supervisor/listener — single-threaded by design, which TSan
# verifies holds across worker forks and crash recovery). TSan is mutually
# exclusive with ASan/UBSan, hence a separate build tree from
# check_sanitize.sh.
#
#   $ scripts/check_tsan.sh
#   $ CTEST_ARGS="--repeat until-fail:5" scripts/check_tsan.sh
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-tsan}"

# TSan builds dominate CI wall-clock; reuse compiled objects via ccache
# when it is installed.
LAUNCHER=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

cmake -B "$BUILD_DIR" -S . -DCLPP_SANITIZE_THREAD=ON -DCMAKE_BUILD_TYPE=Debug $LAUNCHER >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

cd "$BUILD_DIR"
# halt_on_error turns any reported race into a test failure.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
ctest --output-on-failure -j"$(nproc)" -L "serve|obs|shard|cache" ${CTEST_ARGS:-}
echo "check_tsan: elapsed $(($(date +%s) - START_S))s"
