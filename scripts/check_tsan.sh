#!/bin/sh
# ThreadSanitizer gate for the serving scheduler and the observability
# plumbing it leans on: build with -DCLPP_SANITIZE_THREAD=ON and run the
# `serve`-, `obs`-, and `shard`-labeled tests (request queue, micro-batching
# workers, backpressure, drain-on-shutdown, sharded histograms under
# concurrent writers, flight-recorder rings, the metrics streamer thread,
# and the shard supervisor/listener — single-threaded by design, which TSan
# verifies holds across worker forks and crash recovery). TSan is mutually
# exclusive with ASan/UBSan, hence a separate build tree from
# check_sanitize.sh.
#
#   $ scripts/check_tsan.sh
#   $ CTEST_ARGS="--repeat until-fail:5" scripts/check_tsan.sh
set -e
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCLPP_SANITIZE_THREAD=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

cd "$BUILD_DIR"
# halt_on_error turns any reported race into a test failure.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
ctest --output-on-failure -j"$(nproc)" -L "serve|obs|shard" ${CTEST_ARGS:-}
