#!/bin/sh
# SLO gate for the serve path: run the closed-loop load generator twice —
# once uninstrumented and once fully instrumented (CLPP_OBS=1 with a Chrome
# trace export) — and evaluate the resulting clpp.serve_loadgen.v1 artifacts
# against the declarative budgets in slo/budgets.json with clpp-slo. The
# second run also proves the observability overhead budget: tracing on must
# keep throughput within `obs_overhead.max_fraction` (5%) of tracing off.
#
#   $ scripts/check_slo.sh
#   $ WARN_ONLY=1 scripts/check_slo.sh     # report violations but exit 0
#   $ REQUESTS=64 scripts/check_slo.sh     # quicker smoke run
#   $ QUALITY_ENFORCE=1 scripts/check_slo.sh   # quality budgets gate too
#
# Model-quality budgets (the "quality" block: ECE/drift/disagreement) are
# evaluated warn-only by default — set QUALITY_ENFORCE=1 to let them fail
# the gate. Independently, a drift canary re-runs the loadgen with the
# out-of-distribution snippet mix (clpp-serve --drift) and asserts the
# drift budget *does* trip on it, proving the tripwire is live.
#
# Artifacts land in $OUT_DIR (default slo_artifacts/):
#   SLO_serve.stats.json       loadgen report, CLPP_OBS off
#   SLO_serve_obs.stats.json   loadgen report, CLPP_OBS=1
#   SLO_serve_obs.trace.json   Chrome trace of the instrumented run (the
#                              flow-linked request lanes, chrome://tracing)
#   SLO_drift.stats.json       drift-canary loadgen report
#   SLO_verdict.json           clpp-slo --json verdict document
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-perf}"
OUT_DIR="${OUT_DIR:-slo_artifacts}"
REQUESTS="${REQUESTS:-128}"
CONCURRENCY="${CONCURRENCY:-16}"
BUDGET="${BUDGET:-slo/budgets.json}"
WARN_ONLY="${WARN_ONLY:-}"
QUALITY_ENFORCE="${QUALITY_ENFORCE:-}"

QUALITY_FLAG="--quality-warn-only"
if [ -n "$QUALITY_ENFORCE" ]; then
  QUALITY_FLAG=""
fi

# SLO numbers must come from an optimized build; shares build-perf with
# check_perf.sh so a combined CI run configures it once.
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j --target clpp-serve clpp-slo >/dev/null

mkdir -p "$OUT_DIR"

echo "== loadgen, observability off =="
CLPP_OBS=0 "$BUILD_DIR/examples/clpp-serve" --random-model \
  --no-analysis --no-compar \
  --loadgen "$REQUESTS" --concurrency "$CONCURRENCY" \
  --stats-out "$OUT_DIR/SLO_serve.stats.json"

echo "== loadgen, observability on (tracing + metrics) =="
CLPP_OBS=1 CLPP_TRACE_OUT="$OUT_DIR/SLO_serve_obs.trace.json" \
  "$BUILD_DIR/examples/clpp-serve" --random-model \
  --no-analysis --no-compar \
  --loadgen "$REQUESTS" --concurrency "$CONCURRENCY" \
  --stats-out "$OUT_DIR/SLO_serve_obs.stats.json"

echo "== budgets ($BUDGET) =="
"$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" --json $QUALITY_FLAG \
  --stats "$OUT_DIR/SLO_serve.stats.json" \
  --obs-stats "$OUT_DIR/SLO_serve_obs.stats.json" \
  > "$OUT_DIR/SLO_verdict.json" || true

if "$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" $QUALITY_FLAG \
  --stats "$OUT_DIR/SLO_serve.stats.json" \
  --obs-stats "$OUT_DIR/SLO_serve_obs.stats.json"; then
  echo "check_slo: all budgets met"
else
  if [ -n "$WARN_ONLY" ]; then
    echo "check_slo: budget violations (WARN_ONLY set; not failing)" >&2
  else
    echo "check_slo: budget violations" >&2
    exit 1
  fi
fi

# Drift canary: an out-of-distribution snippet mix must trip the drift
# budget (enforced, no warn-only). This asserts the tripwire itself works —
# a gate that cannot fail is not a gate.
echo "== drift canary (expect quality.drift_score FAIL) =="
CLPP_OBS=0 "$BUILD_DIR/examples/clpp-serve" --random-model \
  --no-analysis --no-compar --drift \
  --loadgen "$REQUESTS" --concurrency "$CONCURRENCY" \
  --stats-out "$OUT_DIR/SLO_drift.stats.json"
if "$BUILD_DIR/examples/clpp-slo" --budget "$BUDGET" \
  --stats "$OUT_DIR/SLO_drift.stats.json"; then
  echo "check_slo: drift canary did NOT trip the drift budget" >&2
  exit 1
else
  echo "check_slo: drift canary tripped as expected"
fi
echo "check_slo: elapsed $(($(date +%s) - START_S))s"
