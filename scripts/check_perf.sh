#!/bin/sh
# Perf gate: build Release, run the bench suite, and diff the fresh
# bench_artifacts/ against the committed bench_baseline/ with clpp-profdiff.
#
#   $ scripts/check_perf.sh            # threshold defaults to 20%
#   $ THRESHOLD=0.1 scripts/check_perf.sh
#   $ WARN_ONLY=1 scripts/check_perf.sh   # report regressions but exit 0
#
# Exits non-zero when any tracked time-like series (benchmark real/cpu time,
# latency-histogram mean/p95/p99 — tails included, so a regression that only
# fattens the tail still fails) regressed beyond THRESHOLD. When no baseline has
# been recorded yet this warns and exits 0, so the script is safe to wire
# into CI before the first baseline lands. WARN_ONLY=1 keeps the job
# non-blocking (shared CI runners time benchmarks noisily); promote to
# blocking by dropping it once the baseline has proven stable.
set -e
cd "$(dirname "$0")/.."
START_S=$(date +%s)

BUILD_DIR="${BUILD_DIR:-build-perf}"
THRESHOLD="${THRESHOLD:-0.2}"
BASELINE_DIR="${BASELINE_DIR:-bench_baseline}"
WARN_ONLY="${WARN_ONLY:-}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" -j >/dev/null

BUILD_DIR="$BUILD_DIR" OUT_DIR=bench_artifacts BENCH_GLOB="${BENCH_GLOB:-}" ./run_benches.sh

if [ ! -d "$BASELINE_DIR" ]; then
  echo "check_perf: no $BASELINE_DIR/ recorded; skipping the diff." >&2
  echo "check_perf: record one with: cp -r bench_artifacts $BASELINE_DIR" >&2
  exit 0
fi

if [ -n "$WARN_ONLY" ]; then
  "$BUILD_DIR/examples/clpp-profdiff" --threshold "$THRESHOLD" \
    "$BASELINE_DIR" bench_artifacts ||
    echo "check_perf: regressions above ${THRESHOLD} (WARN_ONLY set; not failing)" >&2
else
  "$BUILD_DIR/examples/clpp-profdiff" --threshold "$THRESHOLD" \
    "$BASELINE_DIR" bench_artifacts
fi
echo "check_perf: elapsed $(($(date +%s) - START_S))s"
