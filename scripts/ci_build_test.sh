#!/bin/sh
# Tier-1 CI job: configure, build, and run the full ctest suite — the same
# verify command ROADMAP.md names, parameterized for the CI matrix.
#
#   $ scripts/ci_build_test.sh                          # system compiler, Release
#   $ CC=clang CXX=clang++ BUILD_TYPE=Debug scripts/ci_build_test.sh
#
# Env knobs: CC/CXX (compiler pair), BUILD_TYPE (Release|Debug),
# BUILD_DIR (default build-ci-<type>), CTEST_ARGS (extra ctest flags).
# ccache is picked up automatically when installed.
set -e
cd "$(dirname "$0")/.."

BUILD_TYPE="${BUILD_TYPE:-Release}"
BUILD_DIR="${BUILD_DIR:-build-ci-$(echo "$BUILD_TYPE" | tr '[:upper:]' '[:lower:]')}"

LAUNCHER=""
if command -v ccache >/dev/null 2>&1; then
  LAUNCHER="-DCMAKE_C_COMPILER_LAUNCHER=ccache -DCMAKE_CXX_COMPILER_LAUNCHER=ccache"
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE" $LAUNCHER
cmake --build "$BUILD_DIR" -j"$(nproc)"

cd "$BUILD_DIR"
ctest --output-on-failure -j"$(nproc)" ${CTEST_ARGS:-}
