// s2s_vs_ml: a head-to-head on the snippet classes where the paper argues
// deterministic S2S compilers and learned models diverge.
//
//   $ ./build/examples/s2s_vs_ml
//
// Prints, per snippet: the human label, each S2S member's verdict, the
// ensemble verdict, and PragFormer's prediction. Rows 3-6 are the
// interesting ones: unknown callees, non-canonical reductions, and
// technically-parallel-but-pointless loops.
#include <cstdio>

#include "core/advisor.h"
#include "s2s/compar.h"
#include "support/table.h"

namespace {

struct Case {
  const char* name;
  const char* code;
  bool human_label;  // would a developer annotate this loop?
};

constexpr Case kCases[] = {
    {"elementwise add", "for (i = 0; i < n; i++) c[i] = a[i] + b[i];", true},
    {"carried recurrence", "for (i = 1; i < n; i++) a[i] = a[i - 1] + b[i];", false},
    {"extern kernel call", "for (i = 0; i < n; i++) a[i] = update_cell(a[i], i);",
     true},
    {"conditional max", "for (i = 0; i < n; i++) { if (a[i] > m) m = a[i]; }", true},
    {"tiny setup loop", "for (i = 0; i < 16; i++) buf[i] = 0;", false},
    {"I/O loop", "for (i = 0; i < n; i++) printf(\"%f \", a[i]);", false},
};

}  // namespace

int main() {
  using namespace clpp;

  std::printf("training a compact PragFormer advisor...\n");
  core::PipelineConfig config;
  config.generator.size = 1600;
  config.encoder.dim = 48;
  config.encoder.ffn_dim = 96;
  config.max_len = 80;
  config.train.epochs = 7;
  config.mlm_pretrain = false;
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);

  const s2s::ComPar compar;
  TextTable table({"snippet", "human", "cetus", "autopar", "par4all", "ComPar",
                   "PragFormer"});
  auto verdict = [](const s2s::S2SResult& result) -> std::string {
    if (result.failed()) return "FAIL";
    return result.parallelized() ? "yes" : "no";
  };
  for (const Case& c : kCases) {
    const s2s::ComParResult ensemble = compar.process_source(c.code);
    const core::Advice advice = advisor.advise(c.code);
    std::vector<std::string> row = {c.name, c.human_label ? "yes" : "no"};
    for (const auto& [name, result] : ensemble.members) row.push_back(verdict(result));
    row.push_back(ensemble.compile_failed() ? "FAIL"
                  : ensemble.predicts_directive() ? "yes" : "no");
    row.push_back(advice.needs_directive ? "yes" : "no");
    table.add_row(std::move(row));
  }
  std::printf("\n%s\n", table.str().c_str());
  std::printf("note: FAIL counts as a negative prediction in the paper's "
              "evaluation (fallback strategy, §5.2).\n");
  return 0;
}
