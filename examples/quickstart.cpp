// Quickstart: train a small ParallelAdvisor and ask it about a few loops.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the three public layers of the library:
//   1. clpp::codegen / clpp::corpus — the Open-OMP-style corpus;
//   2. clpp::core::Pipeline — training PragFormer models;
//   3. clpp::core::ParallelAdvisor — asking for advice on new code.
// plus the clpp::obs observability layer: the run is traced end to end and
// leaves quickstart_trace.json (open in chrome://tracing or Perfetto) and
// quickstart_metrics.json next to the binary, then prints the metric and
// span summary tables.
#include <cstdio>

#include "core/advisor.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "prof/flops.h"
#include "prof/prof.h"

int main() {
  using namespace clpp;

  // Observability on: spans + metrics record for the whole run. CLPP_TRACE_OUT
  // / CLPP_METRICS_OUT (see obs/obs.h) override the default artifact paths.
  obs::set_enabled(true);
  obs::set_trace_out("quickstart_trace.json");
  obs::set_metrics_out("quickstart_metrics.json");

  // 1+2. Train a compact advisor (four PragFormer classifiers: directive,
  // private, reduction, schedule) on a freshly generated corpus. Small config: this
  // takes about 90 seconds on one core.
  core::PipelineConfig config;
  config.generator.size = 1600;
  config.encoder.dim = 48;
  config.encoder.ffn_dim = 96;
  config.max_len = 80;
  config.train.epochs = 8;
  config.train.select_best_epoch = true;
  config.train.on_epoch = [](const core::EpochCurve& curve) {
    std::printf("  epoch %zu  train_loss=%.3f  val_loss=%.3f  val_acc=%.3f  "
                "wall=%.2fs\n",
                curve.epoch, curve.train_loss, curve.val_loss, curve.val_accuracy,
                curve.wall_seconds);
  };
  config.mlm_pretrain = false;
  std::printf("training the advisor on a %zu-snippet corpus...\n",
              config.generator.size);
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);
  std::printf("done.\n\n");

  // 3. Ask about code the models have never seen.
  const char* snippets[] = {
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i] * b[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] * 0.5;",
      "for (i = 0; i < n; i++) fprintf(fp, \"%d\\n\", a[i]);",
  };
  for (const char* code : snippets) {
    const core::Advice advice = advisor.advise(code);
    std::printf("code: %s\n", code);
    std::printf("  needs directive: %s (p=%.2f)\n",
                advice.needs_directive ? "yes" : "no", advice.p_directive);
    if (advice.needs_directive) {
      std::printf("  suggested pragma: %s\n", advice.suggestion.c_str());
      if (!advice.compar_suggestion.empty())
        std::printf("  (S2S ComPar says:  %s)\n", advice.compar_suggestion.c_str());
    }
    std::printf("\n");
  }

  // 4. What did the run cost? Metrics registry + span aggregates, and the
  // Chrome trace / metrics JSON for offline digging.
  std::printf("== metrics ==\n%s\n", obs::metrics().summary().c_str());
  std::printf("== spans ==\n%s\n", obs::Tracer::instance().summary().c_str());

  // With CLPP_PROF=1 the run also collected roofline numbers per kernel
  // and a sampled flamegraph (see prof/prof.h for the env knobs).
  if (prof::enabled()) {
    std::printf("== profiling ==\n");
    for (const char* kernel : {"gemm", "attention", "attention.backward"}) {
      const prof::KernelCounters& kc = prof::kernel_counters(kernel);
      const std::uint64_t wall_ns = kc.wall_ns.value();
      if (wall_ns == 0) continue;
      std::printf("  %-20s %8.2f GFLOP/s aggregate  (%.2f flops/byte)\n", kernel,
                  static_cast<double>(kc.flops.value()) /
                      static_cast<double>(wall_ns),
                  static_cast<double>(kc.flops.value()) /
                      static_cast<double>(kc.bytes.value()));
    }
    std::printf("  flamegraph: %s (flamegraph.pl or speedscope.app)\n\n",
                prof::flame_out().c_str());
  }

  obs::export_configured_outputs();
  std::printf("trace:   quickstart_trace.json (chrome://tracing)\n");
  std::printf("metrics: quickstart_metrics.json\n");
  return 0;
}
