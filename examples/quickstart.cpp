// Quickstart: train a small ParallelAdvisor and ask it about a few loops.
//
//   $ ./build/examples/quickstart
//
// Demonstrates the three public layers of the library:
//   1. clpp::codegen / clpp::corpus — the Open-OMP-style corpus;
//   2. clpp::core::Pipeline — training PragFormer models;
//   3. clpp::core::ParallelAdvisor — asking for advice on new code.
#include <cstdio>

#include "core/advisor.h"

int main() {
  using namespace clpp;

  // 1+2. Train a compact advisor (four PragFormer classifiers: directive,
  // private, reduction, schedule) on a freshly generated corpus. Small config: this
  // takes about 90 seconds on one core.
  core::PipelineConfig config;
  config.generator.size = 1600;
  config.encoder.dim = 48;
  config.encoder.ffn_dim = 96;
  config.max_len = 80;
  config.train.epochs = 8;
  config.train.select_best_epoch = true;
  config.mlm_pretrain = false;
  std::printf("training the advisor on a %zu-snippet corpus...\n",
              config.generator.size);
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);
  std::printf("done.\n\n");

  // 3. Ask about code the models have never seen.
  const char* snippets[] = {
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i] * b[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] * 0.5;",
      "for (i = 0; i < n; i++) fprintf(fp, \"%d\\n\", a[i]);",
  };
  for (const char* code : snippets) {
    const core::Advice advice = advisor.advise(code);
    std::printf("code: %s\n", code);
    std::printf("  needs directive: %s (p=%.2f)\n",
                advice.needs_directive ? "yes" : "no", advice.p_directive);
    if (advice.needs_directive) {
      std::printf("  suggested pragma: %s\n", advice.suggestion.c_str());
      if (!advice.compar_suggestion.empty())
        std::printf("  (S2S ComPar says:  %s)\n", advice.compar_suggestion.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
