// clpp-serve: resident micro-batching advisor server (clpp::serve).
//
//   clpp-serve --model advisor.bin                  # JSON-lines on stdin/stdout
//   clpp-serve --random-model                       # demo weights, no training
//   clpp-serve --random-model --loadgen 256 --concurrency 32
//   clpp-serve --random-model --loadgen 256 --sequential    # baseline
//   clpp-serve --random-model --listen --shards 4           # TCP front end
//   clpp-serve --loadgen 256 --connect 7070                 # socket loadgen
//
// JSON-lines protocol: one request object per stdin line,
//     {"id": 7, "code": "for (i = 0; i < n; i++) a[i] = b[i];"}
// and one verdict object per stdout line, in submission order:
//     {"id":7,"p_directive":0.93,...,"suggestion":"#pragma omp parallel for",
//      "trace_id":"9f3c...","queue_us":412,"batch_us":1830,"infer_us":1600,
//      "coalesced":false}
// Every response carries its request-scoped trace id (the same id tags the
// request's spans in a CLPP_TRACE_OUT Chrome trace) and the server-side
// queue/batch/infer time split. `id` defaults to the 1-based line number. A
// malformed line produces an "error" object on stdout and does not kill the
// server. Because requests are submitted as they are read and printed in
// FIFO order by a separate writer thread, a burst of piped lines is served
// in micro-batches while interactive use still answers line by line.
//
// Admin verbs: a line {"cmd":"stats"} answers (in order, like any request)
// with {"id":...,"stats":{...}} — live queue depth, batch occupancy,
// coalesce rate, and streaming latency percentiles per task model.
// {"cmd":"quality"} answers with a `clpp.insight.v1` snapshot: per-task
// confidence histograms, online ECE, analyzer-vs-model disagreement counts,
// and the drift score of recent traffic against the training fingerprint.
//
// `--loadgen N` skips the stdin protocol and instead drives the server with
// closed-loop clients (each keeps one request in flight) over a fixed
// snippet mix, then reports throughput, client-side latency percentiles
// (p50/p95/p99), the server-side percentiles, and the queue-wait vs compute
// split. `--sequential` runs the same N requests through plain
// single-request `advise()` for an A/B baseline. `--stats-out PATH` writes
// the whole report as a JSON artifact (consumed by scripts/check_slo.sh).
//
// `--listen` runs the sharded fault-tolerant front end instead
// (DESIGN.md §12): a loopback TCP listener speaking length-prefixed JSON
// frames in front of --shards forked worker processes, with crash recovery
// (dead shards restart with backoff; their accepted requests replay on
// survivors) and admission control (--quota-rps/--quota-burst per client,
// --max-inflight globally, --deadline-ms default request budget).
// `--connect PORT` flips the load generator onto that socket protocol and
// writes a `clpp.shard_loadgen.v1` artifact (consumed by
// scripts/check_shard.sh, which gates "a shard crash loses no accepted
// request").
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <future>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <csignal>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "cache/cache.h"
#include "core/advisor.h"
#include "insight/drift.h"
#include "serve/server.h"
#include "shard/frame.h"
#include "shard/listener.h"
#include "shard/supervisor.h"
#include "support/cli.h"
#include "support/json.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace {

using namespace clpp;
using Clock = std::chrono::steady_clock;

const std::vector<std::string>& demo_mix() {
  static const std::vector<std::string> mix = {
      "for (i = 0; i < n; i++) a[i] = b[i];",
      "for (i = 0; i < n; i++) c[i] = a[i] + b[i];",
      "for (i = 0; i < n; i++) sum += a[i] * b[i];",
      "for (i = 1; i < n; i++) a[i] = a[i - 1] + 1;",
      "for (i = 0; i < n; i++) { t = a[i] * 0.5; b[i] = t + a[i]; }",
      "for (i = 0; i < n; i++) { if (a[i] > 0.5) a[i] = evolve(a[i]); }",
      "for (i = 0; i < n; i++) { for (j = 0; j < m; j++) c[i] += a[i] * b[j]; }",
      "for (i = 0; i < n; i++) best = a[i] > best ? a[i] : best;",
  };
  return mix;
}

/// A snippet mix from a different population than demo_mix(): pointer
/// chasing, hash buckets, while-style loops — a disjoint token universe so
/// the drift monitor sees a high population-stability score. Drives the
/// check_slo.sh drift canary (`--drift`).
const std::vector<std::string>& drifted_mix() {
  static const std::vector<std::string> mix = {
      "for (node = head; node != NULL; node = node->next) total += node->weight;",
      "for (k = 0; k < nbuckets; k++) { entry = table[hash(k)]; while (entry) { visit(entry); entry = entry->chain; } }",
      "for (p = begin; p != end; ++p) *p = transform(*p, scale, offset);",
      "for (round = 0; round < rounds; round++) state = mix64(state ^ seeds[round & 7]);",
      "for (e = graph->edges; e; e = e->succ) { relax(dist, e->from, e->to, e->cost); }",
      "for (depth = 0; depth < max_depth; depth++) { cursor = cursor->child[path[depth]]; if (!cursor) break; }",
  };
  return mix;
}

/// Untrained advisor on the default encoder shape: lets the binary run (and
/// the load generator measure batching) without a training run first.
core::ParallelAdvisor random_advisor() {
  std::vector<std::vector<std::string>> documents;
  for (const std::string& code : demo_mix())
    documents.push_back(tokenize::tokenize(code, tokenize::Representation::kText));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

  core::PipelineConfig defaults;
  core::PragFormerConfig config;
  config.encoder = defaults.encoder;
  config.encoder.vocab_size = vocab.size();
  Rng rng(2023);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  auto schedule = std::make_unique<core::PragFormer>(config, rng);
  core::ParallelAdvisor advisor(std::move(directive), std::move(private_model),
                                std::move(reduction), std::move(vocab),
                                tokenize::Representation::kText, defaults.max_len);
  advisor.set_schedule_model(std::move(schedule));
  // Fingerprint the demo mix as the "training corpus" so drift detection is
  // armed even without a real training run: serving demo_mix() scores ~0,
  // serving --drift traffic trips the SLO budget.
  insight::FingerprintBuilder fingerprint;
  for (const std::string& code : demo_mix()) fingerprint.observe(code);
  advisor.set_fingerprint(fingerprint.build());
  return advisor;
}

std::string trace_id_hex(std::uint64_t trace_id) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(trace_id));
  return hex;
}

Json advice_to_json(std::int64_t id, const serve::ServedAdvice& served) {
  const core::Advice& advice = served.advice;
  Json obj = Json::object();
  obj["id"] = id;
  obj["p_directive"] = static_cast<double>(advice.p_directive);
  obj["needs_directive"] = advice.needs_directive;
  if (advice.needs_directive) {
    obj["p_private"] = static_cast<double>(advice.p_private);
    obj["p_reduction"] = static_cast<double>(advice.p_reduction);
    obj["p_dynamic"] = static_cast<double>(advice.p_dynamic);
    obj["needs_private"] = advice.needs_private;
    obj["needs_reduction"] = advice.needs_reduction;
    obj["dynamic_schedule"] = advice.wants_dynamic_schedule;
    obj["suggestion"] = advice.suggestion;
  }
  if (!advice.compar_suggestion.empty()) obj["compar"] = advice.compar_suggestion;
  obj["trace_id"] = trace_id_hex(served.timing.trace_id);
  obj["queue_us"] = static_cast<std::int64_t>(served.timing.queue_us);
  obj["batch_us"] = static_cast<std::int64_t>(served.timing.batch_us);
  obj["infer_us"] = static_cast<std::int64_t>(served.timing.infer_us);
  obj["coalesced"] = served.timing.coalesced;
  obj["cached"] = served.timing.cached;
  return obj;
}

Json error_line(std::int64_t id, const std::string& what) {
  Json obj = Json::object();
  if (id >= 0) obj["id"] = id;
  obj["error"] = what;
  return obj;
}

/// One in-flight request of the JSON-lines loop: the submission id plus the
/// future the writer thread will resolve. `error` carries the message when
/// the line failed before reaching the server; `preformatted` carries the
/// ready-to-print reply of an admin verb (e.g. {"cmd":"stats"}), which
/// still flows through the writer so output order matches input order.
struct Pending {
  std::int64_t id = -1;
  std::future<serve::ServedAdvice> future;
  std::string error;
  std::string preformatted;
};

int run_jsonl(serve::InferenceServer& server) {
  std::mutex mu;
  std::condition_variable ready;
  std::deque<Pending> inflight;
  bool done = false;

  // Writer: resolves futures in submission order, so output order matches
  // input order and a pipe full of requests still gets micro-batched.
  std::thread writer([&] {
    for (;;) {
      Pending next;
      {
        std::unique_lock lock(mu);
        ready.wait(lock, [&] { return !inflight.empty() || done; });
        if (inflight.empty()) return;
        next = std::move(inflight.front());
        inflight.pop_front();
      }
      std::string line;
      if (!next.preformatted.empty()) {
        line = std::move(next.preformatted);
      } else if (!next.error.empty()) {
        line = error_line(next.id, next.error).dump();
      } else {
        try {
          line = advice_to_json(next.id, next.future.get()).dump();
        } catch (const std::exception& e) {
          line = error_line(next.id, e.what()).dump();
        }
      }
      std::fputs(line.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
  });

  std::string line;
  std::int64_t line_number = 0;
  while (std::getline(std::cin, line)) {
    ++line_number;
    if (line.empty()) continue;
    Pending pending;
    pending.id = line_number;
    try {
      const Json request = Json::parse(line);
      pending.id = request.get_int("id", line_number);
      if (request.contains("cmd")) {
        const std::string cmd = request.at("cmd").as_string();
        if (cmd == "stats") {
          Json reply = Json::object();
          reply["id"] = pending.id;
          reply["stats"] = server.stats_json();
          pending.preformatted = reply.dump();
        } else if (cmd == "quality") {
          Json reply = Json::object();
          reply["id"] = pending.id;
          reply["quality"] = server.quality_json();
          pending.preformatted = reply.dump();
        } else {
          pending.error = "unknown cmd: " + cmd;
        }
      } else {
        const std::string code = request.at("code").as_string();
        pending.future = server.submit(code);
      }
    } catch (const std::exception& e) {
      pending.error = e.what();
    }
    {
      std::lock_guard lock(mu);
      inflight.push_back(std::move(pending));
    }
    ready.notify_one();
  }
  {
    std::lock_guard lock(mu);
    done = true;
  }
  ready.notify_one();
  writer.join();
  server.shutdown();

  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "served %llu requests in %llu batches (%.1f rows/batch, "
               "%llu coalesced, %llu failed)\n",
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.batches),
               stats.mean_batch_rows(),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.failed));
  return 0;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

/// Prints the client-side summary line and returns it as the "client" block
/// of the --stats-out artifact.
Json report_loadgen(const char* label, std::size_t total, double seconds,
                    std::vector<double> latencies_us) {
  std::sort(latencies_us.begin(), latencies_us.end());
  const double p50 = percentile(latencies_us, 0.50);
  const double p95 = percentile(latencies_us, 0.95);
  const double p99 = percentile(latencies_us, 0.99);
  std::fprintf(stderr,
               "%s: %zu requests in %.3f s -> %.1f req/s "
               "(latency p50 %.0f us, p95 %.0f us, p99 %.0f us)\n",
               label, total, seconds, static_cast<double>(total) / seconds,
               p50, p95, p99);
  Json client = Json::object();
  client["p50_us"] = p50;
  client["p95_us"] = p95;
  client["p99_us"] = p99;
  return client;
}

void write_stats_artifact(const std::string& path, const Json& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open stats-out file: " + path);
  const std::string text = report.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "loadgen stats written to %s\n", path.c_str());
}

int run_loadgen(const core::ParallelAdvisor& advisor, serve::ServeConfig config,
                std::size_t total, std::size_t concurrency, bool sequential,
                bool drift, const std::string& stats_out) {
  const auto& mix = drift ? drifted_mix() : demo_mix();
  Json report = Json::object();
  report["schema"] = "clpp.serve_loadgen.v1";
  report["requests"] = static_cast<std::int64_t>(total);

  if (sequential) {
    // Baseline: the stateful advisor serves one request at a time.
    std::vector<double> latencies;
    latencies.reserve(total);
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < total; ++r) {
      const auto s0 = Clock::now();
      advisor.advise(mix[r % mix.size()], config.options);
      latencies.push_back(std::chrono::duration<double, std::micro>(Clock::now() - s0).count());
    }
    const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
    report["mode"] = "sequential";
    report["seconds"] = seconds;
    report["throughput_rps"] = static_cast<double>(total) / seconds;
    report["client"] = report_loadgen("sequential", total, seconds, std::move(latencies));
    if (!stats_out.empty()) write_stats_artifact(stats_out, report);
    return 0;
  }

  serve::InferenceServer server(advisor, config);
  std::atomic<std::size_t> next{0};
  std::mutex lat_mu;
  std::vector<double> latencies;
  latencies.reserve(total);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&] {
      for (;;) {
        const std::size_t r = next.fetch_add(1);
        if (r >= total) return;
        const auto s0 = Clock::now();
        try {
          server.submit(mix[r % mix.size()]).get();
        } catch (const serve::ServeOverload&) {
          continue;  // shed; the run still counts the request as issued
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() - s0).count();
        std::lock_guard lock(lat_mu);
        latencies.push_back(us);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  // Snapshot server-side telemetry before shutdown resets nothing but
  // *after* all client futures resolved, so the histograms cover every
  // request of the run.
  const Json server_stats = server.stats_json();
  const Json quality = server.quality_json();
  server.shutdown();

  report["mode"] = "serve";
  report["seconds"] = seconds;
  report["throughput_rps"] = static_cast<double>(total) / seconds;
  report["client"] = report_loadgen("serve", total, seconds, std::move(latencies));
  report["server"] = server_stats;
  report["quality"] = quality;

  const serve::ServeStats stats = server.stats();
  std::fprintf(stderr,
               "  %llu batches, %.1f rows/batch, %llu coalesced, %llu rejected\n",
               static_cast<unsigned long long>(stats.batches), stats.mean_batch_rows(),
               static_cast<unsigned long long>(stats.coalesced),
               static_cast<unsigned long long>(stats.rejected));
  // Server-side view: where a request's life went. queue-wait is time spent
  // waiting for a worker + batch window; the remainder of the latency is
  // compute (encode + model forwards + extras).
  const Json& lat = server_stats.at("latency_us");
  const Json& wait = server_stats.at("queue_wait_us");
  const double mean_latency = lat.at("mean").as_double();
  const double mean_wait = wait.at("mean").as_double();
  const double wait_share = mean_latency > 0.0 ? mean_wait / mean_latency : 0.0;
  std::fprintf(stderr,
               "  server latency p50 %.0f us, p95 %.0f us, p99 %.0f us; "
               "queue-wait %.0f%% of latency (wait %.0f us, compute %.0f us mean)\n",
               lat.at("p50").as_double(), lat.at("p95").as_double(),
               lat.at("p99").as_double(), wait_share * 100.0, mean_wait,
               mean_latency - mean_wait);
  if (!stats_out.empty()) write_stats_artifact(stats_out, report);
  return 0;
}

shard::SocketListener* g_listener = nullptr;

void stop_listener(int) {
  if (g_listener != nullptr) g_listener->stop();
}

int run_listen(const core::ParallelAdvisor& advisor,
               shard::SupervisorConfig sup_config,
               shard::ListenerConfig listen_config) {
  shard::ShardSupervisor supervisor(advisor, sup_config);
  shard::SocketListener listener(supervisor, listen_config);
  // Order matters: start() registers the listen fd for child-side close
  // before the first fork, and the supervisor forks while this is still the
  // only thread.
  listener.start();
  supervisor.start();
  g_listener = &listener;
  std::signal(SIGINT, stop_listener);
  std::signal(SIGTERM, stop_listener);
  std::fprintf(stderr, "clpp-serve: listening on 127.0.0.1:%u with %zu shards\n",
               static_cast<unsigned>(listener.port()), sup_config.shards);
  listener.run();
  g_listener = nullptr;
  supervisor.drain();
  // stdout is unused in listen mode (requests ride the socket), so the
  // final supervisor stats go there as one bare clpp.shard_stats.v1
  // document — check_schemas.sh captures and validates it.
  const Json stats = supervisor.stats_json();
  std::printf("%s\n", stats.dump().c_str());
  return 0;
}

int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Closed-loop socket load generator against a --listen front end: each
/// client keeps one framed request in flight on its own keep-alive
/// connection. A connection that breaks mid-request (it never should — the
/// client talks to the supervisor, which survives shard crashes) is
/// reconnected and the unanswered request counts as `lost`; check_shard.sh
/// gates lost == 0 while killing a shard mid-run.
/// The verdict fields of a response — everything except per-request
/// bookkeeping (id, client) and per-serving telemetry (trace_id, timings,
/// coalesced/cached flags). Two servings of the same snippet must agree on
/// this projection bitwise, cached or not.
Json normalized_verdict(const Json& body) {
  static const char* kVolatile[] = {"id",       "client",   "trace_id",
                                    "queue_us", "batch_us", "infer_us",
                                    "coalesced", "cached"};
  Json out = Json::object();
  for (const auto& [key, value] : body.fields()) {
    bool volatile_key = false;
    for (const char* skip : kVolatile)
      if (key == skip) volatile_key = true;
    if (!volatile_key) out[key] = value;
  }
  return out;
}

int run_socket_loadgen(std::uint16_t port, std::size_t total,
                       std::size_t concurrency, std::uint32_t deadline_ms,
                       bool drift, const std::string& stats_out) {
  const auto& mix = drift ? drifted_mix() : demo_mix();
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> ok{0}, shed{0}, errors{0}, lost{0};
  std::atomic<std::size_t> cached{0}, mismatches{0};
  std::mutex verdict_mu;
  std::map<std::size_t, std::string> verdict_of;  // mix index -> projection
  std::mutex lat_mu;
  std::vector<double> latencies;
  latencies.reserve(total);
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  clients.reserve(concurrency);
  for (std::size_t c = 0; c < concurrency; ++c) {
    clients.emplace_back([&, c] {
      int fd = connect_loopback(port);
      for (;;) {
        const std::size_t r = next.fetch_add(1);
        if (r >= total) break;
        if (fd < 0) fd = connect_loopback(port);
        if (fd < 0) {
          ++lost;
          continue;
        }
        Json request = Json::object();
        request["id"] = static_cast<std::int64_t>(r + 1);
        request["code"] = mix[r % mix.size()];
        request["client"] = "loadgen-" + std::to_string(c);
        shard::Frame frame;
        frame.payload = request.dump();
        frame.deadline_ms = deadline_ms;
        const auto s0 = Clock::now();
        if (!shard::write_frame_fd(fd, frame)) {
          ++lost;
          ::close(fd);
          fd = -1;
          continue;
        }
        shard::Frame reply;
        std::string error;
        if (shard::read_frame_fd(fd, &reply, &error) != shard::ReadStatus::kFrame) {
          ++lost;
          ::close(fd);
          fd = -1;
          continue;
        }
        try {
          const Json body = Json::parse(reply.payload);
          if (body.contains("error")) {
            if (body.get_string("error", "") == "overloaded")
              ++shed;
            else
              ++errors;
          } else {
            ++ok;
            if (body.get_bool("cached", false)) ++cached;
            // Every serving of one snippet — fresh, coalesced, replayed
            // after a crash, or cached — must carry bitwise-identical
            // verdict fields; any drift is a correctness bug, not noise.
            const std::string verdict = normalized_verdict(body).dump();
            {
              std::lock_guard lock(verdict_mu);
              const auto [it, inserted] =
                  verdict_of.emplace(r % mix.size(), verdict);
              if (!inserted && it->second != verdict) ++mismatches;
            }
            const double us = std::chrono::duration<double, std::micro>(
                                  Clock::now() - s0)
                                  .count();
            std::lock_guard lock(lat_mu);
            latencies.push_back(us);
          }
        } catch (const std::exception&) {
          ++errors;
        }
      }
      if (fd >= 0) ::close(fd);
    });
  }
  for (std::thread& t : clients) t.join();
  const double seconds = std::chrono::duration<double>(Clock::now() - t0).count();

  Json report = Json::object();
  report["schema"] = "clpp.shard_loadgen.v1";
  report["requests"] = static_cast<std::int64_t>(total);
  report["ok"] = static_cast<std::int64_t>(ok.load());
  report["shed"] = static_cast<std::int64_t>(shed.load());
  report["errors"] = static_cast<std::int64_t>(errors.load());
  report["lost"] = static_cast<std::int64_t>(lost.load());
  report["cached_responses"] = static_cast<std::int64_t>(cached.load());
  report["verdict_mismatches"] = static_cast<std::int64_t>(mismatches.load());
  report["seconds"] = seconds;
  report["throughput_rps"] = static_cast<double>(total) / seconds;
  report["client"] =
      report_loadgen("socket", total, seconds, std::move(latencies));

  // One more connection for the supervisor-level stats block (per-shard
  // liveness, restarts, admission counters) so the artifact is self-
  // contained for check_shard.sh.
  const int fd = connect_loopback(port);
  if (fd >= 0) {
    Json request = Json::object();
    request["cmd"] = "stats";
    shard::Frame frame;
    frame.payload = request.dump();
    shard::Frame reply;
    std::string error;
    if (shard::write_frame_fd(fd, frame) &&
        shard::read_frame_fd(fd, &reply, &error) == shard::ReadStatus::kFrame) {
      try {
        report["server"] = Json::parse(reply.payload).at("stats");
      } catch (const std::exception&) {
      }
    }
    ::close(fd);
  }
  std::fprintf(stderr,
               "socket loadgen: %zu ok (%zu cached), %zu shed, %zu errors, "
               "%zu lost, %zu verdict mismatches\n",
               ok.load(), cached.load(), shed.load(), errors.load(),
               lost.load(), mismatches.load());
  if (!stats_out.empty()) write_stats_artifact(stats_out, report);
  return lost.load() == 0 && mismatches.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("clpp-serve",
                   "micro-batching advisor server: JSON-lines on stdin/stdout, "
                   "or a closed-loop load generator (--loadgen)");
  parser.add_string("model", "", "path of a saved advisor (clpp_cli train --out ...)");
  parser.add_flag("random-model", "use untrained demo weights instead of --model");
  parser.add_int("max-batch", static_cast<std::int64_t>(core::kDefaultInferBatch),
                 "largest micro-batch per inference pass");
  parser.add_int("max-delay-us", 2000, "longest a batch waits for company");
  parser.add_int("workers", 1, "worker threads (one advisor replica each)");
  parser.add_int("queue-capacity", 1024, "bounded request-queue size");
  parser.add_flag("reject", "shed load when the queue is full instead of blocking");
  parser.add_flag("no-analysis", "skip dependence-analyzer clause naming");
  parser.add_flag("no-compar", "skip the ComPar comparison column");
  parser.add_int("cache-cap", -1,
                 "result-cache entries (front end + per shard; 0 disables, "
                 "-1 = CLPP_CACHE_CAP env or off)");
  parser.add_int("loadgen", 0, "run a load generator for N requests instead of stdin");
  parser.add_int("concurrency", 32, "closed-loop clients for --loadgen");
  parser.add_flag("sequential", "loadgen baseline: single-request advise() loop");
  parser.add_flag("drift",
                  "loadgen drives an out-of-distribution snippet mix "
                  "(exercises the insight drift monitor)");
  parser.add_string("stats-out", "",
                    "write the --loadgen report (client+server percentiles) "
                    "as a JSON artifact");
  parser.add_flag("listen",
                  "run the sharded TCP front end (loopback, framed JSON) "
                  "instead of stdin/stdout");
  parser.add_int("port", 0, "--listen port on 127.0.0.1 (0 = ephemeral)");
  parser.add_string("port-file", "",
                    "--listen writes its bound port here (for scripts)");
  parser.add_int("shards", 2, "--listen worker processes to fork");
  parser.add_double("quota-rps", 0.0,
                    "per-client admission quota in requests/s (0 = off)");
  parser.add_double("quota-burst", 16.0, "per-client token-bucket burst");
  parser.add_int("max-inflight", 1024,
                 "--listen global accepted-but-unanswered ceiling");
  parser.add_int("deadline-ms", 0,
                 "--listen: default request deadline; --connect: deadline "
                 "sent in every frame header (0 = none)");
  parser.add_string("flight-dir", "",
                    "--listen: directory for per-shard flight-recorder dumps");
  parser.add_int("connect", 0,
                 "drive the --loadgen over the socket protocol against a "
                 "--listen front end on this port");

  try {
    if (!parser.parse(argc, argv)) return 0;

    serve::ServeConfig config;
    config.max_batch = static_cast<std::size_t>(parser.get_int("max-batch"));
    config.max_delay_us = static_cast<std::uint64_t>(parser.get_int("max-delay-us"));
    config.workers = static_cast<std::size_t>(parser.get_int("workers"));
    config.queue_capacity = static_cast<std::size_t>(parser.get_int("queue-capacity"));
    config.overflow = parser.get_flag("reject") ? serve::OverflowPolicy::kReject
                                                : serve::OverflowPolicy::kBlock;
    config.options.with_analysis = !parser.get_flag("no-analysis");
    config.options.with_compar = !parser.get_flag("no-compar");
    // One knob, two cache sites: the same capacity configures the in-process
    // (per-shard) result cache and, in --listen mode, the supervisor's
    // cross-connection front-end cache.
    cache::CacheConfig cache_config = cache::CacheConfig::from_env(0);
    const std::int64_t cache_cap = parser.get_int("cache-cap");
    if (cache_cap >= 0)
      cache_config.max_entries = static_cast<std::size_t>(cache_cap);
    config.cache = cache_config;
    config.validate();

    const auto total = static_cast<std::size_t>(parser.get_int("loadgen"));
    const auto connect_port =
        static_cast<std::uint16_t>(parser.get_int("connect"));
    if (connect_port != 0) {
      // Socket loadgen needs no local model: the --listen process serves.
      if (total == 0)
        throw InvalidArgument("--connect needs --loadgen N");
      return run_socket_loadgen(
          connect_port, total,
          static_cast<std::size_t>(parser.get_int("concurrency")),
          static_cast<std::uint32_t>(parser.get_int("deadline-ms")),
          parser.get_flag("drift"), parser.get_string("stats-out"));
    }

    const std::string model = parser.get_string("model");
    if (model.empty() && !parser.get_flag("random-model"))
      throw InvalidArgument("pass --model <path> or --random-model");
    const core::ParallelAdvisor advisor =
        model.empty() ? random_advisor() : core::ParallelAdvisor::load(model);

    if (parser.get_flag("listen")) {
      shard::SupervisorConfig sup;
      sup.shards = static_cast<std::size_t>(parser.get_int("shards"));
      sup.serve = config;
      sup.admission.quota_rps = parser.get_double("quota-rps");
      sup.admission.quota_burst = parser.get_double("quota-burst");
      sup.admission.max_inflight =
          static_cast<std::size_t>(parser.get_int("max-inflight"));
      sup.admission.default_deadline_ms =
          static_cast<std::uint32_t>(parser.get_int("deadline-ms"));
      sup.cache = cache_config;
      sup.flight_dir = parser.get_string("flight-dir");
      shard::ListenerConfig listen;
      listen.port = static_cast<std::uint16_t>(parser.get_int("port"));
      listen.port_file = parser.get_string("port-file");
      return run_listen(advisor, std::move(sup), std::move(listen));
    }

    if (total > 0) {
      return run_loadgen(advisor, config, total,
                         static_cast<std::size_t>(parser.get_int("concurrency")),
                         parser.get_flag("sequential"), parser.get_flag("drift"),
                         parser.get_string("stats-out"));
    }
    serve::InferenceServer server(advisor, config);
    return run_jsonl(server);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clpp-serve: %s\n", e.what());
    return 1;
  }
}
