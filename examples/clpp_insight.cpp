// clpp-insight: model-quality report CLI (clpp::insight).
//
// Two modes, both rendering the calibration / disagreement / drift triple
// the serving stack tracks online (DESIGN.md "Model-quality observability"):
//
//   clpp-insight --stats LG.json [MORE.json ...]
//       Summarizes the "quality" block of clpp-serve --loadgen --stats-out
//       artifacts: samples, directive ECE, drift score, disagreement rate
//       per artifact. This is the post-hoc view of a loadgen run.
//
//   clpp-insight --realworld corpus/realworld [--random-model | --model P |
//                                             --train]
//       Offline evaluation: runs the advisor over every .c kernel of the
//       directory, labels each verdict with the dependence engine's exact
//       proof, and reports per-file verdicts plus the aggregate quality
//       snapshot. The drift reference is the advisor's checkpointed
//       training fingerprint when it has one (--train, v2 --model files),
//       else the fingerprint of the default generated corpus — so the
//       drift score reads "how far are these kernels from the synthetic
//       training distribution".
//
// `--json` emits a `clpp.insight_report.v1` document instead of text.
// Exit: 0 on success, 2 on usage/IO failure.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "codegen/generator.h"
#include "core/advisor.h"
#include "insight/insight.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/json.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace {

using namespace clpp;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// (display name, source) for every .c file of `dir`, sorted by name.
std::vector<std::pair<std::string, std::string>> load_kernels(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".c") continue;
    files.emplace_back(entry.path().filename().string(),
                       slurp(entry.path().string()));
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) throw InvalidArgument("no .c files under " + dir);
  return files;
}

/// Untrained advisor whose vocabulary covers the evaluation files, so the
/// report runs without a training pass (probabilities are meaningless but
/// the calibration/drift plumbing is exercised end to end).
core::ParallelAdvisor random_advisor(
    const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<std::vector<std::string>> documents;
  for (const auto& [name, code] : files)
    documents.push_back(tokenize::tokenize(code, tokenize::Representation::kText));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::build(documents);

  core::PipelineConfig defaults;
  core::PragFormerConfig config;
  config.encoder = defaults.encoder;
  config.encoder.vocab_size = vocab.size();
  Rng rng(2023);
  auto directive = std::make_unique<core::PragFormer>(config, rng);
  auto private_model = std::make_unique<core::PragFormer>(config, rng);
  auto reduction = std::make_unique<core::PragFormer>(config, rng);
  auto schedule = std::make_unique<core::PragFormer>(config, rng);
  core::ParallelAdvisor advisor(std::move(directive), std::move(private_model),
                                std::move(reduction), std::move(vocab),
                                tokenize::Representation::kText, defaults.max_len);
  advisor.set_schedule_model(std::move(schedule));
  return advisor;
}

/// Training-corpus fingerprint for advisors that lack one (random weights,
/// v1 model files): the default generated corpus at the given size/seed.
insight::Fingerprint corpus_fingerprint(std::size_t size, std::uint64_t seed) {
  codegen::GeneratorConfig config;
  config.size = size;
  config.seed = seed;
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  insight::FingerprintBuilder builder;
  for (const corpus::Record& record : corpus.records())
    builder.observe(record.code);
  return builder.build();
}

int report_realworld(const std::string& dir, core::ParallelAdvisor advisor,
                     std::size_t size, std::uint64_t seed, bool as_json) {
  const auto files = load_kernels(dir);

  insight::InsightTracker tracker;
  tracker.set_reference(advisor.fingerprint().empty()
                            ? corpus_fingerprint(size, seed)
                            : advisor.fingerprint());

  core::AdviseOptions options;
  options.with_analysis = true;
  options.with_compar = false;

  Json rows = Json::array();
  for (const auto& [name, code] : files) {
    const core::Advice advice = advisor.advise(code, options);
    insight::VerdictSample sample;
    sample.p_directive = advice.p_directive;
    sample.p_private = advice.p_private;
    sample.p_reduction = advice.p_reduction;
    sample.p_dynamic = advice.p_dynamic;
    sample.positive = advice.needs_directive;
    sample.clauses_scored = advice.needs_directive;
    sample.proof = advice.proof;
    const insight::DisagreementKind kind = tracker.observe(code, sample);

    Json row = Json::object();
    row["file"] = name;
    row["p_directive"] = static_cast<double>(advice.p_directive);
    row["model"] = advice.needs_directive ? "parallel" : "serial";
    row["proof"] = insight::proof_verdict_name(advice.proof);
    row["disagreement"] = kind != insight::DisagreementKind::kNone;
    if (!as_json)
      std::printf("%-18s p(directive) %.3f  model %-8s proof %-12s%s\n",
                  name.c_str(), static_cast<double>(advice.p_directive),
                  advice.needs_directive ? "parallel" : "serial",
                  insight::proof_verdict_name(advice.proof),
                  kind != insight::DisagreementKind::kNone
                      ? "  << disagreement"
                      : "");
    rows.push_back(std::move(row));
  }

  const Json quality = tracker.quality_json();
  if (as_json) {
    Json doc = Json::object();
    doc["schema"] = "clpp.insight_report.v1";
    doc["source"] = dir;
    doc["mode"] = "realworld";
    doc["files"] = std::move(rows);
    doc["quality"] = quality;
    std::printf("%s\n", doc.dump().c_str());
  } else {
    std::printf(
        "%zu file(s): directive ECE %.3f, drift score %.3f, "
        "disagreements %llu/%llu\n",
        files.size(), tracker.directive_ece(), tracker.drift_score(),
        static_cast<unsigned long long>(tracker.disagreements()),
        static_cast<unsigned long long>(
            quality.at("disagreement").at("checked").as_int()));
  }
  return 0;
}

int report_stats(const std::vector<std::string>& paths, bool as_json) {
  Json rows = Json::array();
  for (const std::string& path : paths) {
    const Json artifact = Json::parse(slurp(path));
    if (!artifact.contains("quality"))
      throw InvalidArgument(path +
                            " has no \"quality\" block (sequential loadgen "
                            "artifacts carry none)");
    const Json& q = artifact.at("quality");
    const Json& directive = q.at("tasks").at("directive");
    const Json& drift = q.at("drift");
    const Json& disagreement = q.at("disagreement");

    Json row = Json::object();
    row["file"] = path;
    row["samples"] = q.at("samples").as_int();
    row["ece"] = directive.at("ece").as_double();
    row["mean_confidence"] = directive.at("mean_confidence").as_double();
    row["drift_armed"] = drift.get_bool("armed", false);
    row["drift_score"] = drift.at("score").as_double();
    row["disagreement_rate"] = disagreement.at("rate").as_double();
    if (artifact.contains("throughput_rps"))
      row["throughput_rps"] = artifact.at("throughput_rps").as_double();
    if (!as_json)
      std::printf(
          "%s: %lld samples, ECE %.3f, drift %.3f%s, disagreement rate "
          "%.3f\n",
          path.c_str(), static_cast<long long>(q.at("samples").as_int()),
          directive.at("ece").as_double(), drift.at("score").as_double(),
          drift.get_bool("armed", false) ? "" : " (unarmed)",
          disagreement.at("rate").as_double());
    rows.push_back(std::move(row));
  }
  if (as_json) {
    Json doc = Json::object();
    doc["schema"] = "clpp.insight_report.v1";
    doc["source"] = "loadgen";
    doc["mode"] = "stats";
    doc["artifacts"] = std::move(rows);
    std::printf("%s\n", doc.dump().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("clpp-insight",
                   "model-quality report: calibration, drift, and "
                   "analyzer-vs-model disagreement");
  parser.add_flag("stats",
                  "summarize the quality block of loadgen artifacts "
                  "(positional args)");
  parser.add_string("realworld", "",
                    "evaluate the advisor over every .c kernel of DIR");
  parser.add_flag("random-model", "use untrained demo weights");
  parser.add_string("model", "", "path of a saved advisor");
  parser.add_flag("train", "train a small advisor first");
  parser.add_int("size", 200, "generated-corpus size (--train, drift reference)");
  parser.add_int("seed", 2023, "corpus seed (--train, drift reference)");
  parser.add_flag("json", "emit a clpp.insight_report.v1 document");

  try {
    if (!parser.parse(argc, argv)) return 0;
    const bool as_json = parser.get_flag("json");

    if (parser.get_flag("stats")) {
      if (parser.positional().empty())
        throw InvalidArgument("pass loadgen artifacts after --stats");
      return report_stats(parser.positional(), as_json);
    }

    const std::string dir = parser.get_string("realworld");
    if (dir.empty())
      throw InvalidArgument("pass --stats <artifacts> or --realworld <dir>");
    const auto size = static_cast<std::size_t>(parser.get_int("size"));
    const auto seed = static_cast<std::uint64_t>(parser.get_int("seed"));

    const std::string model = parser.get_string("model");
    if (!model.empty())
      return report_realworld(dir, core::ParallelAdvisor::load(model), size,
                              seed, as_json);
    if (parser.get_flag("train")) {
      core::PipelineConfig config;
      config.generator.size = size;
      config.generator.seed = seed;
      config.train.epochs = 3;
      config.mlm_pretrain = false;
      std::fprintf(stderr, "clpp-insight: training advisor on %zu snippets...\n",
                   size);
      return report_realworld(dir, core::ParallelAdvisor::train(config), size,
                              seed, as_json);
    }
    if (!parser.get_flag("random-model"))
      throw InvalidArgument("pass --random-model, --model <path>, or --train");
    return report_realworld(dir, random_advisor(load_kernels(dir)), size, seed,
                            as_json);
  } catch (const std::exception& e) {
    return report_cli_error("clpp-insight", e);
  }
}
