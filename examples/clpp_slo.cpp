// clpp-slo: declarative SLO gate over serve loadgen artifacts.
//
//   clpp-slo --budget slo/budgets.json --stats SLO_serve.stats.json
//   clpp-slo --budget slo/budgets.json --stats SLO_serve.stats.json
//            --obs-stats SLO_serve_obs.stats.json
//
// `--stats` is a clpp.serve_loadgen.v1 artifact (clpp-serve --loadgen
// --stats-out); `--budget` is a clpp.slo_budget.v1 document declaring
// per-histogram percentile ceilings (p50_max/p95_max/p99_max/mean_max/
// max_max), an error-rate ceiling, and a throughput floor. With
// `--obs-stats` (the same loadgen re-run under CLPP_OBS=1), the gate
// additionally checks that full instrumentation costs at most
// `obs_overhead.max_fraction` of the uninstrumented throughput.
//
// A "quality" budget block gates the artifact's model-quality snapshot
// (directive ECE, drift score, analyzer-disagreement rate, each only once
// `min_samples` observations back it); `--quality-warn-only` downgrades
// those violations to WARN so new budgets can land without blocking CI.
//
// A `--stats` artifact whose schema is clpp.shard_loadgen.v1 (clpp-serve
// --connect --stats-out, the socket loadgen against a sharded --listen
// front end) is instead evaluated against the budget's "shard" block:
// lost-request ceiling (the fault-tolerance headline — crash recovery must
// answer every accepted request), client-side latency percentile ceilings,
// error-rate ceiling, throughput floor, and an unavailable-completions
// ceiling from the embedded supervisor stats. scripts/check_shard.sh wires
// this in CI with a shard-crashing fault plan active.
//
// Prints one PASS/FAIL line per check; `--json` emits a structured verdict
// document on stdout instead. Exit code: 0 all checks pass, 1 at least one
// violation, 2 usage/IO error.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/error.h"
#include "support/json.h"

namespace {

using namespace clpp;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Check {
  std::string name;
  double value = 0.0;
  double bound = 0.0;
  bool ok = false;
  /// "<=" for ceilings, ">=" for floors.
  const char* op = "<=";
  /// Warn-only: a violation prints WARN and does not fail the gate
  /// (--quality-warn-only, for landing new budgets without blocking CI).
  bool warn = false;
};

/// Percentile-ceiling budget keys understood inside a histogram budget
/// object, paired with the stats field they constrain.
constexpr struct {
  const char* budget_key;
  const char* stats_key;
} kHistCeilings[] = {
    {"p50_max", "p50"},   {"p95_max", "p95"}, {"p99_max", "p99"},
    {"mean_max", "mean"}, {"max_max", "max"},
};

/// Appends one check per `*_max` ceiling the budget declares for a
/// histogram block (skips silently when the stats artifact lacks the
/// histogram — an older artifact should not hard-fail a newer budget).
void check_histogram(const std::string& label, const Json& budget,
                     const Json& stats, std::vector<Check>& out) {
  if (!stats.is_null() && stats.contains("count") &&
      stats.at("count").as_int() == 0)
    return;  // nothing recorded: percentiles are meaningless zeros
  for (const auto& ceiling : kHistCeilings) {
    if (!budget.contains(ceiling.budget_key)) continue;
    Check check;
    check.name = label + "." + ceiling.stats_key;
    check.bound = budget.at(ceiling.budget_key).as_double();
    if (stats.is_null() || !stats.contains(ceiling.stats_key)) {
      std::fprintf(stderr, "clpp-slo: stats artifact lacks %s, skipping\n",
                   check.name.c_str());
      continue;
    }
    check.value = stats.at(ceiling.stats_key).as_double();
    check.ok = check.value <= check.bound;
    out.push_back(std::move(check));
  }
}

const Json* maybe_at(const Json& obj, const std::string& key) {
  return obj.contains(key) ? &obj.at(key) : nullptr;
}

/// Model-quality budgets ("quality" block) over the loadgen artifact's
/// insight snapshot: directive-head ECE ceiling, drift-score ceiling, and
/// analyzer-disagreement-rate ceiling. Each check only fires once the
/// snapshot has at least `min_samples` observations backing that signal —
/// a 3-request smoke run should not trip a calibration budget.
void check_quality(const Json& budget, const Json& stats, bool warn_only,
                   std::vector<Check>& out) {
  const Json* quality = maybe_at(stats, "quality");
  if (quality == nullptr) {
    std::fprintf(stderr,
                 "clpp-slo: stats artifact has no \"quality\" block, "
                 "skipping quality budgets\n");
    return;
  }
  const double min_samples =
      budget.contains("min_samples") ? budget.at("min_samples").as_double() : 0;
  auto push = [&](std::string name, double value, double bound) {
    Check check;
    check.name = std::move(name);
    check.value = value;
    check.bound = bound;
    check.ok = value <= bound;
    check.warn = warn_only;
    out.push_back(std::move(check));
  };

  if (budget.contains("ece_max")) {
    const Json& directive = quality->at("tasks").at("directive");
    if (static_cast<double>(directive.at("labeled").as_int()) >= min_samples)
      push("quality.directive_ece", directive.at("ece").as_double(),
           budget.at("ece_max").as_double());
  }
  if (budget.contains("drift_max")) {
    const Json& drift = quality->at("drift");
    if (drift.get_bool("armed", false) &&
        static_cast<double>(drift.at("observed").as_int()) >= min_samples)
      push("quality.drift_score", drift.at("score").as_double(),
           budget.at("drift_max").as_double());
  }
  if (budget.contains("disagreement_rate_max")) {
    const Json& disagreement = quality->at("disagreement");
    if (static_cast<double>(disagreement.at("checked").as_int()) >= min_samples)
      push("quality.disagreement_rate", disagreement.at("rate").as_double(),
           budget.at("disagreement_rate_max").as_double());
  }
}

/// Budgets for the sharded serving front end over a clpp.shard_loadgen.v1
/// artifact (the socket loadgen's report, with the supervisor's stats block
/// embedded under "server"). The shape differs from the in-process loadgen
/// — counts are client-observed outcomes (ok/shed/errors/lost), latency is
/// client-side only — so it gets its own evaluator rather than bending
/// check_histogram around it.
std::vector<Check> evaluate_shard(const Json& budget, const Json& stats) {
  std::vector<Check> checks;
  const Json* shard_budget = maybe_at(budget, "shard");
  if (shard_budget == nullptr) {
    std::fprintf(stderr,
                 "clpp-slo: budget has no \"shard\" block, nothing to check "
                 "for a clpp.shard_loadgen.v1 artifact\n");
    return checks;
  }
  auto ceiling = [&](std::string name, double value, double bound) {
    Check check;
    check.name = std::move(name);
    check.value = value;
    check.bound = bound;
    check.ok = value <= bound;
    checks.push_back(std::move(check));
  };

  // The headline: a crash of one shard loses no accepted request. lost
  // counts client requests that went unanswered (broken connection), which
  // only happens when the *front end* — not a shard — died.
  if (shard_budget->contains("lost_max"))
    ceiling("shard.lost", static_cast<double>(stats.at("lost").as_int()),
            shard_budget->at("lost_max").as_double());
  if (shard_budget->contains("error_rate_max")) {
    const double requests = static_cast<double>(stats.at("requests").as_int());
    const double errors = static_cast<double>(stats.at("errors").as_int());
    ceiling("shard.error_rate", requests > 0 ? errors / requests : 0.0,
            shard_budget->at("error_rate_max").as_double());
  }
  if (const Json* latency_budget = maybe_at(*shard_budget, "client_latency_us")) {
    const Json* client = maybe_at(stats, "client");
    constexpr struct {
      const char* budget_key;
      const char* stats_key;
    } kClientCeilings[] = {
        {"p50_max", "p50_us"}, {"p95_max", "p95_us"}, {"p99_max", "p99_us"}};
    for (const auto& c : kClientCeilings) {
      if (!latency_budget->contains(c.budget_key)) continue;
      if (client == nullptr || !client->contains(c.stats_key)) {
        std::fprintf(stderr, "clpp-slo: shard artifact lacks client.%s, "
                             "skipping\n", c.stats_key);
        continue;
      }
      ceiling(std::string("shard.latency_us.") + c.stats_key,
              client->at(c.stats_key).as_double(),
              latency_budget->at(c.budget_key).as_double());
    }
  }
  if (shard_budget->contains("min_throughput_rps")) {
    Check check;
    check.name = "shard.throughput_rps";
    check.op = ">=";
    check.value = stats.at("throughput_rps").as_double();
    check.bound = shard_budget->at("min_throughput_rps").as_double();
    check.ok = check.value >= check.bound;
    checks.push_back(std::move(check));
  }
  // Supervisor-side follow-up: even under crash recovery, no accepted
  // request may end in an "unavailable" completion (that would mean every
  // shard was down or retired with work still queued).
  if (shard_budget->contains("unavailable_max")) {
    const Json* server = maybe_at(stats, "server");
    if (server != nullptr && server->contains("unavailable"))
      ceiling("shard.unavailable",
              static_cast<double>(server->at("unavailable").as_int()),
              shard_budget->at("unavailable_max").as_double());
    else
      std::fprintf(stderr, "clpp-slo: shard artifact has no server stats "
                           "block, skipping shard.unavailable\n");
  }
  return checks;
}

/// Budgets for the shard-scaling bench over a clpp.shard_scaling.v1
/// artifact ("scaling" block): per-core scaling floor on the distinct mix
/// (judged at min(shards, ncores) — the bench cannot scale past the cores
/// the runner has), cache-effectiveness floors (duplicate-mix speedup and
/// hit rate), per-point client p99 ceilings, a lost-request ceiling, and
/// the cached-vs-fresh verdict-identity requirement.
std::vector<Check> evaluate_scaling(const Json& budget, const Json& stats) {
  std::vector<Check> checks;
  const Json* scaling_budget = maybe_at(budget, "scaling");
  if (scaling_budget == nullptr) {
    std::fprintf(stderr,
                 "clpp-slo: budget has no \"scaling\" block, nothing to check "
                 "for a clpp.shard_scaling.v1 artifact\n");
    return checks;
  }
  auto push = [&](std::string name, double value, double bound, bool floor) {
    Check check;
    check.name = std::move(name);
    check.value = value;
    check.bound = bound;
    check.op = floor ? ">=" : "<=";
    check.ok = floor ? value >= bound : value <= bound;
    checks.push_back(std::move(check));
  };

  const Json& scaling = stats.at("scaling");
  const Json& cache_win = stats.at("cache_win");
  if (scaling_budget->contains("min_per_core_speedup"))
    push("scaling.per_core_speedup",
         scaling.at("per_core_speedup").as_double(),
         scaling_budget->at("min_per_core_speedup").as_double(), true);
  if (scaling_budget->contains("min_cache_speedup"))
    push("scaling.cache_speedup", cache_win.at("speedup").as_double(),
         scaling_budget->at("min_cache_speedup").as_double(), true);
  if (scaling_budget->contains("min_hit_rate"))
    push("scaling.cache_hit_rate", cache_win.at("hit_rate").as_double(),
         scaling_budget->at("min_hit_rate").as_double(), true);
  if (scaling_budget->contains("lost_max"))
    push("scaling.lost", static_cast<double>(stats.at("lost").as_int()),
         scaling_budget->at("lost_max").as_double(), false);
  if (scaling_budget->get_bool("require_identical_verdicts", false))
    push("scaling.verdict_mismatches",
         static_cast<double>(stats.at("verdict_mismatches").as_int()), 0.0,
         false);
  if (const Json* latency_budget =
          maybe_at(*scaling_budget, "client_latency_us")) {
    if (latency_budget->contains("p99_max")) {
      const double bound = latency_budget->at("p99_max").as_double();
      const Json& points = stats.at("points");
      for (std::size_t i = 0; i < points.size(); ++i) {
        const Json& point = points.at(i);
        std::ostringstream name;
        name << "scaling.p99[shards=" << point.at("shards").as_int()
             << ",dup=" << static_cast<int>(point.at("dup_rate").as_double() *
                                            100.0)
             << ",cache=" << (point.at("cache_cap").as_int() > 0 ? "on" : "off")
             << "]";
        push(name.str(), point.at("latency_us").at("p99").as_double(), bound,
             false);
      }
    }
  }
  return checks;
}

std::vector<Check> evaluate(const Json& budget, const Json& stats,
                            const Json* obs_stats, bool quality_warn_only) {
  std::vector<Check> checks;
  const Json* server = maybe_at(stats, "server");
  if (server == nullptr)
    throw InvalidArgument(
        "stats artifact has no \"server\" block (was the loadgen run "
        "--sequential?)");

  if (const Json* serve_budget = maybe_at(budget, "serve")) {
    if (const Json* b = maybe_at(*serve_budget, "latency_us"))
      check_histogram("serve.latency_us", *b, server->at("latency_us"), checks);
    if (const Json* b = maybe_at(*serve_budget, "queue_wait_us"))
      check_histogram("serve.queue_wait_us", *b, server->at("queue_wait_us"),
                      checks);
    if (serve_budget->contains("error_rate_max")) {
      const double submitted =
          static_cast<double>(server->at("submitted").as_int());
      const double failed = static_cast<double>(server->at("failed").as_int());
      Check check;
      check.name = "serve.error_rate";
      check.value = submitted > 0 ? failed / submitted : 0.0;
      check.bound = serve_budget->at("error_rate_max").as_double();
      check.ok = check.value <= check.bound;
      checks.push_back(std::move(check));
    }
    if (serve_budget->contains("min_throughput_rps")) {
      Check check;
      check.name = "serve.throughput_rps";
      check.op = ">=";
      check.value = stats.at("throughput_rps").as_double();
      check.bound = serve_budget->at("min_throughput_rps").as_double();
      check.ok = check.value >= check.bound;
      checks.push_back(std::move(check));
    }
  }

  if (const Json* tasks_budget = maybe_at(budget, "tasks")) {
    const Json* tasks = maybe_at(*server, "tasks");
    for (const auto& [task, ceilings] : tasks_budget->fields()) {
      const Json* task_stats = tasks ? maybe_at(*tasks, task) : nullptr;
      check_histogram("tasks." + task, ceilings,
                      task_stats ? *task_stats : Json(), checks);
    }
  }

  if (obs_stats != nullptr) {
    const Json* overhead_budget = maybe_at(budget, "obs_overhead");
    if (overhead_budget != nullptr &&
        overhead_budget->contains("max_fraction")) {
      const double off_rps = stats.at("throughput_rps").as_double();
      const double on_rps = obs_stats->at("throughput_rps").as_double();
      Check check;
      check.name = "obs_overhead.fraction";
      // Overhead is the throughput lost with CLPP_OBS=1; instrumentation
      // coming out *faster* (scheduling noise) counts as zero overhead.
      check.value = off_rps > 0 ? std::max(0.0, (off_rps - on_rps) / off_rps)
                                : 0.0;
      check.bound = overhead_budget->at("max_fraction").as_double();
      check.ok = check.value <= check.bound;
      checks.push_back(std::move(check));
    }
  }

  if (const Json* quality_budget = maybe_at(budget, "quality"))
    check_quality(*quality_budget, stats, quality_warn_only, checks);
  return checks;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("clpp-slo",
                   "evaluate serve loadgen artifacts against declarative "
                   "latency/error/overhead budgets");
  parser.add_string("budget", "slo/budgets.json",
                    "clpp.slo_budget.v1 budget document");
  parser.add_string("stats", "",
                    "clpp.serve_loadgen.v1 artifact (clpp-serve --loadgen "
                    "--stats-out)");
  parser.add_string("obs-stats", "",
                    "same artifact re-run under CLPP_OBS=1, enabling the "
                    "instrumentation-overhead check");
  parser.add_flag("json", "emit a structured verdict document on stdout");
  parser.add_flag("quality-warn-only",
                  "model-quality budget violations print WARN instead of "
                  "failing the gate");

  try {
    if (!parser.parse(argc, argv)) return 0;
    const std::string stats_path = parser.get_string("stats");
    if (stats_path.empty()) throw InvalidArgument("pass --stats <artifact>");
    const Json budget = Json::parse(slurp(parser.get_string("budget")));
    const Json stats = Json::parse(slurp(stats_path));
    Json obs_stats;
    const std::string obs_path = parser.get_string("obs-stats");
    if (!obs_path.empty()) obs_stats = Json::parse(slurp(obs_path));

    const std::string schema = stats.get_string("schema", "");
    const std::vector<Check> checks =
        schema == "clpp.shard_scaling.v1" ? evaluate_scaling(budget, stats)
        : schema == "clpp.shard_loadgen.v1"
            ? evaluate_shard(budget, stats)
            : evaluate(budget, stats, obs_path.empty() ? nullptr : &obs_stats,
                       parser.get_flag("quality-warn-only"));

    std::size_t failures = 0;
    std::size_t warnings = 0;
    for (const Check& check : checks) {
      if (check.ok) continue;
      if (check.warn)
        ++warnings;
      else
        ++failures;
    }

    if (parser.get_flag("json")) {
      Json verdict = Json::object();
      verdict["schema"] = "clpp.slo_verdict.v1";
      verdict["checks"] = Json::array();
      for (const Check& check : checks) {
        Json entry = Json::object();
        entry["name"] = check.name;
        entry["value"] = check.value;
        entry["bound"] = check.bound;
        entry["op"] = check.op;
        entry["ok"] = check.ok;
        entry["warn"] = check.warn;
        verdict["checks"].push_back(std::move(entry));
      }
      verdict["failures"] = static_cast<std::int64_t>(failures);
      verdict["warnings"] = static_cast<std::int64_t>(warnings);
      verdict["ok"] = failures == 0;
      std::printf("%s\n", verdict.dump().c_str());
    } else {
      for (const Check& check : checks)
        std::printf("%s %s: %.3f %s %.3f\n",
                    check.ok ? "PASS" : (check.warn ? "WARN" : "FAIL"),
                    check.name.c_str(), check.value, check.op, check.bound);
      std::printf("%zu/%zu checks passed (%zu warn-only)\n",
                  checks.size() - failures - warnings, checks.size(), warnings);
    }
    return failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    return report_cli_error("clpp-slo", e);
  }
}
