// clpp-lint: static OpenMP race detector and directive linter.
//
// Lints C files end-to-end: every `#pragma omp parallel for`/`omp for` is
// paired with its loop, the dependence analysis re-runs, and disagreements
// between what the directive claims and what the analysis proves become
// compiler-style diagnostics with fix-its (text or SARIF-lite JSON).
//
//   clpp-lint file.c            lint files, text diagnostics
//   clpp-lint --json file.c     same, one JSON document per file
//   clpp-lint --explain file.c  dependence-proof traces instead of lint:
//                               every for loop, every tested access pair,
//                               and the test (ziv/strong-siv/gcd/banerjee/
//                               text-pinned) that decided it
//   clpp-lint --audit           lint a generated corpus' own labels
//                               (--buggy seeds ground-truth defects and
//                               reports the catch/miss confusion)
//   clpp-lint --audit-model     train a small transformer advisor, lint its
//                               predicted directives (model-vs-linter)
//
// Exit status: 0 = no errors, 1 = at least one error finding, 2 = failure.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/generator.h"
#include "core/advisor.h"
#include "frontend/parser.h"
#include "lint/audit.h"
#include "lint/explain.h"
#include "lint/linter.h"
#include "support/cli.h"

namespace {

/// --explain: proof traces for every loop of every input file. Exit 0 when
/// everything parsed, 2 on a parse/IO failure.
int explain_files(const std::vector<std::string>& files,
                  const clpp::lint::Linter& linter, bool as_json) {
  int status = 0;
  for (const std::string& path : files) {
    std::string source;
    if (path == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      source = buffer.str();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "clpp-lint: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }
    const std::string display = path == "-" ? "<stdin>" : path;
    try {
      const clpp::frontend::NodePtr unit = clpp::frontend::parse_snippet(source);
      const std::vector<clpp::lint::LoopExplanation> loops =
          clpp::lint::explain_unit(*unit, linter.options().analyzer);
      if (as_json)
        std::cout << clpp::lint::explanations_json(display, loops).dump() << "\n";
      else
        std::cout << clpp::lint::render_explanations(display, loops);
    } catch (const clpp::ParseError& e) {
      std::cerr << "clpp-lint: " << display << ": " << e.what() << "\n";
      status = 2;
    }
  }
  return status;
}

int lint_files(const std::vector<std::string>& files, const clpp::lint::Linter& linter,
               bool as_json, bool as_sarif) {
  bool any_errors = false;
  std::vector<clpp::lint::LintReport> reports;
  for (const std::string& path : files) {
    std::string source;
    if (path == "-") {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      source = buffer.str();
    } else {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "clpp-lint: cannot open '" << path << "'\n";
        return 2;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }
    const clpp::lint::LintReport report =
        linter.lint_source(source, path == "-" ? "<stdin>" : path);
    if (as_sarif)
      reports.push_back(report);
    else if (as_json)
      std::cout << report.to_json().dump() << "\n";
    else
      std::cout << report.to_text();
    any_errors = any_errors || report.errors() > 0;
  }
  if (as_sarif)
    std::cout << clpp::lint::sarif_document(reports).dump() << "\n";
  return any_errors ? 1 : 0;
}

int print_audit(const clpp::lint::AuditReport& report, bool as_json) {
  if (as_json)
    std::cout << report.to_json().dump() << "\n";
  else
    std::cout << report.to_text();
  return report.with_errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  clpp::ArgParser args("clpp-lint",
                       "Static OpenMP race detector and directive linter.");
  args.add_flag("json", "emit schema-versioned JSON instead of text diagnostics");
  args.add_flag("sarif", "emit one SARIF 2.1.0 document covering all input files");
  args.add_flag("no-fixits", "suppress corrected-pragma fix-its");
  args.add_flag("explain",
                "render per-loop dependence proof traces (which test decided "
                "each access pair) instead of lint diagnostics");
  args.add_int("trip-threshold", 8, "small-trip-count warning threshold");
  args.add_flag("audit", "lint a generated corpus' own directive labels");
  args.add_flag("no-simd", "audit: leave the omp simd snippet families out");
  args.add_flag("audit-model",
                "train a small advisor and lint its predicted directives");
  args.add_int("size", 400, "audit corpus size");
  args.add_int("seed", 2023, "audit corpus seed");
  args.add_double("buggy", 0.15, "audit: seeded directive-defect rate");
  args.add_double("noise", 0.0, "audit: label-flip noise rate");

  try {
    if (!args.parse(argc, argv)) return 0;

    clpp::lint::LintOptions options;
    options.small_trip_threshold = args.get_int("trip-threshold");
    options.emit_fixits = !args.get_flag("no-fixits");
    const clpp::lint::Linter linter(options);
    const bool as_json = args.get_flag("json");

    if (args.get_flag("audit") || args.get_flag("audit-model")) {
      clpp::codegen::GeneratorConfig generator;
      generator.size = static_cast<std::size_t>(args.get_int("size"));
      generator.seed = static_cast<std::uint64_t>(args.get_int("seed"));
      generator.label_noise = args.get_double("noise");
      generator.buggy_directive_rate = args.get_double("buggy");
      generator.simd_families = !args.get_flag("no-simd");
      const clpp::corpus::Corpus corpus = clpp::codegen::generate_corpus(generator);

      if (args.get_flag("audit-model")) {
        // Small-budget advisor: enough to produce non-trivial predictions
        // without turning the CLI into a training run.
        clpp::core::PipelineConfig config;
        config.generator = generator;
        config.generator.buggy_directive_rate = 0.0;  // train on faithful labels
        config.train.epochs = 3;
        config.mlm_pretrain = false;
        std::cerr << "clpp-lint: training advisor on " << config.generator.size
                  << " snippets...\n";
        const clpp::core::ParallelAdvisor advisor =
            clpp::core::ParallelAdvisor::train(config);
        std::vector<std::string> predictions;
        predictions.reserve(corpus.size());
        for (const clpp::corpus::Record& record : corpus.records())
          predictions.push_back(advisor.advise(record.code).suggestion);
        return print_audit(clpp::lint::audit_predictions(corpus, predictions, linter),
                           as_json);
      }
      return print_audit(clpp::lint::audit_labels(corpus, linter), as_json);
    }

    if (args.positional().empty()) {
      std::cout << args.help();
      return 2;
    }
    if (args.get_flag("explain"))
      return explain_files(args.positional(), linter, as_json);
    return lint_files(args.positional(), linter, as_json, args.get_flag("sarif"));
  } catch (const std::exception& e) {
    std::cerr << "clpp-lint: " << e.what() << "\n";
    return 2;
  }
}
