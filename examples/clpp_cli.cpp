// clpp_cli: command-line front door to the whole library.
//
//   clpp_cli generate --size 2000 --out corpus.jsonl
//   clpp_cli train    --out advisor.bin [--size N] [--epochs E] [--rep Text]
//   clpp_cli advise   --model advisor.bin [snippet.c]
//   clpp_cli annotate --model advisor.bin [snippet.c]
//   clpp_cli explain  --model advisor.bin [snippet.c]
//   clpp_cli s2s      [snippet.c]
//
// `advise`/`annotate`/`explain` read the snippet from the given file or use
// a built-in demo. Trained advisors persist across invocations — train
// once, advise many times.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/advisor.h"
#include "s2s/compiler.h"
#include "support/cli.h"

namespace {

using namespace clpp;

constexpr const char* kDemo =
    "for (i = 0; i < n; i++) {\n"
    "    t = a[i] * 0.5;\n"
    "    b[i] = t + a[i];\n"
    "}\n";

std::string snippet_from(const std::vector<std::string>& positional,
                         std::size_t index) {
  if (positional.size() <= index) return kDemo;
  std::ifstream in(positional[index]);
  if (!in) throw IoError("cannot open " + positional[index]);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_generate(ArgParser& parser) {
  codegen::GeneratorConfig config;
  config.size = static_cast<std::size_t>(parser.get_int("size"));
  config.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  const std::string out = parser.get_string("out");
  corpus.save_jsonl(out);
  const auto stats = corpus.stats();
  std::printf("wrote %zu records to %s (%zu with directive, %zu private, %zu reduction)\n",
              corpus.size(), out.c_str(), stats.with_directive, stats.private_clause,
              stats.reduction);
  return 0;
}

int cmd_train(ArgParser& parser) {
  core::PipelineConfig config;
  config.generator.size = static_cast<std::size_t>(parser.get_int("size"));
  config.generator.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  config.representation = tokenize::representation_from(parser.get_string("rep"));
  config.train.epochs = static_cast<std::size_t>(parser.get_int("epochs"));
  config.max_len = static_cast<std::size_t>(parser.get_int("max-len"));
  config.encoder.dim = static_cast<std::size_t>(parser.get_int("dim"));
  config.encoder.ffn_dim = 2 * config.encoder.dim;
  config.mlm_pretrain = !parser.get_flag("no-mlm");
  std::printf("training advisor (corpus %zu, rep %s, %zu epochs, mlm %s)...\n",
              config.generator.size,
              tokenize::representation_name(config.representation).c_str(),
              config.train.epochs, config.mlm_pretrain ? "on" : "off");
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);
  const std::string out = parser.get_string("out");
  advisor.save(out);
  std::printf("saved advisor to %s\n", out.c_str());
  return 0;
}

int cmd_advise(ArgParser& parser, const std::string& code) {
  const auto advisor = core::ParallelAdvisor::load(parser.get_string("model"));
  const core::Advice advice = advisor.advise(code);
  std::printf("p(directive)=%.3f p(private)=%.3f p(reduction)=%.3f p(dynamic)=%.3f\n",
              advice.p_directive, advice.p_private, advice.p_reduction,
              advice.p_dynamic);
  if (advice.needs_directive) {
    std::printf("suggestion: %s\n", advice.suggestion.c_str());
  } else {
    std::printf("suggestion: leave the loop serial\n");
  }
  if (!advice.compar_suggestion.empty())
    std::printf("(S2S ComPar: %s)\n", advice.compar_suggestion.c_str());
  return 0;
}

int cmd_annotate(ArgParser& parser, const std::string& code) {
  const auto advisor = core::ParallelAdvisor::load(parser.get_string("model"));
  const core::Advice advice = advisor.advise(code);
  if (advice.needs_directive) std::printf("%s\n", advice.suggestion.c_str());
  std::printf("%s", code.c_str());
  return 0;
}

int cmd_explain(ArgParser& parser, const std::string& code) {
  const auto advisor = core::ParallelAdvisor::load(parser.get_string("model"));
  const core::Explanation explanation = advisor.explain(code);
  std::printf("%s", explanation.ascii().c_str());
  std::printf("top tokens: ");
  for (const auto& t : explanation.top_tokens(5))
    std::printf("%s(%.2f) ", t.token.c_str(), t.weight);
  std::printf("\n");
  return 0;
}

int cmd_s2s(const std::string& code) {
  const s2s::S2SCompiler cetus(s2s::cetus_profile());
  std::printf("%s", cetus.annotate(code).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: clpp_cli <generate|train|advise|annotate|explain|s2s> "
                 "[options] [snippet.c]\n");
    return 2;
  }
  const std::string command = argv[1];
  ArgParser parser("clpp_cli " + command, "CLPP command-line interface");
  parser.add_int("size", 2000, "corpus size");
  parser.add_int("seed", 2023, "random seed");
  parser.add_int("epochs", 8, "training epochs");
  parser.add_int("max-len", 64, "max input tokens");
  parser.add_int("dim", 48, "encoder width");
  parser.add_string("rep", "Text", "code representation (Text|R-Text|AST|R-AST)");
  parser.add_string("out", command == "generate" ? "corpus.jsonl" : "advisor.bin",
                    "output path");
  parser.add_string("model", "advisor.bin", "trained advisor path");
  parser.add_flag("no-mlm", "skip MLM pretraining");

  try {
    if (!parser.parse(argc - 1, argv + 1)) return 0;
    if (command == "generate") return cmd_generate(parser);
    if (command == "train") return cmd_train(parser);
    const std::string code = snippet_from(parser.positional(), 0);
    if (command == "advise") return cmd_advise(parser, code);
    if (command == "annotate") return cmd_annotate(parser, code);
    if (command == "explain") return cmd_explain(parser, code);
    if (command == "s2s") return cmd_s2s(code);
    std::fprintf(stderr, "unknown command: %s\n", command.c_str());
    return 2;
  } catch (const std::exception& e) {
    // Bad user input (missing files, corrupt models, malformed flags) ends
    // with a structured one-line diagnostic, never std::terminate.
    return clpp::report_cli_error("clpp_cli", e);
  }
}
