// parallelize_file: annotate a C snippet file with an OpenMP directive.
//
//   $ ./build/examples/parallelize_file [path/to/snippet.c]
//
// With no argument, a built-in demo snippet is used. The tool shows both
// worlds side by side: the deterministic S2S transformation (Cetus
// personality, full transparency — §1.1 of the paper) and the learned
// PragFormer advice (what the paper proposes instead).
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/advisor.h"
#include "s2s/compiler.h"
#include "support/cli.h"

namespace {

constexpr const char* kDemo =
    "double scale(double x) { return 0.5 * x + 1.0; }\n"
    "for (i = 0; i < n; i++) {\n"
    "    t = scale(a[i]);\n"
    "    b[i] = t * t;\n"
    "}\n";

std::string read_file(const char* path) {
  std::ifstream in(path);
  if (!in) throw clpp::IoError(std::string("cannot open ") + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace clpp;
  const std::string source = argc > 1 ? read_file(argv[1]) : std::string(kDemo);

  std::printf("input snippet:\n%s\n", source.c_str());

  // Deterministic path: the Cetus-personality S2S compiler.
  const s2s::S2SCompiler cetus(s2s::cetus_profile());
  std::printf("--- S2S (cetus personality) ---\n%s\n", cetus.annotate(source).c_str());
  const s2s::ComPar compar;
  const s2s::ComParResult ensemble = compar.process_source(source);
  std::printf("ComPar ensemble verdict: %s\n",
              ensemble.compile_failed()       ? "compile failure"
              : ensemble.predicts_directive() ? ensemble.combined.directive->to_string().c_str()
                                              : "no directive");
  for (const auto& [name, result] : ensemble.members)
    for (const std::string& note : result.notes)
      std::printf("  [%s] %s\n", name.c_str(), note.c_str());

  // Learned path: PragFormer advice.
  std::printf("\n--- PragFormer (training a compact advisor first) ---\n");
  core::PipelineConfig config;
  config.generator.size = 1200;
  config.encoder.dim = 48;
  config.encoder.ffn_dim = 96;
  config.max_len = 80;
  config.train.epochs = 6;
  config.mlm_pretrain = false;
  const core::ParallelAdvisor advisor = core::ParallelAdvisor::train(config);
  const core::Advice advice = advisor.advise(source);
  std::printf("p(directive)=%.2f p(private)=%.2f p(reduction)=%.2f\n",
              advice.p_directive, advice.p_private, advice.p_reduction);
  if (advice.needs_directive) {
    std::printf("annotated snippet:\n%s\n%s\n", advice.suggestion.c_str(),
                source.c_str());
  } else {
    std::printf("PragFormer advises leaving this loop serial.\n");
  }
  return 0;
} catch (const std::exception& e) {
  return clpp::report_cli_error("parallelize_file", e);
}
