// corpus_explorer: generate an Open-OMP-style corpus, inspect it, and save
// it as JSONL for external tooling.
//
//   $ ./build/examples/corpus_explorer [count] [output.jsonl]
//
// Prints Table-3-style statistics, one sample record per family, and the
// four representations of the first positive record.
#include <cstdio>
#include <map>
#include <string>

#include "codegen/generator.h"
#include "support/histogram.h"
#include "support/strings.h"
#include "tokenize/representation.h"

int main(int argc, char** argv) {
  using namespace clpp;
  codegen::GeneratorConfig config;
  config.size = argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 500;
  const std::string out_path = argc > 2 ? argv[2] : "";

  std::printf("generating %zu snippets (seed %llu)...\n", config.size,
              static_cast<unsigned long long>(config.seed));
  const corpus::Corpus corpus = codegen::generate_corpus(config);
  const corpus::CorpusStats stats = corpus.stats();
  std::printf("with directive: %zu   without: %zu   private: %zu   "
              "reduction: %zu   dynamic: %zu\n\n",
              stats.with_directive, stats.without_directive, stats.private_clause,
              stats.reduction, stats.schedule_dynamic);

  // Snippet length distribution (drives the max_len choice of §4.3: the
  // paper picked 110 because it was the longest snippet in its corpus).
  Histogram lengths(0, 120, 12);
  for (const auto& record : corpus.records())
    lengths.add(static_cast<double>(
        tokenize::tokenize(record.code, tokenize::Representation::kText).size()));
  std::printf("Text token count distribution (mean %.1f, p95 %.0f, max %.0f):\n%s\n",
              lengths.mean(), lengths.quantile(0.95), lengths.max(),
              lengths.ascii().c_str());

  // One sample per family.
  std::map<std::string, const corpus::Record*> samples;
  for (const auto& record : corpus.records()) samples.emplace(record.family, &record);
  for (const auto& [family, record] : samples) {
    std::printf("--- family: %s ---\n", family.c_str());
    if (record->has_directive) std::printf("%s\n", record->directive_text.c_str());
    std::printf("%s\n", record->code.c_str());
  }

  // The four representations of the first directive-labeled record.
  for (const auto& record : corpus.records()) {
    if (!record.has_directive) continue;
    std::printf("=== representations of %s ===\n", record.id.c_str());
    for (tokenize::Representation rep : tokenize::all_representations()) {
      const auto tokens = tokenize::tokenize(record.code, rep);
      std::printf("%-7s | %s\n", tokenize::representation_name(rep).c_str(),
                  join(tokens, " ").c_str());
    }
    break;
  }

  if (!out_path.empty()) {
    corpus.save_jsonl(out_path);
    std::printf("\nsaved corpus to %s\n", out_path.c_str());
  }
  return 0;
}
