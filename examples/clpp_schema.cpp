// clpp-schema: structural validator for the repo's schema-versioned JSON
// artifacts (scripts/check_schemas.sh).
//
//   clpp-schema FILE [FILE ...]
//
// Every artifact the tools emit declares its shape in a top-level "schema"
// key ("clpp.<name>.v1"). This validator parses each file, looks the
// declared schema up in the table below, and checks the required top-level
// keys are present. `.jsonl` files (metrics streams, corpora) are checked
// line by line; lines without a "schema" key are skipped (corpus records
// are not schema-versioned).
//
// This is deliberately a structural check, not JSON Schema: it catches the
// failure CI cares about — a producer renaming or dropping a field without
// bumping the version string — with zero dependencies.
//
// Exit: 0 all artifacts valid, 1 any violation, 2 usage/IO error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/cli.h"
#include "support/error.h"
#include "support/json.h"

namespace {

using namespace clpp;

struct SchemaSpec {
  const char* schema;
  std::vector<const char*> required;  // top-level keys
};

/// One row per schema version any clpp tool emits. Adding a field is
/// backward compatible; removing or renaming one listed here requires a
/// version bump (clpp.<name>.v2) and a new row.
const std::vector<SchemaSpec>& known_schemas() {
  static const std::vector<SchemaSpec> specs = {
      {"clpp.lint.v1",
       {"file", "loops_checked", "errors", "warnings", "diagnostics"}},
      {"clpp.explain.v1", {"file", "loops"}},
      {"clpp.serve_stats.v1",
       {"queue_depth", "submitted", "completed", "batches", "latency_us",
        "cache"}},
      {"clpp.serve_loadgen.v1",
       {"requests", "mode", "seconds", "throughput_rps", "client"}},
      {"clpp.metrics_stream.v1", {"seq", "ts_ms"}},
      {"clpp.shard_stats.v1",
       {"shards", "live", "inflight", "deaths", "redispatched", "per_shard",
        "admission", "cache"}},
      {"clpp.shard_loadgen.v1",
       {"requests", "ok", "shed", "errors", "lost", "seconds",
        "throughput_rps", "client"}},
      {"clpp.shard_scaling.v1",
       {"points", "scaling", "cache_win", "lost", "verdicts_identical"}},
      {"clpp.flight.v1", {"reason", "recorded", "dropped", "events"}},
      {"clpp.bench_summary.v1", {"benches"}},
      {"clpp.slo_budget.v1", {"serve"}},
      {"clpp.slo_verdict.v1", {"checks", "failures", "ok"}},
      {"clpp.insight.v1", {"samples", "tasks", "disagreement", "drift"}},
      {"clpp.fingerprint.v1",
       {"samples", "token_freq", "mean_tokens", "mean_loop_depth"}},
      {"clpp.insight_report.v1", {"source", "mode"}},
  };
  return specs;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Validates one parsed document. Returns the number of violations printed.
std::size_t check_document(const std::string& where, const Json& doc) {
  if (doc.type() != Json::Type::kObject || !doc.contains("schema")) {
    std::fprintf(stderr, "%s: no top-level \"schema\" key\n", where.c_str());
    return 1;
  }
  const std::string schema = doc.at("schema").as_string();
  const SchemaSpec* spec = nullptr;
  for (const SchemaSpec& s : known_schemas())
    if (schema == s.schema) spec = &s;
  if (spec == nullptr) {
    std::fprintf(stderr, "%s: unknown schema \"%s\"\n", where.c_str(),
                 schema.c_str());
    return 1;
  }
  std::size_t violations = 0;
  for (const char* key : spec->required) {
    if (doc.contains(key)) continue;
    std::fprintf(stderr, "%s: %s is missing required key \"%s\"\n",
                 where.c_str(), schema.c_str(), key);
    ++violations;
  }
  return violations;
}

std::size_t check_file(const std::string& path) {
  const std::string text = slurp(path);
  const bool jsonl = path.size() > 6 && path.ends_with(".jsonl");
  if (!jsonl) {
    try {
      return check_document(path, Json::parse(text));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: does not parse: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  std::size_t violations = 0;
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    try {
      const Json doc = Json::parse(line);
      if (doc.type() == Json::Type::kObject && doc.contains("schema"))
        violations += check_document(where, doc);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: does not parse: %s\n", where.c_str(), e.what());
      ++violations;
    }
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("clpp-schema",
                   "validate schema-versioned clpp.*.v1 JSON artifacts "
                   "(structural required-key check)");

  try {
    if (!parser.parse(argc, argv)) return 0;
    if (parser.positional().empty())
      throw InvalidArgument("pass one or more artifact files");
    std::size_t violations = 0;
    for (const std::string& path : parser.positional())
      violations += check_file(path);
    if (violations == 0)
      std::printf("%zu artifact(s) valid\n", parser.positional().size());
    else
      std::printf("%zu violation(s)\n", violations);
    return violations == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    return report_cli_error("clpp-schema", e);
  }
}
