// clpp-profdiff — the perf-regression gate over bench_artifacts/ runs.
//
//   $ clpp-profdiff BASE_DIR CURRENT_DIR [--threshold 0.2] [--all] [--json]
//   $ clpp-profdiff --summarize DIR
//
// Compare mode prints a per-series delta table (google-benchmark times,
// clpp.* metric snapshots, latency histograms) and exits 1 when any tracked
// time-like series regressed beyond the threshold — wire it into CI after
// run_benches.sh to turn the per-bench JSON pile into an enforced perf
// trajectory. Summarize mode merges one directory's artifacts into
// DIR/BENCH_summary.json (run_benches.sh calls this after every run).
//
// Exit codes: 0 clean, 1 regression detected, 2 usage or I/O error.
#include <cstdio>

#include "prof/profdiff.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/json.h"

int main(int argc, char** argv) {
  using namespace clpp;

  ArgParser parser("clpp-profdiff",
                   "compare two bench_artifacts/ directories and flag perf "
                   "regressions, or merge one into BENCH_summary.json");
  parser.add_double("threshold", 0.2,
                    "relative slowdown that counts as a regression (0.2 = 20%)");
  parser.add_flag("all", "show untracked (informational) series too");
  parser.add_flag("json", "emit the diff as JSON instead of a table");
  parser.add_string("summarize", "",
                    "write BENCH_summary.json for this directory and exit");

  try {
    if (!parser.parse(argc, argv)) return 0;

    const std::string summarize = parser.get_string("summarize");
    if (!summarize.empty()) {
      const std::string path = prof::write_summary(summarize);
      std::printf("wrote %s\n", path.c_str());
      return 0;
    }

    if (parser.positional().size() != 2) {
      std::fprintf(stderr, "usage: clpp-profdiff BASE_DIR CURRENT_DIR "
                           "[--threshold T] [--all] [--json]\n"
                           "       clpp-profdiff --summarize DIR\n");
      return 2;
    }
    const double threshold = parser.get_double("threshold");
    if (threshold < 0.0) {
      std::fprintf(stderr, "clpp-profdiff: --threshold must be >= 0\n");
      return 2;
    }

    const auto base = prof::flatten_series(
        prof::scan_artifacts(parser.positional()[0]));
    const auto current = prof::flatten_series(
        prof::scan_artifacts(parser.positional()[1]));
    const prof::DiffReport report = prof::diff_series(base, current, threshold);

    if (parser.get_flag("json"))
      std::printf("%s\n", prof::diff_to_json(report).dump().c_str());
    else
      std::printf("%s", prof::render_diff(report, parser.get_flag("all")).c_str());

    return report.regressions() > 0 ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "clpp-profdiff: %s\n", e.what());
    return 2;
  }
}
