// Dense row-major float tensor.
//
// The NN substrate (clpp::nn) works almost exclusively with rank-2 tensors
// shaped [rows, cols] where rows is typically batch*seq; rank-1 and rank-3
// are supported for embeddings and attention intermediates. The class is a
// plain value type (deep copy) with contiguous storage, which keeps the
// manual-backprop layer code simple and cache-friendly.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "support/error.h"
#include "support/rng.h"

namespace clpp {

/// Dense row-major float tensor of rank 1..3.
class Tensor {
 public:
  /// Empty tensor (rank 0, no elements).
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  /// Convenience constructors.
  static Tensor zeros(std::vector<std::size_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::size_t> shape, float value);
  /// I.i.d. N(mean, stddev) entries drawn from `rng`.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f);
  /// Wraps explicit values; `values.size()` must equal the shape's element count.
  static Tensor from(std::vector<std::size_t> shape, std::vector<float> values);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Dimension `i` of the shape (bounds-checked).
  std::size_t dim(std::size_t i) const;
  /// Rows/cols of a rank-2 tensor.
  std::size_t rows() const { return dim(0); }
  std::size_t cols() const { return dim(rank() - 1); }

  /// Raw storage access.
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  /// Element access (checked in debug via vector::operator[] semantics;
  /// `at` variants check always).
  float& operator()(std::size_t i) { return data_[i]; }
  float operator()(std::size_t i) const { return data_[i]; }
  float& operator()(std::size_t i, std::size_t j) { return data_[i * stride0_ + j]; }
  float operator()(std::size_t i, std::size_t j) const { return data_[i * stride0_ + j]; }
  float& operator()(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(i * dims_[1] + j) * dims_[2] + k];
  }
  float operator()(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(i * dims_[1] + j) * dims_[2] + k];
  }

  /// Always-checked element access for tests and cold paths.
  float at(std::size_t i, std::size_t j) const;

  /// Pointer to the start of row `i` of a rank>=2 tensor.
  float* row(std::size_t i) { return data_.data() + i * stride0_; }
  const float* row(std::size_t i) const { return data_.data() + i * stride0_; }
  std::span<float> row_span(std::size_t i) { return {row(i), stride0_}; }
  std::span<const float> row_span(std::size_t i) const { return {row(i), stride0_}; }

  /// Sets every element to `value`.
  void fill(float value);
  /// Sets every element to 0.
  void zero() { fill(0.0f); }

  /// Reinterprets the storage with a new shape of equal element count.
  Tensor reshaped(std::vector<std::size_t> shape) const;

  /// Returns a deep copy (explicit, for call sites that want to show intent).
  Tensor clone() const { return *this; }

  /// Sum / mean / min / max over all elements (0 for empty tensors).
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;

  /// True when shapes are equal and all elements differ by <= tol.
  bool allclose(const Tensor& other, float tol = 1e-5f) const;

  /// Human-readable "[2x3]" shape string for error messages.
  std::string shape_str() const;

 private:
  void recompute_strides();

  std::vector<std::size_t> shape_;
  std::vector<float> data_;
  // Cached for hot rank-2/3 access paths.
  std::size_t stride0_ = 0;
  std::size_t dims_[3] = {0, 0, 0};
};

}  // namespace clpp
