// Binary tensor (de)serialization for model checkpoints.
//
// Format (little-endian, as written by the host):
//   magic "CLPT"  u32 version  u32 rank  u64 dims[rank]  f32 data[numel]
//
// Readers are hardened against hostile input: header counts and shapes are
// bounds-checked before any allocation, truncation raises IoError, and a
// failed allocation surfaces as IoError rather than std::bad_alloc, so a
// corrupt checkpoint can never take the process down (see tests/
// checkpoint_test.cpp for the fuzz harness).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "tensor/tensor.h"

namespace clpp {

/// Hard ceiling on elements a serialized tensor may declare (256 MiB of
/// f32), checked overflow-safely before allocating.
inline constexpr std::uint64_t kMaxTensorElements = 1ULL << 26;

/// Hard ceiling on a serialized string length (metadata / names / configs).
inline constexpr std::uint64_t kMaxStringBytes = 1ULL << 24;

/// Writes `t` to `out`; throws IoError on stream failure.
void write_tensor(std::ostream& out, const Tensor& t);

/// Reads a tensor; throws IoError / ParseError on truncated or bad data.
Tensor read_tensor(std::istream& in);

/// Writes a length-prefixed string (used by checkpoint metadata).
void write_string(std::ostream& out, const std::string& s);
std::string read_string(std::istream& in);

/// POD helpers. Floating-point values round-trip bit-exactly (raw IEEE-754
/// bytes), which the resume-determinism guarantee relies on.
void write_u64(std::ostream& out, std::uint64_t v);
std::uint64_t read_u64(std::istream& in);
void write_u32(std::ostream& out, std::uint32_t v);
std::uint32_t read_u32(std::istream& in);
void write_f32(std::ostream& out, float v);
float read_f32(std::istream& in);
void write_f64(std::ostream& out, double v);
double read_f64(std::istream& in);

}  // namespace clpp
