// Binary tensor (de)serialization for model checkpoints.
//
// Format (little-endian, as written by the host):
//   magic "CLPT"  u32 version  u32 rank  u64 dims[rank]  f32 data[numel]
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.h"

namespace clpp {

/// Writes `t` to `out`; throws IoError on stream failure.
void write_tensor(std::ostream& out, const Tensor& t);

/// Reads a tensor; throws IoError / ParseError on truncated or bad data.
Tensor read_tensor(std::istream& in);

/// Writes a length-prefixed string (used by checkpoint metadata).
void write_string(std::ostream& out, const std::string& s);
std::string read_string(std::istream& in);

/// POD helpers.
void write_u64(std::ostream& out, std::uint64_t v);
std::uint64_t read_u64(std::istream& in);

}  // namespace clpp
