#include "tensor/io.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace clpp {

namespace {
constexpr char kMagic[4] = {'C', 'L', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_raw(std::ostream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out) throw IoError("tensor write failed");
}

void read_raw(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n)
    throw IoError("tensor read failed (truncated stream)");
}
}  // namespace

void write_u64(std::ostream& out, std::uint64_t v) { write_raw(out, &v, sizeof v); }

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  read_raw(in, &v, sizeof v);
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  write_u64(out, s.size());
  if (!s.empty()) write_raw(out, s.data(), s.size());
}

std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > (1ULL << 30)) throw ParseError("checkpoint string length implausible");
  std::string s(n, '\0');
  if (n) read_raw(in, s.data(), n);
  return s;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  write_raw(out, kMagic, sizeof kMagic);
  std::uint32_t version = kVersion;
  write_raw(out, &version, sizeof version);
  std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  write_raw(out, &rank, sizeof rank);
  for (std::size_t d : t.shape()) write_u64(out, d);
  if (t.numel()) write_raw(out, t.data(), t.numel() * sizeof(float));
}

Tensor read_tensor(std::istream& in) {
  char magic[4];
  read_raw(in, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw ParseError("bad tensor magic (not a CLPP checkpoint)");
  std::uint32_t version = 0;
  read_raw(in, &version, sizeof version);
  if (version != kVersion) throw ParseError("unsupported tensor version");
  std::uint32_t rank = 0;
  read_raw(in, &rank, sizeof rank);
  if (rank > 3) throw ParseError("tensor rank > 3 in checkpoint");
  std::vector<std::size_t> shape(rank);
  for (auto& d : shape) {
    d = static_cast<std::size_t>(read_u64(in));
    if (d == 0 || d > (1ULL << 32)) throw ParseError("implausible tensor dimension");
  }
  Tensor t(shape.empty() ? std::vector<std::size_t>{1} : shape);
  if (shape.empty()) t = Tensor();
  if (t.numel()) read_raw(in, t.data(), t.numel() * sizeof(float));
  return t;
}

}  // namespace clpp
