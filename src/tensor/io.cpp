#include "tensor/io.h"

#include <cstring>
#include <istream>
#include <new>
#include <ostream>

#include "resil/fault.h"

namespace clpp {

namespace {
constexpr char kMagic[4] = {'C', 'L', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_raw(std::ostream& out, const void* p, std::size_t n) {
  out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
  if (!out) throw IoError("tensor write failed");
}

void read_raw(std::istream& in, void* p, std::size_t n) {
  in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
  if (static_cast<std::size_t>(in.gcount()) != n)
    throw IoError("tensor read failed (truncated stream)");
}
}  // namespace

void write_u64(std::ostream& out, std::uint64_t v) { write_raw(out, &v, sizeof v); }

std::uint64_t read_u64(std::istream& in) {
  std::uint64_t v = 0;
  read_raw(in, &v, sizeof v);
  return v;
}

void write_u32(std::ostream& out, std::uint32_t v) { write_raw(out, &v, sizeof v); }

std::uint32_t read_u32(std::istream& in) {
  std::uint32_t v = 0;
  read_raw(in, &v, sizeof v);
  return v;
}

void write_f32(std::ostream& out, float v) { write_raw(out, &v, sizeof v); }

float read_f32(std::istream& in) {
  float v = 0;
  read_raw(in, &v, sizeof v);
  return v;
}

void write_f64(std::ostream& out, double v) { write_raw(out, &v, sizeof v); }

double read_f64(std::istream& in) {
  double v = 0;
  read_raw(in, &v, sizeof v);
  return v;
}

void write_string(std::ostream& out, const std::string& s) {
  if (s.size() > kMaxStringBytes) throw IoError("string too long to serialize");
  write_u64(out, s.size());
  if (!s.empty()) write_raw(out, s.data(), s.size());
}

std::string read_string(std::istream& in) {
  const std::uint64_t n = read_u64(in);
  if (n > kMaxStringBytes)
    throw ParseError("checkpoint string length implausible (" + std::to_string(n) +
                     " bytes)");
  std::string s(n, '\0');
  if (n) read_raw(in, s.data(), n);
  return s;
}

void write_tensor(std::ostream& out, const Tensor& t) {
  resil::fault_point("tensor.write");
  write_raw(out, kMagic, sizeof kMagic);
  std::uint32_t version = kVersion;
  write_raw(out, &version, sizeof version);
  std::uint32_t rank = static_cast<std::uint32_t>(t.rank());
  write_raw(out, &rank, sizeof rank);
  for (std::size_t d : t.shape()) write_u64(out, d);
  if (t.numel()) write_raw(out, t.data(), t.numel() * sizeof(float));
}

Tensor read_tensor(std::istream& in) {
  resil::fault_point("tensor.read");
  char magic[4];
  read_raw(in, magic, sizeof magic);
  if (std::memcmp(magic, kMagic, sizeof kMagic) != 0)
    throw ParseError("bad tensor magic (not a CLPP checkpoint)");
  std::uint32_t version = 0;
  read_raw(in, &version, sizeof version);
  if (version != kVersion) throw ParseError("unsupported tensor version");
  std::uint32_t rank = 0;
  read_raw(in, &rank, sizeof rank);
  if (rank > 3) throw ParseError("tensor rank > 3 in checkpoint");
  std::vector<std::size_t> shape(rank);
  // Bound every dimension and the overflow-safe element product *before*
  // allocating anything, so a hostile header cannot trigger a huge or
  // overflowed allocation.
  std::uint64_t numel = 1;
  for (auto& d : shape) {
    const std::uint64_t dim = read_u64(in);
    if (dim == 0 || dim > kMaxTensorElements)
      throw ParseError("implausible tensor dimension (" + std::to_string(dim) + ")");
    if (numel > kMaxTensorElements / dim)
      throw ParseError("tensor element count overflows the checkpoint limit");
    numel *= dim;
    d = static_cast<std::size_t>(dim);
  }
  try {
    resil::alloc_fault_point("tensor.alloc");
    Tensor t(shape.empty() ? std::vector<std::size_t>{1} : shape);
    if (shape.empty()) t = Tensor();
    if (t.numel()) read_raw(in, t.data(), t.numel() * sizeof(float));
    return t;
  } catch (const std::bad_alloc&) {
    throw IoError("out of memory reading checkpoint tensor (" +
                  std::to_string(numel) + " elements)");
  }
}

}  // namespace clpp
