#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/flops.h"
#include "support/parallel.h"

namespace clpp {

namespace {

/// Shapes of op(A)[m,k], op(B)[k,n] for the requested transpose pattern.
struct GemmDims {
  std::size_t m, n, k;
};

GemmDims gemm_dims(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  CLPP_CHECK_MSG(a.rank() == 2 && b.rank() == 2,
                 "gemm requires rank-2 operands, got " << a.shape_str() << " and "
                                                       << b.shape_str());
  const std::size_t am = trans_a ? a.dim(1) : a.dim(0);
  const std::size_t ak = trans_a ? a.dim(0) : a.dim(1);
  const std::size_t bk = trans_b ? b.dim(1) : b.dim(0);
  const std::size_t bn = trans_b ? b.dim(0) : b.dim(1);
  CLPP_CHECK_MSG(ak == bk, "gemm inner dimensions disagree: " << a.shape_str() << " x "
                                                              << b.shape_str());
  return GemmDims{am, bn, ak};
}

// C[i,:] = alpha * sum_k A[i,k] B[k,:]  — inner loop streams B and C rows.
void gemm_nn(const float* a, const float* b, float* c, std::size_t m, std::size_t n,
             std::size_t k, float alpha) {
  parallel_for(
      m,
      [&](std::size_t i) {
        float* crow = c + i * n;
        const float* arow = a + i * k;
        for (std::size_t p = 0; p < k; ++p) {
          const float av = alpha * arow[p];
          if (av == 0.0f) continue;
          const float* brow = b + p * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      },
      8);
}

// C[i,j] = alpha * dot(A[i,:], B[j,:]) — both operands stream contiguously.
void gemm_nt(const float* a, const float* b, float* c, std::size_t m, std::size_t n,
             std::size_t k, float alpha) {
  parallel_for(
      m,
      [&](std::size_t i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (std::size_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
          crow[j] += alpha * acc;
        }
      },
      8);
}

// C[:, :] += alpha * A[p,:]ᵀ B[p,:] accumulated over p — rank-1 updates.
// Serial over p (each update touches all of C), vectorized over j.
void gemm_tn(const float* a, const float* b, float* c, std::size_t m, std::size_t n,
             std::size_t k, float alpha) {
  for (std::size_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float av = alpha * arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

// C[i,j] = alpha * sum_p A[p,i] * B[j,p] — rare; fall back to index math.
void gemm_tt(const float* a, const float* b, float* c, std::size_t m, std::size_t n,
             std::size_t k, float alpha) {
  parallel_for(
      m,
      [&](std::size_t i) {
        float* crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (std::size_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
          crow[j] += alpha * acc;
        }
      },
      8);
}

}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool trans_a, bool trans_b,
          float alpha, float beta) {
  CLPP_TRACE_SPAN("gemm");
  const GemmDims d = gemm_dims(a, b, trans_a, trans_b);
  // Roofline accounting: 2mnk FLOPs over compulsory traffic (read A and B
  // once, read-modify-write C) — reports clpp.prof.gemm.{gflops,...}.
  CLPP_PROF_KERNEL("gemm", 2ull * d.m * d.n * d.k,
                   sizeof(float) * (d.m * d.k + d.k * d.n + 2 * d.m * d.n));
  if (obs::enabled()) {
    static obs::Counter& calls = obs::metrics().counter("clpp.tensor.gemm_calls");
    static obs::Counter& flops = obs::metrics().counter("clpp.tensor.gemm_flops");
    calls.add(1);
    flops.add(2ull * d.m * d.n * d.k);
  }
  CLPP_CHECK_MSG(c.rank() == 2 && c.dim(0) == d.m && c.dim(1) == d.n,
                 "gemm output shape " << c.shape_str() << " does not match ["
                                      << d.m << "x" << d.n << "]");
  if (beta == 0.0f) {
    c.zero();
  } else if (beta != 1.0f) {
    scale_inplace(c, beta);
  }
  if (!trans_a && !trans_b) gemm_nn(a.data(), b.data(), c.data(), d.m, d.n, d.k, alpha);
  else if (!trans_a && trans_b) gemm_nt(a.data(), b.data(), c.data(), d.m, d.n, d.k, alpha);
  else if (trans_a && !trans_b) gemm_tn(a.data(), b.data(), c.data(), d.m, d.n, d.k, alpha);
  else gemm_tt(a.data(), b.data(), c.data(), d.m, d.n, d.k, alpha);
}

Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  const GemmDims d = gemm_dims(a, b, trans_a, trans_b);
  Tensor c({d.m, d.n});
  gemm(a, b, c, trans_a, trans_b, 1.0f, 0.0f);
  return c;
}

void add_inplace(Tensor& y, const Tensor& x) { axpy(y, 1.0f, x); }

void axpy(Tensor& y, float alpha, const Tensor& x) {
  CLPP_CHECK_MSG(y.shape() == x.shape(),
                 "axpy shape mismatch: " << y.shape_str() << " vs " << x.shape_str());
  float* yd = y.data();
  const float* xd = x.data();
  const std::size_t n = y.numel();
  for (std::size_t i = 0; i < n; ++i) yd[i] += alpha * xd[i];
}

void scale_inplace(Tensor& y, float alpha) {
  for (float& v : y.values()) v *= alpha;
}

void add_row_broadcast(Tensor& y, const Tensor& bias) {
  CLPP_CHECK_MSG(y.rank() == 2 && bias.rank() == 1 && bias.dim(0) == y.cols(),
                 "broadcast shape mismatch: " << y.shape_str() << " += "
                                              << bias.shape_str());
  const float* b = bias.data();
  const std::size_t n = y.cols();
  for (std::size_t i = 0; i < y.rows(); ++i) {
    float* row = y.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] += b[j];
  }
}

void sum_rows(const Tensor& x, Tensor& out) {
  CLPP_CHECK_MSG(x.rank() == 2 && out.rank() == 1 && out.dim(0) == x.cols(),
                 "sum_rows shape mismatch: " << x.shape_str() << " -> "
                                             << out.shape_str());
  out.zero();
  float* o = out.data();
  const std::size_t n = x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const float* row = x.row(i);
    for (std::size_t j = 0; j < n; ++j) o[j] += row[j];
  }
}

void softmax_rows(Tensor& x) {
  CLPP_CHECK_MSG(x.rank() == 2, "softmax_rows requires rank 2, got " << x.shape_str());
  const std::size_t n = x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    float* row = x.row(i);
    float mx = row[0];
    for (std::size_t j = 1; j < n; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      row[j] = std::exp(row[j] - mx);
      total += row[j];
    }
    const float inv = 1.0f / total;
    for (std::size_t j = 0; j < n; ++j) row[j] *= inv;
  }
}

void softmax_rows_masked(Tensor& x, std::span<const int> valid) {
  CLPP_CHECK_MSG(x.rank() == 2, "softmax_rows_masked requires rank 2");
  CLPP_CHECK_MSG(valid.size() == x.rows(), "one valid length per row required");
  const std::size_t n = x.cols();
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::size_t len = static_cast<std::size_t>(valid[i]);
    CLPP_CHECK_MSG(len >= 1 && len <= n, "valid length out of range: " << valid[i]);
    float* row = x.row(i);
    float mx = row[0];
    for (std::size_t j = 1; j < len; ++j) mx = std::max(mx, row[j]);
    float total = 0.0f;
    for (std::size_t j = 0; j < len; ++j) {
      row[j] = std::exp(row[j] - mx);
      total += row[j];
    }
    const float inv = 1.0f / total;
    for (std::size_t j = 0; j < len; ++j) row[j] *= inv;
    for (std::size_t j = len; j < n; ++j) row[j] = 0.0f;
  }
}

void apply(Tensor& x, const std::function<float(float)>& f) {
  for (float& v : x.values()) v = f(v);
}

void mul_inplace(Tensor& y, const Tensor& x) {
  CLPP_CHECK_MSG(y.shape() == x.shape(),
                 "mul shape mismatch: " << y.shape_str() << " vs " << x.shape_str());
  float* yd = y.data();
  const float* xd = x.data();
  const std::size_t n = y.numel();
  for (std::size_t i = 0; i < n; ++i) yd[i] *= xd[i];
}

std::size_t argmax(std::span<const float> row) {
  CLPP_CHECK(!row.empty());
  return static_cast<std::size_t>(
      std::distance(row.begin(), std::max_element(row.begin(), row.end())));
}

double squared_norm(const Tensor& x) {
  double acc = 0.0;
  for (float v : x.values()) acc += static_cast<double>(v) * v;
  return acc;
}

}  // namespace clpp
