// Compute kernels over Tensor: GEMM, broadcasts, softmax, reductions.
//
// These are the hot paths of PragFormer training. GEMM dispatches on the
// transpose pattern to loop orders that stream contiguously in the inner
// loop (auto-vectorizable), and parallelizes the outer loop with OpenMP.
#pragma once

#include <functional>

#include "tensor/tensor.h"

namespace clpp {

/// C = alpha * op(A) * op(B) + beta * C, rank-2 operands.
/// op(X) = X or Xᵀ according to trans_a / trans_b. Shapes are validated.
void gemm(const Tensor& a, const Tensor& b, Tensor& c, bool trans_a = false,
          bool trans_b = false, float alpha = 1.0f, float beta = 0.0f);

/// Returns op(A) * op(B) as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);

/// y += x (same shape).
void add_inplace(Tensor& y, const Tensor& x);

/// y += alpha * x (same shape).
void axpy(Tensor& y, float alpha, const Tensor& x);

/// y *= alpha.
void scale_inplace(Tensor& y, float alpha);

/// Adds `bias` (rank-1, length == y.cols()) to every row of rank-2 `y`.
void add_row_broadcast(Tensor& y, const Tensor& bias);

/// Sums rows of rank-2 `x` into rank-1 `out` (length x.cols()); out is
/// overwritten. This is the backward of add_row_broadcast.
void sum_rows(const Tensor& x, Tensor& out);

/// In-place numerically-stable softmax over the last dimension of a rank-2
/// tensor (each row independently).
void softmax_rows(Tensor& x);

/// Like softmax_rows, but positions j >= valid[i] of row i receive
/// probability 0 (used for padded attention). valid[i] must be >= 1.
void softmax_rows_masked(Tensor& x, std::span<const int> valid);

/// Applies f to every element in place.
void apply(Tensor& x, const std::function<float(float)>& f);

/// Elementwise product: y *= x (same shape).
void mul_inplace(Tensor& y, const Tensor& x);

/// Returns the index of the maximum element of a rank-1 tensor / row span.
std::size_t argmax(std::span<const float> row);

/// Squared L2 norm of all elements.
double squared_norm(const Tensor& x);

}  // namespace clpp
