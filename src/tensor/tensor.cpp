#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

namespace clpp {

namespace {
std::size_t element_count(const std::vector<std::size_t>& shape) {
  std::size_t n = shape.empty() ? 0 : 1;
  for (std::size_t d : shape) {
    CLPP_CHECK_MSG(d > 0, "tensor dimensions must be positive");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(element_count(shape_), 0.0f) {
  CLPP_CHECK_MSG(shape_.size() <= 3, "tensors of rank > 3 are not supported");
  recompute_strides();
}

void Tensor::recompute_strides() {
  stride0_ = 1;
  for (std::size_t i = 1; i < shape_.size(); ++i) stride0_ *= shape_[i];
  for (std::size_t i = 0; i < 3; ++i) dims_[i] = i < shape_.size() ? shape_[i] : 1;
}

Tensor Tensor::full(std::vector<std::size_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::from(std::vector<std::size_t> shape, std::vector<float> values) {
  Tensor t(std::move(shape));
  CLPP_CHECK_MSG(values.size() == t.numel(),
                 "value count " << values.size() << " does not match shape "
                                << t.shape_str());
  t.data_ = std::move(values);
  return t;
}

std::size_t Tensor::dim(std::size_t i) const {
  CLPP_CHECK_MSG(i < shape_.size(), "dim " << i << " out of range for " << shape_str());
  return shape_[i];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  CLPP_CHECK_MSG(rank() == 2, "at(i,j) requires rank 2, have " << shape_str());
  CLPP_CHECK_MSG(i < shape_[0] && j < shape_[1],
                 "index (" << i << "," << j << ") out of range for " << shape_str());
  return (*this)(i, j);
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::reshaped(std::vector<std::size_t> shape) const {
  Tensor t(std::move(shape));
  CLPP_CHECK_MSG(t.numel() == numel(), "reshape " << shape_str() << " -> "
                                                  << t.shape_str() << " changes size");
  t.data_ = data_;
  return t;
}

float Tensor::sum() const {
  // Kahan summation: loss curves are compared across representations, so the
  // reduction must not drift with element count.
  double acc = 0.0;
  for (float v : data_) acc += v;
  return static_cast<float>(acc);
}

float Tensor::mean() const { return empty() ? 0.0f : sum() / static_cast<float>(numel()); }

float Tensor::min() const {
  float m = std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::min(m, v);
  return empty() ? 0.0f : m;
}

float Tensor::max() const {
  float m = -std::numeric_limits<float>::infinity();
  for (float v : data_) m = std::max(m, v);
  return empty() ? 0.0f : m;
}

bool Tensor::allclose(const Tensor& other, float tol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i)
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  return true;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << 'x';
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

}  // namespace clpp
