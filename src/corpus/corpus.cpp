#include "corpus/corpus.h"

#include <algorithm>
#include <fstream>

#include "resil/atomic_file.h"
#include "resil/fault.h"
#include "support/strings.h"

namespace clpp::corpus {

const Record& Corpus::at(std::size_t i) const {
  CLPP_CHECK_MSG(i < records_.size(), "corpus index out of range");
  return records_[i];
}

CorpusStats Corpus::stats() const {
  CorpusStats s;
  s.total = records_.size();
  for (const Record& r : records_) {
    if (!r.has_directive) {
      ++s.without_directive;
      continue;
    }
    ++s.with_directive;
    if (r.schedule == frontend::ScheduleKind::kDynamic) ++s.schedule_dynamic;
    else ++s.schedule_static;
    if (r.label_reduction) ++s.reduction;
    if (r.label_private) ++s.private_clause;
  }
  return s;
}

void Corpus::save_jsonl(const std::string& path) const {
  // Atomic (temp + fsync + rename): a crash mid-save never leaves a
  // half-written corpus where a previous complete one existed.
  resil::atomic_write_file(path, [&](std::ostream& out) {
    for (const Record& r : records_) out << r.to_json().dump() << '\n';
  });
}

Corpus Corpus::load_jsonl(const std::string& path) {
  resil::fault_point("corpus.open");
  std::ifstream in(path);
  if (!in) throw IoError("cannot open corpus file: " + path);
  Corpus corpus;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    resil::fault_point("corpus.parse");
    try {
      corpus.add(Record::from_json(Json::parse(line)));
    } catch (const ParseError& e) {
      throw ParseError("corpus " + path + " line " + std::to_string(line_no) + ": " +
                       e.what());
    }
  }
  return corpus;
}

std::string task_name(Task task) {
  switch (task) {
    case Task::kDirective: return "directive";
    case Task::kPrivate: return "private";
    case Task::kReduction: return "reduction";
    case Task::kSchedule: return "schedule";
  }
  return "unknown";
}

int label_of(const Record& record, Task task) {
  switch (task) {
    case Task::kDirective: return record.has_directive ? 1 : 0;
    case Task::kPrivate: return record.label_private ? 1 : 0;
    case Task::kReduction: return record.label_reduction ? 1 : 0;
    case Task::kSchedule:
      return record.schedule == frontend::ScheduleKind::kDynamic ? 1 : 0;
  }
  return 0;
}

std::vector<std::size_t> task_population(const Corpus& corpus, Task task) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < corpus.size(); ++i) {
    if (task == Task::kDirective || corpus.at(i).has_directive) out.push_back(i);
  }
  return out;
}

Split make_split(const Corpus& corpus, Task task, Rng& rng, double train_fraction,
                 double validation_fraction) {
  CLPP_CHECK_MSG(train_fraction > 0 && validation_fraction > 0 &&
                     train_fraction + 2 * validation_fraction <= 1.0 + 1e-9,
                 "invalid split fractions");
  // Stratified: shuffle each label class separately, then cut.
  std::vector<std::size_t> positives;
  std::vector<std::size_t> negatives;
  for (std::size_t i : task_population(corpus, task))
    (label_of(corpus.at(i), task) ? positives : negatives).push_back(i);
  rng.shuffle(positives);
  rng.shuffle(negatives);

  Split split;
  auto cut = [&](std::vector<std::size_t>& items) {
    const std::size_t n = items.size();
    const std::size_t n_train = static_cast<std::size_t>(n * train_fraction);
    const std::size_t n_val = static_cast<std::size_t>(n * validation_fraction);
    for (std::size_t i = 0; i < n; ++i) {
      if (i < n_train) split.train.push_back(items[i]);
      else if (i < n_train + n_val) split.validation.push_back(items[i]);
      else split.test.push_back(items[i]);
    }
  };
  cut(positives);
  cut(negatives);
  rng.shuffle(split.train);
  rng.shuffle(split.validation);
  rng.shuffle(split.test);
  return split;
}

}  // namespace clpp::corpus
