#include "corpus/record.h"

namespace clpp::corpus {

frontend::OmpDirective Record::directive() const {
  CLPP_CHECK_MSG(has_directive, "record " << id << " has no directive");
  return frontend::parse_omp_pragma(directive_text);
}

void Record::refresh_labels() {
  if (!has_directive) {
    label_private = false;
    label_reduction = false;
    schedule = frontend::ScheduleKind::kNone;
    return;
  }
  const frontend::OmpDirective d = directive();
  label_private = d.has_private();
  label_reduction = d.has_reduction();
  // The paper's Table 3 counts every directive as static or dynamic;
  // unspecified schedule means the static default.
  schedule = d.schedule == frontend::ScheduleKind::kNone ? frontend::ScheduleKind::kStatic
                                                         : d.schedule;
}

Json Record::to_json() const {
  Json obj = Json::object();
  obj["id"] = Json{id};
  obj["family"] = Json{family};
  obj["code"] = Json{code};
  obj["has_directive"] = Json{has_directive};
  if (has_directive) obj["directive"] = Json{directive_text};
  if (!bug.empty()) obj["bug"] = Json{bug};
  return obj;
}

Record Record::from_json(const Json& json) {
  Record r;
  r.id = json.at("id").as_string();
  r.family = json.get_string("family", "unknown");
  r.code = json.at("code").as_string();
  r.has_directive = json.get_bool("has_directive", false);
  if (r.has_directive) r.directive_text = json.at("directive").as_string();
  r.bug = json.get_string("bug", "");
  r.refresh_labels();
  return r;
}

}  // namespace clpp::corpus
