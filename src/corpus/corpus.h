// Corpus container, statistics (Table 3), persistence, and splits (§3.2).
#pragma once

#include <string>
#include <vector>

#include "corpus/record.h"
#include "support/rng.h"

namespace clpp::corpus {

/// Statistics of Table 3 of the paper.
struct CorpusStats {
  std::size_t total = 0;
  std::size_t with_directive = 0;
  std::size_t without_directive = 0;
  std::size_t schedule_static = 0;
  std::size_t schedule_dynamic = 0;
  std::size_t reduction = 0;
  std::size_t private_clause = 0;
};

/// The Open-OMP corpus equivalent: an ordered collection of records.
class Corpus {
 public:
  Corpus() = default;
  explicit Corpus(std::vector<Record> records) : records_(std::move(records)) {}

  const std::vector<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  const Record& at(std::size_t i) const;
  void add(Record record) { records_.push_back(std::move(record)); }

  /// Table 3 statistics.
  CorpusStats stats() const;

  /// JSONL persistence.
  void save_jsonl(const std::string& path) const;
  static Corpus load_jsonl(const std::string& path);

 private:
  std::vector<Record> records_;
};

/// Index-based train/validation/test split.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> validation;
  std::vector<std::size_t> test;

  std::size_t total() const { return train.size() + validation.size() + test.size(); }
};

/// Which task a dataset serves. The paper builds directive (RQ1) and the
/// two clause datasets (RQ2); schedule prediction is listed as future work
/// (§6: "fine-tune the OpenMP directives by inserting the scheduling
/// construct") and implemented here as a fourth task.
enum class Task {
  kDirective,  // RQ1: does this loop need a directive? (all records)
  kPrivate,    // RQ2: does this parallelized loop need private? (positives only)
  kReduction,  // RQ2: ... need reduction? (positives only)
  kSchedule,   // future work: schedule(dynamic) vs static (positives only)
};

std::string task_name(Task task);

/// Binary label of `record` under `task`.
int label_of(const Record& record, Task task);

/// Indices of records participating in `task` (directive task: all;
/// clause tasks: only records with a directive).
std::vector<std::size_t> task_population(const Corpus& corpus, Task task);

/// Randomly splits `population` into 75% / 12.5% / 12.5%, stratified by the
/// task label so each side keeps the corpus' label distribution (§3.2).
Split make_split(const Corpus& corpus, Task task, Rng& rng,
                 double train_fraction = 0.75, double validation_fraction = 0.125);

}  // namespace clpp::corpus
