// Corpus records: one labeled code snippet (§3.1 of the paper).
//
// A record mirrors the three files of an Open-OMP entry: the code segment
// (loop plus any helper function implementations found with it), the
// OpenMP directive (when present), and the AST (regenerable from the code
// via clpp::frontend, so we store the code and parse on demand).
#pragma once

#include <optional>
#include <string>

#include "frontend/pragma.h"
#include "support/json.h"

namespace clpp::corpus {

/// One labeled snippet.
struct Record {
  std::string id;          // stable unique id within the corpus
  std::string family;      // generator template family (provenance)
  std::string code;        // C source of the snippet (no directive line)
  bool has_directive = false;
  std::string directive_text;  // canonical "#pragma omp ..." when labeled
  /// Seeded-defect tag: the clpp::lint rule id this record's directive was
  /// deliberately corrupted to violate (codegen's buggy-directive knob);
  /// empty for clean records. Ground truth for lint_audit confusion stats.
  std::string bug;

  /// Clause/schedule labels derived from the directive (false/static when
  /// no directive).
  bool label_private = false;
  bool label_reduction = false;
  frontend::ScheduleKind schedule = frontend::ScheduleKind::kNone;

  /// Parses `directive_text` (convenience; throws if absent).
  frontend::OmpDirective directive() const;

  /// Re-derives the clause/schedule labels from `directive_text`.
  void refresh_labels();

  /// JSONL (de)serialization.
  Json to_json() const;
  static Record from_json(const Json& json);

  bool operator==(const Record&) const = default;
};

}  // namespace clpp::corpus
