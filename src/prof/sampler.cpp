#include "prof/sampler.h"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "support/error.h"

#if defined(__has_include)
#if __has_include(<execinfo.h>) && __has_include(<dlfcn.h>)
#define CLPP_PROF_HAVE_BACKTRACE 1
#endif
#endif

#if defined(CLPP_PROF_HAVE_BACKTRACE)
#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/time.h>
#endif

namespace clpp::prof {

void StackCollapser::add(const std::vector<std::string>& frames,
                         std::uint64_t count) {
  if (frames.empty() || count == 0) return;
  std::string key;
  for (const std::string& frame : frames) {
    if (!key.empty()) key += ';';
    for (char c : frame) key += c == ';' ? ':' : c;
  }
  counts_[key] += count;
}

std::uint64_t StackCollapser::total() const {
  std::uint64_t n = 0;
  for (const auto& [stack, count] : counts_) n += count;
  return n;
}

std::string StackCollapser::str() const {
  std::string out;
  for (const auto& [stack, count] : counts_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::map<std::string, std::uint64_t> StackCollapser::parse(
    std::string_view text) {
  std::map<std::string, std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos || space == 0 ||
        space + 1 == line.size())
      throw InvalidArgument("malformed collapsed-stack line: " +
                            std::string(line));
    std::uint64_t count = 0;
    for (char c : line.substr(space + 1)) {
      if (c < '0' || c > '9')
        throw InvalidArgument("malformed collapsed-stack count: " +
                              std::string(line));
      count = count * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out[std::string(line.substr(0, space))] += count;
  }
  return out;
}

#if defined(CLPP_PROF_HAVE_BACKTRACE)

namespace {

constexpr int kMaxDepth = 32;
// ~5.6 minutes of profiling at the default 97 Hz before dropping.
constexpr std::size_t kMaxSamples = 1 << 15;
// backtrace() from the signal handler sees [handler, trampoline, ...pc];
// these top frames are sampler plumbing, not program state.
constexpr int kSkipFrames = 2;

struct RawSample {
  const char* label;
  int depth;
  void* pc[kMaxDepth];
};

// Signal-handler shared state. The buffer is preallocated in start() so the
// handler never allocates; `cursor` is the only write coordination needed.
std::vector<RawSample>* g_buffer = nullptr;
std::atomic<std::uint64_t> g_cursor{0};
std::atomic<std::uint64_t> g_dropped{0};
std::atomic<bool> g_armed{false};
bool g_running = false;
struct sigaction g_old_action;

thread_local const char* t_label = "thread";

void on_sigprof(int) {
  if (!g_armed.load(std::memory_order_relaxed)) return;
  const int saved_errno = errno;
  const std::uint64_t i = g_cursor.fetch_add(1, std::memory_order_relaxed);
  if (i < kMaxSamples) {
    RawSample& s = (*g_buffer)[i];
    s.label = t_label;
    s.depth = backtrace(s.pc, kMaxDepth);
  } else {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
  }
  errno = saved_errno;
}

std::string symbolize(void* pc) {
  Dl_info info{};
  if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      std::string out(demangled);
      std::free(demangled);
      return out;
    }
    return info.dli_sname;
  }
  char buf[64];
  if (info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    base = base != nullptr ? base + 1 : info.dli_fname;
    std::snprintf(buf, sizeof(buf), "%s+0x%zx", base,
                  static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(pc) -
                                           reinterpret_cast<std::uintptr_t>(info.dli_fbase)));
  } else {
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  static_cast<std::size_t>(reinterpret_cast<std::uintptr_t>(pc)));
  }
  return buf;
}

}  // namespace

void set_thread_label(const char* label) {
  if (label != nullptr) t_label = label;
}

Sampler& Sampler::instance() {
  static Sampler sampler;
  return sampler;
}

bool Sampler::start(int hz) {
  if (g_running || hz <= 0 || hz > 10000) return false;
  if (g_buffer == nullptr) g_buffer = new std::vector<RawSample>(kMaxSamples);
  // Prime backtrace: its first call may dlopen libgcc, which is not
  // async-signal-safe; do it here instead of inside the handler.
  void* prime[2];
  backtrace(prime, 2);
  set_thread_label("main");

  struct sigaction sa{};
  sa.sa_handler = on_sigprof;
  sa.sa_flags = SA_RESTART;
  sigemptyset(&sa.sa_mask);
  if (sigaction(SIGPROF, &sa, &g_old_action) != 0) return false;

  g_armed.store(true, std::memory_order_relaxed);
  itimerval timer{};
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = static_cast<suseconds_t>(1000000 / hz);
  if (timer.it_interval.tv_usec == 0) timer.it_interval.tv_usec = 1;
  timer.it_value = timer.it_interval;
  if (setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_armed.store(false, std::memory_order_relaxed);
    sigaction(SIGPROF, &g_old_action, nullptr);
    return false;
  }
  g_running = true;
  return true;
}

void Sampler::stop() {
  if (!g_running) return;
  itimerval off{};
  setitimer(ITIMER_PROF, &off, nullptr);
  g_armed.store(false, std::memory_order_relaxed);
  sigaction(SIGPROF, &g_old_action, nullptr);
  g_running = false;
}

bool Sampler::running() const { return g_running; }

std::uint64_t Sampler::samples() const {
  const std::uint64_t n = g_cursor.load(std::memory_order_relaxed);
  return n < kMaxSamples ? n : kMaxSamples;
}

std::uint64_t Sampler::dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

void Sampler::reset() {
  if (g_running) return;
  g_cursor.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);
}

std::string Sampler::collapsed() const {
  StackCollapser collapser;
  if (g_buffer == nullptr) return collapser.str();
  std::map<void*, std::string> symbols;
  const std::uint64_t n = samples();
  std::vector<std::string> frames;
  for (std::uint64_t i = 0; i < n; ++i) {
    const RawSample& s = (*g_buffer)[i];
    frames.clear();
    frames.push_back(s.label != nullptr ? s.label : "thread");
    // Raw frames are leaf-first; emit root-first and skip handler frames.
    for (int f = s.depth - 1; f >= kSkipFrames; --f) {
      auto [it, inserted] = symbols.try_emplace(s.pc[f]);
      if (inserted) it->second = symbolize(s.pc[f]);
      frames.push_back(it->second);
    }
    if (frames.size() > 1) collapser.add(frames);
  }
  return collapser.str();
}

#else  // !CLPP_PROF_HAVE_BACKTRACE

void set_thread_label(const char*) {}

Sampler& Sampler::instance() {
  static Sampler sampler;
  return sampler;
}

bool Sampler::start(int) { return false; }
void Sampler::stop() {}
bool Sampler::running() const { return false; }
std::uint64_t Sampler::samples() const { return 0; }
std::uint64_t Sampler::dropped() const { return 0; }
void Sampler::reset() {}
std::string Sampler::collapsed() const { return {}; }

#endif

void Sampler::write_collapsed(const std::string& path) const {
  const std::string text = collapsed();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open flame output file: " + path);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) throw IoError("short write to flame file: " + path);
}

}  // namespace clpp::prof
