#include "prof/counters.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>
#define CLPP_PROF_HAVE_PERF 1
#endif

namespace clpp::prof {

namespace {

std::uint64_t wall_now_ns() {
  using clock = std::chrono::steady_clock;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          clock::now().time_since_epoch())
          .count());
}

std::uint64_t thread_cpu_now_ns() {
#if defined(__linux__)
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
    return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
           static_cast<std::uint64_t>(ts.tv_nsec);
  return 0;
#else
  return 0;
#endif
}

void fill_rusage(CounterSample& s) {
#if defined(__linux__)
  rusage ru{};
  if (getrusage(RUSAGE_THREAD, &ru) == 0) {
    s.minor_faults = static_cast<std::uint64_t>(ru.ru_minflt);
    s.major_faults = static_cast<std::uint64_t>(ru.ru_majflt);
    s.vol_ctx_switches = static_cast<std::uint64_t>(ru.ru_nvcsw);
    s.invol_ctx_switches = static_cast<std::uint64_t>(ru.ru_nivcsw);
  }
#else
  (void)s;
#endif
}

std::uint64_t sat_sub(std::uint64_t a, std::uint64_t b) { return a > b ? a - b : 0; }

}  // namespace

CounterSample CounterSample::delta_since(const CounterSample& begin) const {
  CounterSample d;
  d.hardware = hardware && begin.hardware;
  d.cycles = sat_sub(cycles, begin.cycles);
  d.instructions = sat_sub(instructions, begin.instructions);
  d.cache_references = sat_sub(cache_references, begin.cache_references);
  d.cache_misses = sat_sub(cache_misses, begin.cache_misses);
  d.branch_misses = sat_sub(branch_misses, begin.branch_misses);
  d.wall_ns = sat_sub(wall_ns, begin.wall_ns);
  d.cpu_ns = sat_sub(cpu_ns, begin.cpu_ns);
  d.minor_faults = sat_sub(minor_faults, begin.minor_faults);
  d.major_faults = sat_sub(major_faults, begin.major_faults);
  d.vol_ctx_switches = sat_sub(vol_ctx_switches, begin.vol_ctx_switches);
  d.invol_ctx_switches = sat_sub(invol_ctx_switches, begin.invol_ctx_switches);
  return d;
}

double CounterSample::ipc() const {
  if (!hardware || cycles == 0) return 0.0;
  return static_cast<double>(instructions) / static_cast<double>(cycles);
}

double CounterSample::cache_miss_rate() const {
  if (!hardware || cache_references == 0) return 0.0;
  return std::min(1.0, static_cast<double>(cache_misses) /
                           static_cast<double>(cache_references));
}

double CounterSample::cpu_utilization() const {
  if (wall_ns == 0) return 0.0;
  return std::min(static_cast<double>(cpu_ns) / static_cast<double>(wall_ns),
                  1.0);
}

#if defined(CLPP_PROF_HAVE_PERF)

namespace {

int perf_open(std::uint64_t config, int group_fd) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = config;
  // Only the group leader starts disabled; members inherit its gate.
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;  // user-space only: works at paranoid<=2
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0));
}

// (config, CounterSample field index) in open order. The leader (cycles)
// must be first.
struct EventSpec {
  std::uint64_t config;
  int field;
};
constexpr EventSpec kEvents[] = {
    {PERF_COUNT_HW_CPU_CYCLES, 0},        {PERF_COUNT_HW_INSTRUCTIONS, 1},
    {PERF_COUNT_HW_CACHE_REFERENCES, 2},  {PERF_COUNT_HW_CACHE_MISSES, 3},
    {PERF_COUNT_HW_BRANCH_MISSES, 4},
};

}  // namespace

void CounterGroup::open_hardware() {
  leader_fd_ = perf_open(kEvents[0].config, -1);
  if (leader_fd_ < 0) return;
  fds_[0] = leader_fd_;
  fields_[0] = kEvents[0].field;
  opened_ = 1;
  for (std::size_t i = 1; i < std::size(kEvents); ++i) {
    // A PMU missing one event (e.g. branch-misses on some cores) should not
    // cost the whole group; skip events that refuse to open.
    const int fd = perf_open(kEvents[i].config, leader_fd_);
    if (fd < 0) continue;
    fds_[opened_] = fd;
    fields_[opened_] = kEvents[i].field;
    ++opened_;
  }
  ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

void CounterGroup::close_hardware() {
  for (std::size_t i = 0; i < opened_; ++i)
    if (fds_[i] >= 0) close(fds_[i]);
  fds_.fill(-1);
  fields_.fill(-1);
  opened_ = 0;
  leader_fd_ = -1;
}

#else  // !CLPP_PROF_HAVE_PERF

void CounterGroup::open_hardware() {}
void CounterGroup::close_hardware() { leader_fd_ = -1; }

#endif

CounterGroup::CounterGroup() {
  const CounterMode mode = counter_mode();
  if (mode == CounterMode::kAuto || mode == CounterMode::kHardware)
    open_hardware();
}

CounterGroup::~CounterGroup() { close_hardware(); }

CounterSample CounterGroup::read() const {
  CounterSample s;
  s.wall_ns = wall_now_ns();
  s.cpu_ns = thread_cpu_now_ns();
  fill_rusage(s);
#if defined(CLPP_PROF_HAVE_PERF)
  if (leader_fd_ >= 0) {
    // PERF_FORMAT_GROUP layout: nr, time_enabled, time_running, value[nr].
    std::uint64_t buf[3 + std::size(kEvents)] = {};
    const ssize_t want =
        static_cast<ssize_t>((3 + opened_) * sizeof(std::uint64_t));
    if (::read(leader_fd_, buf, static_cast<std::size_t>(want)) == want &&
        buf[0] == opened_) {
      // Scale for multiplexing: the kernel rotates groups when more events
      // are requested than the PMU has slots.
      const double enabled = static_cast<double>(buf[1]);
      const double running = static_cast<double>(buf[2]);
      const double scale = running > 0.0 ? enabled / running : 0.0;
      std::uint64_t* out[] = {&s.cycles, &s.instructions, &s.cache_references,
                              &s.cache_misses, &s.branch_misses};
      for (std::size_t i = 0; i < opened_; ++i)
        *out[fields_[i]] = static_cast<std::uint64_t>(
            static_cast<double>(buf[3 + i]) * scale);
      s.hardware = true;
    }
  }
#endif
  return s;
}

CounterGroup& CounterGroup::this_thread() {
  struct Slot {
    std::unique_ptr<CounterGroup> group;
    CounterMode mode = CounterMode::kAuto;
  };
  thread_local Slot slot;
  const CounterMode mode = counter_mode();
  if (!slot.group || slot.mode != mode) {
    slot.group = std::make_unique<CounterGroup>();
    slot.mode = mode;
  }
  return *slot.group;
}

CounterSet& counter_set(const std::string& scope) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<CounterSet>>* sets =
      new std::map<std::string, std::unique_ptr<CounterSet>>();  // leaked
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*sets)[scope];
  if (!slot) {
    obs::MetricsRegistry& reg = obs::metrics();
    const std::string p = "clpp.prof." + scope + ".";
    slot.reset(new CounterSet{
        reg.counter(p + "samples"), reg.counter(p + "hw_samples"),
        reg.counter(p + "cycles"), reg.counter(p + "instructions"),
        reg.counter(p + "cache_references"), reg.counter(p + "cache_misses"),
        reg.counter(p + "branch_misses"), reg.counter(p + "wall_ns"),
        reg.counter(p + "cpu_ns"), reg.gauge(p + "ipc"),
        reg.gauge(p + "cache_miss_rate"), reg.gauge(p + "cpu_util")});
  }
  return *slot;
}

ScopedCounters::ScopedCounters(CounterSet& set)
    : set_(set),
      active_(prof::enabled() && obs::enabled() &&
              counter_mode() != CounterMode::kOff) {
  if (active_) begin_ = CounterGroup::this_thread().read();
}

CounterSample ScopedCounters::delta() const {
  if (!active_) return CounterSample{};
  return CounterGroup::this_thread().read().delta_since(begin_);
}

ScopedCounters::~ScopedCounters() {
  if (!active_) return;
  const CounterSample d = delta();
  set_.samples.add(1);
  set_.wall_ns.add(d.wall_ns);
  set_.cpu_ns.add(d.cpu_ns);
  set_.cpu_util.set(d.cpu_utilization());
  if (d.hardware) {
    set_.hw_samples.add(1);
    set_.cycles.add(d.cycles);
    set_.instructions.add(d.instructions);
    set_.cache_references.add(d.cache_references);
    set_.cache_misses.add(d.cache_misses);
    set_.branch_misses.add(d.branch_misses);
    set_.ipc.set(d.ipc());
    set_.cache_miss_rate.set(d.cache_miss_rate());
  }
}

}  // namespace clpp::prof
