#include "prof/profdiff.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace clpp::prof {

namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) throw IoError("cannot read " + path.string());
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// "BENCH_bench_micro_kernels.metrics.json" → "bench_micro_kernels".
std::string bench_name_for(const fs::path& path) {
  std::string stem = path.stem().string();  // drops .json
  for (const char* suffix : {".metrics", ".trace"}) {
    if (stem.size() > std::strlen(suffix) &&
        stem.compare(stem.size() - std::strlen(suffix), std::string::npos,
                     suffix) == 0)
      stem.resize(stem.size() - std::strlen(suffix));
  }
  if (stem.rfind("BENCH_", 0) == 0) stem.erase(0, std::strlen("BENCH_"));
  return stem;
}

double time_unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;
}

void absorb_metrics(const Json& doc, BenchArtifacts& out) {
  if (doc.contains("counters"))
    for (const auto& [name, v] : doc.at("counters").fields())
      out.counters[name] = v.as_double();
  if (doc.contains("gauges"))
    for (const auto& [name, v] : doc.at("gauges").fields())
      out.gauges[name] = v.as_double();
  if (doc.contains("histograms")) {
    for (const auto& [name, stats] : doc.at("histograms").fields()) {
      auto& dst = out.histograms[name];
      for (const char* key : {"count", "mean", "p50", "p95", "p99", "max"})
        if (stats.contains(key)) dst[key] = stats.at(key).as_double();
    }
  }
}

void absorb_google_benchmark(const Json& doc, BenchArtifacts& out) {
  const Json& benchmarks = doc.at("benchmarks");
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    const Json& bm = benchmarks.at(i);
    // Repetition aggregates (mean/median/stddev rows) would double count.
    if (bm.get_string("run_type", "iteration") != "iteration") continue;
    const double to_ns = time_unit_to_ns(bm.get_string("time_unit", "ns"));
    auto& dst = out.benchmarks[bm.get_string("name", "?")];
    if (bm.contains("real_time"))
      dst["real_time_ns"] = bm.at("real_time").as_double() * to_ns;
    if (bm.contains("cpu_time"))
      dst["cpu_time_ns"] = bm.at("cpu_time").as_double() * to_ns;
  }
}

void absorb_trace(const Json& doc, BenchArtifacts& out) {
  const Json& events = doc.at("traceEvents");
  double max_us = 0.0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Json& e = events.at(i);
    if (!e.contains("ts")) continue;
    const double end =
        e.at("ts").as_double() + (e.contains("dur") ? e.at("dur").as_double() : 0.0);
    max_us = std::max(max_us, end);
  }
  out.wall_seconds = std::max(out.wall_seconds, max_us / 1e6);
}

/// clpp.shard_scaling.v1 (bench/shard_scaling_bench): each point becomes a
/// latency pseudo-histogram (so the ":hist:…latency_us:" tracking rule
/// gates its tail percentiles) plus a throughput gauge, and the scaling /
/// cache_win summary ratios land as gauges for trajectory tracking.
void absorb_scaling(const Json& doc, BenchArtifacts& out) {
  const Json& points = doc.at("points");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Json& p = points.at(i);
    std::ostringstream base;
    base << "clpp.scaling.shards" << p.at("shards").as_int() << ".dup"
         << static_cast<int>(p.at("dup_rate").as_double() * 100.0)
         << (p.at("cache_cap").as_int() > 0 ? ".cache_on" : ".cache_off");
    auto& dst = out.histograms[base.str() + ".latency_us"];
    const Json& lat = p.at("latency_us");
    for (const char* key : {"p50", "p95", "p99"})
      if (lat.contains(key)) dst[key] = lat.at(key).as_double();
    out.gauges[base.str() + ".throughput_rps"] =
        p.at("throughput_rps").as_double();
  }
  if (doc.contains("scaling"))
    out.gauges["clpp.scaling.per_core_speedup"] =
        doc.at("scaling").at("per_core_speedup").as_double();
  if (doc.contains("cache_win")) {
    out.gauges["clpp.scaling.cache_win.speedup"] =
        doc.at("cache_win").at("speedup").as_double();
    out.gauges["clpp.scaling.cache_win.hit_rate"] =
        doc.at("cache_win").at("hit_rate").as_double();
  }
}

}  // namespace

std::map<std::string, BenchArtifacts> scan_artifacts(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec))
    throw IoError("not an artifacts directory: " + dir);
  std::map<std::string, BenchArtifacts> scan;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file() || entry.path().extension() != ".json")
      continue;
    if (entry.path().filename() == "BENCH_summary.json") continue;  // derived
    Json doc;
    try {
      doc = Json::parse(slurp(entry.path()));
    } catch (const Error&) {
      continue;  // partial writes / foreign files are not fatal
    }
    BenchArtifacts& out = scan[bench_name_for(entry.path())];
    try {
      if (doc.contains("benchmarks")) absorb_google_benchmark(doc, out);
      else if (doc.contains("traceEvents")) absorb_trace(doc, out);
      else if (doc.get_string("schema", "") == "clpp.shard_scaling.v1")
        absorb_scaling(doc, out);
      else if (doc.contains("counters") || doc.contains("histograms"))
        absorb_metrics(doc, out);
    } catch (const Error&) {
      // Shape surprises in one artifact should not sink the whole scan.
    }
  }
  return scan;
}

std::map<std::string, double> flatten_series(
    const std::map<std::string, BenchArtifacts>& scan) {
  std::map<std::string, double> series;
  for (const auto& [bench, a] : scan) {
    if (a.wall_seconds > 0.0)
      series[bench + ":trace:wall_seconds"] = a.wall_seconds;
    for (const auto& [name, v] : a.counters)
      series[bench + ":counter:" + name] = v;
    for (const auto& [name, v] : a.gauges) series[bench + ":gauge:" + name] = v;
    for (const auto& [name, stats] : a.histograms)
      for (const auto& [stat, v] : stats)
        series[bench + ":hist:" + name + ":" + stat] = v;
    for (const auto& [name, times] : a.benchmarks)
      for (const auto& [stat, v] : times)
        series[bench + ":bench:" + name + ":" + stat] = v;
  }
  return series;
}

bool series_is_tracked(const std::string& key) {
  const auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::strlen(suffix);
    return key.size() >= n && key.compare(key.size() - n, n, suffix) == 0;
  };
  if (key.find(":bench:") != std::string::npos)
    return ends_with(":real_time_ns") || ends_with(":cpu_time_ns");
  // Latency histograms gate on tail percentiles as well as the mean: a
  // regression that only fattens the tail (lock contention, a stalled
  // batch window) leaves the mean almost untouched but is exactly what a
  // serving path must catch.
  if (key.find(":hist:") != std::string::npos)
    return key.find("latency_us") != std::string::npos &&
           (ends_with(":mean") || ends_with(":p95") || ends_with(":p99"));
  // Model-quality levels (clpp::insight gauges) and dependence-engine
  // decision mix (clpp.ddtest.* counters): a calibration/drift regression
  // or a provenance shift (pairs silently falling back to the conservative
  // test) is a quality bug even when every latency stays flat.
  if (key.find(":gauge:clpp.insight.") != std::string::npos) return true;
  if (key.find(":counter:clpp.ddtest.") != std::string::npos) return true;
  // Sharded-serving reliability counters (clpp.shard.*): more deaths,
  // redispatches, or expiries between runs of the same scenario is a
  // robustness regression even when every latency stays flat.
  if (key.find(":counter:clpp.shard.") != std::string::npos) return true;
  // Result-cache effectiveness (clpp.cache.*): more misses or evictions on
  // the same request mix means the cache stopped absorbing repeat traffic
  // (a digest change, a broken LRU, a shrunk budget). Hits are left
  // untracked — an increase there is an improvement, not a regression.
  if (key.find(":counter:clpp.cache.") != std::string::npos)
    return ends_with(".misses") || ends_with(".evictions");
  return false;
}

double DiffRow::relative_change() const {
  if (base == 0.0) return 0.0;
  return current / base - 1.0;
}

std::size_t DiffReport::regressions() const {
  std::size_t n = 0;
  for (const DiffRow& row : rows) n += row.regressed ? 1 : 0;
  return n;
}

DiffReport diff_series(const std::map<std::string, double>& base,
                       const std::map<std::string, double>& current,
                       double threshold) {
  DiffReport report;
  report.threshold = threshold;
  for (const auto& [key, base_value] : base) {
    const auto it = current.find(key);
    if (it == current.end()) {
      ++report.only_base;
      continue;
    }
    DiffRow row;
    row.series = key;
    row.base = base_value;
    row.current = it->second;
    row.tracked = series_is_tracked(key);
    row.regressed =
        row.tracked && base_value > 0.0 && it->second > base_value * (1.0 + threshold);
    report.rows.push_back(std::move(row));
  }
  for (const auto& [key, value] : current)
    if (base.find(key) == base.end()) ++report.only_current;
  return report;
}

std::string render_diff(const DiffReport& report, bool all) {
  TextTable table({"series", "base", "current", "Δ%", ""});
  std::size_t shown = 0;
  for (const DiffRow& row : report.rows) {
    if (!all && !row.tracked) continue;
    ++shown;
    table.add_row({row.series, TextTable::num(row.base, 3),
                   TextTable::num(row.current, 3),
                   TextTable::num(row.relative_change() * 100.0, 1),
                   row.regressed ? "REGRESSED" : (row.tracked ? "ok" : "")});
  }
  std::string out = table.str();
  std::ostringstream tail;
  tail << shown << " series compared (threshold "
       << static_cast<int>(std::lround(report.threshold * 100.0)) << "%), "
       << report.regressions() << " regressed";
  if (report.only_base > 0 || report.only_current > 0)
    tail << "; " << report.only_base << " only in base, " << report.only_current
         << " only in current";
  tail << "\n";
  out += tail.str();
  return out;
}

Json diff_to_json(const DiffReport& report) {
  Json rows = Json::array();
  for (const DiffRow& row : report.rows) {
    Json r = Json::object();
    r["series"] = row.series;
    r["base"] = row.base;
    r["current"] = row.current;
    r["tracked"] = row.tracked;
    r["regressed"] = row.regressed;
    rows.push_back(std::move(r));
  }
  Json doc = Json::object();
  doc["threshold"] = report.threshold;
  doc["regressions"] = static_cast<std::int64_t>(report.regressions());
  doc["only_base"] = static_cast<std::int64_t>(report.only_base);
  doc["only_current"] = static_cast<std::int64_t>(report.only_current);
  doc["rows"] = std::move(rows);
  return doc;
}

Json summarize_artifacts(const std::map<std::string, BenchArtifacts>& scan) {
  Json benches = Json::object();
  for (const auto& [bench, a] : scan) {
    Json b = Json::object();
    b["wall_seconds"] = a.wall_seconds;
    Json counters = Json::object();
    for (const auto& [name, v] : a.counters) counters[name] = v;
    b["counters"] = std::move(counters);
    Json gauges = Json::object();
    for (const auto& [name, v] : a.gauges) gauges[name] = v;
    b["gauges"] = std::move(gauges);
    Json hists = Json::object();
    for (const auto& [name, stats] : a.histograms) {
      Json h = Json::object();
      for (const auto& [stat, v] : stats) h[stat] = v;
      hists[name] = std::move(h);
    }
    b["histograms"] = std::move(hists);
    Json bms = Json::object();
    for (const auto& [name, times] : a.benchmarks) {
      Json t = Json::object();
      for (const auto& [stat, v] : times) t[stat] = v;
      bms[name] = std::move(t);
    }
    b["benchmarks"] = std::move(bms);
    benches[bench] = std::move(b);
  }
  Json doc = Json::object();
  doc["schema"] = "clpp.bench_summary.v1";
  doc["benches"] = std::move(benches);
  return doc;
}

std::string write_summary(const std::string& dir) {
  const Json doc = summarize_artifacts(scan_artifacts(dir));
  const std::string path = (fs::path(dir) / "BENCH_summary.json").string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) throw IoError("cannot open summary output: " + path);
  out << doc.dump() << "\n";
  if (!out.good()) throw IoError("short write to summary: " + path);
  return path;
}

}  // namespace clpp::prof
