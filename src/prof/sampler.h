// Sampling profiler: timer-driven backtraces → collapsed stacks.
//
// `Sampler::start(hz)` installs a SIGPROF handler and arms ITIMER_PROF, so
// the kernel delivers a signal to a *running* thread every 1/hz seconds of
// process CPU time — CPU-time sampling with per-thread attribution for
// free. The handler captures a raw `backtrace(3)` into a preallocated
// lock-free buffer; all symbolization (`dladdr` + `__cxa_demangle`) happens
// later on the caller's thread. `collapsed()` renders the classic
// Brendan-Gregg collapsed-stack format:
//
//   main;clpp::core::train_classifier;clpp::gemm 421
//
// one line per unique stack (root first, leaf last), ready for
// flamegraph.pl or https://speedscope.app. On platforms without
// <execinfo.h> `start` returns false and the sampler stays inert.
//
// `StackCollapser` is the aggregation half factored out for testability:
// feed it symbolized stacks, get the collapsed text back, parse it again.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace clpp::prof {

/// Aggregates root-first symbolized stacks into collapsed-stack text.
class StackCollapser {
 public:
  /// Adds `count` occurrences of a stack (frames ordered root → leaf).
  /// Semicolons inside frame names are replaced with ':' to keep the
  /// format unambiguous.
  void add(const std::vector<std::string>& frames, std::uint64_t count = 1);

  bool empty() const { return counts_.empty(); }
  std::uint64_t total() const;

  /// One "frame;frame;frame count\n" line per unique stack, sorted.
  std::string str() const;

  /// Inverse of `str`: stack line → count. Throws InvalidArgument on a
  /// malformed line.
  static std::map<std::string, std::uint64_t> parse(std::string_view text);

 private:
  std::map<std::string, std::uint64_t> counts_;
};

/// The process-wide sampling profiler. At most one can run (ITIMER_PROF is
/// per-process), hence the singleton.
class Sampler {
 public:
  static Sampler& instance();

  /// Arms the profiler at `hz` samples per CPU-second. Returns false when
  /// already running, hz is invalid, or the platform lacks backtrace
  /// support. Capacity is fixed; samples beyond it are counted as dropped.
  bool start(int hz = 97);

  /// Disarms the timer and restores the previous SIGPROF disposition.
  /// Captured samples are kept until `reset`.
  void stop();

  bool running() const;
  std::uint64_t samples() const;
  std::uint64_t dropped() const;

  /// Discards captured samples (sampler must be stopped).
  void reset();

  /// Symbolizes and aggregates everything captured so far.
  std::string collapsed() const;

  /// Writes `collapsed()` to `path` (throws IoError on failure).
  void write_collapsed(const std::string& path) const;

 private:
  Sampler() = default;
};

/// Label prefixed as the root frame of this thread's stacks (string literal
/// or otherwise immortal). Defaults to "main" for the thread that calls
/// `Sampler::start`, "thread" elsewhere.
void set_thread_label(const char* label);

}  // namespace clpp::prof
