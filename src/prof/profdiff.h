// Perf-regression tracking over `bench_artifacts/` directories.
//
// `run_benches.sh` leaves three artifact families per bench:
//   BENCH_<name>.metrics.json   clpp::obs metrics snapshot
//   BENCH_<name>.trace.json     Chrome trace (wall-clock extent)
//   BENCH_<name>.json           google-benchmark report (micro kernels)
//
// This module turns two such directories into a comparable set of named
// numeric series, diffs them, and decides whether any *tracked* series
// (time-like: benchmark real/cpu time, latency-histogram means) regressed
// beyond a threshold — the gate `clpp-profdiff` exposes as its exit code.
// It also merges one directory into the single-file BENCH_summary.json
// that captures a run for trajectory tracking.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clpp {
class Json;  // support/json.h
}

namespace clpp::prof {

/// Everything harvested from one bench's artifact files.
struct BenchArtifacts {
  double wall_seconds = 0.0;  ///< trace extent; 0 when no trace was found
  std::map<std::string, double> counters;
  std::map<std::string, double> gauges;
  /// histogram name → {count, mean, p50, p95, p99, max}
  std::map<std::string, std::map<std::string, double>> histograms;
  /// google-benchmark name → {real_time_ns, cpu_time_ns}
  std::map<std::string, std::map<std::string, double>> benchmarks;
};

/// Scans every `*.json` in `dir` (non-recursive), classifying each file by
/// content. Unreadable or malformed files are skipped. Throws IoError when
/// `dir` does not exist or is not a directory.
std::map<std::string, BenchArtifacts> scan_artifacts(const std::string& dir);

/// Flattens a scan into "bench:kind:series" → value, e.g.
///   "bench_micro_kernels:bench:BM_Gemm/64:real_time_ns"
///   "bench_table3_corpus:counter:clpp.train.epochs"
///   "bench_table3_corpus:hist:clpp.infer.latency_us:mean"
std::map<std::string, double> flatten_series(
    const std::map<std::string, BenchArtifacts>& scan);

/// True for time-like series where an increase is a regression: benchmark
/// real/cpu time and latency-histogram means.
bool series_is_tracked(const std::string& key);

struct DiffRow {
  std::string series;
  double base = 0.0;
  double current = 0.0;
  bool tracked = false;
  bool regressed = false;
  /// current/base - 1 (0 when base is 0).
  double relative_change() const;
};

struct DiffReport {
  std::vector<DiffRow> rows;   ///< series present in both runs
  std::size_t only_base = 0;   ///< series that vanished
  std::size_t only_current = 0;
  double threshold = 0.0;
  std::size_t regressions() const;
};

/// Compares two flattened series maps; a tracked series regresses when
/// current > base * (1 + threshold) and base > 0.
DiffReport diff_series(const std::map<std::string, double>& base,
                       const std::map<std::string, double>& current,
                       double threshold);

/// ASCII delta table (support/table.h); `all` includes untracked series.
std::string render_diff(const DiffReport& report, bool all = false);

/// DiffReport as JSON for machine consumption.
Json diff_to_json(const DiffReport& report);

/// BENCH_summary.json document for one artifacts directory.
Json summarize_artifacts(const std::map<std::string, BenchArtifacts>& scan);

/// Scans `dir` and writes `<dir>/BENCH_summary.json`; returns the path.
std::string write_summary(const std::string& dir);

}  // namespace clpp::prof
