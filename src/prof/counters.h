// Hardware-counter groups with a universal software fallback.
//
// `CounterGroup` opens one perf_event_open(2) group per thread — cycles
// (leader), instructions, cache-references, cache-misses, branch-misses —
// measuring user-space execution of the calling thread only, so it works
// at perf_event_paranoid<=2 without CAP_PERFMON. When the syscall is
// unavailable (containers with seccomp filters, non-Linux builds, paranoid
// settings) the group silently degrades to software counters: wall time,
// thread CPU time, and rusage deltas (page faults, context switches).
// Every `CounterSample` carries both families, plus `hardware` telling you
// whether the cycle/instruction fields are real.
//
// The RAII entry point pairs a region with the span tracer:
//
//   void step(...) {
//     CLPP_PROF_COUNTERS("train.epoch");   // trace span + counter scope
//     ...
//   }
//
// On scope exit the delta is recorded under `clpp.prof.<name>.*`: counters
// cycles / instructions / cache_references / cache_misses / branch_misses /
// wall_ns / cpu_ns, and gauges ipc / cache_miss_rate / cpu_util.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/prof.h"

namespace clpp::prof {

/// One reading of every counter the group knows about. Deltas (end - begin)
/// are what gets reported; absolute values are only meaningful relative to
/// the group's creation.
struct CounterSample {
  bool hardware = false;  ///< cycle/instruction/cache/branch fields are real

  // Hardware family (zero when !hardware).
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t cache_references = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;

  // Software family (always filled).
  std::uint64_t wall_ns = 0;
  std::uint64_t cpu_ns = 0;  ///< calling thread's CPU time
  std::uint64_t minor_faults = 0;
  std::uint64_t major_faults = 0;
  std::uint64_t vol_ctx_switches = 0;
  std::uint64_t invol_ctx_switches = 0;

  /// Per-field saturating difference (this - begin).
  CounterSample delta_since(const CounterSample& begin) const;

  /// Instructions per cycle; 0 when cycles are 0 or not hardware-backed.
  double ipc() const;
  /// cache_misses / cache_references in [0, 1]; 0 when unavailable.
  double cache_miss_rate() const;
  /// cpu_ns / wall_ns (can exceed 1 only through clock skew; clamped).
  double cpu_utilization() const;
};

/// A per-thread counter group. Construction applies the global
/// `prof::counter_mode()`; `hardware()` reports whether perf events opened.
/// Reads are cheap (one read(2) on the group fd plus three clock reads).
class CounterGroup {
 public:
  CounterGroup();
  ~CounterGroup();
  CounterGroup(const CounterGroup&) = delete;
  CounterGroup& operator=(const CounterGroup&) = delete;

  /// True when the perf_event group opened and hardware fields are live.
  bool hardware() const { return leader_fd_ >= 0; }

  /// Samples every counter now.
  CounterSample read() const;

  /// The calling thread's lazily constructed group. Reopened transparently
  /// when `prof::set_counter_mode` changed since construction.
  static CounterGroup& this_thread();

 private:
  void open_hardware();
  void close_hardware();

  int leader_fd_ = -1;
  // fd + destination-field index for each successfully opened event.
  std::array<int, 5> fds_{{-1, -1, -1, -1, -1}};
  std::array<int, 5> fields_{{-1, -1, -1, -1, -1}};
  std::size_t opened_ = 0;
};

/// Cached metric handles for one counter scope name (`clpp.prof.<scope>.*`).
/// Returned references live as long as the process (registry semantics).
struct CounterSet {
  obs::Counter& samples;
  obs::Counter& hw_samples;
  obs::Counter& cycles;
  obs::Counter& instructions;
  obs::Counter& cache_references;
  obs::Counter& cache_misses;
  obs::Counter& branch_misses;
  obs::Counter& wall_ns;
  obs::Counter& cpu_ns;
  obs::Gauge& ipc;
  obs::Gauge& cache_miss_rate;
  obs::Gauge& cpu_util;
};

/// Looks up (creating on first use) the metric set for `scope`.
CounterSet& counter_set(const std::string& scope);

/// RAII counter region: samples the thread's group on entry, records the
/// delta into `set` on exit. Inactive (two relaxed loads) unless both
/// prof and obs are enabled and the counter mode is not kOff.
class ScopedCounters {
 public:
  explicit ScopedCounters(CounterSet& set);
  ~ScopedCounters();
  ScopedCounters(const ScopedCounters&) = delete;
  ScopedCounters& operator=(const ScopedCounters&) = delete;

  bool active() const { return active_; }
  /// Delta from scope entry to now (all-zero when inactive).
  CounterSample delta() const;

 private:
  CounterSet& set_;
  bool active_;
  CounterSample begin_;
};

}  // namespace clpp::prof

/// Opens a trace span *and* a hardware-counter scope named `name` (must be
/// a string literal); the span↔counter pairing means every counted region
/// is also visible on the Perfetto timeline under the same name.
#define CLPP_PROF_COUNTERS(name)                                               \
  static ::clpp::prof::CounterSet& CLPP_OBS_CONCAT(clpp_prof_cset_,            \
                                                   __LINE__) =                 \
      ::clpp::prof::counter_set(name);                                         \
  ::clpp::obs::TraceSpan CLPP_OBS_CONCAT(clpp_prof_span_, __LINE__){name};     \
  ::clpp::prof::ScopedCounters CLPP_OBS_CONCAT(clpp_prof_scope_, __LINE__) {   \
    CLPP_OBS_CONCAT(clpp_prof_cset_, __LINE__)                                 \
  }
