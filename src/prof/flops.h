// FLOP/byte accounting: roofline-style kernel throughput metrics.
//
// Kernels declare their work up front; the scope measures wall time and
// reports achieved GFLOP/s and arithmetic intensity (FLOPs per byte of
// compulsory memory traffic) under `clpp.prof.<kernel>.*`:
//
//   void gemm(...) {
//     CLPP_PROF_KERNEL("gemm", 2ull * m * n * k,
//                      sizeof(float) * (m * k + k * n + 2 * m * n));
//     ...
//   }
//
// Counters `flops` / `bytes` / `wall_ns` / `calls` accumulate, so the
// *aggregate* achieved GFLOP/s of a run is flops / wall_ns; gauges
// `gflops` and `arith_intensity` hold the most recent invocation. Gated on
// `obs::enabled()` like every other metric (one relaxed load when off).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace clpp::prof {

/// Cached metric handles for one kernel (`clpp.prof.<kernel>.*`).
struct KernelCounters {
  obs::Counter& calls;
  obs::Counter& flops;
  obs::Counter& bytes;
  obs::Counter& wall_ns;
  obs::Gauge& gflops;
  obs::Gauge& arith_intensity;
};

/// Looks up (creating on first use) the metric set for `kernel`.
KernelCounters& kernel_counters(const std::string& kernel);

/// Records one kernel invocation with an externally measured wall time —
/// for call sites where wrapping the kernel in a scope would be awkward.
void record_kernel(KernelCounters& counters, std::uint64_t flops,
                   std::uint64_t bytes, std::uint64_t wall_ns);

/// RAII accounting scope: wall time measured construction → destruction.
class KernelScope {
 public:
  KernelScope(KernelCounters& counters, std::uint64_t flops, std::uint64_t bytes)
      : counters_(counters),
        flops_(flops),
        bytes_(bytes),
        begin_ns_(obs::enabled() ? obs::Tracer::now_ns() : kInactive) {}

  ~KernelScope() {
    if (begin_ns_ != kInactive)
      record_kernel(counters_, flops_, bytes_, obs::Tracer::now_ns() - begin_ns_);
  }

  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};
  KernelCounters& counters_;
  std::uint64_t flops_;
  std::uint64_t bytes_;
  std::uint64_t begin_ns_;
};

}  // namespace clpp::prof

/// Accounts `flops` floating-point operations and `bytes` of compulsory
/// memory traffic to kernel `name` (a string literal) over the enclosing
/// scope's wall time.
#define CLPP_PROF_KERNEL(name, flops, bytes)                                    \
  static ::clpp::prof::KernelCounters& CLPP_OBS_CONCAT(clpp_prof_kc_,           \
                                                       __LINE__) =              \
      ::clpp::prof::kernel_counters(name);                                      \
  ::clpp::prof::KernelScope CLPP_OBS_CONCAT(clpp_prof_ks_, __LINE__) {          \
    CLPP_OBS_CONCAT(clpp_prof_kc_, __LINE__), (flops), (bytes)                  \
  }
