// clpp::prof — profiling layer on top of clpp::obs.
//
// Where clpp::obs answers *where* time goes (spans, metrics), clpp::prof
// answers *why*: hardware counters (IPC, cache behavior) attached to scoped
// regions, a sampling profiler exporting collapsed stacks for flamegraphs,
// and FLOP/byte accounting that turns kernel spans into achieved GFLOP/s
// and arithmetic-intensity (roofline) numbers. Everything degrades
// gracefully: no perf_event privileges → software counters (wall/cpu time
// + rusage); no backtrace support → the sampler reports itself unavailable.
//
// Environment integration (applied once at process start for any binary
// that links clpp_prof):
//   CLPP_PROF=1                  enable the layer (implies CLPP_OBS=1) and
//                                start the sampling profiler; a collapsed
//                                stack file is written at exit
//   CLPP_PROF_COUNTERS=auto|hw|sw|off   counter source (default auto: try
//                                perf_event_open, fall back to software)
//   CLPP_FLAME_OUT=PATH          collapsed-stack output path (default
//                                clpp_flame.folded; empty string disables)
//   CLPP_PROF_HZ=N               sampler frequency in Hz (default 97)
#pragma once

#include <atomic>
#include <string>

namespace clpp::prof {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when the profiling layer is active.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turns the layer on or off. Enabling also enables clpp::obs — profiling
/// data lands in the obs metrics registry, which gates on its own flag.
void set_enabled(bool on);

/// Counter source selection (see prof/counters.h).
enum class CounterMode {
  kAuto,      ///< try perf_event_open, fall back to software
  kHardware,  ///< perf_event_open only (reads are zero when unavailable)
  kSoftware,  ///< wall/cpu clocks + rusage only
  kOff,       ///< scoped counter regions record nothing
};

CounterMode counter_mode();
void set_counter_mode(CounterMode mode);

/// "auto" | "hw" | "sw" | "off" | "0" (anything else → kAuto).
CounterMode parse_counter_mode(const std::string& text);

/// Collapsed-stack output path written by `export_flame` (empty disables).
void set_flame_out(std::string path);
const std::string& flame_out();

/// Stops the sampler (if running) and writes its collapsed stacks to the
/// configured flame path; no-op when the path is empty or no samples exist.
void export_flame();

/// Applies the CLPP_PROF / CLPP_PROF_COUNTERS / CLPP_FLAME_OUT /
/// CLPP_PROF_HZ environment variables. When CLPP_PROF enables the layer it
/// starts the sampling profiler and registers an atexit hook invoking
/// `export_flame`. Runs automatically at process start; calling it again
/// re-reads the environment.
void init_from_env();

}  // namespace clpp::prof
