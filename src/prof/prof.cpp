#include "prof/prof.h"

#include <cstdio>
#include <cstdlib>

#include "obs/obs.h"
#include "prof/sampler.h"
#include "support/error.h"

namespace clpp::prof {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::atomic<int> g_counter_mode{static_cast<int>(CounterMode::kAuto)};

std::string& flame_out_path() {
  static std::string path;
  return path;
}

void register_flame_exit_export() {
  static bool registered = false;
  if (registered) return;
  // Same static-lifetime discipline as obs: touch every static the atexit
  // handler needs before registering it.
  flame_out_path();
  Sampler::instance();
  std::atexit(export_flame);
  registered = true;
}

}  // namespace

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
  // Profiling data is surfaced through the obs metrics registry; enabling
  // prof without obs would silently drop everything.
  if (on) obs::set_enabled(true);
}

CounterMode counter_mode() {
  return static_cast<CounterMode>(g_counter_mode.load(std::memory_order_relaxed));
}

void set_counter_mode(CounterMode mode) {
  g_counter_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

CounterMode parse_counter_mode(const std::string& text) {
  if (text == "hw" || text == "hardware") return CounterMode::kHardware;
  if (text == "sw" || text == "software") return CounterMode::kSoftware;
  if (text == "off" || text == "0" || text == "none") return CounterMode::kOff;
  return CounterMode::kAuto;
}

void set_flame_out(std::string path) {
  flame_out_path() = std::move(path);
  if (!flame_out_path().empty()) register_flame_exit_export();
}

const std::string& flame_out() { return flame_out_path(); }

void export_flame() {
  Sampler& sampler = Sampler::instance();
  if (sampler.running()) sampler.stop();
  if (flame_out_path().empty() || sampler.samples() == 0) return;
  try {
    sampler.write_collapsed(flame_out_path());
  } catch (const Error& e) {
    std::fprintf(stderr, "clpp::prof: flame export failed: %s\n", e.what());
  }
}

void init_from_env() {
  const char* prof = std::getenv("CLPP_PROF");
  const bool on = prof != nullptr && prof[0] != '\0' && prof[0] != '0';
  if (prof != nullptr) set_enabled(on);
  if (const char* v = std::getenv("CLPP_PROF_COUNTERS"))
    set_counter_mode(parse_counter_mode(v));
  if (const char* v = std::getenv("CLPP_FLAME_OUT"))
    set_flame_out(v);
  else if (on && flame_out().empty())
    set_flame_out("clpp_flame.folded");
  if (on && !Sampler::instance().running()) {
    int hz = 97;
    if (const char* v = std::getenv("CLPP_PROF_HZ")) {
      const int parsed = std::atoi(v);
      if (parsed > 0) hz = parsed;
    }
    Sampler::instance().start(hz);
    register_flame_exit_export();
  }
}

namespace {
// Any binary linking clpp_prof picks up the CLPP_PROF* environment at start.
[[maybe_unused]] const bool g_env_applied = (init_from_env(), true);
}  // namespace

}  // namespace clpp::prof
