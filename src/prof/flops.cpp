#include "prof/flops.h"

#include <map>
#include <memory>
#include <mutex>

#include "prof/prof.h"

namespace clpp::prof {

namespace {
// Instrumented kernels (gemm, attention) are the widest-linked entry point
// into clpp_prof; referencing init_from_env here drags the prof.cpp object
// — and with it the CLPP_PROF* env initializer and sampler startup — into
// every binary that instruments a kernel, not just those using counters.
[[maybe_unused]] const bool g_env_linked = (init_from_env(), true);
}  // namespace

KernelCounters& kernel_counters(const std::string& kernel) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<KernelCounters>>* sets =
      new std::map<std::string, std::unique_ptr<KernelCounters>>();  // leaked
  std::lock_guard<std::mutex> lock(mu);
  auto& slot = (*sets)[kernel];
  if (!slot) {
    obs::MetricsRegistry& reg = obs::metrics();
    const std::string p = "clpp.prof." + kernel + ".";
    slot.reset(new KernelCounters{
        reg.counter(p + "calls"), reg.counter(p + "flops"),
        reg.counter(p + "bytes"), reg.counter(p + "wall_ns"),
        reg.gauge(p + "gflops"), reg.gauge(p + "arith_intensity")});
  }
  return *slot;
}

void record_kernel(KernelCounters& counters, std::uint64_t flops,
                   std::uint64_t bytes, std::uint64_t wall_ns) {
  counters.calls.add(1);
  counters.flops.add(flops);
  counters.bytes.add(bytes);
  counters.wall_ns.add(wall_ns);
  if (wall_ns > 0)
    // flops per nanosecond is numerically GFLOP/s.
    counters.gflops.set(static_cast<double>(flops) / static_cast<double>(wall_ns));
  if (bytes > 0)
    counters.arith_intensity.set(static_cast<double>(flops) /
                                 static_cast<double>(bytes));
}

}  // namespace clpp::prof
