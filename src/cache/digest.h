// Canonical snippet digests for result caching and digest-consistent shard
// routing (DESIGN.md §13).
//
// Advice is a pure function of the code text, so two requests whose snippets
// differ only in surrounding/interior whitespace must hit the same cache
// entry and route to the same shard. `normalize_snippet` collapses exactly
// that equivalence class (whitespace runs -> one space, edges trimmed) —
// collapsing is token-preserving for C-family source, which is all the
// serving path accepts — and `snippet_digest` is FNV-1a 64 over the
// normalized bytes. 0 is reserved as "no digest" (admin/cmd payloads,
// unparseable requests), so the digest function never returns it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace clpp::cache {

/// Canonical form: leading/trailing whitespace trimmed, every interior run
/// of whitespace collapsed to a single space.
std::string normalize_snippet(const std::string& code);

/// FNV-1a 64-bit over raw bytes.
std::uint64_t fnv1a64(const char* data, std::size_t len);

/// Digest of the normalized snippet. Never returns 0 (reserved: no digest).
std::uint64_t snippet_digest(const std::string& code);

/// Rendezvous (highest-random-weight) score for placing `key` on `slot`:
/// each slot scores every key independently, the live slot with the highest
/// score owns the key. Removing a slot only moves the keys it owned; keys
/// come back home when it returns (see ShardSupervisor::route).
std::uint64_t rendezvous_score(std::uint64_t key, std::uint64_t slot);

}  // namespace clpp::cache
