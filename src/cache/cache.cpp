#include "cache/cache.h"

#include <cstdlib>

#include "support/json.h"

namespace clpp::cache {

namespace {

/// Parses a non-negative size knob; returns `fallback` when unset or not a
/// clean number (a typo'd knob should not silently disable the cache).
bool env_size(const char* name, std::size_t* out) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

}  // namespace

CacheConfig CacheConfig::from_env(std::size_t default_entries) {
  CacheConfig config;
  config.max_entries = default_entries;
  env_size("CLPP_CACHE_CAP", &config.max_entries);
  env_size("CLPP_CACHE_BYTES", &config.max_bytes);
  return config;
}

Json cache_stats_json(const CacheStats& stats, const CacheConfig& config) {
  Json out = Json::object();
  out["enabled"] = config.enabled();
  out["max_entries"] = static_cast<std::int64_t>(config.max_entries);
  out["max_bytes"] = static_cast<std::int64_t>(config.max_bytes);
  out["hits"] = static_cast<std::int64_t>(stats.hits);
  out["misses"] = static_cast<std::int64_t>(stats.misses);
  out["insertions"] = static_cast<std::int64_t>(stats.insertions);
  out["evictions"] = static_cast<std::int64_t>(stats.evictions);
  out["entries"] = static_cast<std::int64_t>(stats.entries);
  out["bytes"] = static_cast<std::int64_t>(stats.bytes);
  out["hit_rate"] = stats.hit_rate();
  return out;
}

}  // namespace clpp::cache
