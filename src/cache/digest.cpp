#include "cache/digest.h"

#include <cctype>

namespace clpp::cache {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// splitmix64 finalizer: a full-avalanche mix so rendezvous scores for
/// adjacent slots are uncorrelated.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::string normalize_snippet(const std::string& code) {
  std::string out;
  out.reserve(code.size());
  bool pending_space = false;
  for (const char c : code) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = !out.empty();  // drop leading runs entirely
      continue;
    }
    if (pending_space) {
      out.push_back(' ');
      pending_space = false;
    }
    out.push_back(c);
  }
  return out;
}

std::uint64_t fnv1a64(const char* data, std::size_t len) {
  std::uint64_t hash = kFnvOffset;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

std::uint64_t snippet_digest(const std::string& code) {
  const std::string canon = normalize_snippet(code);
  const std::uint64_t hash = fnv1a64(canon.data(), canon.size());
  return hash == 0 ? kFnvOffset : hash;  // 0 is reserved for "no digest"
}

std::uint64_t rendezvous_score(std::uint64_t key, std::uint64_t slot) {
  return mix64(key ^ mix64(slot));
}

}  // namespace clpp::cache
