// clpp::cache — bounded, sharded-lock LRU result cache (DESIGN.md §13).
//
// Serving advice is a pure function of the snippet text, so memoizing
// responses by canonical snippet digest (digest.h) is invalidation-free:
// an entry can only ever be stale if the model changes, and a model change
// means a new process (advisors are immutable once serving starts). The
// cache therefore needs no TTLs, no versioning, no invalidation protocol —
// only bounds.
//
// Concurrency: the key space is partitioned over `lock_shards` independent
// (mutex, LRU list, index) triples, so concurrent hits on different
// digests never contend. Each lock shard owns 1/Nth of the entry and byte
// budgets and evicts its own LRU tail; the worst-case over-admission vs a
// global LRU is one shard's share, which is noise at the configured sizes.
//
// Telemetry: per-instance atomics feed stats()/stats_json() (always on),
// and `clpp.cache.<name>.{hits,misses,insertions,evictions}` counters plus
// a `clpp.cache.<name>.bytes` gauge mirror them into the global registry
// when CLPP_OBS is enabled.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/digest.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/json.h"

namespace clpp::cache {

struct CacheConfig {
  /// Total entries across lock shards; 0 disables the cache entirely
  /// (get() always misses, put() is a no-op).
  std::size_t max_entries = 0;
  /// Total value-byte budget across lock shards (keys + bookkeeping not
  /// counted); 0 = bounded by entries only.
  std::size_t max_bytes = 32u << 20;
  /// Independent mutex+LRU partitions. Clamped to >= 1.
  std::size_t lock_shards = 8;

  bool enabled() const { return max_entries > 0; }

  /// Reads the `CLPP_CACHE_CAP` (entries; "0" disables) and
  /// `CLPP_CACHE_BYTES` knobs, falling back to `default_entries` and the
  /// struct default when unset or unparseable.
  static CacheConfig from_env(std::size_t default_entries);
};

/// Monotonic counters + current occupancy snapshot.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups > 0 ? static_cast<double>(hits) / lookups : 0.0;
  }
};

/// The "cache" block embedded in clpp.shard_stats.v1 / clpp.serve_stats.v1.
Json cache_stats_json(const CacheStats& stats, const CacheConfig& config);

template <typename V>
class ShardedLruCache {
 public:
  /// `name` scopes the instance's metrics: clpp.cache.<name>.*.
  ShardedLruCache(std::string name, CacheConfig config)
      : name_(std::move(name)), config_(config) {
    const std::size_t n = config_.lock_shards == 0 ? 1 : config_.lock_shards;
    shards_ = std::vector<Shard>(n);
    // Ceil-divide the budgets so N shards never admit less than the
    // configured totals; cap entries at >= 1 per shard when enabled.
    entries_per_shard_ = config_.enabled()
                             ? (config_.max_entries + n - 1) / n
                             : 0;
    bytes_per_shard_ =
        config_.max_bytes == 0 ? 0 : (config_.max_bytes + n - 1) / n;
  }

  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Looks `key` up; on a hit copies the value into `*out`, refreshes its
  /// LRU position, and returns true.
  bool get(std::uint64_t key, V* out) {
    if (!config_.enabled()) return false;
    CLPP_TRACE_SPAN("cache.get");
    Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        *out = it->second->value;
        hits_.fetch_add(1, std::memory_order_relaxed);
        count("hits");
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    count("misses");
    return false;
  }

  /// Inserts (or refreshes) `key`, accounting `bytes` against the byte
  /// budget, then evicts this lock shard's LRU tail past either bound.
  void put(std::uint64_t key, V value, std::size_t bytes) {
    if (!config_.enabled()) return;
    CLPP_TRACE_SPAN("cache.put");
    Shard& shard = shard_for(key);
    std::uint64_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        // Concurrent miss->compute races insert the same digest twice;
        // refresh rather than duplicate (values are deterministic, so
        // either copy is correct).
        shard.bytes -= it->second->bytes;
        shard.bytes += bytes;
        it->second->value = std::move(value);
        it->second->bytes = bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      } else {
        shard.lru.push_front(Entry{key, std::move(value), bytes});
        shard.index[key] = shard.lru.begin();
        shard.bytes += bytes;
        insertions_.fetch_add(1, std::memory_order_relaxed);
        count("insertions");
      }
      while (shard.lru.size() > entries_per_shard_ ||
             (bytes_per_shard_ > 0 && shard.bytes > bytes_per_shard_ &&
              shard.lru.size() > 1)) {
        const Entry& victim = shard.lru.back();
        shard.bytes -= victim.bytes;
        shard.index.erase(victim.key);
        shard.lru.pop_back();
        ++evicted;
      }
    }
    if (evicted > 0) {
      evictions_.fetch_add(evicted, std::memory_order_relaxed);
      count("evictions", evicted);
    }
    if (obs::enabled())
      obs::metrics().gauge("clpp.cache." + name_ + ".bytes")
          .set(static_cast<double>(stats().bytes));
  }

  CacheStats stats() const {
    CacheStats snapshot;
    snapshot.hits = hits_.load(std::memory_order_relaxed);
    snapshot.misses = misses_.load(std::memory_order_relaxed);
    snapshot.insertions = insertions_.load(std::memory_order_relaxed);
    snapshot.evictions = evictions_.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      snapshot.entries += shard.lru.size();
      snapshot.bytes += shard.bytes;
    }
    return snapshot;
  }

  Json stats_json() const;  // cache_stats_json(stats(), config())

  const CacheConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    V value;
    std::size_t bytes = 0;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
        index;
    std::size_t bytes = 0;
  };

  Shard& shard_for(std::uint64_t key) {
    // Re-mix before taking the modulus: digests are well-mixed already, but
    // rendezvous routing upstream correlates the keys a given process sees.
    return shards_[rendezvous_score(key, 0) % shards_.size()];
  }

  void count(const char* which, std::uint64_t n = 1) {
    if (!obs::enabled()) return;
    obs::metrics().counter("clpp.cache." + name_ + "." + which).add(n);
  }

  std::string name_;
  CacheConfig config_;
  std::vector<Shard> shards_;
  std::size_t entries_per_shard_ = 0;
  std::size_t bytes_per_shard_ = 0;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

template <typename V>
Json ShardedLruCache<V>::stats_json() const {
  return cache_stats_json(stats(), config_);
}

}  // namespace clpp::cache
