#include "tokenize/representation.h"

#include <set>

#include "analysis/sideeffects.h"
#include "frontend/dfs.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "support/error.h"

namespace clpp::tokenize {

using frontend::Node;
using frontend::NodeKind;
using frontend::Token;
using frontend::TokenKind;

std::string representation_name(Representation rep) {
  switch (rep) {
    case Representation::kText: return "Text";
    case Representation::kRText: return "R-Text";
    case Representation::kAst: return "AST";
    case Representation::kRAst: return "R-AST";
  }
  return "?";
}

Representation representation_from(const std::string& name) {
  for (Representation rep : all_representations())
    if (representation_name(rep) == name) return rep;
  throw InvalidArgument("unknown representation: " + name);
}

const std::vector<Representation>& all_representations() {
  static const std::vector<Representation> kAll = {
      Representation::kText, Representation::kRText, Representation::kAst,
      Representation::kRAst};
  return kAll;
}

namespace {

/// Library names exempt from replacement: their identity is linguistic
/// signal (printf implies I/O; sqrt implies pure math), not naming style.
bool is_builtin_name(const std::string& name) {
  return analysis::SideEffectOracle::is_whitelisted_pure(name) ||
         analysis::SideEffectOracle::is_known_io(name) ||
         analysis::SideEffectOracle::is_known_alloc(name);
}

/// Normalizes a literal token so the vocabulary stays small and closed.
std::string bucket_literal(const Token& token) {
  switch (token.kind) {
    case TokenKind::kIntLiteral: {
      try {
        if (std::stoll(token.text) <= 100) return token.text;
      } catch (const std::exception&) {
      }
      return "<num>";
    }
    case TokenKind::kFloatLiteral:
      return token.text.size() <= 4 ? token.text : "<num>";
    case TokenKind::kStringLiteral:
      return "<str>";
    case TokenKind::kCharLiteral:
      return "<chr>";
    default:
      return token.text;
  }
}

/// Classification of snippet identifiers for replacement.
struct NameClasses {
  std::set<std::string> arrays;
  std::set<std::string> functions;
};

NameClasses classify_names(const std::string& code) {
  NameClasses out;
  // Parse if possible; fall back to no class info (everything becomes varN).
  try {
    const frontend::NodePtr unit = frontend::parse_snippet(code);
    frontend::walk(*unit, [&](const Node& node, int) {
      if (node.kind == NodeKind::kArrayRef && node.child(0).kind == NodeKind::kID)
        out.arrays.insert(node.child(0).text);
      if (node.kind == NodeKind::kFuncCall && node.child(0).kind == NodeKind::kID)
        out.functions.insert(node.child(0).text);
      if (node.kind == NodeKind::kFuncDef) out.functions.insert(node.text);
      if (node.kind == NodeKind::kDecl && node.aux.find("[]") != std::string::npos)
        out.arrays.insert(node.text);
    });
  } catch (const ParseError&) {
  }
  return out;
}

std::map<std::string, std::string> build_replacements(
    const std::vector<Token>& tokens, const NameClasses& classes) {
  std::map<std::string, std::string> map;
  std::size_t vars = 0, arrs = 0, fns = 0;
  for (const Token& token : tokens) {
    if (token.kind != TokenKind::kIdentifier) continue;
    if (is_builtin_name(token.text)) continue;
    if (map.count(token.text)) continue;
    if (classes.functions.count(token.text)) {
      map[token.text] = "fn" + std::to_string(fns++);
    } else if (classes.arrays.count(token.text)) {
      map[token.text] = "arr" + std::to_string(arrs++);
    } else {
      map[token.text] = "var" + std::to_string(vars++);
    }
  }
  return map;
}

std::vector<std::string> text_tokens(const std::string& code, bool replaced) {
  const std::vector<Token> tokens = frontend::lex(code);
  std::map<std::string, std::string> map;
  if (replaced) map = build_replacements(tokens, classify_names(code));
  std::vector<std::string> out;
  out.reserve(tokens.size());
  for (const Token& token : tokens) {
    if (token.kind == TokenKind::kEnd) break;
    if (token.kind == TokenKind::kPragma) continue;  // never leak labels
    if (token.kind == TokenKind::kIdentifier && replaced) {
      auto it = map.find(token.text);
      out.push_back(it == map.end() ? token.text : it->second);
      continue;
    }
    out.push_back(bucket_literal(token));
  }
  return out;
}

std::vector<std::string> ast_tokens(const std::string& code, bool replaced) {
  frontend::NodePtr unit = frontend::parse_snippet(code);
  std::map<std::string, std::string> map;
  if (replaced) map = build_replacements(frontend::lex(code), classify_names(code));
  // Strip pragmas: labels must not leak into inputs.
  std::function<void(Node&)> strip = [&](Node& node) {
    auto& kids = node.children;
    kids.erase(std::remove_if(kids.begin(), kids.end(),
                              [](const frontend::NodePtr& c) {
                                return c->kind == NodeKind::kPragma;
                              }),
               kids.end());
    for (auto& c : kids) strip(*c);
  };
  strip(*unit);
  if (replaced) {
    frontend::walk_mut(*unit, [&](Node& node, int) {
      auto rename = [&](std::string& name) {
        auto it = map.find(name);
        if (it != map.end()) name = it->second;
      };
      if (node.kind == NodeKind::kID || node.kind == NodeKind::kDecl ||
          node.kind == NodeKind::kFuncDef)
        rename(node.text);
    });
  }
  std::vector<std::string> out = frontend::dfs_tokens(*unit);
  // Bucket constant values the same way the text path does.
  for (std::size_t t = 0; t + 2 < out.size(); ++t) {
    if (out[t] != "Constant:") continue;
    const std::string& type = out[t + 1];
    std::string& value = out[t + 2];
    if (type == "string") value = "<str>";
    else if (type == "char") value = "<chr>";
    else if (type == "int") {
      try {
        if (std::stoll(value) > 100) value = "<num>";
      } catch (const std::exception&) {
        value = "<num>";
      }
    } else if (type == "float" && value.size() > 4) {
      value = "<num>";
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> tokenize(const std::string& code, Representation rep) {
  switch (rep) {
    case Representation::kText: return text_tokens(code, false);
    case Representation::kRText: return text_tokens(code, true);
    case Representation::kAst: return ast_tokens(code, false);
    case Representation::kRAst: return ast_tokens(code, true);
  }
  throw InvalidArgument("bad representation");
}

std::map<std::string, std::string> replacement_map(const std::string& code) {
  return build_replacements(frontend::lex(code), classify_names(code));
}

}  // namespace clpp::tokenize
