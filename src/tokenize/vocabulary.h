// Token vocabulary with special symbols and fixed-length encoding.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace clpp::tokenize {

/// Token -> id mapping with the special tokens PragFormer's encoder needs.
/// Ids: 0 <pad>, 1 <cls>, 2 <unk>, 3 <mask>, then corpus tokens by
/// decreasing frequency (ties broken lexicographically, for determinism).
class Vocabulary {
 public:
  static constexpr std::int32_t kPad = 0;
  static constexpr std::int32_t kCls = 1;
  static constexpr std::int32_t kUnk = 2;
  static constexpr std::int32_t kMask = 3;
  static constexpr std::int32_t kSpecialCount = 4;

  /// Builds from tokenized documents; tokens below `min_count` are dropped
  /// (they will encode as <unk>).
  static Vocabulary build(const std::vector<std::vector<std::string>>& documents,
                          std::size_t min_count = 1);

  std::size_t size() const { return id_to_token_.size(); }

  /// Id of `token`, or kUnk when absent.
  std::int32_t id_of(const std::string& token) const;
  /// True when `token` is in the vocabulary.
  bool contains(const std::string& token) const { return token_to_id_.count(token) > 0; }
  /// Token text of `id` (checked).
  const std::string& token_of(std::int32_t id) const;

  /// Encodes a token sequence: <cls> followed by token ids, truncated to
  /// `max_len` total. Result length is in [1, max_len].
  std::vector<std::int32_t> encode(const std::vector<std::string>& tokens,
                                   std::size_t max_len) const;

  /// Number of distinct tokens in `documents` missing from this vocabulary
  /// (the "OOV types" column of Table 6).
  std::size_t count_oov_types(const std::vector<std::vector<std::string>>& documents) const;

  /// Full id -> token table (specials first); used for persistence.
  const std::vector<std::string>& tokens() const { return id_to_token_; }

  /// Reconstructs a vocabulary from a persisted token table. The first
  /// four entries must be the special tokens in canonical order.
  static Vocabulary from_tokens(std::vector<std::string> id_to_token);

 private:
  std::map<std::string, std::int32_t> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace clpp::tokenize
