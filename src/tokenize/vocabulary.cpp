#include "tokenize/vocabulary.h"

#include <algorithm>
#include <set>

#include "support/error.h"

namespace clpp::tokenize {

Vocabulary Vocabulary::build(const std::vector<std::vector<std::string>>& documents,
                             std::size_t min_count) {
  std::map<std::string, std::size_t> counts;
  for (const auto& doc : documents)
    for (const std::string& token : doc) ++counts[token];

  std::vector<std::pair<std::string, std::size_t>> items(counts.begin(), counts.end());
  std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  Vocabulary vocab;
  vocab.id_to_token_ = {"<pad>", "<cls>", "<unk>", "<mask>"};
  for (const auto& [token, count] : items) {
    if (count < min_count) continue;
    vocab.id_to_token_.push_back(token);
  }
  for (std::size_t i = 0; i < vocab.id_to_token_.size(); ++i)
    vocab.token_to_id_[vocab.id_to_token_[i]] = static_cast<std::int32_t>(i);
  return vocab;
}

Vocabulary Vocabulary::from_tokens(std::vector<std::string> id_to_token) {
  CLPP_CHECK_MSG(id_to_token.size() >= static_cast<std::size_t>(kSpecialCount),
                 "persisted vocabulary too small");
  CLPP_CHECK_MSG(id_to_token[0] == "<pad>" && id_to_token[1] == "<cls>" &&
                     id_to_token[2] == "<unk>" && id_to_token[3] == "<mask>",
                 "persisted vocabulary misses the special tokens");
  Vocabulary vocab;
  vocab.id_to_token_ = std::move(id_to_token);
  for (std::size_t i = 0; i < vocab.id_to_token_.size(); ++i) {
    const bool inserted =
        vocab.token_to_id_
            .emplace(vocab.id_to_token_[i], static_cast<std::int32_t>(i))
            .second;
    CLPP_CHECK_MSG(inserted, "duplicate token in persisted vocabulary: "
                                 << vocab.id_to_token_[i]);
  }
  return vocab;
}

std::int32_t Vocabulary::id_of(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnk : it->second;
}

const std::string& Vocabulary::token_of(std::int32_t id) const {
  CLPP_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < id_to_token_.size(),
                 "token id " << id << " out of range");
  return id_to_token_[static_cast<std::size_t>(id)];
}

std::vector<std::int32_t> Vocabulary::encode(const std::vector<std::string>& tokens,
                                             std::size_t max_len) const {
  CLPP_CHECK_MSG(max_len >= 1, "max_len must be at least 1");
  std::vector<std::int32_t> out;
  out.reserve(std::min(tokens.size() + 1, max_len));
  out.push_back(kCls);
  for (const std::string& token : tokens) {
    if (out.size() >= max_len) break;
    out.push_back(id_of(token));
  }
  return out;
}

std::size_t Vocabulary::count_oov_types(
    const std::vector<std::vector<std::string>>& documents) const {
  std::set<std::string> oov;
  for (const auto& doc : documents)
    for (const std::string& token : doc)
      if (!contains(token)) oov.insert(token);
  return oov.size();
}

}  // namespace clpp::tokenize
