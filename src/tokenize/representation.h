// The four code representations of §4.2 (Table 5 of the paper).
//
//   Text    — the lexical token stream of the raw source;
//   R-Text  — same, with identifiers replaced by canonical names
//             (var0/arr0/fn0 indexed per snippet);
//   AST     — the DFS linearization of the pycparser-style AST;
//   R-AST   — the DFS linearization with replaced identifiers.
//
// Identifier replacement keeps C keywords and well-known library functions
// (printf, malloc, sqrt, ...) intact: those are part of the language, not
// of the developer's naming idiosyncrasies the replacement is meant to
// normalize.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace clpp::tokenize {

enum class Representation { kText, kRText, kAst, kRAst };

std::string representation_name(Representation rep);
Representation representation_from(const std::string& name);

/// All four representations, in paper order.
const std::vector<Representation>& all_representations();

/// Tokenizes `code` under `rep`. AST representations parse the snippet
/// (throwing ParseError on malformed code); Text representations only lex.
/// Numeric literals above 100 become the "<num>" bucket and string/char
/// literal bodies become "<str>"/"<chr>" so the vocabulary stays closed.
std::vector<std::string> tokenize(const std::string& code, Representation rep);

/// The identifier replacement map used for a snippet under R-Text/R-AST:
/// original name -> canonical (var0, arr1, fn0, ...). Exposed for tests
/// and for explaining model inputs.
std::map<std::string, std::string> replacement_map(const std::string& code);

}  // namespace clpp::tokenize
