#include "obs/obs.h"

#include <cstdlib>
#include <cstdio>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "support/cli.h"
#include "support/error.h"
#include "support/json.h"

namespace clpp::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::string& trace_out_path() {
  static std::string path;
  return path;
}

std::string& metrics_out_path() {
  static std::string path;
  return path;
}

// Temp + rename (no clpp_resil here — resil layers on top of obs). A crash
// mid-export never clobbers a previously exported metrics file.
void write_text_file(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open output file: " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != text.size() || !flushed) {
    std::remove(tmp.c_str());
    throw IoError("short write to output file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename into place: " + path);
  }
}

void register_exit_export() {
  static bool registered = false;
  if (registered) return;
  // Force-construct every static the handler touches *before* registering
  // it: function-local statics constructed after the std::atexit call would
  // be destroyed before the handler runs (destruction is interleaved with
  // atexit callbacks in reverse registration order).
  trace_out_path();
  metrics_out_path();
  metrics();
  Tracer::instance();
  std::atexit(export_configured_outputs);
  registered = true;
}

}  // namespace

void set_enabled(bool on) {
  if (on) Tracer::now_ns();  // anchor the trace epoch
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_out(std::string path) {
  trace_out_path() = std::move(path);
  if (!trace_out_path().empty()) register_exit_export();
}

void set_metrics_out(std::string path) {
  metrics_out_path() = std::move(path);
  if (!metrics_out_path().empty()) register_exit_export();
}

void export_configured_outputs() {
  try {
    if (!trace_out_path().empty())
      Tracer::instance().write_chrome_trace(trace_out_path());
    if (!metrics_out_path().empty())
      write_text_file(metrics_out_path(), metrics().to_json().dump());
  } catch (const Error& e) {
    std::fprintf(stderr, "clpp::obs: export failed: %s\n", e.what());
  }
}

void init_from_env() {
  if (const char* v = std::getenv("CLPP_OBS"))
    set_enabled(v[0] != '\0' && v[0] != '0');
  if (const char* v = std::getenv("CLPP_TRACE_OUT")) set_trace_out(v);
  if (const char* v = std::getenv("CLPP_METRICS_OUT")) set_metrics_out(v);
  if (const char* v = std::getenv("CLPP_LOG_LEVEL"))
    set_log_level(parse_log_level(v));
  if (const char* v = std::getenv("CLPP_LOG_OUT")) set_log_path(v);
  if (const char* v = std::getenv("CLPP_FLIGHT"))
    set_flight_enabled(v[0] != '\0' && v[0] != '0');
  if (const char* v = std::getenv("CLPP_FLIGHT_OUT")) set_flight_out(v);
  const char* signals = std::getenv("CLPP_FLIGHT_SIGNALS");
  if (signals == nullptr || (signals[0] != '\0' && signals[0] != '0'))
    install_crash_handlers();
  if (const char* v = std::getenv("CLPP_METRICS_STREAM")) {
    std::uint64_t interval_ms = 500;
    if (const char* ms = std::getenv("CLPP_METRICS_STREAM_MS")) {
      const long parsed = std::atol(ms);
      if (parsed > 0) interval_ms = static_cast<std::uint64_t>(parsed);
    }
    MetricsStreamer::instance().start(v, interval_ms);
  }
}

namespace {
// Any binary linking clpp_obs picks up the CLPP_* environment at start, and
// installs the fatal hook that dumps the flight recorder from the CLI
// exception boundary (support cannot link obs, so obs reaches down).
[[maybe_unused]] const bool g_env_applied = [] {
  init_from_env();
  set_fatal_hook([] { dump_flight("cli_fatal"); });
  return true;
}();
}  // namespace

}  // namespace clpp::obs
