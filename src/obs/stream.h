// Live telemetry streamer: a background thread that periodically snapshots
// the metrics registry and appends one JSON line of *deltas* to a sink —
// a poll-free time series an operator (or a test) can tail while the
// process serves traffic:
//
//   {"schema":"clpp.metrics_stream.v1","seq":3,"ts_ms":1500,
//    "counters":{"clpp.serve.requests":128},          // delta since last line
//    "gauges":{"clpp.serve.queue_depth":7},           // current value
//    "histograms":{"clpp.serve.latency_us":
//        {"count":128,"p50":others,"p95":...,"p99":...}}}  // count is a delta,
//                                                          // quantiles cumulative
//
// Counters and histogram counts are reported as deltas (unchanged metrics
// are omitted, so an idle process streams near-empty lines); gauges and
// histogram quantiles are instantaneous. The final line on `stop()` flushes
// whatever changed since the previous tick.
//
// Activation: CLPP_METRICS_STREAM=PATH [CLPP_METRICS_STREAM_MS=500] at
// process start, or programmatic `start()`. The snapshot thread only reads
// registry atomics, so it is safe (and TSan-clean) against concurrent
// recorders on every other thread.
#pragma once

#include <cstdint>
#include <string>

namespace clpp::obs {

class MetricsStreamer {
 public:
  /// The process-wide streamer.
  static MetricsStreamer& instance();

  /// Starts (or restarts) streaming to `path`, one line every
  /// `interval_ms`. Restarting flushes and joins the previous thread first.
  void start(std::string path, std::uint64_t interval_ms = 500);

  /// Flushes a final delta line, joins the thread, closes the sink.
  /// Idempotent; registered atexit by `start`.
  void stop();

  bool running() const;

  /// Lines written since the streamer was created (tests poll this).
  std::uint64_t emitted() const;

 private:
  MetricsStreamer();
  struct Impl;
  Impl* impl_;  // intentionally leaked: see Tracer
};

}  // namespace clpp::obs
