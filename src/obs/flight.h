// Always-on flight recorder: a lock-free per-thread ring buffer of the last
// ~4k structured events, dumped to a JSON artifact when something goes
// fatally wrong — so a crash ships its recent history instead of nothing.
//
// Unlike the span tracer (off by default, per-span timing), the flight
// recorder is *on* by default and records point events, not durations:
//
//   obs::flight_record("serve.batch", batch_size);   // ~3 relaxed stores
//
// `kind` must be a string literal (the ring stores the pointer). Each
// thread owns a fixed ring of `kFlightCapacity` slots whose fields are
// relaxed atomics: recording never takes a lock, a reader (the dump path,
// possibly mid-crash on another thread) never tears the ring structure, and
// the worst concurrent-wrap artifact is one mixed-field event.
//
// Dump triggers:
//   - the CLI fatal boundary (`clpp::report_cli_error`) via the fatal hook
//     obs installs at process start;
//   - clpp::resil injected faults, when a dump path has been configured
//     (`CLPP_FLIGHT_OUT` / `set_flight_out`) — fault-injection runs opt in
//     so ordinary resilience tests don't spray artifacts;
//   - fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL) via the
//     handlers obs installs at process start, which take the
//     async-signal-safe path (`dump_flight_async_safe`: write(2) only, no
//     locks, no allocation) before re-raising with default disposition.
//
// Environment: CLPP_FLIGHT=0 disables recording; CLPP_FLIGHT_OUT=PATH sets
// the dump destination (default "clpp_flight.json") and additionally arms
// dump-on-injected-fault; CLPP_FLIGHT_SIGNALS=0 leaves the signal handlers
// uninstalled.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace clpp {
class Json;  // support/json.h
}

namespace clpp::obs {

/// Slots per recording thread (the "last ~4k events" guarantee).
inline constexpr std::size_t kFlightCapacity = 4096;

namespace detail {
extern std::atomic<bool> g_flight_enabled;
}  // namespace detail

inline bool flight_enabled() {
  return detail::g_flight_enabled.load(std::memory_order_relaxed);
}
void set_flight_enabled(bool on);

/// Records one event on the calling thread's ring. `kind` must be a string
/// literal; `a`/`b` are free-form numeric payload (sizes, ids, arrivals).
void flight_record(const char* kind, std::int64_t a = 0, std::int64_t b = 0);

/// Everything currently held in the rings, oldest-first per thread:
/// {"schema":"clpp.flight.v1","reason":...,"recorded":N,"dropped":N,
///  "events":[{"ts_us":...,"tid":T,"kind":"...","a":...,"b":...}]}.
Json flight_json(const std::string& reason);

/// Where `dump_flight` writes. Setting a path (programmatically or via
/// CLPP_FLIGHT_OUT) also arms dumping on injected resil faults.
void set_flight_out(std::string path);
std::string flight_out();
/// True once a dump path was explicitly configured (not just defaulted).
bool flight_dump_on_fault();

/// Writes `flight_json(reason)` to `flight_out()`. Never throws; returns
/// false (and stays silent) when disabled or the write fails — the dump
/// path runs inside crash handling, which must not crash.
bool dump_flight(const std::string& reason) noexcept;

/// Async-signal-safe variant: writes a `clpp.flight.v1` document to the
/// configured dump path using only open(2)/write(2) with a fixed stack
/// buffer — no locks, no allocation, no stdio — so it is legal inside a
/// SIGSEGV handler. Rings are found through a lock-free registry (rings
/// are never freed, so the pointers stay valid mid-crash). The one shape
/// difference from `dump_flight`: `ts_us` is emitted as an integer.
bool dump_flight_async_safe(const char* reason) noexcept;

/// Installs fatal-signal handlers (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
/// that call `dump_flight_async_safe(<signal name>)` and then re-raise with
/// the default disposition, so a crash ships its flight recording *and*
/// still dies with the expected signal status. Idempotent.
void install_crash_handlers();

/// Totals across all rings since the last reset.
std::uint64_t flight_recorded();
std::uint64_t flight_dropped();

/// Drops all buffered events and accounting (tests).
void reset_flight();

}  // namespace clpp::obs
