// Scoped-span tracer with per-thread ring buffers and Chrome trace export.
//
// Usage in instrumented code:
//
//   void gemm(...) {
//     CLPP_TRACE_SPAN("gemm");          // RAII span, ~2 clock reads when on
//     ...
//   }
//
// Spans record (name, thread, begin, end) as Chrome `trace_event` complete
// events ("ph":"X"); `Tracer::chrome_trace()` exports JSON loadable in
// chrome://tracing or https://ui.perfetto.dev, and `summary()` renders an
// aggregate per-span ASCII table (support/table.h). Each thread writes to
// its own fixed-capacity ring buffer, so recording never takes a lock; when
// a buffer wraps, the oldest events are overwritten and counted as dropped.
// Span names must be string literals (or otherwise outlive the tracer) —
// the ring buffer stores the pointer, not a copy.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "obs/context.h"
#include "obs/obs.h"

namespace clpp {
class Json;  // support/json.h
}

namespace clpp::obs {

/// Sentinel for "span carries no argument".
inline constexpr std::int64_t kNoArg = std::numeric_limits<std::int64_t>::min();

class Tracer {
 public:
  /// The process-wide tracer.
  static Tracer& instance();

  /// Nanoseconds since the process trace epoch (steady clock).
  static std::uint64_t now_ns();

  /// Appends one complete event to the calling thread's ring buffer. A
  /// nonzero `flow_id` with a non-kNone `phase` additionally links the span
  /// into a cross-thread flow lane (Chrome "s"/"t"/"f" events sharing the
  /// id), the request-scoped causal linkage clpp::serve uses.
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::int64_t arg = kNoArg, std::uint64_t flow_id = 0,
              FlowPhase phase = FlowPhase::kNone);

  /// Chrome trace_event JSON document ({"traceEvents": [...]}) over every
  /// event currently held in the ring buffers.
  Json chrome_trace() const;

  /// Writes `chrome_trace()` to `path` (throws IoError on failure).
  void write_chrome_trace(const std::string& path) const;

  /// Per-span aggregate table: count, total/mean/min/max milliseconds,
  /// sorted by total time descending.
  std::string summary() const;

  /// Total events ever recorded / overwritten by ring wrap-around.
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// Clears all buffered events and the recorded/dropped accounting.
  void reset();

  /// Ring capacity (events) given to each newly registered thread.
  void set_thread_capacity(std::size_t events);

  /// Names the calling thread in trace exports (Chrome `thread_name`
  /// metadata, so Perfetto timelines read "main" / "parallel_for worker"
  /// instead of bare tids). Registers the thread's buffer if needed.
  void set_thread_name(std::string name);

  /// Monotonic counter bumped by every `reset` (used by callers caching
  /// per-thread state that a reset invalidates).
  std::uint64_t generation() const;

  struct Event {
    const char* name;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
    std::int64_t arg;
    std::uint64_t flow_id;  // 0 = span is not part of a request flow
    FlowPhase flow;
  };

 private:
  struct ThreadBuffer;

  Tracer();
  ThreadBuffer& buffer_for_this_thread();

  struct Impl;
  Impl* impl_;  // intentionally leaked: threads may outlive static teardown
};

/// RAII span: constructor samples the clock iff `obs::enabled()`, destructor
/// records the complete event. `arg` lands in the event's `args` object
/// (e.g. the epoch number).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, std::int64_t arg = kNoArg)
      : name_(name), arg_(arg),
        begin_(enabled() ? Tracer::now_ns() : kInactive) {}

  ~TraceSpan() {
    if (begin_ != kInactive)
      Tracer::instance().record(name_, begin_, Tracer::now_ns(), arg_);
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static constexpr std::uint64_t kInactive = ~std::uint64_t{0};
  const char* name_;
  std::int64_t arg_;
  std::uint64_t begin_;
};

/// Tags the calling thread as a `parallel_for` worker in trace exports.
/// Idempotent per tracer generation and cheap enough for loop prologues
/// (one atomic load once named). No-op when tracing is disabled.
void name_worker_thread();

}  // namespace clpp::obs

#define CLPP_OBS_CONCAT2(a, b) a##b
#define CLPP_OBS_CONCAT(a, b) CLPP_OBS_CONCAT2(a, b)

/// Scoped trace span; `name` must be a string literal.
#define CLPP_TRACE_SPAN(name) \
  ::clpp::obs::TraceSpan CLPP_OBS_CONCAT(clpp_trace_span_, __LINE__){name}

/// Scoped trace span carrying one integer argument (epoch, batch, size...).
#define CLPP_TRACE_SPAN_ARG(name, arg)                                  \
  ::clpp::obs::TraceSpan CLPP_OBS_CONCAT(clpp_trace_span_, __LINE__){   \
      name, static_cast<std::int64_t>(arg)}
