#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "support/json.h"
#include "support/table.h"

namespace clpp::obs {

namespace detail {

std::size_t assign_shard() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) % kShards;
}

namespace {

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace
}  // namespace detail

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() {
  for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
}

void Gauge::reset() {
  value_.store(0.0, std::memory_order_relaxed);
  set_count_.store(0, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) bounds_ = default_latency_buckets_us();
  shards_.reserve(kShards);
  for (std::size_t i = 0; i < kShards; ++i)
    shards_.push_back(std::make_unique<Shard>(bounds_.size() + 1));
}

void Histogram::record_always(double v) {
  Shard& shard = *shards_[detail::shard_index()];
  const std::size_t bucket = static_cast<std::size_t>(
      std::upper_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.n.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(v, std::memory_order_relaxed);
  detail::atomic_min(shard.mn, v);
  detail::atomic_max(shard.mx, v);
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->n.load(std::memory_order_relaxed);
  return total;
}

double Histogram::sum() const {
  double total = 0.0;
  for (const auto& s : shards_) total += s->sum.load(std::memory_order_relaxed);
  return total;
}

double Histogram::min() const {
  double m = std::numeric_limits<double>::infinity();
  for (const auto& s : shards_) m = std::min(m, s->mn.load(std::memory_order_relaxed));
  return m;
}

double Histogram::max() const {
  double m = -std::numeric_limits<double>::infinity();
  for (const auto& s : shards_) m = std::max(m, s->mx.load(std::memory_order_relaxed));
  return m;
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> merged(bounds_.size() + 1, 0);
  for (const auto& s : shards_)
    for (std::size_t i = 0; i < merged.size(); ++i)
      merged[i] += s->counts[i].load(std::memory_order_relaxed);
  return merged;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(n);
  double seen = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double in_bucket = static_cast<double>(counts[i]);
    if (seen + in_bucket >= target && in_bucket > 0) {
      // Interpolate inside [lo, hi); the overflow bucket reports max().
      if (i == bounds_.size()) return max();
      const double lo = i == 0 ? std::min(0.0, min()) : bounds_[i - 1];
      const double hi = bounds_[i];
      const double frac = in_bucket == 0.0 ? 0.0 : (target - seen) / in_bucket;
      // Clamp to the observed range so interpolation never overshoots.
      return std::clamp(lo + frac * (hi - lo), min(), max());
    }
    seen += in_bucket;
  }
  return max();
}

void Histogram::reset() {
  for (auto& s : shards_) {
    for (auto& c : s->counts) c.store(0, std::memory_order_relaxed);
    s->n.store(0, std::memory_order_relaxed);
    s->sum.store(0.0, std::memory_order_relaxed);
    s->mn.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
    s->mx.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  }
}

std::vector<double> default_latency_buckets_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e7; decade *= 10.0)
    for (double step : {1.0, 2.0, 5.0}) bounds.push_back(decade * step);
  return bounds;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json counters = Json::object();
  for (const auto& [name, c] : counters_)
    counters[name] = static_cast<std::int64_t>(c->value());
  Json gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  Json histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    Json stats = Json::object();
    const std::uint64_t n = h->count();
    stats["count"] = static_cast<std::int64_t>(n);
    stats["sum"] = h->sum();
    stats["mean"] = h->mean();
    stats["min"] = n == 0 ? 0.0 : h->min();
    stats["max"] = n == 0 ? 0.0 : h->max();
    stats["p50"] = h->quantile(0.50);
    stats["p90"] = h->quantile(0.90);
    stats["p95"] = h->quantile(0.95);
    stats["p99"] = h->quantile(0.99);
    histograms[name] = std::move(stats);
  }
  Json doc = Json::object();
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return doc;
}

std::string MetricsRegistry::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (!counters_.empty()) {
    TextTable table({"counter", "value"});
    for (const auto& [name, c] : counters_)
      table.add_row({name, std::to_string(c->value())});
    out += table.str();
  }
  if (!gauges_.empty()) {
    TextTable table({"gauge", "value"});
    for (const auto& [name, g] : gauges_)
      table.add_row({name, TextTable::num(g->value(), 4)});
    if (!out.empty()) out += "\n";
    out += table.str();
  }
  if (!histograms_.empty()) {
    TextTable table({"histogram", "count", "mean", "p50", "p90", "p95", "p99", "max"});
    for (const auto& [name, h] : histograms_) {
      const std::uint64_t n = h->count();
      table.add_row({name, std::to_string(n), TextTable::num(h->mean(), 1),
                     TextTable::num(h->quantile(0.50), 1),
                     TextTable::num(h->quantile(0.90), 1),
                     TextTable::num(h->quantile(0.95), 1),
                     TextTable::num(h->quantile(0.99), 1),
                     TextTable::num(n == 0 ? 0.0 : h->max(), 1)});
    }
    if (!out.empty()) out += "\n";
    out += table.str();
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

namespace detail {

void record_loop_slow(std::size_t items, int threads, bool parallel) {
  // Cached on first use: parallel_for is launched millions of times.
  static Counter& par_loops = metrics().counter("clpp.parallel.loops_parallel");
  static Counter& ser_loops = metrics().counter("clpp.parallel.loops_serial");
  static Counter& par_items = metrics().counter("clpp.parallel.items_parallel");
  static Gauge& threads_gauge = metrics().gauge("clpp.parallel.threads");
  if (parallel) {
    par_loops.add(1);
    par_items.add(items);
    threads_gauge.set(static_cast<double>(threads));
  } else {
    ser_loops.add(1);
  }
}

}  // namespace detail

}  // namespace clpp::obs
