// Request-scoped trace context: the causal identity a request carries as it
// hops threads (submitter → queue → batch worker → response).
//
// A `TraceContext` is minted once per request (`TraceContext::mint()`), and
// every span recorded on the request's behalf — on whichever thread — tags
// itself with the context's `trace_id` plus a flow phase. The Chrome trace
// exporter turns those tags into `trace_event` *flow events* (ph "s"/"t"/"f"
// sharing one id), so Perfetto draws arrows linking the request's
// queue-wait, batch-wait, and compute segments across thread lanes into one
// connected story. `span_id`/`parent_span_id` give the same events a
// parent/child shape for consumers that want a span tree rather than a
// timeline (the JSON-lines serve response reports `trace_id` so a client
// can grep the trace for its own request).
//
// Minting is wait-free (one relaxed fetch_add plus a splitmix64 hash) and
// happens regardless of `obs::enabled()` — a request id is part of the
// serving contract, not an observability extra.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace clpp::obs {

/// How a tagged span participates in its request's flow lane.
enum class FlowPhase : std::uint8_t {
  kNone = 0,   ///< span carries no flow linkage
  kStart = 1,  ///< first segment of the request (Chrome ph "s")
  kStep = 2,   ///< intermediate segment (Chrome ph "t")
  kEnd = 3,    ///< final segment (Chrome ph "f")
};

struct TraceContext {
  std::uint64_t trace_id = 0;  ///< nonzero once minted; stable per request
  std::uint64_t span_id = 0;   ///< this hop's span
  std::uint64_t parent_span_id = 0;  ///< 0 for the root hop

  bool active() const { return trace_id != 0; }

  /// Fresh root context: new trace_id, span_id == trace_id, no parent.
  static TraceContext mint();

  /// Child context for the next hop: same trace, new span_id, parented on
  /// this context's span_id.
  TraceContext child() const;

  /// 16-hex-digit trace id (the wire form used in serve responses and as
  /// the Chrome flow-event id).
  std::string trace_hex() const;
};

namespace detail {
/// splitmix64 — the mixer minting uses to decorrelate sequential ids.
std::uint64_t mix64(std::uint64_t x);
}  // namespace detail

}  // namespace clpp::obs
