#include "obs/stream.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/json.h"

namespace clpp::obs {

struct MetricsStreamer::Impl {
  std::mutex mu;
  std::condition_variable cv;
  std::thread worker;
  bool stopping = false;
  bool running = false;
  std::string path;
  std::uint64_t interval_ms = 500;
  std::atomic<std::uint64_t> emitted{0};

  // Last-tick cumulative values, for delta computation.
  std::map<std::string, double> last_counters;
  std::map<std::string, double> last_hist_counts;
  std::uint64_t seq = 0;
  std::FILE* sink = nullptr;

  void emit_line() {
    const Json snapshot = metrics().to_json();
    Json line = Json::object();
    line["schema"] = "clpp.metrics_stream.v1";
    line["seq"] = static_cast<std::int64_t>(seq++);
    line["ts_ms"] = static_cast<double>(Tracer::now_ns()) / 1e6;

    Json counters = Json::object();
    for (const auto& [name, v] : snapshot.at("counters").fields()) {
      const double now = v.as_double();
      const double delta = now - last_counters[name];
      last_counters[name] = now;
      if (delta != 0.0) counters[name] = delta;
    }
    line["counters"] = std::move(counters);

    Json gauges = Json::object();
    for (const auto& [name, v] : snapshot.at("gauges").fields())
      gauges[name] = v.as_double();
    line["gauges"] = std::move(gauges);

    Json histograms = Json::object();
    for (const auto& [name, stats] : snapshot.at("histograms").fields()) {
      const double count = stats.at("count").as_double();
      const double delta = count - last_hist_counts[name];
      last_hist_counts[name] = count;
      if (delta == 0.0) continue;  // nothing recorded since the last tick
      Json h = Json::object();
      h["count"] = delta;
      for (const char* q : {"p50", "p95", "p99", "mean", "max"})
        h[q] = stats.at(q).as_double();
      histograms[name] = std::move(h);
    }
    line["histograms"] = std::move(histograms);

    const std::string text = line.dump();
    std::fwrite(text.data(), 1, text.size(), sink);
    std::fputc('\n', sink);
    std::fflush(sink);
    emitted.fetch_add(1, std::memory_order_release);
  }

  void loop() {
    std::unique_lock lock(mu);
    while (!stopping) {
      cv.wait_for(lock, std::chrono::milliseconds(interval_ms),
                  [&] { return stopping; });
      if (stopping) break;  // stop() emits the final line after the join
      if (sink != nullptr) emit_line();
    }
  }
};

MetricsStreamer::MetricsStreamer() : impl_(new Impl) {}

MetricsStreamer& MetricsStreamer::instance() {
  static MetricsStreamer* streamer = new MetricsStreamer();
  return *streamer;
}

void MetricsStreamer::start(std::string path, std::uint64_t interval_ms) {
  stop();
  // Force-construct the statics the streamer thread touches before
  // registering the atexit stop, so destruction order can never beat the
  // final flush (same discipline as obs.cpp's register_exit_export).
  metrics();
  Tracer::now_ns();
  {
    std::lock_guard lock(impl_->mu);
    impl_->sink = std::fopen(path.c_str(), "a");
    if (impl_->sink == nullptr) {
      std::fprintf(stderr, "clpp::obs: cannot open metrics stream sink: %s\n",
                   path.c_str());
      return;
    }
    impl_->path = std::move(path);
    impl_->interval_ms = interval_ms == 0 ? 1 : interval_ms;
    impl_->stopping = false;
    impl_->running = true;
    impl_->worker = std::thread([this] { impl_->loop(); });
  }
  static const bool exit_hook_registered = [] {
    std::atexit([] { MetricsStreamer::instance().stop(); });
    return true;
  }();
  (void)exit_hook_registered;
}

void MetricsStreamer::stop() {
  std::thread worker;
  {
    std::lock_guard lock(impl_->mu);
    if (!impl_->running) return;
    impl_->stopping = true;
    worker = std::move(impl_->worker);
  }
  impl_->cv.notify_all();
  if (worker.joinable()) worker.join();
  {
    std::lock_guard lock(impl_->mu);
    if (impl_->sink != nullptr) {
      impl_->emit_line();  // final flush: deltas since the last tick
      std::fclose(impl_->sink);
      impl_->sink = nullptr;
    }
    impl_->running = false;
    impl_->stopping = false;
  }
}

bool MetricsStreamer::running() const {
  std::lock_guard lock(impl_->mu);
  return impl_->running;
}

std::uint64_t MetricsStreamer::emitted() const {
  return impl_->emitted.load(std::memory_order_acquire);
}

}  // namespace clpp::obs
