// Leveled structured logger with a JSON-lines sink.
//
// Each emitted line is one JSON object (support/json.h):
//
//   {"ts":1722945600.123,"level":"info","component":"trainer",
//    "msg":"epoch done","epoch":3,"train_loss":0.41}
//
// Extra fields are passed as a Json object and merged at top level (keys
// colliding with ts/level/component/msg are dropped). The default sink is
// stderr; `set_log_path` redirects to a file. The default threshold is
// `kWarn`, so instrumented library code is silent unless the caller (or
// CLPP_LOG_LEVEL) opts in. The level gate is one relaxed atomic load.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

#include "support/json.h"

namespace clpp::obs {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

namespace detail {
extern std::atomic<int> g_log_level;
}  // namespace detail

/// Threshold: events below it are discarded.
void set_log_level(LogLevel level);
inline LogLevel log_level() {
  return static_cast<LogLevel>(detail::g_log_level.load(std::memory_order_relaxed));
}
inline bool log_enabled(LogLevel level) {
  return static_cast<int>(level) >= detail::g_log_level.load(std::memory_order_relaxed);
}

/// "debug" | "info" | "warn" | "error" | "off" (anything else → kWarn).
LogLevel parse_log_level(std::string_view text);
std::string_view log_level_name(LogLevel level);

/// Redirects the sink to `path` (append); empty restores stderr.
void set_log_path(const std::string& path);

/// Emits one JSON line when `level` passes the threshold.
void log(LogLevel level, std::string_view component, std::string_view message,
         Json fields = Json::object());

inline void log_debug(std::string_view component, std::string_view message,
                      Json fields = Json::object()) {
  if (log_enabled(LogLevel::kDebug))
    log(LogLevel::kDebug, component, message, std::move(fields));
}
inline void log_info(std::string_view component, std::string_view message,
                     Json fields = Json::object()) {
  if (log_enabled(LogLevel::kInfo))
    log(LogLevel::kInfo, component, message, std::move(fields));
}
inline void log_warn(std::string_view component, std::string_view message,
                     Json fields = Json::object()) {
  if (log_enabled(LogLevel::kWarn))
    log(LogLevel::kWarn, component, message, std::move(fields));
}
inline void log_error(std::string_view component, std::string_view message,
                      Json fields = Json::object()) {
  if (log_enabled(LogLevel::kError))
    log(LogLevel::kError, component, message, std::move(fields));
}

}  // namespace clpp::obs
