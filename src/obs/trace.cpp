#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace clpp::obs {

namespace {
// Sized so a quickstart-scale training run (~35k span events on the main
// thread, dominated by per-GEMM spans) fits without ring wrap-around.
// Capacity is a *ceiling*, not an upfront allocation: storage arrives in
// kChunkEvents-sized chunks as a thread actually records.
constexpr std::size_t kDefaultThreadCapacity = 1 << 17;
// 4096 events x 48 bytes = 192 KiB per chunk. A short-lived thread that
// records a handful of spans (e.g. a serve client submitting one request)
// pays for one chunk, not the full ring — eager full-ring allocation made
// thread churn under tracing ~100x more expensive than the spans themselves.
constexpr std::size_t kChunkEvents = 1 << 12;
}

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id, std::size_t ring_capacity)
      : tid(id), name(default_name(id)), capacity(ring_capacity),
        chunks((ring_capacity + kChunkEvents - 1) / kChunkEvents) {
    for (auto& chunk : chunks) chunk.store(nullptr, std::memory_order_relaxed);
  }

  ~ThreadBuffer() {
    for (auto& chunk : chunks) delete[] chunk.load(std::memory_order_relaxed);
  }

  static std::string default_name(std::uint32_t id) {
    return id == 0 ? "main" : "thread-" + std::to_string(id);
  }

  /// Writer-side slot lookup: allocates the chunk on first touch. Only the
  /// owning thread calls this, so plain new + release store suffices.
  Event& slot(std::uint64_t i) {
    const std::size_t idx = static_cast<std::size_t>(i % capacity);
    std::atomic<Event*>& entry = chunks[idx / kChunkEvents];
    Event* chunk = entry.load(std::memory_order_relaxed);
    if (chunk == nullptr) {
      chunk = new Event[chunk_len(idx / kChunkEvents)];
      entry.store(chunk, std::memory_order_release);
    }
    return chunk[idx % kChunkEvents];
  }

  /// Reader-side slot lookup. Valid for i < count: the writer publishes the
  /// chunk (release) before publishing the count that covers it.
  const Event& slot(std::uint64_t i) const {
    const std::size_t idx = static_cast<std::size_t>(i % capacity);
    return chunks[idx / kChunkEvents].load(
        std::memory_order_acquire)[idx % kChunkEvents];
  }

  std::size_t chunk_len(std::size_t chunk_index) const {
    return std::min(kChunkEvents, capacity - chunk_index * kChunkEvents);
  }

  std::uint32_t tid;
  std::string name;  // written under Impl::mu (set_thread_name / export)
  std::size_t capacity;  // ring size in events (wrap-around modulus)
  std::vector<std::atomic<Event*>> chunks;  // lazily allocated storage
  // Single writer (the owning thread); readers acquire `count` and only
  // trust events published before it.
  std::atomic<std::uint64_t> count{0};
};

struct Tracer::Impl {
  std::mutex mu;  // guards `buffers`/`retired` registration and resets
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  // Buffers whose owning thread has exited, available for adoption by the
  // next registering thread (their already-allocated chunks are reused, so
  // thread churn does not grow the tracer without bound). A retired buffer
  // keeps its events visible to exports until it is actually adopted.
  std::vector<ThreadBuffer*> retired;
  std::atomic<std::size_t> thread_capacity{kDefaultThreadCapacity};
  std::atomic<std::uint64_t> reset_generation{0};
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  // Leaked singleton: worker threads may record during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  struct Slot {
    ThreadBuffer* buffer = nullptr;
    std::uint64_t generation = 0;

    /// Thread exit retires the buffer so the next registering thread can
    /// adopt it instead of allocating fresh (the tracer singleton and its
    /// Impl are leaked, so they outlive every thread_local destructor).
    ~Slot() {
      if (buffer == nullptr) return;
      Impl* impl = Tracer::instance().impl_;
      std::lock_guard<std::mutex> lock(impl->mu);
      impl->retired.push_back(buffer);
    }
  };
  thread_local Slot slot;
  const std::uint64_t generation =
      impl_->reset_generation.load(std::memory_order_acquire);
  if (slot.buffer == nullptr || slot.generation != generation) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::size_t capacity =
        impl_->thread_capacity.load(std::memory_order_relaxed);
    // A reset abandoned this thread's old buffer; make it adoptable too.
    if (slot.buffer != nullptr) impl_->retired.push_back(slot.buffer);
    ThreadBuffer* adopted = nullptr;
    while (!impl_->retired.empty() && adopted == nullptr) {
      ThreadBuffer* candidate = impl_->retired.back();
      impl_->retired.pop_back();
      // Capacity changes (tests) invalidate retired rings; skip those.
      if (candidate->capacity == capacity) adopted = candidate;
    }
    if (adopted != nullptr) {
      adopted->count.store(0, std::memory_order_relaxed);
      adopted->name = ThreadBuffer::default_name(adopted->tid);
      slot.buffer = adopted;
    } else {
      auto buffer = std::make_unique<ThreadBuffer>(
          static_cast<std::uint32_t>(impl_->buffers.size()), capacity);
      slot.buffer = buffer.get();
      impl_->buffers.push_back(std::move(buffer));
    }
    slot.generation = generation;
  }
  return *slot.buffer;
}

void Tracer::record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
                    std::int64_t arg, std::uint64_t flow_id, FlowPhase phase) {
  ThreadBuffer& buf = buffer_for_this_thread();
  const std::uint64_t i = buf.count.load(std::memory_order_relaxed);
  buf.slot(i) = Event{name, begin_ns, end_ns, arg, flow_id, phase};
  buf.count.store(i + 1, std::memory_order_release);
}

namespace {

/// 16-hex-digit flow id: Chrome flow events carry string ids, and hex keeps
/// 64-bit ids lossless (Json numbers are doubles, exact only to 2^53).
std::string flow_hex(std::uint64_t id) {
  TraceContext context;
  context.trace_id = id;
  return context.trace_hex();
}

}  // namespace

Json Tracer::chrome_trace() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Json events = Json::array();
  // Metadata first: name every thread so Perfetto timelines are readable.
  for (const auto& buf : impl_->buffers) {
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(buf->tid);
    Json args = Json::object();
    args["name"] = buf->name;
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t n = buf->count.load(std::memory_order_acquire);
    const std::uint64_t cap = buf->capacity;
    const std::uint64_t live = std::min(n, cap);
    const std::uint64_t first = n - live;
    for (std::uint64_t i = first; i < n; ++i) {
      const Event& e = static_cast<const ThreadBuffer&>(*buf).slot(i);
      Json ev = Json::object();
      ev["name"] = std::string(e.name);
      ev["cat"] = "clpp";
      ev["ph"] = "X";
      ev["pid"] = 1;
      ev["tid"] = static_cast<std::int64_t>(buf->tid);
      ev["ts"] = static_cast<double>(e.begin_ns) / 1e3;  // microseconds
      ev["dur"] = static_cast<double>(e.end_ns - e.begin_ns) / 1e3;
      if (e.arg != kNoArg || e.flow_id != 0) {
        Json args = Json::object();
        if (e.arg != kNoArg) args["v"] = e.arg;
        if (e.flow_id != 0) args["trace_id"] = flow_hex(e.flow_id);
        ev["args"] = std::move(args);
      }
      events.push_back(std::move(ev));
      // Flow linkage: an "s"/"t"/"f" event anchored inside the span (same
      // tid, ts at the span begin) sharing the request's id — Perfetto and
      // chrome://tracing draw these as arrows connecting the request's
      // segments across thread lanes.
      if (e.flow_id != 0 && e.flow != FlowPhase::kNone) {
        Json flow = Json::object();
        flow["name"] = "request";
        flow["cat"] = "clpp.flow";
        flow["ph"] = e.flow == FlowPhase::kStart ? "s"
                     : e.flow == FlowPhase::kStep ? "t"
                                                  : "f";
        if (e.flow == FlowPhase::kEnd) flow["bp"] = "e";
        flow["id"] = flow_hex(e.flow_id);
        flow["pid"] = 1;
        flow["tid"] = static_cast<std::int64_t>(buf->tid);
        flow["ts"] = static_cast<double>(e.begin_ns) / 1e3;
        events.push_back(std::move(flow));
      }
    }
  }
  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  const std::string text = chrome_trace().dump();
  // Temp + rename so a crash mid-export never truncates an earlier trace.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open trace output file: " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    std::remove(tmp.c_str());
    throw IoError("short write to trace file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename trace file into place: " + path);
  }
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    double total_ns = 0.0;
    double min_ns = std::numeric_limits<double>::infinity();
    double max_ns = 0.0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& buf : impl_->buffers) {
      const std::uint64_t n = buf->count.load(std::memory_order_acquire);
      const std::uint64_t cap = buf->capacity;
      const std::uint64_t live = std::min(n, cap);
      for (std::uint64_t i = n - live; i < n; ++i) {
        const Event& e = static_cast<const ThreadBuffer&>(*buf).slot(i);
        Agg& agg = by_name[e.name];
        const double d = static_cast<double>(e.end_ns - e.begin_ns);
        ++agg.count;
        agg.total_ns += d;
        agg.min_ns = std::min(agg.min_ns, d);
        agg.max_ns = std::max(agg.max_ns, d);
      }
    }
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  TextTable table({"span", "count", "total ms", "mean ms", "min ms", "max ms"});
  for (const auto& [name, agg] : rows) {
    table.add_row({name, std::to_string(agg.count),
                   TextTable::num(agg.total_ns / 1e6, 2),
                   TextTable::num(agg.total_ns / 1e6 / static_cast<double>(agg.count), 3),
                   TextTable::num(agg.min_ns / 1e6, 3),
                   TextTable::num(agg.max_ns / 1e6, 3)});
  }
  return table.str();
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t total = 0;
  for (const auto& buf : impl_->buffers)
    total += buf->count.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t total = 0;
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t n = buf->count.load(std::memory_order_acquire);
    if (n > buf->capacity) total += n - buf->capacity;
  }
  return total;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Old buffers are abandoned (still owned here, so in-flight writers on
  // other threads stay safe until they observe the new generation).
  impl_->reset_generation.fetch_add(1, std::memory_order_release);
  for (auto& buf : impl_->buffers) buf->count.store(0, std::memory_order_relaxed);
}

void Tracer::set_thread_capacity(std::size_t events) {
  if (events == 0) events = 1;
  impl_->thread_capacity.store(events, std::memory_order_relaxed);
}

void Tracer::set_thread_name(std::string name) {
  ThreadBuffer& buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(impl_->mu);
  buf.name = std::move(name);
}

std::uint64_t Tracer::generation() const {
  return impl_->reset_generation.load(std::memory_order_acquire);
}

void name_worker_thread() {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  // Re-name after a reset (the reset abandoned this thread's old buffer).
  thread_local std::uint64_t named_generation = ~std::uint64_t{0};
  const std::uint64_t generation = tracer.generation();
  if (named_generation == generation) return;
  named_generation = generation;
  tracer.set_thread_name("parallel_for worker");
}

}  // namespace clpp::obs
