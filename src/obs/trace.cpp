#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "support/error.h"
#include "support/json.h"
#include "support/table.h"

namespace clpp::obs {

namespace {
// Sized so a quickstart-scale training run (~35k span events on the main
// thread, dominated by per-GEMM spans) fits without ring wrap-around:
// 2^17 events x 32 bytes = 4 MiB per recording thread.
constexpr std::size_t kDefaultThreadCapacity = 1 << 17;
}

struct Tracer::ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t id, std::size_t capacity)
      : tid(id), name(id == 0 ? "main" : "thread-" + std::to_string(id)),
        events(capacity) {}

  std::uint32_t tid;
  std::string name;  // written under Impl::mu (set_thread_name / export)
  std::vector<Event> events;
  // Single writer (the owning thread); readers acquire `count` and only
  // trust events published before it.
  std::atomic<std::uint64_t> count{0};
};

struct Tracer::Impl {
  std::mutex mu;  // guards `buffers` registration and resets
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::atomic<std::size_t> thread_capacity{kDefaultThreadCapacity};
  std::atomic<std::uint64_t> reset_generation{0};
};

Tracer::Tracer() : impl_(new Impl) {}

Tracer& Tracer::instance() {
  // Leaked singleton: worker threads may record during static teardown.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::uint64_t Tracer::now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - epoch)
          .count());
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  struct Slot {
    ThreadBuffer* buffer = nullptr;
    std::uint64_t generation = 0;
  };
  thread_local Slot slot;
  const std::uint64_t generation =
      impl_->reset_generation.load(std::memory_order_acquire);
  if (slot.buffer == nullptr || slot.generation != generation) {
    std::lock_guard<std::mutex> lock(impl_->mu);
    auto buffer = std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(impl_->buffers.size()),
        impl_->thread_capacity.load(std::memory_order_relaxed));
    slot.buffer = buffer.get();
    slot.generation = generation;
    impl_->buffers.push_back(std::move(buffer));
  }
  return *slot.buffer;
}

void Tracer::record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
                    std::int64_t arg) {
  ThreadBuffer& buf = buffer_for_this_thread();
  const std::uint64_t i = buf.count.load(std::memory_order_relaxed);
  buf.events[i % buf.events.size()] = Event{name, begin_ns, end_ns, arg};
  buf.count.store(i + 1, std::memory_order_release);
}

Json Tracer::chrome_trace() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Json events = Json::array();
  // Metadata first: name every thread so Perfetto timelines are readable.
  for (const auto& buf : impl_->buffers) {
    Json meta = Json::object();
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(buf->tid);
    Json args = Json::object();
    args["name"] = buf->name;
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  }
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t n = buf->count.load(std::memory_order_acquire);
    const std::uint64_t cap = buf->events.size();
    const std::uint64_t live = std::min(n, cap);
    const std::uint64_t first = n - live;
    for (std::uint64_t i = first; i < n; ++i) {
      const Event& e = buf->events[i % cap];
      Json ev = Json::object();
      ev["name"] = std::string(e.name);
      ev["cat"] = "clpp";
      ev["ph"] = "X";
      ev["pid"] = 1;
      ev["tid"] = static_cast<std::int64_t>(buf->tid);
      ev["ts"] = static_cast<double>(e.begin_ns) / 1e3;  // microseconds
      ev["dur"] = static_cast<double>(e.end_ns - e.begin_ns) / 1e3;
      if (e.arg != kNoArg) {
        Json args = Json::object();
        args["v"] = e.arg;
        ev["args"] = std::move(args);
      }
      events.push_back(std::move(ev));
    }
  }
  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  const std::string text = chrome_trace().dump();
  // Temp + rename so a crash mid-export never truncates an earlier trace.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) throw IoError("cannot open trace output file: " + tmp);
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) {
    std::remove(tmp.c_str());
    throw IoError("short write to trace file: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename trace file into place: " + path);
  }
}

std::string Tracer::summary() const {
  struct Agg {
    std::uint64_t count = 0;
    double total_ns = 0.0;
    double min_ns = std::numeric_limits<double>::infinity();
    double max_ns = 0.0;
  };
  std::map<std::string, Agg> by_name;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& buf : impl_->buffers) {
      const std::uint64_t n = buf->count.load(std::memory_order_acquire);
      const std::uint64_t cap = buf->events.size();
      const std::uint64_t live = std::min(n, cap);
      for (std::uint64_t i = n - live; i < n; ++i) {
        const Event& e = buf->events[i % cap];
        Agg& agg = by_name[e.name];
        const double d = static_cast<double>(e.end_ns - e.begin_ns);
        ++agg.count;
        agg.total_ns += d;
        agg.min_ns = std::min(agg.min_ns, d);
        agg.max_ns = std::max(agg.max_ns, d);
      }
    }
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  TextTable table({"span", "count", "total ms", "mean ms", "min ms", "max ms"});
  for (const auto& [name, agg] : rows) {
    table.add_row({name, std::to_string(agg.count),
                   TextTable::num(agg.total_ns / 1e6, 2),
                   TextTable::num(agg.total_ns / 1e6 / static_cast<double>(agg.count), 3),
                   TextTable::num(agg.min_ns / 1e6, 3),
                   TextTable::num(agg.max_ns / 1e6, 3)});
  }
  return table.str();
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t total = 0;
  for (const auto& buf : impl_->buffers)
    total += buf->count.load(std::memory_order_acquire);
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::uint64_t total = 0;
  for (const auto& buf : impl_->buffers) {
    const std::uint64_t n = buf->count.load(std::memory_order_acquire);
    if (n > buf->events.size()) total += n - buf->events.size();
  }
  return total;
}

void Tracer::reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Old buffers are abandoned (still owned here, so in-flight writers on
  // other threads stay safe until they observe the new generation).
  impl_->reset_generation.fetch_add(1, std::memory_order_release);
  for (auto& buf : impl_->buffers) buf->count.store(0, std::memory_order_relaxed);
}

void Tracer::set_thread_capacity(std::size_t events) {
  if (events == 0) events = 1;
  impl_->thread_capacity.store(events, std::memory_order_relaxed);
}

void Tracer::set_thread_name(std::string name) {
  ThreadBuffer& buf = buffer_for_this_thread();
  std::lock_guard<std::mutex> lock(impl_->mu);
  buf.name = std::move(name);
}

std::uint64_t Tracer::generation() const {
  return impl_->reset_generation.load(std::memory_order_acquire);
}

void name_worker_thread() {
  if (!enabled()) return;
  Tracer& tracer = Tracer::instance();
  // Re-name after a reset (the reset abandoned this thread's old buffer).
  thread_local std::uint64_t named_generation = ~std::uint64_t{0};
  const std::uint64_t generation = tracer.generation();
  if (named_generation == generation) return;
  named_generation = generation;
  tracer.set_thread_name("parallel_for worker");
}

}  // namespace clpp::obs
