#include "obs/flight.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "support/json.h"

namespace clpp::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{true};
}  // namespace detail

namespace {

/// One ring slot. Fields are individually-relaxed atomics so a dump racing
/// a wrap-around writer reads a possibly mixed but never torn event — the
/// flight recorder must stay readable from a crash path while every other
/// thread keeps running.
struct Slot {
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<const char*> kind{nullptr};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
};

struct ThreadRing {
  explicit ThreadRing(std::uint32_t id) : tid(id), slots(kFlightCapacity) {}
  std::uint32_t tid;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> count{0};  // monotonic; slot = count % capacity
};

struct FlightState {
  std::mutex mu;  // guards ring registration, reset, and the dump path
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::atomic<std::uint64_t> reset_generation{0};
  std::string out_path = "clpp_flight.json";
  std::atomic<bool> dump_on_fault{false};
};

FlightState& state() {
  static FlightState* s = new FlightState;  // leaked: usable during exit/crash
  return *s;
}

// --- async-signal-safe mirrors ---------------------------------------------
//
// A signal handler cannot take state().mu or touch std::string, so the two
// pieces of state the crash dump needs are mirrored into lock-free storage:
// the ring pointers (rings are never freed — reset only abandons them — so
// a registered pointer stays valid forever) and the dump path (fixed char
// buffer, rewritten under the mutex by set_flight_out, read raw by the
// handler; a torn read costs a garbled filename, never memory safety).

constexpr std::size_t kMaxRegisteredRings = 256;
std::atomic<ThreadRing*> g_ring_registry[kMaxRegisteredRings];
std::atomic<std::size_t> g_ring_registered{0};

constexpr std::size_t kCrashPathMax = 512;
char g_crash_path[kCrashPathMax] = "clpp_flight.json";

void register_ring(ThreadRing* ring) {
  const std::size_t slot =
      g_ring_registered.fetch_add(1, std::memory_order_relaxed);
  if (slot < kMaxRegisteredRings)
    g_ring_registry[slot].store(ring, std::memory_order_release);
}

void mirror_crash_path(const std::string& path) {
  const std::size_t n = std::min(path.size(), kCrashPathMax - 1);
  std::memcpy(g_crash_path, path.data(), n);
  g_crash_path[n] = '\0';
}

ThreadRing& ring_for_this_thread() {
  struct Cache {
    ThreadRing* ring = nullptr;
    std::uint64_t generation = 0;
  };
  thread_local Cache cache;
  FlightState& s = state();
  const std::uint64_t generation =
      s.reset_generation.load(std::memory_order_acquire);
  if (cache.ring == nullptr || cache.generation != generation) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto ring =
        std::make_unique<ThreadRing>(static_cast<std::uint32_t>(s.rings.size()));
    cache.ring = ring.get();
    cache.generation = generation;
    register_ring(ring.get());
    s.rings.push_back(std::move(ring));
  }
  return *cache.ring;
}

}  // namespace

void set_flight_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void flight_record(const char* kind, std::int64_t a, std::int64_t b) {
  if (!flight_enabled()) return;
  ThreadRing& ring = ring_for_this_thread();
  const std::uint64_t i = ring.count.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[i % kFlightCapacity];
  slot.ts_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  ring.count.store(i + 1, std::memory_order_release);
}

Json flight_json(const std::string& reason) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  Json events = Json::array();
  for (const auto& ring : s.rings) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    recorded += n;
    if (n > kFlightCapacity) dropped += n - kFlightCapacity;
    const std::uint64_t live = std::min<std::uint64_t>(n, kFlightCapacity);
    for (std::uint64_t i = n - live; i < n; ++i) {
      const Slot& slot = ring->slots[i % kFlightCapacity];
      const char* kind = slot.kind.load(std::memory_order_relaxed);
      if (kind == nullptr) continue;  // slot raced a concurrent wrap
      Json ev = Json::object();
      ev["ts_us"] =
          static_cast<double>(slot.ts_ns.load(std::memory_order_relaxed)) / 1e3;
      ev["tid"] = static_cast<std::int64_t>(ring->tid);
      ev["kind"] = std::string(kind);
      ev["a"] = slot.a.load(std::memory_order_relaxed);
      ev["b"] = slot.b.load(std::memory_order_relaxed);
      events.push_back(std::move(ev));
    }
  }
  Json doc = Json::object();
  doc["schema"] = "clpp.flight.v1";
  doc["reason"] = reason;
  doc["recorded"] = static_cast<std::int64_t>(recorded);
  doc["dropped"] = static_cast<std::int64_t>(dropped);
  doc["events"] = std::move(events);
  return doc;
}

void set_flight_out(std::string path) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.out_path = std::move(path);
  mirror_crash_path(s.out_path);
  s.dump_on_fault.store(!s.out_path.empty(), std::memory_order_relaxed);
}

std::string flight_out() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.out_path;
}

bool flight_dump_on_fault() {
  return state().dump_on_fault.load(std::memory_order_relaxed);
}

bool dump_flight(const std::string& reason) noexcept {
  try {
    if (!flight_enabled()) return false;
    const std::string path = flight_out();
    if (path.empty()) return false;
    const std::string text = flight_json(reason).dump();
    // Plain fopen/fwrite, no temp+rename: this runs on crash paths where
    // simplicity beats atomicity, and a half-written dump still beats none.
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (written != text.size()) return false;
    std::fprintf(stderr, "clpp::obs: flight recorder dumped to %s (%s)\n",
                 path.c_str(), reason.c_str());
    return true;
  } catch (...) {
    return false;
  }
}

namespace {

/// Buffered write(2) sink for the crash path: everything on the stack,
/// partial writes retried, errors swallowed (a half dump beats none).
struct RawWriter {
  int fd = -1;
  char buf[4096] = {};
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void put(const char* data, std::size_t n) {
    while (n > 0) {
      if (len == sizeof buf) flush();
      const std::size_t chunk = std::min(n, sizeof buf - len);
      std::memcpy(buf + len, data, chunk);
      len += chunk;
      data += chunk;
      n -= chunk;
    }
  }
  void lit(const char* s) { put(s, std::strlen(s)); }
  void num(std::int64_t v) {
    char digits[24];
    char* end = digits + sizeof digits;
    char* p = end;
    const bool negative = v < 0;
    std::uint64_t u =
        negative ? ~static_cast<std::uint64_t>(v) + 1 : static_cast<std::uint64_t>(v);
    do {
      *--p = static_cast<char>('0' + u % 10);
      u /= 10;
    } while (u != 0);
    if (negative) *--p = '-';
    put(p, static_cast<std::size_t>(end - p));
  }
  /// kind strings are trusted literals (identifiers and dots); the only
  /// escaping a crash dump needs is to drop anything JSON-hostile.
  void str(const char* s) {
    put("\"", 1);
    for (; *s != '\0'; ++s)
      if (*s != '"' && *s != '\\' && static_cast<unsigned char>(*s) >= 0x20)
        put(s, 1);
    put("\"", 1);
  }
};

}  // namespace

bool dump_flight_async_safe(const char* reason) noexcept {
  if (!flight_enabled()) return false;
  if (g_crash_path[0] == '\0') return false;
  const int fd =
      ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;

  const std::size_t registered = std::min<std::size_t>(
      g_ring_registered.load(std::memory_order_acquire), kMaxRegisteredRings);
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  for (std::size_t r = 0; r < registered; ++r) {
    const ThreadRing* ring = g_ring_registry[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    recorded += n;
    if (n > kFlightCapacity) dropped += n - kFlightCapacity;
  }

  RawWriter out{fd};
  out.lit("{\"schema\":\"clpp.flight.v1\",\"reason\":");
  out.str(reason);
  out.lit(",\"recorded\":");
  out.num(static_cast<std::int64_t>(recorded));
  out.lit(",\"dropped\":");
  out.num(static_cast<std::int64_t>(dropped));
  out.lit(",\"events\":[");
  bool first = true;
  for (std::size_t r = 0; r < registered; ++r) {
    const ThreadRing* ring = g_ring_registry[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(n, kFlightCapacity);
    for (std::uint64_t i = n - live; i < n; ++i) {
      const Slot& slot = ring->slots[i % kFlightCapacity];
      const char* kind = slot.kind.load(std::memory_order_relaxed);
      if (kind == nullptr) continue;
      if (!first) out.lit(",");
      first = false;
      out.lit("{\"ts_us\":");
      out.num(static_cast<std::int64_t>(
          slot.ts_ns.load(std::memory_order_relaxed) / 1000));
      out.lit(",\"tid\":");
      out.num(static_cast<std::int64_t>(ring->tid));
      out.lit(",\"kind\":");
      out.str(kind);
      out.lit(",\"a\":");
      out.num(slot.a.load(std::memory_order_relaxed));
      out.lit(",\"b\":");
      out.num(slot.b.load(std::memory_order_relaxed));
      out.lit("}");
    }
  }
  out.lit("]}\n");
  out.flush();
  ::close(fd);

  static const char kNote[] = "clpp::obs: flight recorder dumped (signal)\n";
  const ssize_t ignored = ::write(2, kNote, sizeof kNote - 1);
  (void)ignored;
  return true;
}

namespace {

void crash_signal_handler(int sig) {
  const char* name = "signal";
  switch (sig) {
    case SIGSEGV: name = "SIGSEGV"; break;
    case SIGABRT: name = "SIGABRT"; break;
    case SIGBUS: name = "SIGBUS"; break;
    case SIGFPE: name = "SIGFPE"; break;
    case SIGILL: name = "SIGILL"; break;
  }
  dump_flight_async_safe(name);
  // SA_RESETHAND restored the default disposition before we ran; re-raising
  // now terminates with the expected signal status (and core, if enabled).
  ::raise(sig);
}

}  // namespace

void install_crash_handlers() {
  static const bool installed = [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof action);
    action.sa_handler = crash_signal_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_RESETHAND | SA_NODEFER;
    for (const int sig : {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL})
      ::sigaction(sig, &action, nullptr);
    return true;
  }();
  (void)installed;
}

std::uint64_t flight_recorded() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings)
    total += ring->count.load(std::memory_order_acquire);
  return total;
}

std::uint64_t flight_dropped() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    if (n > kFlightCapacity) total += n - kFlightCapacity;
  }
  return total;
}

void reset_flight() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Abandon old rings (writers mid-record stay safe until they observe the
  // new generation), mirroring Tracer::reset.
  s.reset_generation.fetch_add(1, std::memory_order_release);
  for (auto& ring : s.rings) ring->count.store(0, std::memory_order_relaxed);
}

}  // namespace clpp::obs
