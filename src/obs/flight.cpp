#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/trace.h"
#include "support/json.h"

namespace clpp::obs {

namespace detail {
std::atomic<bool> g_flight_enabled{true};
}  // namespace detail

namespace {

/// One ring slot. Fields are individually-relaxed atomics so a dump racing
/// a wrap-around writer reads a possibly mixed but never torn event — the
/// flight recorder must stay readable from a crash path while every other
/// thread keeps running.
struct Slot {
  std::atomic<std::uint64_t> ts_ns{0};
  std::atomic<const char*> kind{nullptr};
  std::atomic<std::int64_t> a{0};
  std::atomic<std::int64_t> b{0};
};

struct ThreadRing {
  explicit ThreadRing(std::uint32_t id) : tid(id), slots(kFlightCapacity) {}
  std::uint32_t tid;
  std::vector<Slot> slots;
  std::atomic<std::uint64_t> count{0};  // monotonic; slot = count % capacity
};

struct FlightState {
  std::mutex mu;  // guards ring registration, reset, and the dump path
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::atomic<std::uint64_t> reset_generation{0};
  std::string out_path = "clpp_flight.json";
  std::atomic<bool> dump_on_fault{false};
};

FlightState& state() {
  static FlightState* s = new FlightState;  // leaked: usable during exit/crash
  return *s;
}

ThreadRing& ring_for_this_thread() {
  struct Cache {
    ThreadRing* ring = nullptr;
    std::uint64_t generation = 0;
  };
  thread_local Cache cache;
  FlightState& s = state();
  const std::uint64_t generation =
      s.reset_generation.load(std::memory_order_acquire);
  if (cache.ring == nullptr || cache.generation != generation) {
    std::lock_guard<std::mutex> lock(s.mu);
    auto ring =
        std::make_unique<ThreadRing>(static_cast<std::uint32_t>(s.rings.size()));
    cache.ring = ring.get();
    cache.generation = generation;
    s.rings.push_back(std::move(ring));
  }
  return *cache.ring;
}

}  // namespace

void set_flight_enabled(bool on) {
  detail::g_flight_enabled.store(on, std::memory_order_relaxed);
}

void flight_record(const char* kind, std::int64_t a, std::int64_t b) {
  if (!flight_enabled()) return;
  ThreadRing& ring = ring_for_this_thread();
  const std::uint64_t i = ring.count.load(std::memory_order_relaxed);
  Slot& slot = ring.slots[i % kFlightCapacity];
  slot.ts_ns.store(Tracer::now_ns(), std::memory_order_relaxed);
  slot.kind.store(kind, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  ring.count.store(i + 1, std::memory_order_release);
}

Json flight_json(const std::string& reason) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
  Json events = Json::array();
  for (const auto& ring : s.rings) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    recorded += n;
    if (n > kFlightCapacity) dropped += n - kFlightCapacity;
    const std::uint64_t live = std::min<std::uint64_t>(n, kFlightCapacity);
    for (std::uint64_t i = n - live; i < n; ++i) {
      const Slot& slot = ring->slots[i % kFlightCapacity];
      const char* kind = slot.kind.load(std::memory_order_relaxed);
      if (kind == nullptr) continue;  // slot raced a concurrent wrap
      Json ev = Json::object();
      ev["ts_us"] =
          static_cast<double>(slot.ts_ns.load(std::memory_order_relaxed)) / 1e3;
      ev["tid"] = static_cast<std::int64_t>(ring->tid);
      ev["kind"] = std::string(kind);
      ev["a"] = slot.a.load(std::memory_order_relaxed);
      ev["b"] = slot.b.load(std::memory_order_relaxed);
      events.push_back(std::move(ev));
    }
  }
  Json doc = Json::object();
  doc["schema"] = "clpp.flight.v1";
  doc["reason"] = reason;
  doc["recorded"] = static_cast<std::int64_t>(recorded);
  doc["dropped"] = static_cast<std::int64_t>(dropped);
  doc["events"] = std::move(events);
  return doc;
}

void set_flight_out(std::string path) {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.out_path = std::move(path);
  s.dump_on_fault.store(!s.out_path.empty(), std::memory_order_relaxed);
}

std::string flight_out() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.out_path;
}

bool flight_dump_on_fault() {
  return state().dump_on_fault.load(std::memory_order_relaxed);
}

bool dump_flight(const std::string& reason) noexcept {
  try {
    if (!flight_enabled()) return false;
    const std::string path = flight_out();
    if (path.empty()) return false;
    const std::string text = flight_json(reason).dump();
    // Plain fopen/fwrite, no temp+rename: this runs on crash paths where
    // simplicity beats atomicity, and a half-written dump still beats none.
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    if (written != text.size()) return false;
    std::fprintf(stderr, "clpp::obs: flight recorder dumped to %s (%s)\n",
                 path.c_str(), reason.c_str());
    return true;
  } catch (...) {
    return false;
  }
}

std::uint64_t flight_recorded() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings)
    total += ring->count.load(std::memory_order_acquire);
  return total;
}

std::uint64_t flight_dropped() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::uint64_t total = 0;
  for (const auto& ring : s.rings) {
    const std::uint64_t n = ring->count.load(std::memory_order_acquire);
    if (n > kFlightCapacity) total += n - kFlightCapacity;
  }
  return total;
}

void reset_flight() {
  FlightState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Abandon old rings (writers mid-record stay safe until they observe the
  // new generation), mirroring Tracer::reset.
  s.reset_generation.fetch_add(1, std::memory_order_release);
  for (auto& ring : s.rings) ring->count.store(0, std::memory_order_relaxed);
}

}  // namespace clpp::obs
