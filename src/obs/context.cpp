#include "obs/context.h"

#include <chrono>

namespace clpp::obs {

namespace detail {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

namespace {

/// Sequential ids mixed through splitmix64: unique within the process, and
/// salted with the wall clock once so two processes tracing into the same
/// artifact directory do not collide on trace ids.
std::uint64_t next_id() {
  static const std::uint64_t salt = mix64(static_cast<std::uint64_t>(
      std::chrono::system_clock::now().time_since_epoch().count()));
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id =
      mix64(salt ^ counter.fetch_add(1, std::memory_order_relaxed));
  // 0 is the sentinel for "no context"; remap the (astronomically rare) hit.
  return id == 0 ? 1 : id;
}

}  // namespace
}  // namespace detail

TraceContext TraceContext::mint() {
  TraceContext context;
  context.trace_id = detail::next_id();
  context.span_id = context.trace_id;
  context.parent_span_id = 0;
  return context;
}

TraceContext TraceContext::child() const {
  TraceContext next;
  next.trace_id = trace_id;
  next.span_id = detail::next_id();
  next.parent_span_id = span_id;
  return next;
}

std::string TraceContext::trace_hex() const {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  std::uint64_t v = trace_id;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace clpp::obs
