// clpp::obs — runtime switchboard for the observability layer.
//
// Everything under src/obs is compiled in unconditionally but gated at
// runtime by `obs::enabled()`: the disabled fast path of every recording
// primitive is a single relaxed atomic load plus a predictable branch, so
// the instrumentation in hot kernels (GEMM, parallel_for, attention) costs
// nothing measurable when observability is off (the default).
//
// Environment integration (applied once at process start for any binary
// that links clpp_obs):
//   CLPP_OBS=1              enable metric recording and span tracing
//   CLPP_TRACE_OUT=PATH     write Chrome trace_event JSON here at exit
//   CLPP_METRICS_OUT=PATH   write the metrics snapshot JSON here at exit
//   CLPP_LOG_LEVEL=debug|info|warn|error|off   structured-log threshold
//   CLPP_LOG_OUT=PATH       JSON-lines log sink (default stderr)
//   CLPP_FLIGHT=0           disable the always-on flight recorder (flight.h)
//   CLPP_FLIGHT_OUT=PATH    crash-dump destination; also arms dumping on
//                           injected resil faults
//   CLPP_METRICS_STREAM=PATH        stream metrics deltas as JSON lines
//   CLPP_METRICS_STREAM_MS=500      streaming interval (stream.h)
#pragma once

#include <atomic>
#include <string>

namespace clpp::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when metric recording and span tracing are active.
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }

/// Turns the whole layer on or off at runtime.
void set_enabled(bool on);

/// Applies the CLPP_OBS / CLPP_TRACE_OUT / CLPP_METRICS_OUT / CLPP_LOG_*
/// environment variables; when an output path is configured it registers an
/// atexit hook invoking `export_configured_outputs`. Runs automatically at
/// process start; calling it again re-reads the environment.
void init_from_env();

/// Overrides the exit-time export destinations (empty string disables).
void set_trace_out(std::string path);
void set_metrics_out(std::string path);

/// Writes the configured trace / metrics files now; no-op for unset paths.
void export_configured_outputs();

}  // namespace clpp::obs
