// Lock-cheap metrics: named counters, gauges, and fixed-bucket histograms.
//
// Thread-safety model: every counter/histogram keeps `kShards` cache-line
// padded slots; a thread records into the slot picked by its stable shard
// index, so `parallel_for` bodies on different threads almost never contend
// on a cache line. Reads merge the shards: exact for counters and
// histograms, last-writer-wins for gauges. Metric objects are created once
// per name and never destroyed while the registry lives, so hot paths may
// cache the returned reference (e.g. in a function-local static).
//
// Naming convention: `clpp.<subsystem>.<name>`, e.g. `clpp.train.loss`,
// `clpp.infer.latency_us`, `clpp.tensor.gemm_calls`.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace clpp {
class Json;  // support/json.h — needed only by snapshot/export code
}

namespace clpp::obs {

inline constexpr std::size_t kShards = 16;

namespace detail {

/// Stable per-thread shard slot in [0, kShards), assigned round-robin.
std::size_t assign_shard();

inline std::size_t shard_index() {
  thread_local const std::size_t idx = assign_shard();
  return idx;
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

}  // namespace detail

/// Monotonic counter (`add` only). Recording is one relaxed fetch_add on
/// the calling thread's shard; disabled recording is one relaxed load.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards.
  std::uint64_t value() const;

  /// Zeroes the counter (identity, and thus cached references, survive).
  void reset();

 private:
  std::array<detail::PaddedU64, kShards> shards_;
};

/// Last-writer-wins scalar (loss, learning rate, thread count, ...).
class Gauge {
 public:
  void set(double v) {
    if (!enabled()) return;
    value_.store(v, std::memory_order_relaxed);
    set_count_.fetch_add(1, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  /// Number of `set` calls observed (0 means the gauge was never written).
  std::uint64_t set_count() const { return set_count_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> set_count_{0};
};

/// Fixed-bucket histogram. Buckets are defined by ascending upper bounds;
/// one implicit overflow bucket catches everything above the last bound.
/// Defaults to `default_latency_buckets_us()` (1-2-5 ladder, microseconds).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void record(double v) {
    if (!enabled()) return;
    record_always(v);
  }
  /// Records regardless of the global flag (used internally and in tests).
  void record_always(double v);

  std::uint64_t count() const;
  double sum() const;
  double min() const;  // +inf when empty
  double max() const;  // -inf when empty
  double mean() const;
  /// Bucket-interpolated quantile estimate, q in [0, 1].
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Merged counts, bounds().size() + 1 entries (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  struct Shard {
    explicit Shard(std::size_t buckets) : counts(buckets) {}
    std::vector<std::atomic<std::uint64_t>> counts;
    std::atomic<std::uint64_t> n{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> mn{std::numeric_limits<double>::infinity()};
    std::atomic<double> mx{-std::numeric_limits<double>::infinity()};
  };

  std::vector<double> bounds_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The 1-2-5 microsecond ladder from 1us to 1e7us (10s) used as the default
/// latency bucketing for `clpp.*.latency_us` histograms.
std::vector<double> default_latency_buckets_us();

/// Registry of named metrics. Lookup takes a mutex; hot paths should call
/// it once and cache the reference. `reset()` zeroes values but keeps every
/// metric object alive, so cached references never dangle.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is honored only by the call that creates the histogram;
  /// empty means `default_latency_buckets_us()`.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds = {});

  /// Snapshot as JSON: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, mean, min, max, p50, p90, p95, p99}}}.
  Json to_json() const;

  /// ASCII summary (support/table.h), one table per metric kind.
  std::string summary() const;

  /// Zeroes every metric value in place.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

namespace detail {
void record_loop_slow(std::size_t items, int threads, bool parallel);
}  // namespace detail

/// parallel_for hooks (see support/parallel.h): dispatch counters plus an
/// OMP-aware `clpp.parallel.threads` utilization gauge. Inline-gated so the
/// disabled cost inside parallel_for is one relaxed load per loop launch.
inline void record_parallel_loop(std::size_t items, int threads) {
  if (!enabled()) return;
  detail::record_loop_slow(items, threads, true);
}
inline void record_serial_loop(std::size_t items) {
  if (!enabled()) return;
  detail::record_loop_slow(items, 1, false);
}

}  // namespace clpp::obs
