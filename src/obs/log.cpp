#include "obs/log.h"

#include <chrono>
#include <cstdio>
#include <mutex>

namespace clpp::obs {

namespace detail {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace detail

namespace {

std::mutex& sink_mutex() {
  static std::mutex mu;
  return mu;
}

// Owned sink file; nullptr means stderr. Never fclosed on replacement races
// matter only at shutdown, where leaking the handle is the safe choice.
std::FILE*& sink_file() {
  static std::FILE* f = nullptr;
  return f;
}

double unix_seconds() {
  using namespace std::chrono;
  return duration<double>(system_clock::now().time_since_epoch()).count();
}

}  // namespace

void set_log_level(LogLevel level) {
  detail::g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn" || text == "warning") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off" || text == "none") return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "warn";
}

void set_log_path(const std::string& path) {
  std::lock_guard<std::mutex> lock(sink_mutex());
  if (sink_file() != nullptr) {
    std::fclose(sink_file());
    sink_file() = nullptr;
  }
  if (!path.empty()) sink_file() = std::fopen(path.c_str(), "a");
}

void log(LogLevel level, std::string_view component, std::string_view message,
         Json fields) {
  if (!log_enabled(level)) return;
  Json line = Json::object();
  line["ts"] = unix_seconds();
  line["level"] = std::string(log_level_name(level));
  line["component"] = std::string(component);
  line["msg"] = std::string(message);
  if (fields.type() == Json::Type::kObject) {
    for (const auto& [key, value] : fields.fields())
      if (!line.contains(key)) line[key] = value;
  }
  const std::string text = line.dump();
  std::lock_guard<std::mutex> lock(sink_mutex());
  std::FILE* out = sink_file() != nullptr ? sink_file() : stderr;
  std::fwrite(text.data(), 1, text.size(), out);
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace clpp::obs
