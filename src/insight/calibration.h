// Online calibration accounting: reliability bins and expected calibration
// error (ECE) over a stream of (confidence, correct?) observations.
//
// Serving has no labels, so "correct" is defined against the best available
// ground-truth proxy: the dependence engine's exact verdicts (see
// insight.h). Observations without a proxy still populate the confidence
// histogram — the shape of the confidence distribution is itself a health
// signal — but only labeled observations enter the ECE.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/json.h"

namespace clpp::insight {

/// Equal-width reliability bins over confidence in [0, 1].
///
/// ECE = sum_b (n_b / n) * |accuracy_b - mean_confidence_b| over labeled
/// observations, the standard calibration gap (Guo et al. 2017). Not
/// thread-safe; callers lock (InsightTracker does).
class ReliabilityBins {
 public:
  explicit ReliabilityBins(std::size_t bins = 10);

  /// Records one observation. `correct` present: the observation is labeled
  /// and contributes to the ECE; absent: histogram-only.
  void observe(double confidence, std::optional<bool> correct = std::nullopt);

  std::uint64_t count() const { return count_; }
  std::uint64_t labeled() const { return labeled_; }
  double mean_confidence() const;

  /// Expected calibration error over labeled observations; 0 when none.
  double ece() const;

  /// Per-bin observation counts (all observations, labeled or not).
  std::vector<std::uint64_t> histogram() const;

  /// {"count":N,"labeled":N,"mean_confidence":c,"ece":e,"bins":[
  ///   {"lo":0.0,"hi":0.1,"count":n,"labeled":n,"confidence":c,"accuracy":a}]}
  Json to_json() const;

  void reset();

 private:
  struct Bin {
    std::uint64_t count = 0;       // all observations
    double confidence_sum = 0.0;   // over all observations
    std::uint64_t labeled = 0;     // observations with a correctness label
    double labeled_confidence_sum = 0.0;
    std::uint64_t correct = 0;
  };

  std::size_t bin_of(double confidence) const;

  std::vector<Bin> bins_;
  std::uint64_t count_ = 0;
  std::uint64_t labeled_ = 0;
  double confidence_sum_ = 0.0;
};

}  // namespace clpp::insight
