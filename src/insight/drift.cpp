#include "insight/drift.h"

#include <algorithm>
#include <cmath>
#include <cctype>

namespace clpp::insight {

namespace {

std::uint64_t fnv1a(std::string_view token) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

SnippetFeatures snippet_features(std::string_view code) {
  SnippetFeatures f;
  // Nesting estimate without a parser: a `for`/`while` keyword opens a
  // pending loop; `{` converts pendings into brace-scoped loops, `}` closes
  // them, and a top-level `;` ends single-statement bodies.
  std::vector<char> scopes;  // 'l' loop-brace scope, 'b' plain brace scope
  std::uint32_t pending = 0;
  std::uint32_t loops_open = 0;
  int paren_depth = 0;

  const auto note_token = [&](std::string_view token) {
    ++f.tokens;
    ++f.sketch[fnv1a(token) % kSketchBins];
    if (token == "for" || token == "while") {
      ++pending;
      f.loop_depth = std::max(f.loop_depth, loops_open + pending);
    }
  };

  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (ident_char(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      note_token(code.substr(i, j - i));
      i = j;
      continue;
    }
    note_token(code.substr(i, 1));
    switch (c) {
      case '(': ++paren_depth; break;
      case ')': paren_depth = std::max(paren_depth - 1, 0); break;
      case '{':
        if (pending > 0) {
          loops_open += pending;
          for (; pending > 0; --pending) scopes.push_back('l');
        } else {
          scopes.push_back('b');
        }
        break;
      case '}':
        if (!scopes.empty()) {
          if (scopes.back() == 'l' && loops_open > 0) --loops_open;
          scopes.pop_back();
        }
        break;
      case ';':
        // Statement end at expression level closes single-statement loop
        // bodies (`for (...) a[i] = 0;`) — but not the `;`s inside a for
        // header.
        if (paren_depth == 0) pending = 0;
        break;
      default: break;
    }
    ++i;
  }
  return f;
}

Json Fingerprint::to_json() const {
  Json doc = Json::object();
  doc["schema"] = "clpp.fingerprint.v1";
  doc["samples"] = samples;
  doc["mean_tokens"] = mean_tokens;
  doc["var_tokens"] = var_tokens;
  doc["mean_loop_depth"] = mean_loop_depth;
  doc["var_loop_depth"] = var_loop_depth;
  Json freq = Json::array();
  for (const double p : token_freq) freq.push_back(p);
  doc["token_freq"] = std::move(freq);
  return doc;
}

Fingerprint Fingerprint::from_json(const Json& doc) {
  Fingerprint fp;
  fp.samples = static_cast<std::uint64_t>(doc.get_int("samples", 0));
  const auto get_double = [&](const char* key) {
    return doc.contains(key) ? doc.at(key).as_double() : 0.0;
  };
  fp.mean_tokens = get_double("mean_tokens");
  fp.var_tokens = get_double("var_tokens");
  fp.mean_loop_depth = get_double("mean_loop_depth");
  fp.var_loop_depth = get_double("var_loop_depth");
  if (doc.contains("token_freq")) {
    const Json& freq = doc.at("token_freq");
    for (std::size_t b = 0; b < kSketchBins && b < freq.size(); ++b)
      fp.token_freq[b] = freq.at(b).as_double();
  }
  return fp;
}

void FingerprintBuilder::observe(std::string_view code) {
  const SnippetFeatures f = snippet_features(code);
  for (std::size_t b = 0; b < kSketchBins; ++b) counts_[b] += f.sketch[b];
  sum_tokens_ += f.tokens;
  sumsq_tokens_ += static_cast<double>(f.tokens) * f.tokens;
  sum_depth_ += f.loop_depth;
  sumsq_depth_ += static_cast<double>(f.loop_depth) * f.loop_depth;
  ++samples_;
}

Fingerprint FingerprintBuilder::build() const {
  Fingerprint fp;
  fp.samples = samples_;
  if (samples_ == 0) return fp;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  if (total > 0)
    for (std::size_t b = 0; b < kSketchBins; ++b)
      fp.token_freq[b] = static_cast<double>(counts_[b]) / static_cast<double>(total);
  const double n = static_cast<double>(samples_);
  fp.mean_tokens = sum_tokens_ / n;
  fp.var_tokens = std::max(sumsq_tokens_ / n - fp.mean_tokens * fp.mean_tokens, 0.0);
  fp.mean_loop_depth = sum_depth_ / n;
  fp.var_loop_depth =
      std::max(sumsq_depth_ / n - fp.mean_loop_depth * fp.mean_loop_depth, 0.0);
  return fp;
}

double population_stability(const Fingerprint& reference, const Fingerprint& window) {
  if (reference.empty() || window.empty()) return 0.0;
  constexpr double kEps = 1e-4;  // smoothing: empty bins stay finite
  double psi = 0.0;
  for (std::size_t b = 0; b < kSketchBins; ++b) {
    const double p = reference.token_freq[b] + kEps;
    const double q = window.token_freq[b] + kEps;
    psi += (q - p) * std::log(q / p);
  }
  return psi;
}

DriftMonitor::DriftMonitor(std::size_t window) : ring_(std::max<std::size_t>(window, 1)) {}

void DriftMonitor::set_reference(Fingerprint reference) {
  reference_ = std::move(reference);
}

void DriftMonitor::observe(std::string_view code) {
  const SnippetFeatures f = snippet_features(code);
  if (filled_ == ring_.size()) {
    const SnippetFeatures& old = ring_[next_];
    for (std::size_t b = 0; b < kSketchBins; ++b) counts_[b] -= old.sketch[b];
    sum_tokens_ -= old.tokens;
    sumsq_tokens_ -= static_cast<double>(old.tokens) * old.tokens;
    sum_depth_ -= old.loop_depth;
    sumsq_depth_ -= static_cast<double>(old.loop_depth) * old.loop_depth;
  } else {
    ++filled_;
  }
  ring_[next_] = f;
  next_ = (next_ + 1) % ring_.size();
  for (std::size_t b = 0; b < kSketchBins; ++b) counts_[b] += f.sketch[b];
  sum_tokens_ += f.tokens;
  sumsq_tokens_ += static_cast<double>(f.tokens) * f.tokens;
  sum_depth_ += f.loop_depth;
  sumsq_depth_ += static_cast<double>(f.loop_depth) * f.loop_depth;
  ++observed_;
}

Fingerprint DriftMonitor::window_fingerprint() const {
  Fingerprint fp;
  fp.samples = filled_;
  if (filled_ == 0) return fp;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts_) total += c;
  if (total > 0)
    for (std::size_t b = 0; b < kSketchBins; ++b)
      fp.token_freq[b] = static_cast<double>(counts_[b]) / static_cast<double>(total);
  const double n = static_cast<double>(filled_);
  fp.mean_tokens = sum_tokens_ / n;
  fp.var_tokens = std::max(sumsq_tokens_ / n - fp.mean_tokens * fp.mean_tokens, 0.0);
  fp.mean_loop_depth = sum_depth_ / n;
  fp.var_loop_depth =
      std::max(sumsq_depth_ / n - fp.mean_loop_depth * fp.mean_loop_depth, 0.0);
  return fp;
}

double DriftMonitor::score() const {
  if (!armed() || filled_ == 0) return 0.0;
  return population_stability(reference_, window_fingerprint());
}

}  // namespace clpp::insight
