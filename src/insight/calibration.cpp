#include "insight/calibration.h"

#include <algorithm>
#include <cmath>

namespace clpp::insight {

ReliabilityBins::ReliabilityBins(std::size_t bins) : bins_(std::max<std::size_t>(bins, 1)) {}

std::size_t ReliabilityBins::bin_of(double confidence) const {
  const double clamped = std::clamp(confidence, 0.0, 1.0);
  // 1.0 lands in the last bin, not one past it.
  return std::min(static_cast<std::size_t>(clamped * bins_.size()), bins_.size() - 1);
}

void ReliabilityBins::observe(double confidence, std::optional<bool> correct) {
  if (std::isnan(confidence)) return;
  Bin& bin = bins_[bin_of(confidence)];
  ++bin.count;
  bin.confidence_sum += confidence;
  ++count_;
  confidence_sum_ += confidence;
  if (correct) {
    ++bin.labeled;
    bin.labeled_confidence_sum += confidence;
    if (*correct) ++bin.correct;
    ++labeled_;
  }
}

double ReliabilityBins::mean_confidence() const {
  return count_ == 0 ? 0.0 : confidence_sum_ / static_cast<double>(count_);
}

double ReliabilityBins::ece() const {
  if (labeled_ == 0) return 0.0;
  double ece = 0.0;
  for (const Bin& bin : bins_) {
    if (bin.labeled == 0) continue;
    const double weight = static_cast<double>(bin.labeled) / static_cast<double>(labeled_);
    const double confidence = bin.labeled_confidence_sum / static_cast<double>(bin.labeled);
    const double accuracy = static_cast<double>(bin.correct) / static_cast<double>(bin.labeled);
    ece += weight * std::abs(accuracy - confidence);
  }
  return ece;
}

std::vector<std::uint64_t> ReliabilityBins::histogram() const {
  std::vector<std::uint64_t> out;
  out.reserve(bins_.size());
  for (const Bin& bin : bins_) out.push_back(bin.count);
  return out;
}

Json ReliabilityBins::to_json() const {
  Json doc = Json::object();
  doc["count"] = count_;
  doc["labeled"] = labeled_;
  doc["mean_confidence"] = mean_confidence();
  doc["ece"] = ece();
  Json bins = Json::array();
  const double width = 1.0 / static_cast<double>(bins_.size());
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const Bin& bin = bins_[b];
    Json entry = Json::object();
    entry["lo"] = width * static_cast<double>(b);
    entry["hi"] = width * static_cast<double>(b + 1);
    entry["count"] = bin.count;
    entry["labeled"] = bin.labeled;
    entry["confidence"] =
        bin.count == 0 ? 0.0 : bin.confidence_sum / static_cast<double>(bin.count);
    entry["accuracy"] =
        bin.labeled == 0 ? 0.0
                         : static_cast<double>(bin.correct) / static_cast<double>(bin.labeled);
    bins.push_back(std::move(entry));
  }
  doc["bins"] = std::move(bins);
  return doc;
}

void ReliabilityBins::reset() {
  std::fill(bins_.begin(), bins_.end(), Bin{});
  count_ = 0;
  labeled_ = 0;
  confidence_sum_ = 0.0;
}

}  // namespace clpp::insight
