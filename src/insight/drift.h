// Input-drift detection: does serve traffic still look like the corpus the
// advisor was trained on?
//
// Training checkpoints a cheap feature fingerprint of the corpus — a
// 64-bin token-hash frequency sketch plus snippet-length and loop-depth
// moments — alongside the model (advisor container v2). At serve time a
// sliding window of recent request features is compared against that
// reference with a population-stability-index (PSI) score: the symmetric
// KL-style sum  sum_b (p_b - q_b) * ln(p_b / q_b)  over sketch bins, the
// standard drift statistic (PSI < 0.1 stable, 0.1-0.25 shifting, > 0.25
// drifted). Feature extraction is a single lexer pass over the snippet —
// no parsing, no tokenizer vocabulary — so the serve hot path pays
// microseconds per request.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "support/json.h"

namespace clpp::insight {

inline constexpr std::size_t kSketchBins = 64;

/// Features of one snippet: hashed token counts + size/shape scalars.
struct SnippetFeatures {
  std::array<std::uint32_t, kSketchBins> sketch{};
  std::uint32_t tokens = 0;
  std::uint32_t loop_depth = 0;  // max `for`/`while` nesting estimate
};

/// Lexes `code` (identifiers, numbers, punctuation) and fills the sketch.
SnippetFeatures snippet_features(std::string_view code);

/// Aggregated distribution checkpointed with a trained advisor.
struct Fingerprint {
  std::array<double, kSketchBins> token_freq{};  // sums to 1 when samples > 0
  double mean_tokens = 0.0;
  double var_tokens = 0.0;
  double mean_loop_depth = 0.0;
  double var_loop_depth = 0.0;
  std::uint64_t samples = 0;

  bool empty() const { return samples == 0; }

  Json to_json() const;
  static Fingerprint from_json(const Json& doc);
};

/// Streaming builder for a Fingerprint (training side).
class FingerprintBuilder {
 public:
  void observe(std::string_view code);
  Fingerprint build() const;

 private:
  std::array<std::uint64_t, kSketchBins> counts_{};
  double sum_tokens_ = 0.0, sumsq_tokens_ = 0.0;
  double sum_depth_ = 0.0, sumsq_depth_ = 0.0;
  std::uint64_t samples_ = 0;
};

/// PSI of `window` against `reference` over the token sketch (with epsilon
/// smoothing so empty bins do not blow up). 0 when either side is empty.
double population_stability(const Fingerprint& reference, const Fingerprint& window);

/// Sliding-window drift scorer for serve traffic. Unarmed (no reference)
/// it observes but always scores 0. Not thread-safe; callers lock.
class DriftMonitor {
 public:
  explicit DriftMonitor(std::size_t window = 256);

  void set_reference(Fingerprint reference);
  bool armed() const { return !reference_.empty(); }
  const Fingerprint& reference() const { return reference_; }

  void observe(std::string_view code);

  std::uint64_t observed() const { return observed_; }
  std::size_t window() const { return ring_.size(); }
  std::size_t filled() const { return filled_; }

  /// PSI of the current window vs the reference; 0 when unarmed or empty.
  double score() const;

  /// Fingerprint aggregated over the current window contents.
  Fingerprint window_fingerprint() const;

 private:
  Fingerprint reference_;
  std::vector<SnippetFeatures> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t observed_ = 0;
  // Running aggregates over the ring so score() is O(bins), not O(window).
  std::array<std::uint64_t, kSketchBins> counts_{};
  double sum_tokens_ = 0.0, sumsq_tokens_ = 0.0;
  double sum_depth_ = 0.0, sumsq_depth_ = 0.0;
};

}  // namespace clpp::insight
