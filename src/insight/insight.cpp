#include "insight/insight.h"

#include "obs/metrics.h"

namespace clpp::insight {

const char* proof_verdict_name(ProofVerdict verdict) {
  switch (verdict) {
    case ProofVerdict::kNone: return "none";
    case ProofVerdict::kParallel: return "parallel";
    case ProofVerdict::kDependent: return "dependent";
    case ProofVerdict::kInconclusive: return "inconclusive";
  }
  return "unknown";
}

InsightTracker::InsightTracker(InsightConfig config)
    : config_(config),
      directive_(config.bins),
      private_(config.bins),
      reduction_(config.bins),
      schedule_(config.bins),
      drift_(config.drift_window) {}

void InsightTracker::set_reference(Fingerprint reference) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_.set_reference(std::move(reference));
}

bool InsightTracker::drift_armed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_.armed();
}

DisagreementKind InsightTracker::observe(std::string_view code,
                                         const VerdictSample& sample) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;

  // Directive head: ECE over max-class confidence, correctness against the
  // proof when it is conclusive; histogram-only otherwise.
  const double confidence =
      sample.positive ? sample.p_directive : 1.0 - sample.p_directive;
  const bool conclusive = sample.proof == ProofVerdict::kParallel ||
                          sample.proof == ProofVerdict::kDependent;
  std::optional<bool> correct;
  if (conclusive)
    correct = sample.positive == (sample.proof == ProofVerdict::kParallel);
  directive_.observe(confidence, correct);

  // Clause/schedule heads only score positive rows; no label proxy online.
  if (sample.clauses_scored) {
    private_.observe(sample.p_private);
    reduction_.observe(sample.p_reduction);
    schedule_.observe(sample.p_dynamic);
  }

  drift_.observe(code);

  DisagreementKind kind = DisagreementKind::kNone;
  if (conclusive) {
    ++proofs_checked_;
    if (*correct) {
      ++agreements_;
    } else if (sample.positive) {
      ++model_parallel_proof_dependent_;
      kind = DisagreementKind::kModelParallelProofDependent;
    } else {
      ++model_serial_proof_parallel_;
      kind = DisagreementKind::kModelSerialProofParallel;
    }
  }

  export_metrics_locked(conclusive, kind);
  return kind;
}

std::uint64_t InsightTracker::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

std::uint64_t InsightTracker::disagreements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return model_parallel_proof_dependent_ + model_serial_proof_parallel_;
}

double InsightTracker::directive_ece() const {
  std::lock_guard<std::mutex> lock(mu_);
  return directive_.ece();
}

double InsightTracker::drift_score() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_.score();
}

double InsightTracker::disagreement_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (proofs_checked_ == 0) return 0.0;
  return static_cast<double>(model_parallel_proof_dependent_ +
                             model_serial_proof_parallel_) /
         static_cast<double>(proofs_checked_);
}

Json InsightTracker::quality_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc = Json::object();
  doc["schema"] = "clpp.insight.v1";
  doc["samples"] = samples_;

  Json tasks = Json::object();
  tasks["directive"] = directive_.to_json();
  tasks["private"] = private_.to_json();
  tasks["reduction"] = reduction_.to_json();
  tasks["schedule"] = schedule_.to_json();
  doc["tasks"] = std::move(tasks);

  Json disagreement = Json::object();
  disagreement["checked"] = proofs_checked_;
  disagreement["agreements"] = agreements_;
  disagreement["model_parallel_proof_dependent"] = model_parallel_proof_dependent_;
  disagreement["model_serial_proof_parallel"] = model_serial_proof_parallel_;
  disagreement["count"] =
      model_parallel_proof_dependent_ + model_serial_proof_parallel_;
  disagreement["rate"] =
      proofs_checked_ == 0
          ? 0.0
          : static_cast<double>(model_parallel_proof_dependent_ +
                                model_serial_proof_parallel_) /
                static_cast<double>(proofs_checked_);
  doc["disagreement"] = std::move(disagreement);

  Json drift = Json::object();
  drift["armed"] = drift_.armed();
  drift["observed"] = drift_.observed();
  drift["window"] = drift_.window();
  drift["filled"] = drift_.filled();
  drift["score"] = drift_.score();
  const Fingerprint window = drift_.window_fingerprint();
  drift["window_mean_tokens"] = window.mean_tokens;
  drift["window_mean_loop_depth"] = window.mean_loop_depth;
  if (drift_.armed()) {
    drift["reference_mean_tokens"] = drift_.reference().mean_tokens;
    drift["reference_mean_loop_depth"] = drift_.reference().mean_loop_depth;
    drift["reference_samples"] = drift_.reference().samples;
  }
  doc["drift"] = std::move(drift);
  return doc;
}

void InsightTracker::export_metrics_locked(bool conclusive, DisagreementKind kind) {
  auto& m = obs::metrics();
  static obs::Counter& samples = m.counter("clpp.insight.samples");
  static obs::Counter& checked = m.counter("clpp.insight.proof_checked");
  static obs::Counter& agree = m.counter("clpp.insight.proof_agree");
  static obs::Counter& disagree = m.counter("clpp.insight.disagreements");
  static obs::Gauge& ece = m.gauge("clpp.insight.ece");
  static obs::Gauge& drift_score = m.gauge("clpp.insight.drift_score");
  static obs::Gauge& rate = m.gauge("clpp.insight.disagreement_rate");
  static obs::Gauge& mean_conf = m.gauge("clpp.insight.mean_confidence");
  samples.add(1);
  if (conclusive) {
    checked.add(1);
    if (kind == DisagreementKind::kNone)
      agree.add(1);
    else
      disagree.add(1);
  }
  ece.set(directive_.ece());
  drift_score.set(drift_.score());
  rate.set(proofs_checked_ == 0
               ? 0.0
               : static_cast<double>(model_parallel_proof_dependent_ +
                                     model_serial_proof_parallel_) /
                     static_cast<double>(proofs_checked_));
  mean_conf.set(directive_.mean_confidence());
}

}  // namespace clpp::insight
