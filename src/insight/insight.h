// clpp::insight — model-quality telemetry for the serving advisor.
//
// The obs stack measures how fast the system answers; this module measures
// whether the answers are still trustworthy, along three axes:
//
//   * calibration — per-task confidence histograms and an online expected
//     calibration error for the directive head, using the dependence
//     engine's *exact* verdicts as a label proxy (ReliabilityBins);
//   * disagreement — the model says "parallelize" while the static proof
//     says "loop-carried dependence" (or vice versa): counted per
//     direction, and the dangerous direction is flight-recorded by the
//     caller (DisagreementKind);
//   * drift — serve traffic compared against the training-corpus
//     fingerprint checkpointed with the advisor (DriftMonitor).
//
// Everything is exported twice: as a `clpp.insight.v1` JSON snapshot (the
// serve `{"cmd":"quality"}` admin verb, loadgen artifacts, clpp-insight)
// and as clpp.insight.* registry metrics so streams/bench artifacts and
// clpp-profdiff pick the series up with zero extra plumbing.
#pragma once

#include <cstdint>
#include <mutex>
#include <string_view>

#include "insight/calibration.h"
#include "insight/drift.h"
#include "support/json.h"

namespace clpp::insight {

/// What the dependence engine proved about a snippet's target loop.
enum class ProofVerdict {
  kNone,          // analysis skipped or code did not parse
  kParallel,      // exact proof: no blocking dependence
  kDependent,     // exact proof: loop-carried dependence
  kInconclusive,  // bailed, non-canonical, or conservative answer
};

const char* proof_verdict_name(ProofVerdict verdict);

/// Model-vs-proof disagreement classification of one observation.
enum class DisagreementKind {
  kNone,                        // agreement, or no conclusive proof
  kModelParallelProofDependent, // model advises a directive over a proven dep
  kModelSerialProofParallel,    // model withholds a directive from a proven-
                                // parallel loop (conservative, still logged)
};

/// One serving verdict, as the tracker consumes it.
struct VerdictSample {
  double p_directive = 0.0;
  double p_private = 0.0;
  double p_reduction = 0.0;
  double p_dynamic = 0.0;
  bool positive = false;        // model predicted "needs directive"
  bool clauses_scored = false;  // clause/schedule heads ran (positives only)
  ProofVerdict proof = ProofVerdict::kNone;
};

struct InsightConfig {
  std::size_t bins = 10;          // reliability bins per task
  std::size_t drift_window = 256; // sliding window of serve requests
};

/// Thread-safe aggregator tying the three signals together. One instance
/// lives in the inference server; CLIs build their own.
class InsightTracker {
 public:
  explicit InsightTracker(InsightConfig config = {});

  /// Arms drift detection with the training-time fingerprint.
  void set_reference(Fingerprint reference);
  bool drift_armed() const;

  /// Records one served verdict; returns its disagreement classification
  /// so the caller can attach request context (flight record, trace id).
  DisagreementKind observe(std::string_view code, const VerdictSample& sample);

  std::uint64_t samples() const;
  std::uint64_t disagreements() const;
  double directive_ece() const;
  double drift_score() const;
  double disagreement_rate() const;  // disagreements / conclusive proofs

  /// Full `clpp.insight.v1` snapshot: per-task reliability bins, ECE,
  /// disagreement counters, drift block.
  Json quality_json() const;

 private:
  /// Mirrors the headline numbers into clpp.insight.* registry metrics
  /// (gauges for levels, counters for events). Caller holds mu_.
  void export_metrics_locked(bool conclusive, DisagreementKind kind);

  mutable std::mutex mu_;
  InsightConfig config_;
  ReliabilityBins directive_;
  ReliabilityBins private_;
  ReliabilityBins reduction_;
  ReliabilityBins schedule_;
  DriftMonitor drift_;
  std::uint64_t samples_ = 0;
  std::uint64_t proofs_checked_ = 0;  // observations with a conclusive proof
  std::uint64_t agreements_ = 0;
  std::uint64_t model_parallel_proof_dependent_ = 0;
  std::uint64_t model_serial_proof_parallel_ = 0;
};

}  // namespace clpp::insight
