// Deterministic pseudo-random number generation for CLPP.
//
// All randomness in the library (corpus generation, dataset splits, weight
// init, dropout masks, batch shuffling) flows from instances of clpp::Rng so
// that every experiment is reproducible from a single seed. The generator is
// xoshiro256**, seeded through splitmix64 as recommended by its authors;
// both are tiny, fast, and have no global state (unlike std::rand).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

#include "support/error.h"

namespace clpp {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator; equal seeds produce equal streams on every platform.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { reseed(seed); }

  /// Re-seeds in place (state is fully determined by `seed`).
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CLPP_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Lemire's multiply-shift rejection-free mapping is fine here: corpus
    // spans are tiny relative to 2^64, so modulo bias is < 2^-40.
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) {
    CLPP_CHECK(n > 0);
    return static_cast<std::size_t>((*this)() % n);
  }

  /// Bernoulli draw with probability `p` of true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no state cached; two uniforms per draw).
  float normal() {
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    return static_cast<float>(std::sqrt(-2.0 * std::log(u1)) *
                              std::cos(2.0 * std::numbers::pi * u2));
  }

  /// Normal with given mean and standard deviation.
  float normal(float mean, float stddev) { return mean + stddev * normal(); }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    CLPP_CHECK(!items.empty());
    return items[index(items.size())];
  }

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return pick(std::span<const T>{items});
  }

  /// Draws an index according to non-negative weights (need not sum to 1).
  std::size_t weighted(std::span<const double> weights);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Derives an independent child generator (for per-worker streams).
  Rng split() { return Rng{(*this)()}; }

  /// Raw generator state, for crash-safe checkpoint/resume: restoring a
  /// saved state continues the stream bit-for-bit where it left off.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

inline std::size_t Rng::weighted(std::span<const double> weights) {
  CLPP_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    CLPP_CHECK_MSG(w >= 0, "weights must be non-negative");
    total += w;
  }
  CLPP_CHECK_MSG(total > 0, "at least one weight must be positive");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last item
}

}  // namespace clpp
