#include "support/csv.h"

#include <fstream>
#include <sstream>

#include "support/error.h"

namespace clpp {

namespace {
std::string csv_field(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
  CLPP_CHECK_MSG(!header_.empty(), "CSV header must be non-empty");
}

void CsvWriter::add_row(std::vector<std::string> row) {
  CLPP_CHECK_MSG(row.size() == header_.size(),
                 "CSV row arity " << row.size() << " != header arity " << header_.size());
  rows_.push_back(std::move(row));
}

void CsvWriter::add_row_numeric(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) {
    std::ostringstream os;
    os.precision(6);
    os << v;
    fields.push_back(os.str());
  }
  add_row(std::move(fields));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < header_.size(); ++i) {
    if (i) os << ',';
    os << csv_field(header_[i]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << csv_field(row[i]);
    }
    os << '\n';
  }
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open CSV output file: " + path);
  out << str();
  if (!out) throw IoError("failed writing CSV output file: " + path);
}

}  // namespace clpp
