// Error handling primitives for CLPP.
//
// Policy (C++ Core Guidelines E.2/E.3): exceptions signal programming or
// configuration errors discovered at API boundaries; hot inner loops use
// plain status returns. CLPP_CHECK is for preconditions that remain enabled
// in release builds (they guard user-visible API misuse, not internal
// invariants).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace clpp {

/// Base exception for all CLPP errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a user-supplied argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown on malformed input data (source code, corpus files, checkpoints).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

/// Thrown on I/O failures (missing files, truncated checkpoints).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "CLPP_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace clpp

/// Precondition check that stays enabled in release builds.
#define CLPP_CHECK(expr)                                                        \
  do {                                                                          \
    if (!(expr)) ::clpp::detail::throw_check_failure(#expr, __FILE__, __LINE__, \
                                                     std::string{});            \
  } while (false)

/// Precondition check with an explanatory message (streamed expression allowed).
#define CLPP_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::clpp::detail::throw_check_failure(#expr, __FILE__, __LINE__,   \
                                          os_.str());                  \
    }                                                                  \
  } while (false)
