// Wall-clock stopwatch for coarse experiment timing.
#pragma once

#include <chrono>

namespace clpp {

/// Starts running on construction; `seconds()` reads elapsed wall time.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace clpp
