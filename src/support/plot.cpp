#include "support/plot.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace clpp {

namespace {
constexpr const char* kMarks = "*o+x#@%&";
}

AsciiPlot::AsciiPlot(std::string title, std::string x_label, std::string y_label,
                     int height)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      y_label_(std::move(y_label)),
      height_(height) {
  CLPP_CHECK(height_ >= 4);
}

void AsciiPlot::add_series(std::string name, std::vector<double> ys) {
  CLPP_CHECK_MSG(!ys.empty(), "plot series must be non-empty");
  if (!series_.empty())
    CLPP_CHECK_MSG(ys.size() == series_.front().ys.size(),
                   "all plot series must have equal length");
  series_.push_back(PlotSeries{std::move(name), std::move(ys)});
}

std::string AsciiPlot::str() const {
  CLPP_CHECK_MSG(!series_.empty(), "plot has no series");
  const std::size_t n = series_.front().ys.size();

  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const auto& s : series_)
    for (double y : s.ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  // 2 columns per x step keeps markers readable.
  const std::size_t width = std::max<std::size_t>(2 * n, 8);
  std::vector<std::string> grid(static_cast<std::size_t>(height_),
                                std::string(width, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char mark = kMarks[si % 8];
    for (std::size_t i = 0; i < n; ++i) {
      const double y = series_[si].ys[i];
      const double frac = (y - lo) / (hi - lo);
      const int row = static_cast<int>(std::lround((height_ - 1) * (1.0 - frac)));
      const std::size_t col = 2 * i;
      grid[static_cast<std::size_t>(row)][col] = mark;
    }
  }

  std::ostringstream os;
  os << title_ << "\n";
  const std::size_t label_w = 9;
  for (int r = 0; r < height_; ++r) {
    const double y = hi - (hi - lo) * r / (height_ - 1);
    std::string label = (r == 0 || r == height_ - 1 || r == height_ / 2)
                            ? fixed(y, 3)
                            : std::string{};
    os << pad_left(label, label_w) << " |" << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << pad_left("", label_w) << " +" << repeated("-", width) << "  " << x_label_ << "\n";
  os << pad_left("", label_w + 2);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string tick = (i % 5 == 0) ? std::to_string(i + 1) : std::string{};
    os << pad_right(tick, 2).substr(0, 2);
  }
  os << "\n  legend (" << y_label_ << "): ";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    if (si) os << ", ";
    os << kMarks[si % 8] << "=" << series_[si].name;
  }
  os << "\n";
  return os.str();
}

}  // namespace clpp
