// OpenMP-backed parallel loop helpers.
//
// CLPP dogfoods the shared-memory parallelism it studies: GEMM and batched
// inference use these helpers, which degrade gracefully to serial execution
// when the compiler has no OpenMP support.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"

#if defined(_OPENMP)
#include <omp.h>
#endif

namespace clpp {

/// Number of threads the parallel helpers will use.
inline int hardware_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Runs body(i) for i in [0, n); iterations must be independent.
/// `grain` suppresses parallelization for loops too small to amortize the
/// fork-join overhead — exactly the RQ1 trade-off the paper studies.
template <typename Body>
void parallel_for(std::size_t n, const Body& body, std::size_t grain = 1024) {
#if defined(_OPENMP)
  if (n >= grain && omp_get_max_threads() > 1) {
    obs::record_parallel_loop(n, omp_get_max_threads());
    const std::int64_t count = static_cast<std::int64_t>(n);
#pragma omp parallel
    {
      // Label team members (not the calling thread) for trace exports.
      if (omp_get_thread_num() != 0) obs::name_worker_thread();
#pragma omp for schedule(static)
      for (std::int64_t i = 0; i < count; ++i) body(static_cast<std::size_t>(i));
    }
    return;
  }
#endif
  obs::record_serial_loop(n);
  for (std::size_t i = 0; i < n; ++i) body(i);
}

}  // namespace clpp
