// Minimal command-line argument parser used by benches and examples.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` styles.
// Unknown arguments raise InvalidArgument so typos never silently fall back
// to defaults in an experiment run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace clpp {

/// Declarative CLI parser: declare options, then parse(argc, argv).
class ArgParser {
 public:
  /// `program` and `blurb` are used by help().
  ArgParser(std::string program, std::string blurb);

  /// Declares a string option with a default value.
  void add_string(const std::string& name, std::string default_value, std::string help);
  /// Declares an integer option with a default value.
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  /// Declares a floating-point option with a default value.
  void add_double(const std::string& name, double default_value, std::string help);
  /// Declares a boolean flag (false unless present; `--name=false` accepted).
  void add_flag(const std::string& name, std::string help);

  /// Parses argv; throws InvalidArgument on unknown names or bad values.
  /// Returns false if `--help` was requested (help text printed to stdout).
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Renders the usage/help text.
  std::string help() const;

 private:
  enum class Kind { kString, kInt, kDouble, kFlag };
  struct Option {
    Kind kind;
    std::string value;  // canonical textual value
    std::string default_value;
    std::string help;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string blurb_;
  std::map<std::string, Option> options_;
  std::vector<std::string> positional_;
};

/// Top-level exception boundary for CLI tools. Prints a one-line structured
/// JSON diagnostic to stderr ({"event":"fatal","program":...,"kind":...,
/// "message":...}), invokes the fatal hook (if installed), and returns the
/// conventional exit code 2. `kind` is the most-derived clpp error class
/// ("io_error", "parse_error", "invalid_argument", "error") or "exception"
/// for foreign std::exceptions.
int report_cli_error(const std::string& program, const std::exception& error);

/// Callback invoked by `report_cli_error` after printing the diagnostic.
/// clpp::obs installs one at process start that dumps the flight recorder,
/// so crashing CLIs ship their recent event history (support cannot depend
/// on obs, hence the upward-registered hook). Must not throw.
using FatalHook = void (*)();
void set_fatal_hook(FatalHook hook);

}  // namespace clpp
