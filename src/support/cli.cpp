#include "support/cli.h"

#include <atomic>
#include <cstdio>
#include <sstream>

#include "support/error.h"
#include "support/json.h"
#include "support/strings.h"

namespace clpp {

namespace {
std::atomic<FatalHook> g_fatal_hook{nullptr};
}  // namespace

void set_fatal_hook(FatalHook hook) {
  g_fatal_hook.store(hook, std::memory_order_release);
}

ArgParser::ArgParser(std::string program, std::string blurb)
    : program_(std::move(program)), blurb_(std::move(blurb)) {}

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string help) {
  options_[name] = Option{Kind::kString, default_value, std::move(default_value),
                          std::move(help)};
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        std::string help) {
  std::string text = std::to_string(default_value);
  options_[name] = Option{Kind::kInt, text, text, std::move(help)};
}

void ArgParser::add_double(const std::string& name, double default_value,
                           std::string help) {
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::kDouble, os.str(), os.str(), std::move(help)};
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  options_[name] = Option{Kind::kFlag, "false", "false", std::move(help)};
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(help().c_str(), stdout);
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(name);
    CLPP_CHECK_MSG(it != options_.end(), "unknown option --" << name);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.value = has_value ? value : "true";
      CLPP_CHECK_MSG(opt.value == "true" || opt.value == "false",
                     "--" << name << " expects true/false");
      continue;
    }
    if (!has_value) {
      CLPP_CHECK_MSG(i + 1 < argc, "--" << name << " expects a value");
      value = argv[++i];
    }
    if (opt.kind == Kind::kInt) {
      try {
        (void)std::stoll(value);
      } catch (const std::exception&) {
        throw InvalidArgument("--" + name + " expects an integer, got '" + value + "'");
      }
    } else if (opt.kind == Kind::kDouble) {
      try {
        (void)std::stod(value);
      } catch (const std::exception&) {
        throw InvalidArgument("--" + name + " expects a number, got '" + value + "'");
      }
    }
    opt.value = value;
  }
  return true;
}

const ArgParser::Option& ArgParser::find(const std::string& name, Kind kind) const {
  auto it = options_.find(name);
  CLPP_CHECK_MSG(it != options_.end(), "option --" << name << " was never declared");
  CLPP_CHECK_MSG(it->second.kind == kind, "option --" << name << " accessed as wrong type");
  return it->second;
}

std::string ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "true";
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << program_ << " — " << blurb_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << pad_right(name, 22) << opt.help;
    if (opt.kind != Kind::kFlag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  return os.str();
}

int report_cli_error(const std::string& program, const std::exception& error) {
  const char* kind = "exception";
  if (dynamic_cast<const IoError*>(&error) != nullptr) kind = "io_error";
  else if (dynamic_cast<const ParseError*>(&error) != nullptr) kind = "parse_error";
  else if (dynamic_cast<const InvalidArgument*>(&error) != nullptr)
    kind = "invalid_argument";
  else if (dynamic_cast<const Error*>(&error) != nullptr) kind = "error";
  Json line = Json::object();
  line["event"] = "fatal";
  line["program"] = program;
  line["kind"] = std::string(kind);
  line["message"] = std::string(error.what());
  std::fprintf(stderr, "%s\n", line.dump().c_str());
  if (const FatalHook hook = g_fatal_hook.load(std::memory_order_acquire))
    hook();
  return 2;
}

}  // namespace clpp
