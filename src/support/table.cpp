#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace clpp {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double value, int digits) { return fixed(value, digits); }

std::string TextTable::str() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool left_first) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      os << ' '
         << ((i == 0 && left_first) ? pad_right(cell, widths[i]) : pad_left(cell, widths[i]))
         << " |";
    }
    os << '\n';
  };
  emit(header_, true);
  os << '|';
  for (std::size_t w : widths) os << repeated("-", w + 2) << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

}  // namespace clpp
