// ASCII line plot for figure reproductions (Figs 3-5 of the paper).
#pragma once

#include <string>
#include <vector>

namespace clpp {

/// One named series of (x, y) points; x values are shared per plot.
struct PlotSeries {
  std::string name;
  std::vector<double> ys;
};

/// Renders multiple series over a shared integer x-axis as an ASCII chart,
/// plus a per-series legend. Used by benches to visualize epoch curves in
/// the terminal; exact values also go to CSV for external plotting.
class AsciiPlot {
 public:
  /// `height` is the number of text rows for the y-axis.
  AsciiPlot(std::string title, std::string x_label, std::string y_label, int height = 16);

  /// Adds a series; all series must have equal length (checked at render).
  void add_series(std::string name, std::vector<double> ys);

  std::string str() const;

 private:
  std::string title_;
  std::string x_label_;
  std::string y_label_;
  int height_;
  std::vector<PlotSeries> series_;
};

}  // namespace clpp
