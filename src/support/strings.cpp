#include "support/strings.h"

#include <cctype>
#include <sstream>

namespace clpp {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string text, std::string_view from, std::string_view to) {
  if (from.empty()) return text;
  std::size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

std::string to_lower(std::string text) {
  for (char& c : text) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return text;
}

std::string fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string repeated(std::string_view unit, std::size_t count) {
  std::string out;
  out.reserve(unit.size() * count);
  for (std::size_t i = 0; i < count; ++i) out.append(unit);
  return out;
}

std::string pad_left(std::string text, std::size_t width) {
  if (text.size() < width) text.insert(0, width - text.size(), ' ');
  return text;
}

std::string pad_right(std::string text, std::size_t width) {
  if (text.size() < width) text.append(width - text.size(), ' ');
  return text;
}

std::string with_commas(long long n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  const std::size_t len = digits.size();
  for (std::size_t i = 0; i < len; ++i) {
    if (i > 0 && (len - i) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return neg ? "-" + out : out;
}

}  // namespace clpp
