// CSV writer for experiment outputs (figure series, sweep results).
#pragma once

#include <string>
#include <vector>

namespace clpp {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes fields containing
/// separators/quotes/newlines). Header is fixed at construction.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with 6 significant digits.
  void add_row_numeric(const std::vector<double>& row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the whole document.
  std::string str() const;

  /// Writes to `path`; throws IoError on failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clpp
