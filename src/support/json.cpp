#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace clpp {

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw ParseError("JSON: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) throw ParseError("JSON: not a number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kNumber) throw ParseError("JSON: not a number");
  return static_cast<std::int64_t>(std::llround(num_));
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) throw ParseError("JSON: not a string");
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw ParseError("JSON: size() on scalar");
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) throw ParseError("JSON: not an array");
  if (i >= arr_.size()) throw ParseError("JSON: array index out of range");
  return arr_[i];
}

void Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw ParseError("JSON: push_back on non-array");
  arr_.push_back(std::move(v));
}

const Json& Json::at(const std::string& key) const {
  if (type_ != Type::kObject) throw ParseError("JSON: not an object");
  auto it = obj_.find(key);
  if (it == obj_.end()) throw ParseError("JSON: missing key '" + key + "'");
  return it->second;
}

bool Json::contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) > 0;
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw ParseError("JSON: operator[] on non-object");
  return obj_[key];
}

std::int64_t Json::get_int(const std::string& key, std::int64_t fallback) const {
  return contains(key) ? at(key).as_int() : fallback;
}

std::string Json::get_string(const std::string& key, std::string fallback) const {
  return contains(key) ? at(key).as_string() : fallback;
}

bool Json::get_bool(const std::string& key, bool fallback) const {
  return contains(key) ? at(key).as_bool() : fallback;
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) throw ParseError("JSON: not an array");
  return arr_;
}

const std::map<std::string, Json>& Json::fields() const {
  if (type_ != Type::kObject) throw ParseError("JSON: not an object");
  return obj_;
}

std::string json_escape(std::string_view s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Json::dump() const {
  std::ostringstream os;
  switch (type_) {
    case Type::kNull: os << "null"; break;
    case Type::kBool: os << (bool_ ? "true" : "false"); break;
    case Type::kNumber: {
      if (num_ == std::floor(num_) && std::abs(num_) < 9.0e15) {
        os << static_cast<std::int64_t>(num_);
      } else {
        os.precision(17);
        os << num_;
      }
      break;
    }
    case Type::kString: os << json_escape(str_); break;
    case Type::kArray: {
      os << '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) os << ',';
        os << arr_[i].dump();
      }
      os << ']';
      break;
    }
    case Type::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) os << ',';
        first = false;
        os << json_escape(k) << ':' << v.dump();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

namespace {

/// Recursive-descent JSON parser over a string_view cursor.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("JSON parse error at offset " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Json{parse_string()};
    if (consume_literal("true")) return Json{true};
    if (consume_literal("false")) return Json{false};
    if (consume_literal("null")) return Json{};
    return parse_number();
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("dangling escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail("bad hex digit in \\u escape");
          }
          // Corpus data is ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        any = true;
      }
    };
    digits();
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      digits();
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
      digits();
    }
    if (!any) fail("invalid number");
    return Json{std::stod(std::string(text_.substr(start, pos_ - start)))};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return JsonParser{text}.parse_document(); }

}  // namespace clpp
