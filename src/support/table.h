// ASCII table renderer: benches print the paper's tables through this.
#pragma once

#include <string>
#include <vector>

namespace clpp {

/// Renders aligned ASCII tables with a header rule, e.g.
///
///   |                | Precision | Recall |   F1 |
///   |----------------|-----------|--------|------|
///   | PragFormer     |      0.84 |   0.85 | 0.84 |
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Formats helper: fixed-precision number cell.
  static std::string num(double value, int digits = 2);

  std::string str() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace clpp
