// Simple fixed-bin histogram with quantile queries and ASCII rendering.
//
// Used for corpus diagnostics (snippet length distributions drive the
// max_len choice of §4.3: the paper picked 110 because it was the longest
// snippet) and available to benches for latency distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace clpp {

/// Accumulates double-valued samples into `bins` equal-width bins over
/// [lo, hi]; samples outside the range clamp to the edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins = 20);

  void add(double value);
  /// Adds every element of `values`.
  void add_all(const std::vector<double>& values);

  std::size_t count() const { return count_; }
  double min() const;
  double max() const;
  double mean() const;

  /// Value at quantile q in [0, 1], linearly interpolated within a bin.
  /// Requires at least one sample.
  double quantile(double q) const;

  /// Per-bin counts (diagnostics / tests).
  const std::vector<std::size_t>& bins() const { return bins_; }

  /// Terminal rendering: one row per bin with a proportional bar.
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> bins_;
  std::size_t count_ = 0;
  double sum_ = 0;
  double min_seen_;
  double max_seen_;
};

}  // namespace clpp
