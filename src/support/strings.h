// Small string utilities shared across CLPP modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace clpp {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits `text` on any run of whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string text, std::string_view from, std::string_view to);

/// Lower-cases ASCII letters.
std::string to_lower(std::string text);

/// Formats a double with `digits` significant decimal places (fixed).
std::string fixed(double value, int digits);

/// Repeats `unit` `count` times.
std::string repeated(std::string_view unit, std::size_t count);

/// Left-pads `text` with spaces to `width` (no-op when already wider).
std::string pad_left(std::string text, std::size_t width);

/// Right-pads `text` with spaces to `width` (no-op when already wider).
std::string pad_right(std::string text, std::size_t width);

/// Renders `n` with thousands separators ("28374" -> "28,374").
std::string with_commas(long long n);

}  // namespace clpp
