#include "support/histogram.h"

#include <algorithm>
#include <limits>
#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace clpp {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      hi_(hi),
      bins_(bins, 0),
      min_seen_(std::numeric_limits<double>::infinity()),
      max_seen_(-std::numeric_limits<double>::infinity()) {
  CLPP_CHECK_MSG(hi > lo, "histogram range must be non-empty");
  CLPP_CHECK_MSG(bins >= 1, "histogram needs at least one bin");
}

void Histogram::add(double value) {
  const double clamped = std::clamp(value, lo_, hi_);
  const double frac = (clamped - lo_) / (hi_ - lo_);
  std::size_t bin = static_cast<std::size_t>(frac * static_cast<double>(bins_.size()));
  bin = std::min(bin, bins_.size() - 1);
  ++bins_[bin];
  ++count_;
  sum_ += value;
  min_seen_ = std::min(min_seen_, value);
  max_seen_ = std::max(max_seen_, value);
}

void Histogram::add_all(const std::vector<double>& values) {
  for (double v : values) add(v);
}

double Histogram::min() const { return count_ ? min_seen_ : 0.0; }
double Histogram::max() const { return count_ ? max_seen_ : 0.0; }
double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double Histogram::quantile(double q) const {
  CLPP_CHECK_MSG(count_ > 0, "quantile of an empty histogram");
  CLPP_CHECK_MSG(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  const double target = q * static_cast<double>(count_);
  double cumulative = 0;
  const double bin_width = (hi_ - lo_) / static_cast<double>(bins_.size());
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const double next = cumulative + static_cast<double>(bins_[b]);
    if (next >= target && bins_[b] > 0) {
      const double within = (target - cumulative) / static_cast<double>(bins_[b]);
      return lo_ + (static_cast<double>(b) + within) * bin_width;
    }
    cumulative = next;
  }
  return hi_;
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : bins_) peak = std::max(peak, c);
  const double bin_width = (hi_ - lo_) / static_cast<double>(bins_.size());
  std::ostringstream os;
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    const double bin_lo = lo_ + static_cast<double>(b) * bin_width;
    const std::size_t bar = bins_[b] * width / peak;
    os << pad_left(fixed(bin_lo, 1), 9) << " | " << repeated("#", bar) << ' '
       << bins_[b] << '\n';
  }
  return os.str();
}

}  // namespace clpp
