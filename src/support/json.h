// Minimal JSON value type, parser, and writer.
//
// CLPP persists corpora as JSONL (one record per line) and experiment
// manifests as small JSON documents; this module is intentionally small and
// supports exactly the JSON subset those need (objects, arrays, strings,
// doubles, integers stored losslessly up to 2^53, booleans, null).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "support/error.h"

namespace clpp {

/// Immutable-ish JSON value (mutation through accessors is allowed before
/// serialization; the type is a plain value type).
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(std::int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(std::size_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  /// Creates an empty array / object.
  static Json array();
  static Json object();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Typed accessors; throw ParseError when the type does not match.
  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array access.
  std::size_t size() const;
  const Json& at(std::size_t i) const;
  void push_back(Json v);

  /// Object access. `at` throws on a missing key; `get` returns a fallback.
  const Json& at(const std::string& key) const;
  bool contains(const std::string& key) const;
  Json& operator[](const std::string& key);
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  std::string get_string(const std::string& key, std::string fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<Json>& items() const;
  const std::map<std::string, Json>& fields() const;

  /// Serializes to compact single-line JSON.
  std::string dump() const;

  /// Parses a complete JSON document; throws ParseError on malformed input.
  static Json parse(std::string_view text);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::map<std::string, Json> obj_;
};

/// Escapes a string for embedding in JSON output (adds surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace clpp
