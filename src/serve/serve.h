// clpp::serve — dynamic micro-batching inference serving for the
// ParallelAdvisor (the "continuous batching" lever of Orca/vLLM-style
// serving schedulers, applied to PragFormer's four task models).
//
// The flow: callers `submit()` snippets into a bounded thread-safe queue;
// worker threads collect up to `max_batch` requests or wait at most
// `max_delay_us` after the first pending request (whichever comes first),
// then run one batched `advise_batch` over the collected snippets —
// duplicate snippets coalesced into one forward, the rest bucketed by exact
// encoded length so no FLOPs are spent on padding, and every verdict bitwise
// identical to single-request inference — and complete the per-request
// futures with all four task verdicts.
//
// Backpressure: when the queue is full, `submit` either blocks until space
// frees up (OverflowPolicy::kBlock, the default) or fails fast with
// ServeOverload (kReject). `shutdown()` stops accepting work, drains every
// queued request through the workers, and joins them; requests that can no
// longer be served (no workers configured) fail with ServeShutdown rather
// than abandoning their futures.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cache/cache.h"
#include "core/advisor.h"
#include "core/trainer.h"
#include "support/error.h"

namespace clpp::serve {

/// What `submit` does when the request queue is at capacity.
enum class OverflowPolicy {
  kBlock,   ///< block the caller until a worker frees queue space
  kReject,  ///< fail fast with ServeOverload (load-shedding)
};

/// Thrown by `submit` under OverflowPolicy::kReject when the queue is full.
class ServeOverload : public Error {
 public:
  explicit ServeOverload(const std::string& what) : Error(what) {}
};

/// Thrown by `submit` after shutdown, and set on futures whose requests
/// could not be drained.
class ServeShutdown : public Error {
 public:
  explicit ServeShutdown(const std::string& what) : Error(what) {}
};

/// Set on futures of requests whose deadline expired while they were still
/// queued: the scheduler drops them at dequeue time instead of spending a
/// batch slot on an answer nobody is waiting for.
class ServeDeadline : public Error {
 public:
  explicit ServeDeadline(const std::string& what) : Error(what) {}
};

/// Scheduler knobs. Defaults favour throughput at interactive latency.
struct ServeConfig {
  /// Largest batch one worker collects per inference pass. Shares
  /// `core::kDefaultInferBatch` with the trainer's eval/predict helpers so
  /// the inference batch size is tuned in exactly one place.
  std::size_t max_batch = core::kDefaultInferBatch;
  /// Longest a collected batch waits for company, measured from the moment
  /// the first request of the batch became visible to the worker. 0 means
  /// "serve whatever is there immediately".
  std::uint64_t max_delay_us = 2000;
  /// Bounded-queue capacity; beyond it `overflow` applies.
  std::size_t queue_capacity = 1024;
  /// Worker threads, each owning a private advisor replica. 0 is accepted
  /// (requests queue up but are never served — useful for deterministic
  /// backpressure tests) — shutdown then fails the queued futures.
  std::size_t workers = 1;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  /// Forwarded to `ParallelAdvisor::advise_batch` for every served batch.
  core::AdviseOptions options{};
  /// Result cache keyed by canonical snippet digest (DESIGN.md §13):
  /// `submit` answers a repeated snippet from the cache without spending a
  /// queue slot or a forward pass. Off by default (max_entries == 0) so the
  /// batching/coalescing pipeline stays byte-for-byte unchanged unless a
  /// caller opts in (clpp-serve wires `CLPP_CACHE_CAP` / `--cache-cap`).
  cache::CacheConfig cache{};

  /// Throws InvalidArgument on nonsensical settings.
  void validate() const;
};

/// Where one served request spent its life, measured on the serve path and
/// returned with every response (so a client can see "was I queued, batched,
/// or slow to infer?" without server-side log spelunking).
struct RequestTiming {
  /// Request-scoped trace id minted at submit(); the same id tags the
  /// request's spans in the Chrome trace (flow events), so a slow response
  /// can be looked up in the timeline by this value.
  std::uint64_t trace_id = 0;
  /// submit() to the moment a worker collected the request into a batch.
  std::uint64_t queue_us = 0;
  /// Batch collection to verdicts ready (the whole serve_batch pass the
  /// request rode in, including encode + extras).
  std::uint64_t batch_us = 0;
  /// Model-forward share of batch_us (all task models, whole batch).
  std::uint64_t infer_us = 0;
  /// True when this request re-used a batchmate's verdict instead of its
  /// own forward pass (duplicate snippet coalescing).
  bool coalesced = false;
  /// True when this request was answered from the result cache (a snippet
  /// served earlier — possibly on another connection) without queueing.
  /// queue_us/batch_us/infer_us are then 0: no serve-path work happened.
  bool cached = false;
};

/// What `InferenceServer::submit` futures resolve to: the verdict plus the
/// request's timing breakdown.
struct ServedAdvice {
  core::Advice advice;
  RequestTiming timing;
};

/// Monotonic counters snapshot (see InferenceServer::stats).
struct ServeStats {
  std::uint64_t submitted = 0;  ///< accepted into the queue
  std::uint64_t rejected = 0;   ///< refused by kReject backpressure
  std::uint64_t completed = 0;  ///< futures fulfilled with an Advice
  std::uint64_t failed = 0;     ///< futures failed with an exception
  std::uint64_t batches = 0;    ///< inference passes run
  std::uint64_t batch_rows = 0; ///< total requests across those passes
  /// Requests served by copying a batchmate's verdict instead of their own
  /// forward pass: `advise_batch` runs each *distinct* snippet of a batch
  /// once (advice is a pure function of the code text).
  std::uint64_t coalesced = 0;
  /// Requests whose deadline expired while queued, dropped at dequeue time
  /// (their futures fail with ServeDeadline; counted separately from
  /// `failed`, which covers inference errors).
  std::uint64_t deadline_dropped = 0;
  /// Requests answered from the result cache (counted under `submitted`
  /// and `completed` too — a cache hit is still a served request).
  std::uint64_t cache_hits = 0;

  /// Average rows per inference pass (0 when no batch ran yet).
  double mean_batch_rows() const;
};

}  // namespace clpp::serve
