// InferenceServer: worker pool + dynamic micro-batching over a
// ParallelAdvisor (see serve.h for the scheduling model).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/queue.h"
#include "serve/serve.h"

namespace clpp::serve {

/// Thread-safe serving front end. Construction clones one advisor replica
/// per worker (inference caches activations, so replicas never share), so
/// the advisor passed in stays untouched and usable by the caller.
class InferenceServer {
 public:
  explicit InferenceServer(const core::ParallelAdvisor& advisor,
                           ServeConfig config = {});
  /// Drains and joins (shutdown()) if the caller has not already.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one snippet; the future completes with all four task verdicts
  /// once a worker serves the batch carrying it. Throws ServeOverload
  /// (kReject policy, queue full) or ServeShutdown (after shutdown). A
  /// worker-side failure (e.g. an injected fault) surfaces through the
  /// future instead.
  std::future<core::Advice> submit(std::string code);

  /// Graceful drain: stops accepting new requests, lets the workers serve
  /// everything already queued, joins them, and fails any request that no
  /// worker could drain (workers == 0) with ServeShutdown. Idempotent.
  void shutdown();

  /// Requests queued but not yet collected by a worker.
  std::size_t queue_depth() const { return queue_.depth(); }

  ServeStats stats() const;
  const ServeConfig& config() const { return config_; }

 private:
  void worker_loop(core::ParallelAdvisor& advisor);
  void serve_batch(core::ParallelAdvisor& advisor,
                   std::vector<PendingRequest>& batch);

  ServeConfig config_;
  RequestQueue queue_;
  std::vector<std::unique_ptr<core::ParallelAdvisor>> replicas_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mu_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_rows_{0};
  std::atomic<std::uint64_t> coalesced_{0};
};

}  // namespace clpp::serve
