// InferenceServer: worker pool + dynamic micro-batching over a
// ParallelAdvisor (see serve.h for the scheduling model).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "insight/insight.h"
#include "obs/metrics.h"
#include "serve/queue.h"
#include "serve/serve.h"

namespace clpp {
class Json;  // support/json.h — needed only by stats_json callers
}

namespace clpp::serve {

/// Thread-safe serving front end. Construction clones one advisor replica
/// per worker (inference caches activations, so replicas never share), so
/// the advisor passed in stays untouched and usable by the caller.
class InferenceServer {
 public:
  explicit InferenceServer(const core::ParallelAdvisor& advisor,
                           ServeConfig config = {});
  /// Drains and joins (shutdown()) if the caller has not already.
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Enqueues one snippet; the future completes with all four task verdicts
  /// plus the request's timing breakdown (queue wait / batch / infer split
  /// and its trace id) once a worker serves the batch carrying it. Throws
  /// ServeOverload (kReject policy, queue full) or ServeShutdown (after
  /// shutdown). A worker-side failure (e.g. an injected fault) surfaces
  /// through the future instead.
  ///
  /// `deadline_ns` is an absolute steady-clock deadline (obs::Tracer::now_ns
  /// timebase; 0 = none): a request still queued past it is dropped at
  /// dequeue time and its future fails with ServeDeadline.
  std::future<ServedAdvice> submit(std::string code,
                                   std::uint64_t deadline_ns = 0);

  /// Graceful drain: stops accepting new requests, lets the workers serve
  /// everything already queued, joins them, and fails any request that no
  /// worker could drain (workers == 0) with ServeShutdown. Idempotent.
  void shutdown();

  /// Requests queued but not yet collected by a worker.
  std::size_t queue_depth() const { return queue_.depth(); }

  ServeStats stats() const;

  /// Live telemetry snapshot as JSON: counters, queue depth, coalesce rate,
  /// and streaming latency/queue-wait/infer/batch-size percentiles plus a
  /// per-task model-time block. Backed by always-on server-owned histograms
  /// (recorded regardless of CLPP_OBS), so the `{"cmd":"stats"}` admin verb
  /// works on an un-instrumented server. Safe to call concurrently with
  /// serving.
  Json stats_json() const;

  /// Model-quality snapshot (`clpp.insight.v1`): per-task confidence
  /// histograms, online ECE against the dependence engine's exact verdicts,
  /// analyzer-vs-model disagreement counts, and the drift score of recent
  /// traffic against the advisor's training fingerprint. Backs the
  /// `{"cmd":"quality"}` admin verb. Safe to call concurrently.
  Json quality_json() const;

  /// Direct access for tests and loadgen reporting.
  const insight::InsightTracker& insight() const { return insight_; }

  const ServeConfig& config() const { return config_; }

 private:
  void worker_loop(core::ParallelAdvisor& advisor);
  void serve_batch(core::ParallelAdvisor& advisor,
                   std::vector<PendingRequest>& batch);

  ServeConfig config_;
  RequestQueue queue_;
  /// Result cache (config_.cache; off by default): submit() answers hits
  /// synchronously, serve_batch() inserts each distinct snippet it served.
  cache::ShardedLruCache<core::Advice> result_cache_;
  std::vector<std::unique_ptr<core::ParallelAdvisor>> replicas_;
  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::mutex shutdown_mu_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batch_rows_{0};
  std::atomic<std::uint64_t> coalesced_{0};

  // Always-on streaming telemetry (record_always — independent of the
  // global CLPP_OBS gate), owned by the server so stats_json() reflects
  // this server instance rather than process-global registry state.
  obs::Histogram latency_us_;     // submit → verdict, per request
  obs::Histogram queue_wait_us_;  // submit → batch collection, per request
  obs::Histogram infer_us_;       // model-forward share, per batch
  obs::Histogram batch_size_;     // rows per inference pass
  obs::Histogram directive_us_;   // per-batch task-model time splits
  obs::Histogram private_us_;
  obs::Histogram reduction_us_;
  obs::Histogram schedule_us_;

  // Model-quality telemetry: calibration, disagreement, drift. Armed with
  // the advisor's training fingerprint at construction when one exists.
  insight::InsightTracker insight_;
};

}  // namespace clpp::serve
