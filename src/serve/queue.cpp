#include "serve/queue.h"

#include <algorithm>
#include <chrono>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace clpp::serve {

namespace {

/// Fails the futures of requests whose deadline passed while they were
/// queued. Runs outside the queue lock: set_exception wakes waiters.
void drop_expired(std::vector<PendingRequest>& expired) {
  const auto error = std::make_exception_ptr(
      ServeDeadline("request deadline expired while queued"));
  for (PendingRequest& request : expired) {
    obs::flight_record("serve.deadline_drop",
                       static_cast<std::int64_t>(request.trace.trace_id));
    request.result.set_exception(error);
  }
  if (obs::enabled()) {
    static obs::Counter& dropped =
        obs::metrics().counter("clpp.serve.deadline_dropped");
    dropped.add(expired.size());
  }
}

}  // namespace

RequestQueue::RequestQueue(std::size_t capacity, OverflowPolicy policy)
    : capacity_(capacity), policy_(policy) {
  CLPP_CHECK_MSG(capacity_ > 0, "RequestQueue capacity must be positive");
}

bool RequestQueue::push(PendingRequest request) {
  std::unique_lock lock(mu_);
  if (policy_ == OverflowPolicy::kBlock)
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
  if (closed_) throw ServeShutdown("request queue is closed");
  if (items_.size() >= capacity_) return false;  // kReject, full
  items_.push_back(std::move(request));
  // notify_all, not notify_one: with several workers parked on not_empty_
  // (some in the initial wait, some waiting out a batch delay), a single
  // notify can land on a worker whose predicate stays false and strand a
  // ready request until the next push or a delay expiry.
  not_empty_.notify_all();
  return true;
}

std::vector<PendingRequest> RequestQueue::pop_batch(std::size_t max_batch,
                                                    std::uint64_t max_delay_us) {
  CLPP_CHECK_MSG(max_batch > 0, "pop_batch needs max_batch >= 1");
  std::unique_lock lock(mu_);
  for (;;) {
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return {};  // closed and drained
    if (!closed_ && items_.size() < max_batch && max_delay_us > 0) {
      // Micro-batching window: the batch is anchored at the moment this
      // worker saw its first pending request; stragglers arriving within
      // the window ride along, anything later forms the next batch.
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(max_delay_us);
      not_empty_.wait_until(lock, deadline, [&] {
        return items_.size() >= max_batch || items_.empty() || closed_;
      });
    }
    if (items_.empty()) continue;  // another worker raced us to the items
    // Collection prunes requests that sat past their deadline: they must
    // not burn a batch slot (the client stopped waiting), so expired items
    // are siphoned off while the batch keeps filling to max_batch.
    const std::uint64_t now_ns = obs::Tracer::now_ns();
    std::vector<PendingRequest> batch;
    std::vector<PendingRequest> expired;
    batch.reserve(std::min(max_batch, items_.size()));
    while (batch.size() < max_batch && !items_.empty()) {
      PendingRequest request = std::move(items_.front());
      items_.pop_front();
      if (request.deadline_ns != 0 && request.deadline_ns < now_ns)
        expired.push_back(std::move(request));
      else
        batch.push_back(std::move(request));
    }
    not_full_.notify_all();
    if (expired.empty()) return batch;  // common path: nothing to prune
    deadline_dropped_.fetch_add(expired.size(), std::memory_order_relaxed);
    lock.unlock();
    drop_expired(expired);
    if (!batch.empty()) return batch;
    lock.lock();  // everything had expired: go back to waiting
  }
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mu_);
  return items_.size();
}

std::vector<PendingRequest> RequestQueue::take_remaining() {
  std::lock_guard lock(mu_);
  std::vector<PendingRequest> remaining;
  remaining.reserve(items_.size());
  while (!items_.empty()) {
    remaining.push_back(std::move(items_.front()));
    items_.pop_front();
  }
  return remaining;
}

}  // namespace clpp::serve
