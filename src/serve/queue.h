// Bounded thread-safe request queue feeding the micro-batching scheduler.
//
// The queue is MPMC: any number of client threads push, any number of
// workers pop. `pop_batch` implements the scheduler's collection rule —
// return as soon as `max_batch` requests are available, otherwise flush
// whatever arrived once `max_delay_us` has elapsed since the popping worker
// first saw a pending request. Items remain queued while a worker waits out
// the delay, so a second idle worker can still grab them (work stealing
// falls out of the locking for free).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <vector>

#include "core/advisor.h"
#include "obs/context.h"
#include "serve/serve.h"

namespace clpp::serve {

/// One queued inference request: the snippet, the promise the worker
/// completes, the trace context minted at submit() (carried across the
/// queue so client and worker spans share one flow id), and the
/// steady-clock enqueue stamp for time-in-queue metrics.
struct PendingRequest {
  std::string code;
  std::promise<ServedAdvice> result;
  obs::TraceContext trace;
  std::uint64_t enqueue_ns = 0;
  /// Absolute steady-clock deadline (same clock as enqueue_ns); 0 = none.
  /// A request still queued past this point is dropped at dequeue time —
  /// its future fails with ServeDeadline instead of burning a batch slot.
  std::uint64_t deadline_ns = 0;
};

/// Bounded MPMC queue with reject-vs-block overflow and drain-on-close.
class RequestQueue {
 public:
  RequestQueue(std::size_t capacity, OverflowPolicy policy);

  /// Enqueues one request. Returns false when the queue is full under
  /// kReject; blocks until space under kBlock. Throws ServeShutdown when
  /// the queue has been closed (including while blocked).
  bool push(PendingRequest request);

  /// Blocks until at least one request is pending (or the queue closes),
  /// then collects up to `max_batch` requests, waiting at most
  /// `max_delay_us` for stragglers. Requests whose deadline already passed
  /// are pruned during collection: their futures fail with ServeDeadline,
  /// `deadline_dropped()` counts them, and they never occupy a batch slot.
  /// Returns an empty vector only when the queue is closed *and* fully
  /// drained — the workers' exit signal.
  std::vector<PendingRequest> pop_batch(std::size_t max_batch,
                                        std::uint64_t max_delay_us);

  /// Requests dropped at dequeue time because their deadline had expired.
  std::uint64_t deadline_dropped() const {
    return deadline_dropped_.load(std::memory_order_relaxed);
  }

  /// Stops accepting pushes and wakes every waiter; poppers drain the
  /// remaining items.
  void close();
  bool closed() const;

  /// Requests currently queued (not yet collected by a worker).
  std::size_t depth() const;

  /// Removes and returns everything still queued. Only meaningful after
  /// `close()` once no worker is popping (used to fail undrainable
  /// requests instead of abandoning their futures).
  std::vector<PendingRequest> take_remaining();

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  std::atomic<std::uint64_t> deadline_dropped_{0};
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace clpp::serve
