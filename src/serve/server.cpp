#include "serve/server.h"

#include <exception>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resil/fault.h"

namespace clpp::serve {

namespace {

/// Batch-size buckets: powers of two up to 512 rows.
std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}

obs::Gauge& depth_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("clpp.serve.queue_depth");
  return gauge;
}

}  // namespace

InferenceServer::InferenceServer(const core::ParallelAdvisor& advisor,
                                 ServeConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.overflow) {
  config_.validate();
  replicas_.reserve(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    replicas_.push_back(advisor.clone());
  // Start threads only after every clone exists: a throwing clone must not
  // leave workers running over a half-built replica vector.
  for (std::size_t w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(*replicas_[w]); });
}

InferenceServer::~InferenceServer() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; shutdown failures already surfaced
    // through the request futures.
  }
}

std::future<core::Advice> InferenceServer::submit(std::string code) {
  if (stopped_.load(std::memory_order_acquire))
    throw ServeShutdown("InferenceServer::submit after shutdown");
  resil::fault_point("serve.enqueue");
  PendingRequest request;
  request.code = std::move(code);
  request.enqueue_ns = obs::Tracer::now_ns();
  std::future<core::Advice> future = request.result.get_future();
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
      obs::metrics().counter("clpp.serve.rejected").add(1);
    throw ServeOverload("serve queue full (" +
                        std::to_string(config_.queue_capacity) +
                        " requests) under kReject policy");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    obs::metrics().counter("clpp.serve.requests").add(1);
    depth_gauge().set(static_cast<double>(queue_.depth()));
  }
  return future;
}

void InferenceServer::worker_loop(core::ParallelAdvisor& advisor) {
  obs::Tracer::instance().set_thread_name("serve worker");
  for (;;) {
    std::vector<PendingRequest> batch =
        queue_.pop_batch(config_.max_batch, config_.max_delay_us);
    if (batch.empty()) return;  // queue closed and drained
    if (obs::enabled()) depth_gauge().set(static_cast<double>(queue_.depth()));
    serve_batch(advisor, batch);
  }
}

void InferenceServer::serve_batch(core::ParallelAdvisor& advisor,
                                  std::vector<PendingRequest>& batch) {
  CLPP_TRACE_SPAN_ARG("serve.batch", batch.size());
  const std::uint64_t start_ns = obs::Tracer::now_ns();
  try {
    resil::fault_point("serve.batch");
    std::vector<std::string> codes;
    codes.reserve(batch.size());
    for (const PendingRequest& request : batch) codes.push_back(request.code);
    std::vector<core::Advice> advices = advisor.advise_batch(codes, config_.options);
    // advise_batch coalesces duplicate snippets into one forward pass;
    // recount here so stats/metrics can attribute the saving.
    std::unordered_set<std::string_view> distinct(codes.begin(), codes.end());
    const std::uint64_t coalesced = codes.size() - distinct.size();

    const std::uint64_t end_ns = obs::Tracer::now_ns();
    if (obs::enabled()) {
      static obs::Histogram& batch_hist =
          obs::metrics().histogram("clpp.serve.batch_size", batch_size_bounds());
      static obs::Histogram& wait_hist =
          obs::metrics().histogram("clpp.serve.queue_wait_us");
      static obs::Histogram& latency_hist =
          obs::metrics().histogram("clpp.serve.latency_us");
      batch_hist.record(static_cast<double>(batch.size()));
      for (const PendingRequest& request : batch) {
        wait_hist.record(static_cast<double>(start_ns - request.enqueue_ns) / 1e3);
        latency_hist.record(static_cast<double>(end_ns - request.enqueue_ns) / 1e3);
      }
      obs::metrics().counter("clpp.serve.batches").add(1);
      if (coalesced > 0)
        obs::metrics().counter("clpp.serve.coalesced").add(coalesced);
    }
    // Counters first, promises second: a caller woken by its future must
    // already see this batch reflected in stats().
    completed_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_rows_.fetch_add(batch.size(), std::memory_order_relaxed);
    coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
    for (std::size_t i = 0; i < batch.size(); ++i)
      batch[i].result.set_value(std::move(advices[i]));
  } catch (...) {
    // A failing inference pass (injected fault, OOM, hostile input) fails
    // exactly the requests of this batch; the worker and every other
    // request keep going.
    const std::exception_ptr error = std::current_exception();
    failed_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (PendingRequest& request : batch) request.result.set_exception(error);
    if (obs::enabled())
      obs::metrics().counter("clpp.serve.batch_failures").add(1);
    if (obs::log_enabled(obs::LogLevel::kWarn)) {
      Json fields = Json::object();
      fields["requests"] = static_cast<std::int64_t>(batch.size());
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        fields["error"] = std::string(e.what());
      } catch (...) {
        fields["error"] = std::string("unknown exception");
      }
      obs::log_warn("serve", "batch failed; futures carry the error",
                    std::move(fields));
    }
  }
}

void InferenceServer::shutdown() {
  std::lock_guard lock(shutdown_mu_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // With zero workers (or a worker that died on a non-exception path)
  // requests may still sit in the queue; fail their futures explicitly so
  // no caller blocks forever on an abandoned promise.
  std::vector<PendingRequest> leftovers = queue_.take_remaining();
  if (!leftovers.empty()) {
    const auto error = std::make_exception_ptr(
        ServeShutdown("server shut down before this request was served"));
    for (PendingRequest& request : leftovers) request.result.set_exception(error);
    failed_.fetch_add(leftovers.size(), std::memory_order_relaxed);
  }
  if (obs::enabled()) depth_gauge().set(0.0);
}

ServeStats InferenceServer::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batch_rows = batch_rows_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace clpp::serve
