#include "serve/server.h"

#include <exception>
#include <utility>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "support/json.h"

namespace clpp::serve {

namespace {

/// Batch-size buckets: powers of two up to 512 rows.
std::vector<double> batch_size_bounds() {
  return {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
}

obs::Gauge& depth_gauge() {
  static obs::Gauge& gauge = obs::metrics().gauge("clpp.serve.queue_depth");
  return gauge;
}

/// Streaming percentile snapshot of one histogram for stats_json(). Empty
/// histograms report zeros (their min/max sentinels are non-finite and
/// would not round-trip through JSON).
Json hist_block(const obs::Histogram& hist) {
  Json block = Json::object();
  const std::uint64_t count = hist.count();
  block["count"] = static_cast<std::int64_t>(count);
  block["mean"] = count > 0 ? hist.mean() : 0.0;
  block["p50"] = count > 0 ? hist.quantile(0.50) : 0.0;
  block["p95"] = count > 0 ? hist.quantile(0.95) : 0.0;
  block["p99"] = count > 0 ? hist.quantile(0.99) : 0.0;
  block["max"] = count > 0 ? hist.max() : 0.0;
  return block;
}

}  // namespace

InferenceServer::InferenceServer(const core::ParallelAdvisor& advisor,
                                 ServeConfig config)
    : config_(std::move(config)),
      queue_(config_.queue_capacity, config_.overflow),
      result_cache_("serve", config_.cache),
      latency_us_(obs::default_latency_buckets_us()),
      queue_wait_us_(obs::default_latency_buckets_us()),
      infer_us_(obs::default_latency_buckets_us()),
      batch_size_(batch_size_bounds()),
      directive_us_(obs::default_latency_buckets_us()),
      private_us_(obs::default_latency_buckets_us()),
      reduction_us_(obs::default_latency_buckets_us()),
      schedule_us_(obs::default_latency_buckets_us()) {
  config_.validate();
  if (!advisor.fingerprint().empty())
    insight_.set_reference(advisor.fingerprint());
  replicas_.reserve(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w)
    replicas_.push_back(advisor.clone());
  // Start threads only after every clone exists: a throwing clone must not
  // leave workers running over a half-built replica vector.
  for (std::size_t w = 0; w < config_.workers; ++w)
    workers_.emplace_back([this, w] { worker_loop(*replicas_[w]); });
}

InferenceServer::~InferenceServer() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; shutdown failures already surfaced
    // through the request futures.
  }
}

std::future<ServedAdvice> InferenceServer::submit(std::string code,
                                                  std::uint64_t deadline_ns) {
  if (stopped_.load(std::memory_order_acquire))
    throw ServeShutdown("InferenceServer::submit after shutdown");
  resil::fault_point("serve.enqueue");
  if (config_.cache.enabled()) {
    // A digest hit resolves the future right here: no queue slot, no batch
    // slot, no forward pass. Correct because advice is a pure function of
    // the code text and the advisor is immutable once serving starts
    // (DESIGN.md §13) — a cached verdict is bitwise-identical to a fresh one.
    core::Advice advice;
    if (result_cache_.get(cache::snippet_digest(code), &advice)) {
      ServedAdvice served;
      served.advice = std::move(advice);
      served.timing.trace_id = obs::TraceContext::mint().trace_id;
      served.timing.cached = true;
      submitted_.fetch_add(1, std::memory_order_relaxed);
      completed_.fetch_add(1, std::memory_order_relaxed);
      latency_us_.record_always(0.0);
      obs::flight_record("serve.cache_hit",
                         static_cast<std::int64_t>(served.timing.trace_id));
      std::promise<ServedAdvice> ready;
      std::future<ServedAdvice> future = ready.get_future();
      ready.set_value(std::move(served));
      return future;
    }
  }
  PendingRequest request;
  request.code = std::move(code);
  request.deadline_ns = deadline_ns;
  // Mint the request's trace context unconditionally: the trace id rides
  // back in the response (and tags flight-recorder events) even when span
  // tracing is off. Minting is a wait-free counter mix, ~free.
  request.trace = obs::TraceContext::mint();
  request.enqueue_ns = obs::Tracer::now_ns();
  const std::uint64_t trace_id = request.trace.trace_id;
  const std::uint64_t enqueue_ns = request.enqueue_ns;
  std::future<ServedAdvice> future = request.result.get_future();
  obs::flight_record("serve.submit", static_cast<std::int64_t>(trace_id),
                     static_cast<std::int64_t>(queue_.depth()));
  if (!queue_.push(std::move(request))) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::flight_record("serve.reject", static_cast<std::int64_t>(trace_id));
    if (obs::enabled())
      obs::metrics().counter("clpp.serve.rejected").add(1);
    throw ServeOverload("serve queue full (" +
                        std::to_string(config_.queue_capacity) +
                        " requests) under kReject policy");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  if (obs::enabled()) {
    // Flow start: the submit span on the client thread opens the request's
    // cross-thread lane; the worker's queue_wait/infer spans continue it.
    obs::Tracer::instance().record("serve.submit", enqueue_ns,
                                   obs::Tracer::now_ns(), obs::kNoArg,
                                   trace_id, obs::FlowPhase::kStart);
    obs::metrics().counter("clpp.serve.requests").add(1);
    depth_gauge().set(static_cast<double>(queue_.depth()));
  }
  return future;
}

void InferenceServer::worker_loop(core::ParallelAdvisor& advisor) {
  obs::Tracer::instance().set_thread_name("serve worker");
  for (;;) {
    std::vector<PendingRequest> batch =
        queue_.pop_batch(config_.max_batch, config_.max_delay_us);
    if (batch.empty()) return;  // queue closed and drained
    if (obs::enabled()) depth_gauge().set(static_cast<double>(queue_.depth()));
    serve_batch(advisor, batch);
  }
}

void InferenceServer::serve_batch(core::ParallelAdvisor& advisor,
                                  std::vector<PendingRequest>& batch) {
  CLPP_TRACE_SPAN_ARG("serve.batch", batch.size());
  const std::uint64_t start_ns = obs::Tracer::now_ns();
  obs::flight_record("serve.batch", static_cast<std::int64_t>(batch.size()),
                     static_cast<std::int64_t>(queue_.depth()));
  try {
    resil::fault_point("serve.batch");
    std::vector<std::string> codes;
    codes.reserve(batch.size());
    for (const PendingRequest& request : batch) codes.push_back(request.code);
    core::BatchTiming timing;
    std::vector<core::Advice> advices =
        advisor.advise_batch(codes, config_.options, &timing);
    const std::uint64_t coalesced = timing.coalesced;

    const std::uint64_t end_ns = obs::Tracer::now_ns();
    const std::uint64_t batch_us = (end_ns - start_ns) / 1000;
    const std::uint64_t infer_us = timing.infer_ns() / 1000;

    // Always-on server-owned telemetry (record_always — independent of the
    // CLPP_OBS gate), feeding stats_json()'s streaming percentiles.
    batch_size_.record_always(static_cast<double>(batch.size()));
    infer_us_.record_always(static_cast<double>(timing.infer_ns()) / 1e3);
    directive_us_.record_always(static_cast<double>(timing.directive_ns) / 1e3);
    private_us_.record_always(static_cast<double>(timing.private_ns) / 1e3);
    reduction_us_.record_always(static_cast<double>(timing.reduction_ns) / 1e3);
    schedule_us_.record_always(static_cast<double>(timing.schedule_ns) / 1e3);
    for (const PendingRequest& request : batch) {
      queue_wait_us_.record_always(
          static_cast<double>(start_ns - request.enqueue_ns) / 1e3);
      latency_us_.record_always(
          static_cast<double>(end_ns - request.enqueue_ns) / 1e3);
    }

    if (obs::enabled()) {
      static obs::Histogram& batch_hist =
          obs::metrics().histogram("clpp.serve.batch_size", batch_size_bounds());
      static obs::Histogram& wait_hist =
          obs::metrics().histogram("clpp.serve.queue_wait_us");
      static obs::Histogram& latency_hist =
          obs::metrics().histogram("clpp.serve.latency_us");
      batch_hist.record(static_cast<double>(batch.size()));
      obs::Tracer& tracer = obs::Tracer::instance();
      for (const PendingRequest& request : batch) {
        wait_hist.record(static_cast<double>(start_ns - request.enqueue_ns) / 1e3);
        latency_hist.record(static_cast<double>(end_ns - request.enqueue_ns) / 1e3);
        // Continue + terminate each request's flow lane on the worker
        // thread: the queue-wait span (enqueue → collection) steps the
        // flow, the infer span (collection → verdict) ends it. Perfetto
        // then draws one connected arrow chain per request across the
        // client and worker tracks.
        tracer.record("serve.queue_wait", request.enqueue_ns, start_ns,
                      obs::kNoArg, request.trace.trace_id,
                      obs::FlowPhase::kStep);
        tracer.record("serve.infer", start_ns, end_ns, obs::kNoArg,
                      request.trace.trace_id, obs::FlowPhase::kEnd);
      }
      obs::metrics().counter("clpp.serve.batches").add(1);
      if (coalesced > 0)
        obs::metrics().counter("clpp.serve.coalesced").add(coalesced);
    }
    // Model-quality telemetry: every request position (coalesced duplicates
    // included — quality is a property of the traffic, not of distinct
    // snippets). The dangerous direction — model advises parallelizing a
    // loop the engine proved dependent — is flight-recorded with the
    // request's trace id so a dump shows which request tripped it.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      insight::VerdictSample sample;
      sample.p_directive = advices[i].p_directive;
      sample.p_private = advices[i].p_private;
      sample.p_reduction = advices[i].p_reduction;
      sample.p_dynamic = advices[i].p_dynamic;
      sample.positive = advices[i].needs_directive;
      sample.clauses_scored = advices[i].needs_directive;
      sample.proof = advices[i].proof;
      const insight::DisagreementKind kind =
          insight_.observe(batch[i].code, sample);
      if (kind == insight::DisagreementKind::kModelParallelProofDependent)
        obs::flight_record("insight.disagree",
                           static_cast<std::int64_t>(batch[i].trace.trace_id));
    }

    // Populate the result cache before the promises resolve: a client that
    // immediately re-sends the snippet it was just answered must hit. One
    // insert per *distinct* snippet (coalesced rows share their twin's
    // entry); duplicate inserts across racing workers refresh in place.
    if (config_.cache.enabled()) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (timing.coalesced_of[i] != 0) continue;
        const std::size_t bytes = sizeof(core::Advice) +
                                  advices[i].suggestion.size() +
                                  advices[i].compar_suggestion.size();
        result_cache_.put(cache::snippet_digest(batch[i].code), advices[i],
                          bytes);
      }
    }

    // Counters first, promises second: a caller woken by its future must
    // already see this batch reflected in stats().
    completed_.fetch_add(batch.size(), std::memory_order_relaxed);
    batches_.fetch_add(1, std::memory_order_relaxed);
    batch_rows_.fetch_add(batch.size(), std::memory_order_relaxed);
    coalesced_.fetch_add(coalesced, std::memory_order_relaxed);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ServedAdvice served;
      served.advice = std::move(advices[i]);
      served.timing.trace_id = batch[i].trace.trace_id;
      served.timing.queue_us = (start_ns - batch[i].enqueue_ns) / 1000;
      served.timing.batch_us = batch_us;
      served.timing.infer_us = infer_us;
      served.timing.coalesced = timing.coalesced_of[i] != 0;
      batch[i].result.set_value(std::move(served));
    }
  } catch (...) {
    // A failing inference pass (injected fault, OOM, hostile input) fails
    // exactly the requests of this batch; the worker and every other
    // request keep going.
    const std::exception_ptr error = std::current_exception();
    obs::flight_record("serve.batch_fail",
                       static_cast<std::int64_t>(batch.size()));
    failed_.fetch_add(batch.size(), std::memory_order_relaxed);
    for (PendingRequest& request : batch) request.result.set_exception(error);
    if (obs::enabled())
      obs::metrics().counter("clpp.serve.batch_failures").add(1);
    if (obs::log_enabled(obs::LogLevel::kWarn)) {
      Json fields = Json::object();
      fields["requests"] = static_cast<std::int64_t>(batch.size());
      try {
        std::rethrow_exception(error);
      } catch (const std::exception& e) {
        fields["error"] = std::string(e.what());
      } catch (...) {
        fields["error"] = std::string("unknown exception");
      }
      obs::log_warn("serve", "batch failed; futures carry the error",
                    std::move(fields));
    }
  }
}

void InferenceServer::shutdown() {
  std::lock_guard lock(shutdown_mu_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
  queue_.close();
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
  // With zero workers (or a worker that died on a non-exception path)
  // requests may still sit in the queue; fail their futures explicitly so
  // no caller blocks forever on an abandoned promise.
  std::vector<PendingRequest> leftovers = queue_.take_remaining();
  if (!leftovers.empty()) {
    const auto error = std::make_exception_ptr(
        ServeShutdown("server shut down before this request was served"));
    for (PendingRequest& request : leftovers) request.result.set_exception(error);
    failed_.fetch_add(leftovers.size(), std::memory_order_relaxed);
  }
  if (obs::enabled()) depth_gauge().set(0.0);
}

ServeStats InferenceServer::stats() const {
  ServeStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.batches = batches_.load(std::memory_order_relaxed);
  stats.batch_rows = batch_rows_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.deadline_dropped = queue_.deadline_dropped();
  stats.cache_hits = result_cache_.stats().hits;
  return stats;
}

Json InferenceServer::stats_json() const {
  const ServeStats snapshot = stats();
  Json out = Json::object();
  out["schema"] = "clpp.serve_stats.v1";
  out["queue_depth"] = static_cast<std::int64_t>(queue_.depth());
  out["workers"] = static_cast<std::int64_t>(config_.workers);
  out["max_batch"] = static_cast<std::int64_t>(config_.max_batch);
  out["max_delay_us"] = static_cast<std::int64_t>(config_.max_delay_us);
  out["submitted"] = static_cast<std::int64_t>(snapshot.submitted);
  out["rejected"] = static_cast<std::int64_t>(snapshot.rejected);
  out["completed"] = static_cast<std::int64_t>(snapshot.completed);
  out["failed"] = static_cast<std::int64_t>(snapshot.failed);
  out["batches"] = static_cast<std::int64_t>(snapshot.batches);
  out["batch_rows"] = static_cast<std::int64_t>(snapshot.batch_rows);
  out["coalesced"] = static_cast<std::int64_t>(snapshot.coalesced);
  out["deadline_dropped"] = static_cast<std::int64_t>(snapshot.deadline_dropped);
  out["coalesce_rate"] =
      snapshot.batch_rows > 0
          ? static_cast<double>(snapshot.coalesced) /
                static_cast<double>(snapshot.batch_rows)
          : 0.0;
  out["mean_batch_rows"] = snapshot.mean_batch_rows();
  out["cache"] = result_cache_.stats_json();
  out["latency_us"] = hist_block(latency_us_);
  out["queue_wait_us"] = hist_block(queue_wait_us_);
  out["infer_us"] = hist_block(infer_us_);
  out["batch_size"] = hist_block(batch_size_);
  Json tasks = Json::object();
  tasks["directive_us"] = hist_block(directive_us_);
  tasks["private_us"] = hist_block(private_us_);
  tasks["reduction_us"] = hist_block(reduction_us_);
  tasks["schedule_us"] = hist_block(schedule_us_);
  out["tasks"] = std::move(tasks);
  return out;
}

Json InferenceServer::quality_json() const { return insight_.quality_json(); }

}  // namespace clpp::serve
