#include "serve/serve.h"

namespace clpp::serve {

void ServeConfig::validate() const {
  CLPP_CHECK_MSG(max_batch > 0, "ServeConfig::max_batch must be positive");
  CLPP_CHECK_MSG(queue_capacity > 0, "ServeConfig::queue_capacity must be positive");
  CLPP_CHECK_MSG(max_delay_us <= 60'000'000,
                 "ServeConfig::max_delay_us " << max_delay_us
                                              << " exceeds the 60s sanity bound");
}

double ServeStats::mean_batch_rows() const {
  if (batches == 0) return 0.0;
  return static_cast<double>(batch_rows) / static_cast<double>(batches);
}

}  // namespace clpp::serve
