// Bag-of-Words featurization + logistic regression (§5.2 baseline).
//
// The BoW model counts tokens into a sparse vector (order discarded) and
// classifies with L2-regularized logistic regression trained by mini-batch
// SGD — the "lightweight text-aware ML model" the paper compares against.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"
#include "tokenize/vocabulary.h"

namespace clpp::baselines {

/// Sparse feature: (vocabulary id, count).
using SparseVector = std::vector<std::pair<std::int32_t, float>>;

/// Counts tokens of one document into a sparse vector (ids sorted).
SparseVector bow_features(const std::vector<std::string>& tokens,
                          const tokenize::Vocabulary& vocab);

/// Logistic-regression hyperparameters.
struct LogisticConfig {
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  float lr = 0.1f;
  float l2 = 1e-4f;
};

/// Binary logistic-regression classifier over sparse features.
class LogisticRegression {
 public:
  /// `features` is the dimensionality (vocabulary size).
  explicit LogisticRegression(std::size_t features);

  /// Trains on (x, y) pairs; labels in {0, 1}. Deterministic given `rng`.
  void train(const std::vector<SparseVector>& inputs,
             const std::vector<std::int32_t>& labels, const LogisticConfig& config,
             Rng& rng);

  /// P(label = 1 | x).
  float predict_proba(const SparseVector& input) const;
  /// Hard prediction at the 0.5 threshold (paper §4.1).
  int predict(const SparseVector& input) const { return predict_proba(input) > 0.5f; }

  /// Mean binary cross-entropy on a dataset (for monitoring).
  float loss(const std::vector<SparseVector>& inputs,
             const std::vector<std::int32_t>& labels) const;

  const std::vector<float>& weights() const { return weights_; }
  float bias() const { return bias_; }

 private:
  std::vector<float> weights_;
  float bias_ = 0.0f;
};

}  // namespace clpp::baselines
