#include "baselines/bow.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace clpp::baselines {

SparseVector bow_features(const std::vector<std::string>& tokens,
                          const tokenize::Vocabulary& vocab) {
  std::map<std::int32_t, float> counts;
  for (const std::string& token : tokens) counts[vocab.id_of(token)] += 1.0f;
  return SparseVector(counts.begin(), counts.end());
}

LogisticRegression::LogisticRegression(std::size_t features)
    : weights_(features, 0.0f) {
  CLPP_CHECK_MSG(features > 0, "feature dimension must be positive");
}

namespace {
float sigmoid(float z) { return 1.0f / (1.0f + std::exp(-z)); }
}  // namespace

float LogisticRegression::predict_proba(const SparseVector& input) const {
  float z = bias_;
  for (const auto& [id, count] : input) {
    CLPP_CHECK_MSG(id >= 0 && static_cast<std::size_t>(id) < weights_.size(),
                   "feature id " << id << " out of range");
    z += weights_[static_cast<std::size_t>(id)] * count;
  }
  return sigmoid(z);
}

void LogisticRegression::train(const std::vector<SparseVector>& inputs,
                               const std::vector<std::int32_t>& labels,
                               const LogisticConfig& config, Rng& rng) {
  CLPP_CHECK_MSG(inputs.size() == labels.size(), "inputs/labels size mismatch");
  CLPP_CHECK_MSG(!inputs.empty(), "empty training set");
  std::vector<std::size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t count = std::min(config.batch_size, order.size() - start);
      // Accumulate the batch gradient sparsely.
      std::map<std::int32_t, float> grad;
      float grad_bias = 0.0f;
      for (std::size_t b = 0; b < count; ++b) {
        const std::size_t idx = order[start + b];
        const float err =
            predict_proba(inputs[idx]) - static_cast<float>(labels[idx]);
        grad_bias += err;
        for (const auto& [id, value] : inputs[idx]) grad[id] += err * value;
      }
      const float scale = config.lr / static_cast<float>(count);
      for (const auto& [id, g] : grad) {
        float& w = weights_[static_cast<std::size_t>(id)];
        w -= scale * (g + config.l2 * w * static_cast<float>(count));
      }
      bias_ -= scale * grad_bias;
    }
  }
}

float LogisticRegression::loss(const std::vector<SparseVector>& inputs,
                               const std::vector<std::int32_t>& labels) const {
  CLPP_CHECK(inputs.size() == labels.size());
  double total = 0.0;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const float p = predict_proba(inputs[i]);
    const float target = static_cast<float>(labels[i]);
    total -= target * std::log(std::max(p, 1e-7f)) +
             (1.0f - target) * std::log(std::max(1.0f - p, 1e-7f));
  }
  return inputs.empty() ? 0.0f : static_cast<float>(total / inputs.size());
}

}  // namespace clpp::baselines
