#include "core/resume.h"

#include <sstream>

#include "obs/trace.h"
#include "resil/container.h"
#include "tensor/io.h"

namespace clpp::core {

namespace {

constexpr std::uint64_t kTrainerStateVersion = 1;

void write_tensor_map(std::ostream& out, const std::map<std::string, Tensor>& m) {
  write_u64(out, m.size());
  for (const auto& [name, value] : m) {
    write_string(out, name);
    write_tensor(out, value);
  }
}

std::map<std::string, Tensor> read_tensor_map(std::istream& in) {
  const std::uint64_t count = read_u64(in);
  if (count > 1'000'000) throw ParseError("implausible trainer checkpoint map size");
  std::map<std::string, Tensor> m;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    Tensor value = read_tensor(in);
    if (!m.emplace(std::move(name), std::move(value)).second)
      throw ParseError("duplicate name in trainer checkpoint map");
  }
  return m;
}

void write_tensor_list(std::ostream& out, const std::vector<Tensor>& ts) {
  write_u64(out, ts.size());
  for (const Tensor& t : ts) write_tensor(out, t);
}

std::vector<Tensor> read_tensor_list(std::istream& in) {
  const std::uint64_t count = read_u64(in);
  if (count > 1'000'000) throw ParseError("implausible trainer checkpoint list size");
  std::vector<Tensor> ts;
  ts.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) ts.push_back(read_tensor(in));
  return ts;
}

}  // namespace

void save_trainer_checkpoint(const std::string& path, const TrainerCheckpoint& state) {
  CLPP_TRACE_SPAN("resil.ckpt_save");
  std::ostringstream out;
  write_u64(out, kTrainerStateVersion);
  write_u64(out, state.epoch);
  write_u64(out, state.next_start);
  write_u64(out, state.step);
  write_u64(out, state.batches);
  write_f64(out, state.loss_sum);
  for (std::uint64_t word : state.rng_state) write_u64(out, word);
  write_u64(out, state.order.size());
  for (std::uint64_t i : state.order) write_u64(out, i);
  write_u64(out, state.curves.size());
  for (const EpochCurve& curve : state.curves) {
    write_u64(out, curve.epoch);
    write_f32(out, curve.train_loss);
    write_f32(out, curve.val_loss);
    write_f32(out, curve.val_accuracy);
    write_f64(out, curve.wall_seconds);
  }
  write_f32(out, state.best_val_loss);
  write_tensor_map(out, state.best_snapshot);
  write_tensor_map(out, state.params);
  write_u64(out, state.opt_steps);
  write_tensor_list(out, state.opt_m);
  write_tensor_list(out, state.opt_v);
  resil::write_container(path, out.view());
}

TrainerCheckpoint load_trainer_checkpoint(const std::string& path) {
  CLPP_TRACE_SPAN("resil.ckpt_load");
  const std::string payload = resil::read_container(path);
  std::istringstream in(payload);
  const std::uint64_t version = read_u64(in);
  if (version != kTrainerStateVersion)
    throw ParseError("unsupported trainer checkpoint version " +
                     std::to_string(version));
  TrainerCheckpoint state;
  state.epoch = read_u64(in);
  state.next_start = read_u64(in);
  state.step = read_u64(in);
  state.batches = read_u64(in);
  state.loss_sum = read_f64(in);
  for (std::uint64_t& word : state.rng_state) word = read_u64(in);
  const std::uint64_t order_size = read_u64(in);
  if (order_size > (1ULL << 32))
    throw ParseError("implausible trainer checkpoint order size");
  state.order.resize(order_size);
  for (std::uint64_t& i : state.order) i = read_u64(in);
  const std::uint64_t curve_count = read_u64(in);
  if (curve_count > 1'000'000)
    throw ParseError("implausible trainer checkpoint epoch count");
  state.curves.resize(curve_count);
  for (EpochCurve& curve : state.curves) {
    curve.epoch = static_cast<std::size_t>(read_u64(in));
    curve.train_loss = read_f32(in);
    curve.val_loss = read_f32(in);
    curve.val_accuracy = read_f32(in);
    curve.wall_seconds = read_f64(in);
  }
  state.best_val_loss = read_f32(in);
  state.best_snapshot = read_tensor_map(in);
  state.params = read_tensor_map(in);
  state.opt_steps = read_u64(in);
  state.opt_m = read_tensor_list(in);
  state.opt_v = read_tensor_list(in);
  return state;
}

std::string trainer_checkpoint_path(const std::string& dir) {
  return dir.empty() || dir.back() == '/' ? dir + "trainer.ckpt"
                                          : dir + "/trainer.ckpt";
}

}  // namespace clpp::core
