// PragFormer training loop with per-epoch curves (Figures 3-5).
#pragma once

#include <functional>
#include <vector>

#include "core/dataset.h"
#include "core/metrics.h"
#include "core/pragformer.h"

namespace clpp::core {

/// Default number of rows per forward pass for batched *inference* — shared
/// by the eval/predict helpers below and by the serving scheduler's
/// `ServeConfig::max_batch` (src/serve), so the batch-size knob is tuned in
/// exactly one place. Training batch sizes are a separate hyperparameter
/// (`TrainConfig::batch_size`): they affect the optimization trajectory,
/// whereas this constant only trades latency against GEMM efficiency.
inline constexpr std::size_t kDefaultInferBatch = 64;

/// Fine-tuning hyperparameters (§4.3: AdamW + dropout).
struct TrainConfig {
  std::size_t epochs = 10;
  std::size_t batch_size = 32;
  float lr = 5e-4f;
  float clip_norm = 1.0f;
  float warmup_fraction = 0.1f;  // of total steps
  /// §5.1: "since validation loss begins to rise after 7-9 epochs, we
  /// choose to use the models trained up to those points." When true, the
  /// parameters from the epoch with the lowest validation loss are
  /// restored after training (requires a non-empty validation set).
  bool select_best_epoch = false;
  /// Optional progress observer, invoked after every epoch in addition to
  /// the `on_epoch` argument of train_classifier. Lives on the config so it
  /// survives the trip through PipelineConfig / ParallelAdvisor::train.
  std::function<void(const struct EpochCurve&)> on_epoch = nullptr;
  /// Crash-safe checkpointing (clpp::resil). When `checkpoint_dir` is empty
  /// it falls back to CLPP_CKPT_DIR; still empty disables checkpointing.
  /// `checkpoint_every` saves every N batches (falls back to
  /// CLPP_CKPT_EVERY; 0 saves at epoch boundaries only). With `resume`, a
  /// valid checkpoint in the directory is restored and training continues
  /// bit-for-bit; a corrupt or incompatible one degrades to a fresh run
  /// with a structured warning (never an abort). A checkpoint that fails to
  /// *save* after retries logs a warning and training continues.
  std::string checkpoint_dir = {};
  std::size_t checkpoint_every = 0;
  bool resume = true;
};

/// Per-epoch statistics — exactly the series of Figures 3, 4, and 5.
struct EpochCurve {
  std::size_t epoch = 0;
  float train_loss = 0.0f;
  float val_loss = 0.0f;
  float val_accuracy = 0.0f;
  /// Wall-clock seconds this epoch took (batches + validation pass).
  double wall_seconds = 0.0;
};

/// Trains `model` on `train`, evaluating on `validation` each epoch.
/// `on_epoch` (optional) observes progress. Deterministic given `rng`.
///
/// With checkpointing configured (TrainConfig::checkpoint_dir or
/// CLPP_CKPT_DIR), a killed run resumed with the same model seed, data,
/// and config reproduces the uninterrupted run's final parameters and
/// EpochCurve metrics bit-for-bit (wall_seconds excepted — it measures the
/// actual wall time of each run). `rng` must be the same instance used to
/// construct `model` (dropout draws flow through it), as Pipeline does.
std::vector<EpochCurve> train_classifier(
    PragFormer& model, const EncodedDataset& train, const EncodedDataset& validation,
    const TrainConfig& config, Rng& rng,
    const std::function<void(const EpochCurve&)>& on_epoch = nullptr);

/// Loss + accuracy of `model` on a dataset (eval mode, batched).
std::pair<float, float> evaluate_loss_accuracy(PragFormer& model,
                                               const EncodedDataset& dataset,
                                               std::size_t batch_size = kDefaultInferBatch);

/// P(positive) for every row of `dataset` (eval mode, batched).
std::vector<float> predict_dataset(PragFormer& model, const EncodedDataset& dataset,
                                   std::size_t batch_size = kDefaultInferBatch);

/// Metrics of `model` on `dataset` at the 0.5 threshold.
BinaryMetrics evaluate_metrics(PragFormer& model, const EncodedDataset& dataset,
                               std::size_t batch_size = kDefaultInferBatch);

}  // namespace clpp::core
