#include "core/metrics.h"

#include <sstream>

#include "support/error.h"
#include "support/strings.h"

namespace clpp::core {

void BinaryMetrics::add(bool predicted, bool actual) {
  if (predicted && actual) ++tp;
  else if (predicted && !actual) ++fp;
  else if (!predicted && actual) ++fn;
  else ++tn;
}

std::string BinaryMetrics::summary() const {
  std::ostringstream os;
  os << "P=" << fixed(precision(), 2) << " R=" << fixed(recall(), 2)
     << " F1=" << fixed(f1(), 2) << " acc=" << fixed(accuracy(), 2) << " (tp=" << tp
     << " fp=" << fp << " tn=" << tn << " fn=" << fn << ")";
  return os.str();
}

BinaryMetrics compute_metrics(std::span<const int> predictions,
                              std::span<const int> labels) {
  CLPP_CHECK_MSG(predictions.size() == labels.size(),
                 "predictions/labels size mismatch");
  BinaryMetrics m;
  for (std::size_t i = 0; i < predictions.size(); ++i)
    m.add(predictions[i] != 0, labels[i] != 0);
  return m;
}

BinaryMetrics compute_metrics_proba(std::span<const float> probabilities,
                                    std::span<const std::int32_t> labels,
                                    float threshold) {
  CLPP_CHECK_MSG(probabilities.size() == labels.size(),
                 "probabilities/labels size mismatch");
  BinaryMetrics m;
  for (std::size_t i = 0; i < probabilities.size(); ++i)
    m.add(probabilities[i] > threshold, labels[i] != 0);
  return m;
}

}  // namespace clpp::core
