#include "core/pragformer.h"

#include "nn/checkpoint.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/stopwatch.h"

namespace clpp::core {

namespace {
std::size_t head_width(const PragFormerConfig& config) {
  return config.head_hidden == 0 ? config.encoder.dim : config.head_hidden;
}
}  // namespace

PragFormer::PragFormer(const PragFormerConfig& config, Rng& rng)
    : config_(config),
      encoder_(config.encoder, rng),
      head1_("head.fc1", config.encoder.dim, head_width(config), rng),
      head_drop_(config.head_dropout, rng),
      head2_("head.fc2", head_width(config), 2, rng) {}

Tensor PragFormer::logits(const nn::TokenBatch& batch, bool train) {
  batch_ = batch.batch;
  seq_ = batch.seq;
  Tensor hidden = encoder_.forward(batch, train);
  Tensor pooled = nn::pooled_cls(hidden, batch_, seq_);
  Tensor h = head1_.forward(pooled, train);
  h = relu_.forward(h, train);
  h = head_drop_.forward(h, train);
  return head2_.forward(h, train);
}

void PragFormer::backward(const Tensor& grad_logits) {
  CLPP_CHECK_MSG(batch_ > 0, "PragFormer::backward without logits");
  Tensor g = head2_.backward(grad_logits);
  g = head_drop_.backward(g);
  g = relu_.backward(g);
  g = head1_.backward(g);
  g = nn::scatter_cls_grad(g, batch_, seq_);
  encoder_.backward(g);
}

std::vector<float> PragFormer::predict_proba(const nn::TokenBatch& batch) {
  CLPP_TRACE_SPAN_ARG("infer.predict", batch.batch);
  const Stopwatch clock;
  std::vector<float> probs = nn::positive_probabilities(logits(batch, /*train=*/false));
  if (obs::enabled()) {
    static obs::Histogram& latency =
        obs::metrics().histogram("clpp.infer.latency_us");
    static obs::Counter& requests = obs::metrics().counter("clpp.infer.requests");
    static obs::Counter& rows = obs::metrics().counter("clpp.infer.rows");
    latency.record(clock.seconds() * 1e6);
    requests.add(1);
    rows.add(probs.size());
  }
  return probs;
}

std::vector<nn::Parameter*> PragFormer::parameters() {
  std::vector<nn::Parameter*> params;
  encoder_.collect_parameters(params);
  head1_.collect_parameters(params);
  head2_.collect_parameters(params);
  return params;
}

std::size_t PragFormer::load_pretrained_encoder(
    const std::map<std::string, Tensor>& checkpoint) {
  std::vector<nn::Parameter*> params;
  encoder_.collect_parameters(params);
  return nn::restore_parameters(checkpoint, params, /*strict=*/false);
}

}  // namespace clpp::core
