// Crash-safe trainer state: everything train_classifier needs to continue a
// run bit-for-bit from its last checkpoint (parameters, optimizer moments,
// epoch/batch cursor, RNG stream, shuffled batch order, finished epoch
// curves, and the best-epoch snapshot).
//
// Serialized inside a clpp::resil checkpoint container (atomic replace +
// CRC32), so a kill at any moment leaves either the previous or the new
// state, never a torn one. See DESIGN.md "Fault tolerance & checkpointing"
// for the resume-determinism guarantee.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/trainer.h"
#include "tensor/tensor.h"

namespace clpp::core {

/// A full mid-run snapshot of train_classifier.
struct TrainerCheckpoint {
  std::uint64_t epoch = 0;       // epoch the run continues in (0-based)
  std::uint64_t next_start = 0;  // offset into `order` of the next batch
  std::uint64_t step = 0;        // global optimizer step (LR schedule cursor)
  std::uint64_t batches = 0;     // batches finished in the current epoch
  double loss_sum = 0.0;         // running loss of the current epoch
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<std::uint64_t> order;  // current epoch's shuffled row order
  std::vector<EpochCurve> curves;    // finished epochs
  float best_val_loss = std::numeric_limits<float>::infinity();
  std::map<std::string, Tensor> best_snapshot;  // select_best_epoch support
  std::map<std::string, Tensor> params;
  std::uint64_t opt_steps = 0;
  std::vector<Tensor> opt_m, opt_v;  // Adam moments, parallel to params order
};

/// Atomically writes `state` to `path` (resil container; retried on
/// transient I/O failure — throws IoError once retries are exhausted).
void save_trainer_checkpoint(const std::string& path, const TrainerCheckpoint& state);

/// Loads and validates a trainer checkpoint; throws IoError/ParseError on
/// missing, truncated, corrupt, or version-incompatible files.
TrainerCheckpoint load_trainer_checkpoint(const std::string& path);

/// Canonical checkpoint location inside a checkpoint directory.
std::string trainer_checkpoint_path(const std::string& dir);

}  // namespace clpp::core
