// ParallelAdvisor: the user-facing API of the library.
//
// Combines the three trained PragFormer classifiers (directive / private /
// reduction) with the dependence analyzer to produce an actionable
// suggestion: the classifiers decide *whether* a directive and clauses are
// needed (the paper's contribution); the analyzer names the variables for
// the clauses when it can (the deterministic machinery the paper keeps for
// directive construction in its future-work pipeline).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/explain.h"
#include "core/pipeline.h"
#include "insight/drift.h"
#include "insight/insight.h"

namespace clpp::core {

/// Advice for one code snippet.
struct Advice {
  float p_directive = 0.0f;
  float p_private = 0.0f;    // meaningful when needs_directive
  float p_reduction = 0.0f;  // meaningful when needs_directive
  float p_dynamic = 0.0f;    // meaningful when a schedule model is attached
  bool needs_directive = false;
  bool needs_private = false;
  bool needs_reduction = false;
  bool wants_dynamic_schedule = false;
  /// Static cross-check: what the dependence engine proved about the target
  /// loop (kNone when analysis was skipped or the code does not parse).
  /// Compared against the model verdict by clpp::insight.
  insight::ProofVerdict proof = insight::ProofVerdict::kNone;
  /// Suggested pragma line, empty when no directive is advised.
  std::string suggestion;
  /// What the ComPar S2S ensemble would do on the same snippet, for
  /// comparison (empty when it fails or declines).
  std::string compar_suggestion;
};

/// Which parts of an Advice to compute. The model verdicts (the paper's
/// contribution) always run; the deterministic extras are optional so a
/// serving path can trade them against latency.
struct AdviseOptions {
  /// Run the dependence analyzer to name private/reduction variables in the
  /// suggested pragma. Off, the suggestion is the bare directive.
  bool with_analysis = true;
  /// Run the ComPar S2S ensemble for the comparison suggestion.
  bool with_compar = true;
};

/// Where one `advise_batch` call spent its time, broken down by stage, plus
/// which input rows were answered by coalescing onto an earlier duplicate.
/// Filled only when a caller passes a non-null pointer; the measurement
/// itself is a handful of steady-clock reads, cheap enough for the serve
/// path to request on every batch.
struct BatchTiming {
  std::uint64_t encode_ns = 0;     // tokenize + vocab encode of distinct rows
  std::uint64_t directive_ns = 0;  // directive-model forward passes
  std::uint64_t private_ns = 0;    // private-clause model forward passes
  std::uint64_t reduction_ns = 0;  // reduction-clause model forward passes
  std::uint64_t schedule_ns = 0;   // schedule model forward passes (if attached)
  std::uint64_t extras_ns = 0;     // analyzer + ComPar deterministic extras
  /// Distinct snippets actually run through the models.
  std::size_t unique_rows = 0;
  /// Inputs answered from another row's verdict (batch size − unique_rows).
  std::size_t coalesced = 0;
  /// Per-input flag: 1 when input i re-used an earlier duplicate's verdict.
  std::vector<std::uint8_t> coalesced_of;

  /// Total model-forward time — the "inference" share a serving layer
  /// reports per request.
  std::uint64_t infer_ns() const {
    return directive_ns + private_ns + reduction_ns + schedule_ns;
  }
};

/// Bundles three trained models and a vocabulary into an advisor.
class ParallelAdvisor {
 public:
  /// Takes ownership of the trained models. All three must share the
  /// representation/vocab/max_len of `pipeline_config`.
  ParallelAdvisor(std::unique_ptr<PragFormer> directive_model,
                  std::unique_ptr<PragFormer> private_model,
                  std::unique_ptr<PragFormer> reduction_model,
                  tokenize::Vocabulary vocabulary, tokenize::Representation rep,
                  std::size_t max_len);

  /// Attaches an optional fourth classifier predicting schedule(dynamic)
  /// (the paper's §6 "scheduling construct" future work).
  void set_schedule_model(std::unique_ptr<PragFormer> schedule_model);

  /// Analyzes one snippet. Throws ParseError only for AST representations
  /// on unparseable input; the default Text representation accepts any
  /// lexable code.
  Advice advise(const std::string& code) const;
  Advice advise(const std::string& code, const AdviseOptions& options) const;

  /// Batched multi-task inference: one Advice per input snippet, in input
  /// order. Snippets are bucketed by *exact* encoded length and each bucket
  /// runs as one padding-free `predict_proba` per task model, so the
  /// transformer forward is amortized across concurrent requests while every
  /// verdict stays bitwise identical to the single-snippet `advise` path
  /// (all NN kernels are batch-row independent). This is the entry point the
  /// clpp::serve micro-batching scheduler drives.
  std::vector<Advice> advise_batch(const std::vector<std::string>& codes,
                                   const AdviseOptions& options = {}) const;

  /// As above, additionally reporting the per-stage time split and
  /// coalescing map in `*timing` (ignored when null). The verdicts are
  /// identical to the two-argument overload.
  std::vector<Advice> advise_batch(const std::vector<std::string>& codes,
                                   const AdviseOptions& options,
                                   BatchTiming* timing) const;

  /// Convenience: trains a full advisor (directive + private + reduction +
  /// schedule models) from a fresh pipeline.
  static ParallelAdvisor train(PipelineConfig config);

  /// Persists the advisor (all models, vocabulary, representation) to one
  /// binary file; `load` restores an identical advisor.
  void save(const std::string& path) const;
  static ParallelAdvisor load(const std::string& path);

  /// In-memory (de)serialization — the byte payload `save` wraps in a
  /// checksummed resil container. `deserialize(serialize())` reconstructs an
  /// advisor with bitwise-identical behaviour; serve worker replicas are
  /// cloned this way.
  std::string serialize() const;
  static ParallelAdvisor deserialize(const std::string& payload);

  /// Deep copy with independent model state, safe to drive from another
  /// thread (inference caches activations, so two threads must never share
  /// one advisor).
  std::unique_ptr<ParallelAdvisor> clone() const;

  /// Attention-map explanation of the directive prediction for `code`.
  Explanation explain(const std::string& code) const;

  /// Training-corpus feature fingerprint, the drift-detection reference
  /// checkpointed with the model (advisor container v2). Empty for advisors
  /// loaded from v1 files or assembled without `train`.
  const insight::Fingerprint& fingerprint() const { return fingerprint_; }
  void set_fingerprint(insight::Fingerprint fingerprint) {
    fingerprint_ = std::move(fingerprint);
  }

 private:
  mutable std::unique_ptr<PragFormer> directive_model_;
  mutable std::unique_ptr<PragFormer> private_model_;
  mutable std::unique_ptr<PragFormer> reduction_model_;
  mutable std::unique_ptr<PragFormer> schedule_model_;  // optional
  tokenize::Vocabulary vocab_;
  tokenize::Representation rep_;
  std::size_t max_len_;
  insight::Fingerprint fingerprint_;
};

}  // namespace clpp::core
