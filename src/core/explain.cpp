#include "core/explain.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/strings.h"

namespace clpp::core {

std::vector<TokenAttention> Explanation::top_tokens(std::size_t k) const {
  std::vector<TokenAttention> sorted;
  for (const TokenAttention& t : attention)
    if (t.position != 0) sorted.push_back(t);
  std::sort(sorted.begin(), sorted.end(),
            [](const TokenAttention& a, const TokenAttention& b) {
              return a.weight > b.weight;
            });
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::string Explanation::ascii() const {
  float max_weight = 1e-9f;
  for (const TokenAttention& t : attention) max_weight = std::max(max_weight, t.weight);
  std::ostringstream os;
  os << "p(positive) = " << fixed(p_positive, 3) << "  (attention of <cls>, layer "
     << layer << ", head-averaged)\n";
  for (const TokenAttention& t : attention) {
    const int bars = static_cast<int>(std::lround(24.0f * t.weight / max_weight));
    os << pad_left(fixed(t.weight, 3), 7) << ' '
       << pad_right(t.token, 14).substr(0, 14) << ' '
       << repeated("#", static_cast<std::size_t>(bars)) << '\n';
  }
  return os.str();
}

Explanation explain_prediction(PragFormer& model,
                               const tokenize::Vocabulary& vocabulary,
                               tokenize::Representation rep, std::size_t max_len,
                               const std::string& code) {
  Explanation out;
  out.tokens.push_back("<cls>");
  for (const std::string& token : tokenize::tokenize(code, rep))
    out.tokens.push_back(token);
  if (out.tokens.size() > max_len) out.tokens.resize(max_len);

  std::vector<std::string> body(out.tokens.begin() + 1, out.tokens.end());
  const auto encoded = vocabulary.encode(body, max_len);
  nn::TokenBatch batch;
  batch.batch = 1;
  batch.seq = encoded.size();
  batch.ids = encoded;
  batch.lengths = {static_cast<int>(encoded.size())};

  out.p_positive = model.predict_proba(batch)[0];

  // Read the attention probabilities cached by the forward pass above.
  const std::size_t last = model.encoder().block_count() - 1;
  out.layer = last;
  const Tensor& probs = model.encoder().block(last).attention().last_probs();
  // probs is [heads, seq, seq] for batch = 1; take the <cls> row (query 0)
  // averaged over heads.
  const std::size_t heads = probs.dim(0);
  const std::size_t seq = probs.dim(1);
  CLPP_CHECK(seq == batch.seq);
  out.attention.resize(seq);
  for (std::size_t t = 0; t < seq; ++t) {
    float total = 0.0f;
    for (std::size_t h = 0; h < heads; ++h) total += probs(h, 0, t);
    out.attention[t] = TokenAttention{out.tokens[t], t,
                                      total / static_cast<float>(heads)};
  }
  return out;
}

}  // namespace clpp::core
