// Encoded datasets: corpus records -> token-id sequences + labels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "corpus/corpus.h"
#include "nn/batch.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::core {

/// A task dataset ready for model consumption.
struct EncodedDataset {
  std::vector<std::vector<std::int32_t>> sequences;  // each starts with <cls>
  std::vector<std::int32_t> labels;                  // {0, 1}

  std::size_t size() const { return sequences.size(); }
};

/// Tokenizes corpus records (by index) under `rep` and encodes them with
/// `vocab`, pairing each with its task label. Records that fail to
/// tokenize under AST representations are skipped (real pipelines drop
/// unparseable snippets too) — with our generator this should not happen.
EncodedDataset encode_dataset(const corpus::Corpus& corpus,
                              std::span<const std::size_t> indices, corpus::Task task,
                              tokenize::Representation rep,
                              const tokenize::Vocabulary& vocab, std::size_t max_len);

/// Tokenized (but not yet id-encoded) documents for vocabulary building.
std::vector<std::vector<std::string>> tokenize_records(
    const corpus::Corpus& corpus, std::span<const std::size_t> indices,
    tokenize::Representation rep);

/// Packs `indices` rows of `dataset` into a padded TokenBatch (pad id 0),
/// clamping sequence length to `max_seq`.
nn::TokenBatch pack_batch(const EncodedDataset& dataset,
                          std::span<const std::size_t> indices, std::size_t max_seq);

/// Labels of `indices` rows (parallel to pack_batch).
std::vector<std::int32_t> batch_labels(const EncodedDataset& dataset,
                                       std::span<const std::size_t> indices);

}  // namespace clpp::core
