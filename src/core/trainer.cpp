#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "core/resume.h"
#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prof/counters.h"
#include "prof/prof.h"
#include "resil/resil.h"
#include "support/stopwatch.h"
#include "tensor/ops.h"

namespace clpp::core {

std::vector<EpochCurve> train_classifier(
    PragFormer& model, const EncodedDataset& train, const EncodedDataset& validation,
    const TrainConfig& config, Rng& rng,
    const std::function<void(const EpochCurve&)>& on_epoch) {
  CLPP_CHECK_MSG(train.size() > 0, "empty training set");
  CLPP_CHECK_MSG(config.epochs > 0 && config.batch_size > 0, "bad train config");

  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<nn::Parameter*> params = model.parameters();
  nn::AdamW optimizer(nn::AdamWConfig{.lr = config.lr});

  const std::size_t steps_per_epoch =
      (train.size() + config.batch_size - 1) / config.batch_size;
  const std::size_t total_steps = steps_per_epoch * config.epochs;
  const std::size_t warmup =
      static_cast<std::size_t>(config.warmup_fraction * total_steps);
  const nn::WarmupLinearSchedule schedule(config.lr, warmup,
                                          std::max<std::size_t>(total_steps, warmup + 1));

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochCurve> curves;
  std::map<std::string, Tensor> best_snapshot;
  float best_val_loss = std::numeric_limits<float>::infinity();
  std::size_t step = 0;

  // Crash-safe checkpointing (clpp::resil): resolve config with CLPP_CKPT_*
  // fallbacks, then restore a prior run's state when one is available.
  const std::string ckpt_dir = !config.checkpoint_dir.empty()
                                   ? config.checkpoint_dir
                                   : resil::checkpoint_dir_from_env();
  const std::size_t ckpt_every = config.checkpoint_every != 0
                                     ? config.checkpoint_every
                                     : resil::checkpoint_every_from_env();
  const bool ckpt_on = !ckpt_dir.empty();
  const std::string ckpt_path = ckpt_on ? trainer_checkpoint_path(ckpt_dir) : "";

  std::size_t start_epoch = 0;
  std::size_t resume_start = 0;
  std::size_t resume_batches = 0;
  double resume_loss_sum = 0.0;
  bool resume_mid_epoch = false;
  if (ckpt_on && config.resume && resil::file_exists(ckpt_path)) {
    try {
      TrainerCheckpoint ck = load_trainer_checkpoint(ckpt_path);
      // Validate everything before mutating any training state, so a bad
      // checkpoint degrades to a clean fresh start.
      if (ck.order.size() != train.size())
        throw ParseError("trainer checkpoint row count " +
                         std::to_string(ck.order.size()) + " != dataset size " +
                         std::to_string(train.size()));
      if (ck.epoch > config.epochs)
        throw ParseError("trainer checkpoint epoch " + std::to_string(ck.epoch) +
                         " beyond configured " + std::to_string(config.epochs));
      for (const nn::Parameter* p : params) {
        const auto it = ck.params.find(p->name);
        if (it == ck.params.end())
          throw ParseError("trainer checkpoint missing parameter: " + p->name);
        if (it->second.shape() != p->value.shape())
          throw ParseError("trainer checkpoint shape mismatch for " + p->name);
      }
      optimizer.restore_state(ck.opt_steps, std::move(ck.opt_m), std::move(ck.opt_v),
                              params);
      nn::restore_parameters(ck.params, params, /*strict=*/true);
      rng.set_state(ck.rng_state);
      for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<std::size_t>(ck.order[i]);
      curves = std::move(ck.curves);
      best_val_loss = ck.best_val_loss;
      best_snapshot = std::move(ck.best_snapshot);
      step = static_cast<std::size_t>(ck.step);
      start_epoch = static_cast<std::size_t>(ck.epoch);
      resume_start = static_cast<std::size_t>(ck.next_start);
      resume_batches = static_cast<std::size_t>(ck.batches);
      resume_loss_sum = ck.loss_sum;
      resume_mid_epoch = resume_start > 0 || resume_batches > 0;
      obs::metrics().counter("clpp.resil.ckpt_resumes").add(1);
      if (obs::log_enabled(obs::LogLevel::kInfo)) {
        Json fields = Json::object();
        fields["path"] = ckpt_path;
        fields["epoch"] = static_cast<std::int64_t>(start_epoch);
        fields["next_start"] = static_cast<std::int64_t>(resume_start);
        fields["step"] = static_cast<std::int64_t>(step);
        obs::log_info("trainer", "resumed from checkpoint", std::move(fields));
      }
    } catch (const Error& e) {
      obs::metrics().counter("clpp.resil.degraded_loads").add(1);
      Json fields = Json::object();
      fields["path"] = ckpt_path;
      fields["error"] = e.what();
      obs::log_warn("trainer", "checkpoint unusable; starting fresh",
                    std::move(fields));
    }
  }

  // Snapshots the complete run state and writes it atomically; a failed
  // save is a warning, not a training abort (graceful degradation).
  const auto save_state = [&](std::uint64_t at_epoch, std::uint64_t next_start,
                              std::uint64_t done_batches, double loss_sum) {
    TrainerCheckpoint ck;
    ck.epoch = at_epoch;
    ck.next_start = next_start;
    ck.step = step;
    ck.batches = done_batches;
    ck.loss_sum = loss_sum;
    ck.rng_state = rng.state();
    ck.order.assign(order.begin(), order.end());
    ck.curves = curves;
    ck.best_val_loss = best_val_loss;
    ck.best_snapshot = best_snapshot;
    for (const nn::Parameter* p : params) ck.params.emplace(p->name, p->value);
    ck.opt_steps = optimizer.steps_taken();
    ck.opt_m = optimizer.first_moments();
    ck.opt_v = optimizer.second_moments();
    try {
      save_trainer_checkpoint(ckpt_path, ck);
    } catch (const Error& e) {
      obs::metrics().counter("clpp.resil.ckpt_save_failures").add(1);
      Json fields = Json::object();
      fields["path"] = ckpt_path;
      fields["error"] = e.what();
      obs::log_warn("trainer", "checkpoint save failed; continuing",
                    std::move(fields));
    }
  };

  obs::Gauge& loss_gauge = obs::metrics().gauge("clpp.train.loss");
  obs::Gauge& lr_gauge = obs::metrics().gauge("clpp.train.lr");
  obs::Gauge& grad_norm_gauge = obs::metrics().gauge("clpp.train.grad_norm");
  obs::Counter& batch_counter = obs::metrics().counter("clpp.train.batches");
  obs::Counter& epoch_counter = obs::metrics().counter("clpp.train.epochs");
  for (std::size_t epoch = start_epoch; epoch < config.epochs; ++epoch) {
    CLPP_TRACE_SPAN_ARG("train.epoch", epoch);
    // Hardware (or software-fallback) counters over the whole epoch; the
    // delta lands in clpp.prof.train.epoch.* and the per-epoch log line.
    prof::ScopedCounters epoch_prof(prof::counter_set("train.epoch"));
    const Stopwatch epoch_clock;
    // A mid-epoch resume keeps the checkpointed shuffle (the RNG stream was
    // captured *after* it); every other epoch shuffles as usual.
    const bool resumed_epoch = resume_mid_epoch && epoch == start_epoch;
    if (!resumed_epoch) rng.shuffle(order);
    double loss_sum = resumed_epoch ? resume_loss_sum : 0.0;
    std::size_t batches = resumed_epoch ? resume_batches : 0;
    for (std::size_t start = resumed_epoch ? resume_start : 0; start < order.size();
         start += config.batch_size) {
      CLPP_TRACE_SPAN_ARG("train.batch", batches);
      resil::fault_point("train.batch");
      const std::size_t count = std::min(config.batch_size, order.size() - start);
      const std::span<const std::size_t> idx{order.data() + start, count};
      const nn::TokenBatch batch = pack_batch(train, idx, max_seq);
      const std::vector<std::int32_t> labels = batch_labels(train, idx);

      nn::zero_gradients(params);
      Tensor out = model.logits(batch, /*train=*/true);
      nn::SoftmaxCrossEntropy loss;
      const float batch_loss = loss.forward(out, labels);
      loss_sum += batch_loss;
      ++batches;
      model.backward(loss.backward());
      const double grad_norm = nn::clip_gradient_norm(params, config.clip_norm);
      const float lr = schedule.lr_at(step++);
      optimizer.set_learning_rate(lr);
      optimizer.step(params);

      loss_gauge.set(batch_loss);
      lr_gauge.set(lr);
      grad_norm_gauge.set(grad_norm);
      batch_counter.add(1);
      if (ckpt_on && ckpt_every != 0 && batches % ckpt_every == 0)
        save_state(epoch, start + config.batch_size, batches, loss_sum);
    }
    epoch_counter.add(1);

    EpochCurve curve;
    curve.epoch = epoch;
    curve.train_loss = batches ? static_cast<float>(loss_sum / batches) : 0.0f;
    if (validation.size() > 0) {
      const auto [vloss, vacc] = evaluate_loss_accuracy(model, validation);
      curve.val_loss = vloss;
      curve.val_accuracy = vacc;
    }
    curve.wall_seconds = epoch_clock.seconds();
    curves.push_back(curve);
    if (obs::log_enabled(obs::LogLevel::kInfo)) {
      Json fields = Json::object();
      fields["epoch"] = curve.epoch;
      fields["train_loss"] = curve.train_loss;
      fields["val_loss"] = curve.val_loss;
      fields["val_accuracy"] = curve.val_accuracy;
      fields["wall_seconds"] = curve.wall_seconds;
      if (epoch_prof.active()) {
        const prof::CounterSample d = epoch_prof.delta();
        fields["hw_counters"] = d.hardware;
        if (d.hardware) {
          fields["cycles"] = static_cast<std::int64_t>(d.cycles);
          fields["instructions"] = static_cast<std::int64_t>(d.instructions);
          fields["ipc"] = d.ipc();
          fields["cache_miss_rate"] = d.cache_miss_rate();
        }
        fields["cpu_utilization"] = d.cpu_utilization();
      }
      obs::log_info("trainer", "epoch done", std::move(fields));
    }
    if (config.on_epoch) config.on_epoch(curve);
    if (on_epoch) on_epoch(curve);

    if (config.select_best_epoch && validation.size() > 0 &&
        curve.val_loss < best_val_loss) {
      best_val_loss = curve.val_loss;
      best_snapshot.clear();
      for (const nn::Parameter* p : params) best_snapshot.emplace(p->name, p->value);
    }
    if (ckpt_on) save_state(epoch + 1, 0, 0, 0.0);
  }
  if (config.select_best_epoch && !best_snapshot.empty())
    nn::restore_parameters(best_snapshot, params, /*strict=*/true);
  return curves;
}

std::pair<float, float> evaluate_loss_accuracy(PragFormer& model,
                                               const EncodedDataset& dataset,
                                               std::size_t batch_size) {
  CLPP_CHECK(dataset.size() > 0);
  CLPP_TRACE_SPAN("train.evaluate");
  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, order.size() - start);
    const std::span<const std::size_t> idx{order.data() + start, count};
    const nn::TokenBatch batch = pack_batch(dataset, idx, max_seq);
    const std::vector<std::int32_t> labels = batch_labels(dataset, idx);
    Tensor out = model.logits(batch, /*train=*/false);
    nn::SoftmaxCrossEntropy loss;
    loss_sum += loss.forward(out, labels);
    ++batches;
    const auto probs = nn::positive_probabilities(out);
    for (std::size_t i = 0; i < probs.size(); ++i)
      correct += (probs[i] > 0.5f) == (labels[i] != 0);
  }
  return {static_cast<float>(loss_sum / batches),
          static_cast<float>(correct) / static_cast<float>(dataset.size())};
}

std::vector<float> predict_dataset(PragFormer& model, const EncodedDataset& dataset,
                                   std::size_t batch_size) {
  CLPP_CHECK_MSG(dataset.size() > 0,
                 "predict_dataset: empty dataset (no rows to score)");
  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> out;
  out.reserve(dataset.size());
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, order.size() - start);
    const std::span<const std::size_t> idx{order.data() + start, count};
    const nn::TokenBatch batch = pack_batch(dataset, idx, max_seq);
    for (float p : model.predict_proba(batch)) out.push_back(p);
  }
  return out;
}

BinaryMetrics evaluate_metrics(PragFormer& model, const EncodedDataset& dataset,
                               std::size_t batch_size) {
  CLPP_CHECK_MSG(dataset.size() > 0,
                 "evaluate_metrics: empty dataset (metrics would divide by zero)");
  const std::vector<float> probs = predict_dataset(model, dataset, batch_size);
  return compute_metrics_proba(probs, dataset.labels);
}

}  // namespace clpp::core
