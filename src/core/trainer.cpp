#include "core/trainer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>

#include "nn/checkpoint.h"
#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace clpp::core {

std::vector<EpochCurve> train_classifier(
    PragFormer& model, const EncodedDataset& train, const EncodedDataset& validation,
    const TrainConfig& config, Rng& rng,
    const std::function<void(const EpochCurve&)>& on_epoch) {
  CLPP_CHECK_MSG(train.size() > 0, "empty training set");
  CLPP_CHECK_MSG(config.epochs > 0 && config.batch_size > 0, "bad train config");

  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<nn::Parameter*> params = model.parameters();
  nn::AdamW optimizer(nn::AdamWConfig{.lr = config.lr});

  const std::size_t steps_per_epoch =
      (train.size() + config.batch_size - 1) / config.batch_size;
  const std::size_t total_steps = steps_per_epoch * config.epochs;
  const std::size_t warmup =
      static_cast<std::size_t>(config.warmup_fraction * total_steps);
  const nn::WarmupLinearSchedule schedule(config.lr, warmup,
                                          std::max<std::size_t>(total_steps, warmup + 1));

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<EpochCurve> curves;
  std::map<std::string, Tensor> best_snapshot;
  float best_val_loss = std::numeric_limits<float>::infinity();
  std::size_t step = 0;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t count = std::min(config.batch_size, order.size() - start);
      const std::span<const std::size_t> idx{order.data() + start, count};
      const nn::TokenBatch batch = pack_batch(train, idx, max_seq);
      const std::vector<std::int32_t> labels = batch_labels(train, idx);

      nn::zero_gradients(params);
      Tensor out = model.logits(batch, /*train=*/true);
      nn::SoftmaxCrossEntropy loss;
      loss_sum += loss.forward(out, labels);
      ++batches;
      model.backward(loss.backward());
      nn::clip_gradient_norm(params, config.clip_norm);
      optimizer.set_learning_rate(schedule.lr_at(step++));
      optimizer.step(params);
    }

    EpochCurve curve;
    curve.epoch = epoch;
    curve.train_loss = batches ? static_cast<float>(loss_sum / batches) : 0.0f;
    if (validation.size() > 0) {
      const auto [vloss, vacc] = evaluate_loss_accuracy(model, validation);
      curve.val_loss = vloss;
      curve.val_accuracy = vacc;
    }
    curves.push_back(curve);
    if (on_epoch) on_epoch(curve);

    if (config.select_best_epoch && validation.size() > 0 &&
        curve.val_loss < best_val_loss) {
      best_val_loss = curve.val_loss;
      best_snapshot.clear();
      for (const nn::Parameter* p : params) best_snapshot.emplace(p->name, p->value);
    }
  }
  if (config.select_best_epoch && !best_snapshot.empty())
    nn::restore_parameters(best_snapshot, params, /*strict=*/true);
  return curves;
}

std::pair<float, float> evaluate_loss_accuracy(PragFormer& model,
                                               const EncodedDataset& dataset,
                                               std::size_t batch_size) {
  CLPP_CHECK(dataset.size() > 0);
  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  double loss_sum = 0.0;
  std::size_t batches = 0;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, order.size() - start);
    const std::span<const std::size_t> idx{order.data() + start, count};
    const nn::TokenBatch batch = pack_batch(dataset, idx, max_seq);
    const std::vector<std::int32_t> labels = batch_labels(dataset, idx);
    Tensor out = model.logits(batch, /*train=*/false);
    nn::SoftmaxCrossEntropy loss;
    loss_sum += loss.forward(out, labels);
    ++batches;
    const auto probs = nn::positive_probabilities(out);
    for (std::size_t i = 0; i < probs.size(); ++i)
      correct += (probs[i] > 0.5f) == (labels[i] != 0);
  }
  return {static_cast<float>(loss_sum / batches),
          static_cast<float>(correct) / static_cast<float>(dataset.size())};
}

std::vector<float> predict_dataset(PragFormer& model, const EncodedDataset& dataset,
                                   std::size_t batch_size) {
  const std::size_t max_seq = model.config().encoder.max_seq;
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<float> out;
  out.reserve(dataset.size());
  for (std::size_t start = 0; start < order.size(); start += batch_size) {
    const std::size_t count = std::min(batch_size, order.size() - start);
    const std::span<const std::size_t> idx{order.data() + start, count};
    const nn::TokenBatch batch = pack_batch(dataset, idx, max_seq);
    for (float p : model.predict_proba(batch)) out.push_back(p);
  }
  return out;
}

BinaryMetrics evaluate_metrics(PragFormer& model, const EncodedDataset& dataset,
                               std::size_t batch_size) {
  const std::vector<float> probs = predict_dataset(model, dataset, batch_size);
  return compute_metrics_proba(probs, dataset.labels);
}

}  // namespace clpp::core
