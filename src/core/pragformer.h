// PragFormer: transformer encoder + two-dense-layer classification head
// (§4 of the paper).
//
// The head follows §4.3 exactly: two dense layers with a ReLU between
// them, dropout for regularization, and a softmax over two classes. The
// encoder can be initialized fresh or restored from an MLM-pretrained
// checkpoint (the DeepSCC transfer of §4.1, reproduced in miniature).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/transformer.h"

namespace clpp::core {

/// Full model configuration.
struct PragFormerConfig {
  nn::EncoderConfig encoder;
  std::size_t head_hidden = 0;  // 0 -> encoder.dim
  float head_dropout = 0.1f;
};

/// The PragFormer classification model.
class PragFormer {
 public:
  PragFormer(const PragFormerConfig& config, Rng& rng);

  /// Computes [batch, 2] logits for a token batch.
  Tensor logits(const nn::TokenBatch& batch, bool train);

  /// Backpropagates from dL/dlogits through head and encoder.
  void backward(const Tensor& grad_logits);

  /// P(positive) per sample for a batch (eval mode).
  std::vector<float> predict_proba(const nn::TokenBatch& batch);

  /// All trainable parameters (encoder + head).
  std::vector<nn::Parameter*> parameters();

  /// Restores encoder parameters from an MLM checkpoint map (non-strict:
  /// the head stays freshly initialized). Returns #tensors restored.
  std::size_t load_pretrained_encoder(const std::map<std::string, Tensor>& checkpoint);

  nn::TransformerEncoder& encoder() { return encoder_; }
  const PragFormerConfig& config() const { return config_; }

 private:
  PragFormerConfig config_;
  nn::TransformerEncoder encoder_;
  nn::Linear head1_;
  nn::ReLU relu_;
  nn::Dropout head_drop_;
  nn::Linear head2_;
  // Geometry of the in-flight batch for backward.
  std::size_t batch_ = 0;
  std::size_t seq_ = 0;
};

}  // namespace clpp::core
