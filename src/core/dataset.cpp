#include "core/dataset.h"

#include <algorithm>

#include "support/error.h"

namespace clpp::core {

std::vector<std::vector<std::string>> tokenize_records(
    const corpus::Corpus& corpus, std::span<const std::size_t> indices,
    tokenize::Representation rep) {
  std::vector<std::vector<std::string>> out;
  out.reserve(indices.size());
  for (std::size_t i : indices)
    out.push_back(tokenize::tokenize(corpus.at(i).code, rep));
  return out;
}

EncodedDataset encode_dataset(const corpus::Corpus& corpus,
                              std::span<const std::size_t> indices, corpus::Task task,
                              tokenize::Representation rep,
                              const tokenize::Vocabulary& vocab, std::size_t max_len) {
  EncodedDataset dataset;
  dataset.sequences.reserve(indices.size());
  dataset.labels.reserve(indices.size());
  for (std::size_t i : indices) {
    const corpus::Record& record = corpus.at(i);
    std::vector<std::string> tokens;
    try {
      tokens = tokenize::tokenize(record.code, rep);
    } catch (const ParseError&) {
      continue;  // drop unparseable records (AST representations only)
    }
    dataset.sequences.push_back(vocab.encode(tokens, max_len));
    dataset.labels.push_back(static_cast<std::int32_t>(corpus::label_of(record, task)));
  }
  return dataset;
}

nn::TokenBatch pack_batch(const EncodedDataset& dataset,
                          std::span<const std::size_t> indices, std::size_t max_seq) {
  CLPP_CHECK_MSG(!indices.empty(), "empty batch");
  nn::TokenBatch batch;
  batch.batch = indices.size();
  std::size_t longest = 1;
  for (std::size_t i : indices) {
    CLPP_CHECK_MSG(i < dataset.size(), "batch index out of range");
    longest = std::max(longest, std::min(dataset.sequences[i].size(), max_seq));
  }
  batch.seq = longest;
  batch.ids.assign(batch.batch * batch.seq, tokenize::Vocabulary::kPad);
  batch.lengths.resize(batch.batch);
  for (std::size_t row = 0; row < indices.size(); ++row) {
    const auto& seq = dataset.sequences[indices[row]];
    const std::size_t len = std::min(seq.size(), max_seq);
    batch.lengths[row] = static_cast<int>(len);
    std::copy_n(seq.begin(), len, batch.ids.begin() + row * batch.seq);
  }
  return batch;
}

std::vector<std::int32_t> batch_labels(const EncodedDataset& dataset,
                                       std::span<const std::size_t> indices) {
  std::vector<std::int32_t> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(dataset.labels[i]);
  return out;
}

}  // namespace clpp::core
