// Prediction interpretability: attention maps over code tokens.
//
// §4.1 of the paper motivates self-attention by the influence one variable
// or statement exerts on another's contextualized vector. This module
// makes that inspectable: after a forward pass it extracts how much the
// classification anchor (the <cls> position, whose vector feeds the FC
// head) attends to each input token, per layer and head.
#pragma once

#include <string>
#include <vector>

#include "core/pragformer.h"
#include "tokenize/representation.h"
#include "tokenize/vocabulary.h"

namespace clpp::core {

/// Attention received by one input token from the <cls> query.
struct TokenAttention {
  std::string token;
  std::size_t position = 0;  // 0 is <cls> itself
  float weight = 0.0f;       // averaged over heads of the inspected layer
};

/// Explanation of one prediction.
struct Explanation {
  float p_positive = 0.0f;
  std::vector<std::string> tokens;          // model input, <cls> first
  std::vector<TokenAttention> attention;    // one entry per input token
  std::size_t layer = 0;                    // which encoder layer was read

  /// The `k` tokens the classifier attended to most (excluding <cls>).
  std::vector<TokenAttention> top_tokens(std::size_t k) const;

  /// Terminal rendering: tokens with attention bars.
  std::string ascii() const;
};

/// Runs `code` through `model` and reads the <cls>-row attention of the
/// last encoder layer (averaged over heads). `model` must share
/// `vocabulary`/`rep`/`max_len` with its training pipeline.
Explanation explain_prediction(PragFormer& model,
                               const tokenize::Vocabulary& vocabulary,
                               tokenize::Representation rep, std::size_t max_len,
                               const std::string& code);

}  // namespace clpp::core
