#include "core/advisor.h"

#include <fstream>
#include <functional>
#include <map>
#include <numeric>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "analysis/depend.h"
#include "frontend/parser.h"
#include "nn/checkpoint.h"
#include "obs/trace.h"
#include "resil/container.h"
#include "support/json.h"
#include "tensor/io.h"

namespace clpp::core {

ParallelAdvisor::ParallelAdvisor(std::unique_ptr<PragFormer> directive_model,
                                 std::unique_ptr<PragFormer> private_model,
                                 std::unique_ptr<PragFormer> reduction_model,
                                 tokenize::Vocabulary vocabulary,
                                 tokenize::Representation rep, std::size_t max_len)
    : directive_model_(std::move(directive_model)),
      private_model_(std::move(private_model)),
      reduction_model_(std::move(reduction_model)),
      vocab_(std::move(vocabulary)),
      rep_(rep),
      max_len_(max_len) {
  CLPP_CHECK(directive_model_ && private_model_ && reduction_model_);
}

void ParallelAdvisor::set_schedule_model(std::unique_ptr<PragFormer> schedule_model) {
  schedule_model_ = std::move(schedule_model);
}

Advice ParallelAdvisor::advise(const std::string& code) const {
  return advise(code, AdviseOptions{});
}

Advice ParallelAdvisor::advise(const std::string& code,
                               const AdviseOptions& options) const {
  return advise_batch({code}, options).front();
}

std::vector<Advice> ParallelAdvisor::advise_batch(const std::vector<std::string>& codes,
                                                  const AdviseOptions& options) const {
  return advise_batch(codes, options, nullptr);
}

std::vector<Advice> ParallelAdvisor::advise_batch(const std::vector<std::string>& codes,
                                                  const AdviseOptions& options,
                                                  BatchTiming* timing) const {
  std::vector<Advice> out(codes.size());
  if (codes.empty()) return out;
  CLPP_TRACE_SPAN_ARG("advise.batch", codes.size());

  // Stage stopwatch: reads the tracer's steady clock only when the caller
  // asked for a timing breakdown, so the plain path pays nothing.
  const auto stage_clock = [&]() -> std::uint64_t {
    return timing != nullptr ? obs::Tracer::now_ns() : 0;
  };
  const auto charge = [&](std::uint64_t BatchTiming::*slot, std::uint64_t begin_ns) {
    if (timing != nullptr) timing->*slot += obs::Tracer::now_ns() - begin_ns;
  };

  // Coalesce duplicate snippets before any tokenization or inference: advice
  // is a pure function of the code text, so identical requests in one batch
  // share a single forward pass (and a single analyzer/ComPar run) and all
  // receive copies of the same verdict. Concurrent advisor traffic is
  // duplicate-heavy — the same idiomatic loop forms recur across a codebase —
  // so this is the dominant batching win on a single core, where the
  // per-row transformer FLOPs themselves cannot be amortized.
  std::vector<std::size_t> unique_of(codes.size());
  std::vector<std::size_t> uniques;  // first-occurrence index per distinct code
  {
    std::unordered_map<std::string_view, std::size_t> first;
    first.reserve(codes.size());
    for (std::size_t i = 0; i < codes.size(); ++i) {
      const auto [it, inserted] = first.try_emplace(codes[i], uniques.size());
      if (inserted) uniques.push_back(i);
      unique_of[i] = it->second;
    }
  }
  if (timing != nullptr) {
    timing->unique_rows = uniques.size();
    timing->coalesced = codes.size() - uniques.size();
    timing->coalesced_of.assign(codes.size(), 0);
    for (std::size_t i = 0; i < codes.size(); ++i)
      if (uniques[unique_of[i]] != i) timing->coalesced_of[i] = 1;
  }
  std::vector<Advice> advices(uniques.size());

  // Encode every distinct snippet once, then bucket by exact encoded length:
  // a bucket packs into a TokenBatch with zero padding, so no FLOPs are
  // spent on pad positions and — because every NN kernel computes batch rows
  // independently, in the same order — each row's verdict is bitwise equal
  // to a batch-of-one forward.
  std::vector<std::vector<std::int32_t>> encoded(uniques.size());
  const std::uint64_t encode_begin = stage_clock();
  for (std::size_t u = 0; u < uniques.size(); ++u)
    encoded[u] = vocab_.encode(tokenize::tokenize(codes[uniques[u]], rep_), max_len_);
  charge(&BatchTiming::encode_ns, encode_begin);

  // Runs `model` over `subset` (indices into codes), one forward per
  // length-bucket, and writes each probability via `sink(index, p)`.
  const auto score_subset = [&](PragFormer& model,
                                const std::vector<std::size_t>& subset,
                                const std::function<void(std::size_t, float)>& sink) {
    std::map<std::size_t, std::vector<std::size_t>> buckets;
    for (std::size_t i : subset) buckets[encoded[i].size()].push_back(i);
    for (const auto& [len, members] : buckets) {
      nn::TokenBatch batch;
      batch.batch = members.size();
      batch.seq = len;
      batch.ids.reserve(members.size() * len);
      batch.lengths.reserve(members.size());
      for (std::size_t i : members) {
        batch.ids.insert(batch.ids.end(), encoded[i].begin(), encoded[i].end());
        batch.lengths.push_back(static_cast<int>(len));
      }
      const std::vector<float> probs = model.predict_proba(batch);
      for (std::size_t k = 0; k < members.size(); ++k) sink(members[k], probs[k]);
    }
  };

  std::vector<std::size_t> all(uniques.size());
  std::iota(all.begin(), all.end(), 0);
  const std::uint64_t directive_begin = stage_clock();
  score_subset(*directive_model_, all, [&](std::size_t i, float p) {
    advices[i].p_directive = p;
    advices[i].needs_directive = p > 0.5f;
  });
  charge(&BatchTiming::directive_ns, directive_begin);

  // The clause/schedule models only run for snippets the directive model
  // marked positive — exactly the sequential path's conditional scoring.
  std::vector<std::size_t> positive;
  for (std::size_t i = 0; i < advices.size(); ++i)
    if (advices[i].needs_directive) positive.push_back(i);
  if (!positive.empty()) {
    const std::uint64_t private_begin = stage_clock();
    score_subset(*private_model_, positive, [&](std::size_t i, float p) {
      advices[i].p_private = p;
      advices[i].needs_private = p > 0.5f;
    });
    charge(&BatchTiming::private_ns, private_begin);
    const std::uint64_t reduction_begin = stage_clock();
    score_subset(*reduction_model_, positive, [&](std::size_t i, float p) {
      advices[i].p_reduction = p;
      advices[i].needs_reduction = p > 0.5f;
    });
    charge(&BatchTiming::reduction_ns, reduction_begin);
    if (schedule_model_) {
      const std::uint64_t schedule_begin = stage_clock();
      score_subset(*schedule_model_, positive, [&](std::size_t i, float p) {
        advices[i].p_dynamic = p;
        advices[i].wants_dynamic_schedule = p > 0.5f;
      });
      charge(&BatchTiming::schedule_ns, schedule_begin);
    }
  }

  // Deterministic per-snippet machinery (proof cross-check, clause naming,
  // ComPar comparison), still once per *distinct* snippet.
  const std::uint64_t extras_begin = stage_clock();
  for (std::size_t u = 0; u < uniques.size(); ++u) {
    const std::string& code = codes[uniques[u]];
    Advice& advice = advices[u];

    // Run the dependence analyzer on every distinct snippet — not only
    // directive-positive ones — so insight can compare model verdicts
    // against exact static proofs in both directions. The same verdict
    // names the clause variables for suggested pragmas.
    std::optional<analysis::LoopVerdict> verdict;
    if (options.with_analysis) {
      try {
        const frontend::NodePtr unit = frontend::parse_snippet(code);
        const frontend::Node* loop = s2s::find_target_loop(*unit);
        if (loop) {
          analysis::SideEffectOracle oracle(*unit);
          analysis::AnalyzerOptions analyzer_options;
          analyzer_options.assume_unknown_calls_pure = true;  // the model already decided
          analyzer_options.bail_on_struct_access = false;
          analyzer_options.recognize_minmax_reduction = true;
          verdict =
              analysis::DependenceAnalyzer(oracle, analyzer_options).analyze(*loop);
          if (!verdict->canonical || verdict->bailed || !verdict->exact())
            advice.proof = insight::ProofVerdict::kInconclusive;
          else if (verdict->parallelizable)
            advice.proof = insight::ProofVerdict::kParallel;
          else if (!verdict->dependences.empty())
            advice.proof = insight::ProofVerdict::kDependent;
          else
            advice.proof = insight::ProofVerdict::kInconclusive;
        }
      } catch (const ParseError&) {
        // Unparseable code still gets the bare suggestion below.
      }
    }

    if (advice.needs_directive) {
      frontend::OmpDirective directive;
      directive.parallel = true;
      directive.for_loop = true;
      if (advice.wants_dynamic_schedule)
        directive.schedule = frontend::ScheduleKind::kDynamic;
      if (verdict) {
        if (advice.needs_private) directive.private_vars = verdict->private_candidates;
        if (advice.needs_reduction) directive.reductions = verdict->reductions;
      }
      advice.suggestion = directive.to_string();
    }

    if (options.with_compar) {
      const s2s::ComPar compar;
      const s2s::ComParResult result = compar.process_source(code);
      if (result.predicts_directive())
        advice.compar_suggestion = result.combined.directive->to_string();
    }
  }
  charge(&BatchTiming::extras_ns, extras_begin);

  // Fan the per-unique verdicts back out to every request position.
  for (std::size_t i = 0; i < codes.size(); ++i) out[i] = advices[unique_of[i]];
  return out;
}

namespace {

// v2 appends the training-corpus fingerprint after the schedule flag; v1
// files (no fingerprint) stay loadable.
constexpr char kAdvisorMagic[] = "CLPPADV2";
constexpr char kAdvisorMagicV1[] = "CLPPADV1";

Json config_to_json(const PragFormerConfig& config) {
  Json obj = Json::object();
  obj["vocab_size"] = Json{config.encoder.vocab_size};
  obj["max_seq"] = Json{config.encoder.max_seq};
  obj["dim"] = Json{config.encoder.dim};
  obj["heads"] = Json{config.encoder.heads};
  obj["layers"] = Json{config.encoder.layers};
  obj["ffn_dim"] = Json{config.encoder.ffn_dim};
  obj["dropout"] = Json{static_cast<double>(config.encoder.dropout)};
  obj["head_hidden"] = Json{config.head_hidden};
  obj["head_dropout"] = Json{static_cast<double>(config.head_dropout)};
  return obj;
}

PragFormerConfig config_from_json(const Json& obj) {
  PragFormerConfig config;
  config.encoder.vocab_size = static_cast<std::size_t>(obj.at("vocab_size").as_int());
  config.encoder.max_seq = static_cast<std::size_t>(obj.at("max_seq").as_int());
  config.encoder.dim = static_cast<std::size_t>(obj.at("dim").as_int());
  config.encoder.heads = static_cast<std::size_t>(obj.at("heads").as_int());
  config.encoder.layers = static_cast<std::size_t>(obj.at("layers").as_int());
  config.encoder.ffn_dim = static_cast<std::size_t>(obj.at("ffn_dim").as_int());
  config.encoder.dropout = static_cast<float>(obj.at("dropout").as_double());
  config.head_hidden = static_cast<std::size_t>(obj.at("head_hidden").as_int());
  config.head_dropout = static_cast<float>(obj.at("head_dropout").as_double());
  return config;
}

void write_model(std::ostream& out, PragFormer& model) {
  write_string(out, config_to_json(model.config()).dump());
  const auto params = model.parameters();
  write_u64(out, params.size());
  for (const nn::Parameter* p : params) {
    write_string(out, p->name);
    write_tensor(out, p->value);
  }
}

std::unique_ptr<PragFormer> read_model(std::istream& in) {
  const PragFormerConfig config = config_from_json(Json::parse(read_string(in)));
  // Weights are fully overwritten below; the init RNG seed is irrelevant.
  Rng rng(0);
  auto model = std::make_unique<PragFormer>(config, rng);
  const std::uint64_t count = read_u64(in);
  std::map<std::string, Tensor> checkpoint;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    checkpoint.emplace(std::move(name), read_tensor(in));
  }
  const auto params = model->parameters();
  const std::size_t restored = nn::restore_parameters(checkpoint, params, true);
  CLPP_CHECK_MSG(restored == params.size(), "advisor checkpoint incomplete");
  return model;
}

}  // namespace

std::string ParallelAdvisor::serialize() const {
  std::ostringstream out;
  write_string(out, kAdvisorMagic);
  write_string(out, tokenize::representation_name(rep_));
  write_u64(out, max_len_);
  write_u64(out, schedule_model_ ? 1 : 0);
  write_string(out, fingerprint_.to_json().dump());
  const auto& tokens = vocab_.tokens();
  write_u64(out, tokens.size());
  for (const std::string& token : tokens) write_string(out, token);
  write_model(out, *directive_model_);
  write_model(out, *private_model_);
  write_model(out, *reduction_model_);
  if (schedule_model_) write_model(out, *schedule_model_);
  return std::move(out).str();
}

void ParallelAdvisor::save(const std::string& path) const {
  resil::write_container(path, serialize());
}

namespace {

ParallelAdvisor load_advisor_stream(std::istream& in, const std::string& path) {
  const std::string magic = read_string(in);
  if (magic != kAdvisorMagic && magic != kAdvisorMagicV1)
    throw ParseError("not a CLPP advisor file: " + path);
  const tokenize::Representation rep =
      tokenize::representation_from(read_string(in));
  const std::size_t max_len = static_cast<std::size_t>(read_u64(in));
  const bool has_schedule = read_u64(in) != 0;
  insight::Fingerprint fingerprint;
  if (magic == kAdvisorMagic)
    fingerprint = insight::Fingerprint::from_json(Json::parse(read_string(in)));
  const std::uint64_t token_count = read_u64(in);
  if (token_count > 10'000'000) throw ParseError("implausible vocabulary size");
  std::vector<std::string> tokens;
  tokens.reserve(token_count);
  for (std::uint64_t i = 0; i < token_count; ++i) tokens.push_back(read_string(in));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::from_tokens(std::move(tokens));

  auto directive = read_model(in);
  auto private_model = read_model(in);
  auto reduction = read_model(in);
  ParallelAdvisor advisor(std::move(directive), std::move(private_model),
                          std::move(reduction), std::move(vocab), rep, max_len);
  advisor.set_fingerprint(std::move(fingerprint));
  if (has_schedule) advisor.set_schedule_model(read_model(in));
  return advisor;
}

}  // namespace

ParallelAdvisor ParallelAdvisor::load(const std::string& path) {
  if (resil::is_container_file(path)) {
    const std::string payload = resil::read_container(path);
    std::istringstream in(payload);
    return load_advisor_stream(in, path);
  }
  // Legacy (pre-container) advisor files stay loadable.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open advisor file: " + path);
  return load_advisor_stream(in, path);
}

ParallelAdvisor ParallelAdvisor::deserialize(const std::string& payload) {
  std::istringstream in(payload);
  return load_advisor_stream(in, "<memory>");
}

std::unique_ptr<ParallelAdvisor> ParallelAdvisor::clone() const {
  return std::make_unique<ParallelAdvisor>(deserialize(serialize()));
}

Explanation ParallelAdvisor::explain(const std::string& code) const {
  return explain_prediction(*directive_model_, vocab_, rep_, max_len_, code);
}

ParallelAdvisor ParallelAdvisor::train(PipelineConfig config) {
  Pipeline pipeline(std::move(config));
  TaskRun directive = pipeline.train_task(corpus::Task::kDirective);
  TaskRun private_run = pipeline.train_task(corpus::Task::kPrivate);
  TaskRun reduction = pipeline.train_task(corpus::Task::kReduction);
  TaskRun schedule = pipeline.train_task(corpus::Task::kSchedule);
  ParallelAdvisor advisor(std::move(directive.model), std::move(private_run.model),
                          std::move(reduction.model), pipeline.vocabulary(),
                          pipeline.config().representation,
                          pipeline.config().max_len);
  advisor.set_schedule_model(std::move(schedule.model));
  // Checkpoint the training distribution as the drift-detection reference.
  insight::FingerprintBuilder fingerprint;
  for (const corpus::Record& record : pipeline.corpus().records())
    fingerprint.observe(record.code);
  advisor.set_fingerprint(fingerprint.build());
  return advisor;
}

}  // namespace clpp::core
