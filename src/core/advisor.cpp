#include "core/advisor.h"

#include <fstream>
#include <sstream>

#include "analysis/depend.h"
#include "frontend/parser.h"
#include "nn/checkpoint.h"
#include "resil/container.h"
#include "support/json.h"
#include "tensor/io.h"

namespace clpp::core {

ParallelAdvisor::ParallelAdvisor(std::unique_ptr<PragFormer> directive_model,
                                 std::unique_ptr<PragFormer> private_model,
                                 std::unique_ptr<PragFormer> reduction_model,
                                 tokenize::Vocabulary vocabulary,
                                 tokenize::Representation rep, std::size_t max_len)
    : directive_model_(std::move(directive_model)),
      private_model_(std::move(private_model)),
      reduction_model_(std::move(reduction_model)),
      vocab_(std::move(vocabulary)),
      rep_(rep),
      max_len_(max_len) {
  CLPP_CHECK(directive_model_ && private_model_ && reduction_model_);
}

void ParallelAdvisor::set_schedule_model(std::unique_ptr<PragFormer> schedule_model) {
  schedule_model_ = std::move(schedule_model);
}

float ParallelAdvisor::score(const PragFormer& model, const std::string& code) const {
  const auto tokens = tokenize::tokenize(code, rep_);
  const auto encoded = vocab_.encode(tokens, max_len_);
  nn::TokenBatch batch;
  batch.batch = 1;
  batch.seq = encoded.size();
  batch.ids = encoded;
  batch.lengths = {static_cast<int>(encoded.size())};
  // predict_proba is stateful (caches activations) but logically const here.
  return const_cast<PragFormer&>(model).predict_proba(batch)[0];
}

Advice ParallelAdvisor::advise(const std::string& code) const {
  Advice advice;
  advice.p_directive = score(*directive_model_, code);
  advice.needs_directive = advice.p_directive > 0.5f;
  if (advice.needs_directive) {
    advice.p_private = score(*private_model_, code);
    advice.p_reduction = score(*reduction_model_, code);
    advice.needs_private = advice.p_private > 0.5f;
    advice.needs_reduction = advice.p_reduction > 0.5f;
    if (schedule_model_) {
      advice.p_dynamic = score(*schedule_model_, code);
      advice.wants_dynamic_schedule = advice.p_dynamic > 0.5f;
    }

    // Ask the dependence analyzer to *name* the clause variables.
    frontend::OmpDirective directive;
    directive.parallel = true;
    directive.for_loop = true;
    if (advice.wants_dynamic_schedule)
      directive.schedule = frontend::ScheduleKind::kDynamic;
    try {
      const frontend::NodePtr unit = frontend::parse_snippet(code);
      const frontend::Node* loop = s2s::find_target_loop(*unit);
      if (loop) {
        analysis::SideEffectOracle oracle(*unit);
        analysis::AnalyzerOptions options;
        options.assume_unknown_calls_pure = true;  // the model already decided
        options.bail_on_struct_access = false;
        options.recognize_minmax_reduction = true;
        const analysis::LoopVerdict verdict =
            analysis::DependenceAnalyzer(oracle, options).analyze(*loop);
        if (advice.needs_private) directive.private_vars = verdict.private_candidates;
        if (advice.needs_reduction) directive.reductions = verdict.reductions;
      }
    } catch (const ParseError&) {
      // Unparseable code still gets the bare suggestion below.
    }
    advice.suggestion = directive.to_string();
  }

  const s2s::ComPar compar;
  const s2s::ComParResult result = compar.process_source(code);
  if (result.predicts_directive())
    advice.compar_suggestion = result.combined.directive->to_string();
  return advice;
}

namespace {

constexpr char kAdvisorMagic[] = "CLPPADV1";

Json config_to_json(const PragFormerConfig& config) {
  Json obj = Json::object();
  obj["vocab_size"] = Json{config.encoder.vocab_size};
  obj["max_seq"] = Json{config.encoder.max_seq};
  obj["dim"] = Json{config.encoder.dim};
  obj["heads"] = Json{config.encoder.heads};
  obj["layers"] = Json{config.encoder.layers};
  obj["ffn_dim"] = Json{config.encoder.ffn_dim};
  obj["dropout"] = Json{static_cast<double>(config.encoder.dropout)};
  obj["head_hidden"] = Json{config.head_hidden};
  obj["head_dropout"] = Json{static_cast<double>(config.head_dropout)};
  return obj;
}

PragFormerConfig config_from_json(const Json& obj) {
  PragFormerConfig config;
  config.encoder.vocab_size = static_cast<std::size_t>(obj.at("vocab_size").as_int());
  config.encoder.max_seq = static_cast<std::size_t>(obj.at("max_seq").as_int());
  config.encoder.dim = static_cast<std::size_t>(obj.at("dim").as_int());
  config.encoder.heads = static_cast<std::size_t>(obj.at("heads").as_int());
  config.encoder.layers = static_cast<std::size_t>(obj.at("layers").as_int());
  config.encoder.ffn_dim = static_cast<std::size_t>(obj.at("ffn_dim").as_int());
  config.encoder.dropout = static_cast<float>(obj.at("dropout").as_double());
  config.head_hidden = static_cast<std::size_t>(obj.at("head_hidden").as_int());
  config.head_dropout = static_cast<float>(obj.at("head_dropout").as_double());
  return config;
}

void write_model(std::ostream& out, PragFormer& model) {
  write_string(out, config_to_json(model.config()).dump());
  const auto params = model.parameters();
  write_u64(out, params.size());
  for (const nn::Parameter* p : params) {
    write_string(out, p->name);
    write_tensor(out, p->value);
  }
}

std::unique_ptr<PragFormer> read_model(std::istream& in) {
  const PragFormerConfig config = config_from_json(Json::parse(read_string(in)));
  // Weights are fully overwritten below; the init RNG seed is irrelevant.
  Rng rng(0);
  auto model = std::make_unique<PragFormer>(config, rng);
  const std::uint64_t count = read_u64(in);
  std::map<std::string, Tensor> checkpoint;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    checkpoint.emplace(std::move(name), read_tensor(in));
  }
  const auto params = model->parameters();
  const std::size_t restored = nn::restore_parameters(checkpoint, params, true);
  CLPP_CHECK_MSG(restored == params.size(), "advisor checkpoint incomplete");
  return model;
}

}  // namespace

void ParallelAdvisor::save(const std::string& path) const {
  std::ostringstream out;
  write_string(out, kAdvisorMagic);
  write_string(out, tokenize::representation_name(rep_));
  write_u64(out, max_len_);
  write_u64(out, schedule_model_ ? 1 : 0);
  const auto& tokens = vocab_.tokens();
  write_u64(out, tokens.size());
  for (const std::string& token : tokens) write_string(out, token);
  write_model(out, *directive_model_);
  write_model(out, *private_model_);
  write_model(out, *reduction_model_);
  if (schedule_model_) write_model(out, *schedule_model_);
  resil::write_container(path, out.view());
}

namespace {

ParallelAdvisor load_advisor_stream(std::istream& in, const std::string& path) {
  if (read_string(in) != kAdvisorMagic)
    throw ParseError("not a CLPP advisor file: " + path);
  const tokenize::Representation rep =
      tokenize::representation_from(read_string(in));
  const std::size_t max_len = static_cast<std::size_t>(read_u64(in));
  const bool has_schedule = read_u64(in) != 0;
  const std::uint64_t token_count = read_u64(in);
  if (token_count > 10'000'000) throw ParseError("implausible vocabulary size");
  std::vector<std::string> tokens;
  tokens.reserve(token_count);
  for (std::uint64_t i = 0; i < token_count; ++i) tokens.push_back(read_string(in));
  tokenize::Vocabulary vocab = tokenize::Vocabulary::from_tokens(std::move(tokens));

  auto directive = read_model(in);
  auto private_model = read_model(in);
  auto reduction = read_model(in);
  ParallelAdvisor advisor(std::move(directive), std::move(private_model),
                          std::move(reduction), std::move(vocab), rep, max_len);
  if (has_schedule) advisor.set_schedule_model(read_model(in));
  return advisor;
}

}  // namespace

ParallelAdvisor ParallelAdvisor::load(const std::string& path) {
  if (resil::is_container_file(path)) {
    const std::string payload = resil::read_container(path);
    std::istringstream in(payload);
    return load_advisor_stream(in, path);
  }
  // Legacy (pre-container) advisor files stay loadable.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open advisor file: " + path);
  return load_advisor_stream(in, path);
}

Explanation ParallelAdvisor::explain(const std::string& code) const {
  return explain_prediction(*directive_model_, vocab_, rep_, max_len_, code);
}

ParallelAdvisor ParallelAdvisor::train(PipelineConfig config) {
  Pipeline pipeline(std::move(config));
  TaskRun directive = pipeline.train_task(corpus::Task::kDirective);
  TaskRun private_run = pipeline.train_task(corpus::Task::kPrivate);
  TaskRun reduction = pipeline.train_task(corpus::Task::kReduction);
  TaskRun schedule = pipeline.train_task(corpus::Task::kSchedule);
  ParallelAdvisor advisor(std::move(directive.model), std::move(private_run.model),
                          std::move(reduction.model), pipeline.vocabulary(),
                          pipeline.config().representation,
                          pipeline.config().max_len);
  advisor.set_schedule_model(std::move(schedule.model));
  return advisor;
}

}  // namespace clpp::core
