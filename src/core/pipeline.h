// End-to-end experiment pipeline: corpus -> vocab -> (MLM) -> PragFormer,
// plus the BoW and ComPar competitors, evaluated the way §5 does.
#pragma once

#include <memory>
#include <optional>

#include "baselines/bow.h"
#include "codegen/generator.h"
#include "core/trainer.h"
#include "nn/mlm.h"
#include "s2s/compar.h"

namespace clpp::core {

/// Everything one experiment run needs to be reproducible.
struct PipelineConfig {
  codegen::GeneratorConfig generator;               // corpus shape
  tokenize::Representation representation = tokenize::Representation::kText;
  std::size_t max_len = 110;                        // §4.3: longest snippet
  nn::EncoderConfig encoder{.vocab_size = 0,        // filled from the vocab
                            .max_seq = 110,
                            .dim = 64,
                            .heads = 4,
                            .layers = 2,
                            .ffn_dim = 128,
                            .dropout = 0.1f};
  /// `train.checkpoint_dir` (or CLPP_CKPT_DIR) is scoped per task by
  /// train_task: checkpoints land in `<dir>/<task_name>/` so the four
  /// sequentially trained task models never share (or wrongly resume from)
  /// one trainer.ckpt.
  TrainConfig train{.epochs = 10, .batch_size = 32, .lr = 5e-4f};
  bool mlm_pretrain = true;                         // DeepSCC stand-in
  nn::MlmConfig mlm{.epochs = 2, .batch_size = 32, .lr = 5e-4f};
  /// Optional on-disk cache for the MLM pretraining checkpoint. When set,
  /// mlm_checkpoint() loads it instead of pretraining; a corrupt,
  /// truncated, or unreadable file degrades to recomputation with a
  /// structured warning (clpp.resil.degraded_loads) instead of aborting,
  /// and the recomputed checkpoint is rewritten atomically.
  std::string mlm_cache_path;
  std::uint64_t split_seed = 7;
  std::uint64_t model_seed = 13;
};

/// Trained model + datasets + curves for one task.
struct TaskRun {
  EncodedDataset train;
  EncodedDataset validation;
  EncodedDataset test;
  corpus::Split split;  // indices into the corpus, aligned with datasets
  std::unique_ptr<PragFormer> model;
  std::vector<EpochCurve> curves;

  BinaryMetrics test_metrics() const;
};

/// ComPar evaluation outcome for one task (§5.2 fallback-negative policy).
struct ComParEval {
  BinaryMetrics metrics;
  std::size_t compile_failures = 0;
  std::size_t total = 0;
};

/// The experiment pipeline. Construction generates the corpus and builds
/// the vocabulary on the training split of the directive task; everything
/// downstream shares both.
class Pipeline {
 public:
  explicit Pipeline(PipelineConfig config);

  const PipelineConfig& config() const { return config_; }
  const corpus::Corpus& corpus() const { return corpus_; }
  const tokenize::Vocabulary& vocabulary() const { return vocab_; }

  /// Pretrains an MLM encoder checkpoint over the full (unlabeled) corpus;
  /// cached after the first call. Returns the parameter map.
  const std::map<std::string, Tensor>& mlm_checkpoint();

  /// Trains PragFormer for `task`; `epochs_override` > 0 replaces the
  /// configured epoch count (used by the representation study).
  TaskRun train_task(corpus::Task task, std::size_t epochs_override = 0);

  /// BoW + logistic baseline for `task` (same splits as train_task).
  BinaryMetrics bow_metrics(corpus::Task task);

  /// ComPar on the test split of `task`, compile failures counting as
  /// negative predictions (§5.2).
  ComParEval compar_metrics(corpus::Task task);

  /// The split used for `task` (deterministic per pipeline).
  const corpus::Split& split_for(corpus::Task task);

 private:
  PipelineConfig config_;
  corpus::Corpus corpus_;
  tokenize::Vocabulary vocab_;
  std::map<corpus::Task, corpus::Split> splits_;
  std::optional<std::map<std::string, Tensor>> mlm_checkpoint_;
};

}  // namespace clpp::core
