// Binary classification metrics (precision / recall / F1, §5 of the paper).
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace clpp::core {

/// Confusion-matrix counts and the derived metrics the paper reports.
struct BinaryMetrics {
  std::size_t tp = 0, fp = 0, tn = 0, fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
  double precision() const { return tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp); }
  double recall() const { return tp + fn == 0 ? 0.0 : double(tp) / double(tp + fn); }
  double f1() const {
    const double p = precision();
    const double r = recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  double accuracy() const {
    return total() == 0 ? 0.0 : double(tp + tn) / double(total());
  }

  /// Adds one (prediction, truth) observation.
  void add(bool predicted, bool actual);

  /// One-line summary for logs.
  std::string summary() const;
};

/// Metrics from parallel prediction/label arrays (values in {0, 1}).
BinaryMetrics compute_metrics(std::span<const int> predictions,
                              std::span<const int> labels);

/// Metrics from probabilities at the paper's 0.5 threshold.
BinaryMetrics compute_metrics_proba(std::span<const float> probabilities,
                                    std::span<const std::int32_t> labels,
                                    float threshold = 0.5f);

}  // namespace clpp::core
