#include "core/pipeline.h"

#include <filesystem>
#include <numeric>
#include <system_error>

#include "nn/checkpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resil/resil.h"

namespace clpp::core {

using corpus::Task;

namespace {
corpus::Corpus generate_traced(const codegen::GeneratorConfig& config) {
  CLPP_TRACE_SPAN("pipeline.generate");
  return codegen::generate_corpus(config);
}
}  // namespace

BinaryMetrics TaskRun::test_metrics() const {
  CLPP_CHECK_MSG(model != nullptr, "task has no trained model");
  CLPP_TRACE_SPAN("pipeline.evaluate");
  return evaluate_metrics(*model, test);
}

Pipeline::Pipeline(PipelineConfig config)
    : config_(std::move(config)), corpus_(generate_traced(config_.generator)) {
  // Vocabulary is built on the *training* records of the directive task
  // (Table 6's "train vocab"), under the configured representation.
  CLPP_TRACE_SPAN("pipeline.tokenize");
  const corpus::Split& split = split_for(Task::kDirective);
  const auto docs = tokenize_records(corpus_, split.train, config_.representation);
  vocab_ = tokenize::Vocabulary::build(docs);
  obs::log_info("pipeline", "vocabulary built",
                [&] {
                  Json fields = Json::object();
                  fields["corpus_size"] = corpus_.size();
                  fields["vocab_size"] = vocab_.size();
                  return fields;
                }());
}

const corpus::Split& Pipeline::split_for(Task task) {
  auto it = splits_.find(task);
  if (it != splits_.end()) return it->second;
  // Derive a task-specific but run-deterministic split seed.
  Rng rng(config_.split_seed * 1000003ULL + static_cast<std::uint64_t>(task));
  return splits_.emplace(task, corpus::make_split(corpus_, task, rng)).first->second;
}

const std::map<std::string, Tensor>& Pipeline::mlm_checkpoint() {
  if (mlm_checkpoint_) return *mlm_checkpoint_;
  if (!config_.mlm_cache_path.empty() && resil::file_exists(config_.mlm_cache_path)) {
    try {
      auto cached = nn::load_checkpoint(config_.mlm_cache_path);
      if (cached.empty()) throw ParseError("MLM cache holds no tensors");
      Json fields = Json::object();
      fields["path"] = config_.mlm_cache_path;
      fields["tensors"] = cached.size();
      obs::log_info("pipeline", "MLM checkpoint loaded from cache", std::move(fields));
      mlm_checkpoint_ = std::move(cached);
      return *mlm_checkpoint_;
    } catch (const Error& e) {
      obs::metrics().counter("clpp.resil.degraded_loads").add(1);
      Json fields = Json::object();
      fields["path"] = config_.mlm_cache_path;
      fields["error"] = e.what();
      obs::log_warn("pipeline", "MLM cache unusable; pretraining from scratch",
                    std::move(fields));
    }
  }
  CLPP_TRACE_SPAN("pipeline.mlm_pretrain");

  Rng rng(config_.model_seed ^ 0x11117777ULL);
  nn::EncoderConfig cfg = config_.encoder;
  cfg.vocab_size = vocab_.size();
  cfg.max_seq = config_.max_len;
  nn::TransformerEncoder encoder(cfg, rng);

  // Pretrain on every snippet in the corpus — MLM is self-supervised, so
  // using unlabeled validation/test *code* mirrors DeepSCC's setting of
  // pretraining on a large unlabeled source corpus.
  std::vector<std::vector<std::int32_t>> sequences;
  sequences.reserve(corpus_.size());
  for (const auto& record : corpus_.records()) {
    const auto tokens = tokenize::tokenize(record.code, config_.representation);
    auto encoded = vocab_.encode(tokens, config_.max_len);
    if (encoded.size() >= 2) sequences.push_back(std::move(encoded));
  }
  nn::MlmVocabInfo vocab_info{.mask_id = tokenize::Vocabulary::kMask,
                              .special_below = tokenize::Vocabulary::kSpecialCount,
                              .vocab_size = vocab_.size()};
  pretrain_mlm(encoder, sequences, vocab_info, config_.mlm, rng);

  std::vector<nn::Parameter*> params;
  encoder.collect_parameters(params);
  std::map<std::string, Tensor> checkpoint;
  for (const nn::Parameter* p : params) checkpoint.emplace(p->name, p->value);
  mlm_checkpoint_ = std::move(checkpoint);
  if (!config_.mlm_cache_path.empty()) {
    // Cache write failures degrade to a warning: the in-memory checkpoint
    // is valid either way.
    try {
      nn::save_checkpoint(config_.mlm_cache_path, params);
    } catch (const Error& e) {
      Json fields = Json::object();
      fields["path"] = config_.mlm_cache_path;
      fields["error"] = e.what();
      obs::log_warn("pipeline", "MLM cache write failed", std::move(fields));
    }
  }
  return *mlm_checkpoint_;
}

TaskRun Pipeline::train_task(Task task, std::size_t epochs_override) {
  CLPP_TRACE_SPAN_ARG("pipeline.train_task", static_cast<int>(task));
  const corpus::Split& split = split_for(task);

  TaskRun run;
  run.split = split;
  {
    CLPP_TRACE_SPAN("pipeline.encode");
    run.train = encode_dataset(corpus_, split.train, task, config_.representation,
                               vocab_, config_.max_len);
    run.validation = encode_dataset(corpus_, split.validation, task,
                                    config_.representation, vocab_, config_.max_len);
    run.test = encode_dataset(corpus_, split.test, task, config_.representation,
                              vocab_, config_.max_len);
  }

  PragFormerConfig model_config;
  model_config.encoder = config_.encoder;
  model_config.encoder.vocab_size = vocab_.size();
  model_config.encoder.max_seq = config_.max_len;

  Rng rng(config_.model_seed + static_cast<std::uint64_t>(task) * 97);
  run.model = std::make_unique<PragFormer>(model_config, rng);
  if (config_.mlm_pretrain) run.model->load_pretrained_encoder(mlm_checkpoint());

  TrainConfig train_config = config_.train;
  if (epochs_override > 0) train_config.epochs = epochs_override;
  // Scope the checkpoint directory per task: the four task models train
  // sequentially in one process, and sharing one trainer.ckpt would let a
  // later task "resume" from an earlier task's finished run.
  const std::string ckpt_root = !train_config.checkpoint_dir.empty()
                                    ? train_config.checkpoint_dir
                                    : resil::checkpoint_dir_from_env();
  if (!ckpt_root.empty()) {
    train_config.checkpoint_dir = ckpt_root + "/" + corpus::task_name(task);
    std::error_code ec;
    std::filesystem::create_directories(train_config.checkpoint_dir, ec);
    // A failed mkdir is not fatal: saves into the missing directory warn
    // and training continues (the resil degrade discipline).
  }
  {
    CLPP_TRACE_SPAN("pipeline.train");
    run.curves =
        train_classifier(*run.model, run.train, run.validation, train_config, rng);
  }
  return run;
}

BinaryMetrics Pipeline::bow_metrics(Task task) {
  const corpus::Split& split = split_for(task);
  const auto featurize = [&](std::span<const std::size_t> indices,
                             std::vector<baselines::SparseVector>& xs,
                             std::vector<std::int32_t>& ys) {
    for (std::size_t i : indices) {
      const auto tokens =
          tokenize::tokenize(corpus_.at(i).code, config_.representation);
      xs.push_back(baselines::bow_features(tokens, vocab_));
      ys.push_back(static_cast<std::int32_t>(corpus::label_of(corpus_.at(i), task)));
    }
  };

  std::vector<baselines::SparseVector> train_x, test_x;
  std::vector<std::int32_t> train_y, test_y;
  featurize(split.train, train_x, train_y);
  featurize(split.test, test_x, test_y);

  baselines::LogisticRegression model(vocab_.size());
  Rng rng(config_.model_seed ^ 0xB0B0ULL);
  model.train(train_x, train_y, baselines::LogisticConfig{}, rng);

  BinaryMetrics metrics;
  for (std::size_t i = 0; i < test_x.size(); ++i)
    metrics.add(model.predict(test_x[i]) != 0, test_y[i] != 0);
  return metrics;
}

ComParEval Pipeline::compar_metrics(Task task) {
  const corpus::Split& split = split_for(task);
  const s2s::ComPar compar;
  ComParEval eval;
  eval.total = split.test.size();
  for (std::size_t i : split.test) {
    const corpus::Record& record = corpus_.at(i);
    const s2s::ComParResult result = compar.process_source(record.code);
    if (result.compile_failed()) ++eval.compile_failures;
    bool predicted = false;
    switch (task) {
      case Task::kDirective: predicted = result.predicts_directive(); break;
      case Task::kPrivate: predicted = result.predicts_private(); break;
      case Task::kReduction: predicted = result.predicts_reduction(); break;
      case Task::kSchedule:
        predicted = result.combined.parallelized() &&
                    result.combined.directive->schedule ==
                        frontend::ScheduleKind::kDynamic;
        break;
    }
    eval.metrics.add(predicted, corpus::label_of(record, task) != 0);
  }
  return eval;
}

}  // namespace clpp::core
