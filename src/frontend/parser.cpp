#include "frontend/parser.h"

#include <array>
#include <set>

#include "frontend/lexer.h"
#include "support/error.h"

namespace clpp::frontend {

namespace {

/// Names treated as type names in addition to keywords (common typedefs in
/// HPC snippets).
const std::set<std::string, std::less<>>& known_typedefs() {
  static const std::set<std::string, std::less<>> kTypes = {
      "size_t", "ssize_t", "FILE",     "uint8_t",  "uint16_t", "uint32_t",
      "uint64_t", "int8_t", "int16_t", "int32_t",  "int64_t",  "bool",
      "ptrdiff_t"};
  return kTypes;
}

class Parser {
 public:
  explicit Parser(std::string_view source) : tokens_(lex(source)) {}

  NodePtr program() {
    auto unit = make_node(NodeKind::kTranslationUnit);
    while (!peek().is(TokenKind::kEnd)) unit->children.push_back(external_item());
    return unit;
  }

  NodePtr snippet() { return program(); }

  NodePtr single_expression() {
    NodePtr e = expression();
    expect_end();
    return e;
  }

 private:
  // --- token plumbing -----------------------------------------------------

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  const Token& advance() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  bool accept_punct(std::string_view spelling) {
    if (peek().is_punct(spelling)) {
      advance();
      return true;
    }
    return false;
  }

  bool accept_keyword(std::string_view word) {
    if (peek().is_keyword(word)) {
      advance();
      return true;
    }
    return false;
  }

  const Token& expect_punct(std::string_view spelling) {
    if (!peek().is_punct(spelling)) fail("expected '" + std::string(spelling) + "'");
    return advance();
  }

  void expect_end() {
    if (!peek().is(TokenKind::kEnd)) fail("trailing tokens after expression");
  }

  [[noreturn]] void fail(const std::string& why) const {
    const Token& t = peek();
    throw ParseError("parse error at " + std::to_string(t.line) + ":" +
                     std::to_string(t.column) + ": " + why + " (found " +
                     token_kind_name(t.kind) + " '" + t.text + "')");
  }

  // --- type recognition ----------------------------------------------------

  bool starts_type(std::size_t ahead = 0) const {
    const Token& t = peek(ahead);
    if (t.kind == TokenKind::kKeyword) {
      static constexpr std::array kTypeWords = {
          "void", "char", "short", "int",      "long",   "float",  "double",
          "signed", "unsigned", "const", "static", "struct", "union", "enum",
          "register", "volatile", "extern", "inline", "size_t"};
      for (std::string_view w : kTypeWords)
        if (t.text == w) return true;
      return false;
    }
    return t.kind == TokenKind::kIdentifier && known_typedefs().count(t.text) > 0;
  }

  /// Consumes type specifiers and pointer stars; returns the type spelling.
  std::string parse_type() {
    std::string type;
    bool any = false;
    while (starts_type()) {
      const Token& t = advance();
      if (t.text == "struct" || t.text == "union" || t.text == "enum") {
        if (!type.empty()) type += ' ';
        type += t.text;
        if (peek().is(TokenKind::kIdentifier)) {
          type += ' ';
          type += advance().text;
        }
        any = true;
        continue;
      }
      if (!type.empty()) type += ' ';
      type += t.text;
      any = true;
    }
    if (!any) fail("expected a type");
    while (peek().is_punct("*")) {
      advance();
      type += '*';
    }
    return type;
  }

  // --- external items -------------------------------------------------------

  NodePtr external_item() {
    const Token& t = peek();
    if (t.is(TokenKind::kPragma)) {
      auto pragma = make_node(NodeKind::kPragma, advance().text);
      pragma->line = t.line;
      pragma->column = t.column;
      return pragma;
    }
    if (starts_type()) return declaration_or_function();
    return statement();  // snippet mode: bare statements allowed at top level
  }

  /// Parses after a type has been recognized: either a function definition
  /// / prototype or a (possibly multi-declarator) declaration.
  NodePtr declaration_or_function() {
    const int line = peek().line;
    const int column = peek().column;
    std::string base_type = parse_type();

    // `struct X { ... };` definition without declarator.
    if ((base_type.rfind("struct", 0) == 0 || base_type.rfind("union", 0) == 0) &&
        peek().is_punct("{")) {
      auto def = make_node(NodeKind::kDecl, base_type, "struct-def");
      def->line = line;
      def->column = column;
      advance();  // '{'
      while (!peek().is_punct("}")) {
        if (peek().is(TokenKind::kEnd)) fail("unterminated struct body");
        def->children.push_back(declarator_list(parse_type()));
        expect_punct(";");
      }
      advance();  // '}'
      accept_punct(";");
      return def;
    }

    if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator name");
    const std::string name = advance().text;

    if (peek().is_punct("(")) return function_rest(base_type, name, line, column);

    NodePtr decl = declarator_rest(base_type, name, line, column);
    if (peek().is_punct(",")) {
      // Multi-declarator declaration: wrap in an ExprList of Decls so the
      // statement position holds a single node.
      auto list = make_node(NodeKind::kExprList);
      list->line = line;
      list->column = column;
      list->children.push_back(std::move(decl));
      while (accept_punct(",")) {
        std::string ptr_type = base_type;
        while (accept_punct("*")) ptr_type += '*';
        if (!peek().is(TokenKind::kIdentifier)) fail("expected declarator name");
        const std::string next_name = advance().text;
        list->children.push_back(declarator_rest(ptr_type, next_name, line, column));
      }
      expect_punct(";");
      return list;
    }
    expect_punct(";");
    return decl;
  }

  /// Declaration list sharing one base type, used for struct members.
  NodePtr declarator_list(const std::string& base_type) {
    const int line = peek().line;
    const int column = peek().column;
    std::string type = base_type;
    while (accept_punct("*")) type += '*';
    if (!peek().is(TokenKind::kIdentifier)) fail("expected member name");
    const std::string name = advance().text;
    return declarator_rest(type, name, line, column, /*allow_init=*/false);
  }

  /// Array dimensions and optional initializer after the declarator name.
  NodePtr declarator_rest(std::string type, const std::string& name, int line,
                          int column, bool allow_init = true) {
    auto decl = make_node(NodeKind::kDecl, name);
    decl->line = line;
    decl->column = column;
    while (accept_punct("[")) {
      type += "[]";
      if (peek().is_punct("]")) {
        decl->children.push_back(make_node(NodeKind::kEmpty));
      } else {
        decl->children.push_back(expression());
      }
      expect_punct("]");
    }
    decl->aux = std::move(type);
    if (allow_init && accept_punct("=")) {
      decl->children.push_back(initializer());
    }
    return decl;
  }

  /// `{1, 2, 3}` initializers become ExprList; otherwise an assignment expr.
  NodePtr initializer() {
    if (!peek().is_punct("{")) return assignment_expression();
    advance();
    auto list = make_node(NodeKind::kExprList);
    if (!peek().is_punct("}")) {
      list->children.push_back(initializer());
      while (accept_punct(",")) {
        if (peek().is_punct("}")) break;  // trailing comma
        list->children.push_back(initializer());
      }
    }
    expect_punct("}");
    return list;
  }

  NodePtr function_rest(const std::string& return_type, const std::string& name,
                        int line, int column) {
    expect_punct("(");
    auto params = make_node(NodeKind::kExprList);
    if (!peek().is_punct(")")) {
      if (peek().is_keyword("void") && peek(1).is_punct(")")) {
        advance();
      } else {
        params->children.push_back(parameter());
        while (accept_punct(",")) params->children.push_back(parameter());
      }
    }
    expect_punct(")");

    auto fn = make_node(NodeKind::kFuncDef, name, return_type);
    fn->line = line;
    fn->column = column;
    fn->children.push_back(std::move(params));
    if (accept_punct(";")) {
      // Prototype: record as a FuncDef with no body (aux keeps return type).
      fn->children.push_back(make_node(NodeKind::kEmpty));
      return fn;
    }
    fn->children.push_back(compound());
    return fn;
  }

  NodePtr parameter() {
    const int line = peek().line;
    const int column = peek().column;
    std::string type = parse_type();
    std::string name;
    if (peek().is(TokenKind::kIdentifier)) name = advance().text;
    auto decl = make_node(NodeKind::kDecl, name);
    decl->line = line;
    decl->column = column;
    while (accept_punct("[")) {
      type += "[]";
      if (!peek().is_punct("]")) decl->children.push_back(expression());
      expect_punct("]");
    }
    decl->aux = std::move(type);
    return decl;
  }

  // --- statements ------------------------------------------------------------

  NodePtr compound() {
    const int line = peek().line;
    const int column = peek().column;
    expect_punct("{");
    auto block = make_node(NodeKind::kCompound);
    block->line = line;
    block->column = column;
    while (!peek().is_punct("}")) {
      if (peek().is(TokenKind::kEnd)) fail("unterminated block");
      block->children.push_back(block_item());
    }
    advance();
    return block;
  }

  NodePtr block_item() {
    if (peek().is(TokenKind::kPragma)) {
      const Token& t = advance();
      auto pragma = make_node(NodeKind::kPragma, t.text);
      pragma->line = t.line;
      pragma->column = t.column;
      return pragma;
    }
    if (starts_type()) return declaration_or_function();
    return statement();
  }

  NodePtr statement() {
    const Token& t = peek();
    const int line = t.line;
    const int column = t.column;
    if (t.is_punct("{")) return compound();
    if (t.is_punct(";")) {
      advance();
      auto e = make_node(NodeKind::kEmpty);
      e->line = line;
      e->column = column;
      return e;
    }
    if (t.is(TokenKind::kPragma)) {
      auto pragma = make_node(NodeKind::kPragma, advance().text);
      pragma->line = line;
      pragma->column = column;
      return pragma;
    }
    if (t.is_keyword("if")) return if_statement();
    if (t.is_keyword("for")) return for_statement();
    if (t.is_keyword("while")) return while_statement();
    if (t.is_keyword("do")) return do_statement();
    if (t.is_keyword("return")) {
      advance();
      auto ret = make_node(NodeKind::kReturn);
      ret->line = line;
      ret->column = column;
      if (!peek().is_punct(";")) ret->children.push_back(expression());
      expect_punct(";");
      return ret;
    }
    if (t.is_keyword("break")) {
      advance();
      expect_punct(";");
      auto n = make_node(NodeKind::kBreak);
      n->line = line;
      n->column = column;
      return n;
    }
    if (t.is_keyword("continue")) {
      advance();
      expect_punct(";");
      auto n = make_node(NodeKind::kContinue);
      n->line = line;
      n->column = column;
      return n;
    }
    if (t.is_keyword("goto")) {
      advance();
      if (!peek().is(TokenKind::kIdentifier)) fail("expected label after goto");
      auto n = make_node(NodeKind::kGoto, advance().text);
      n->line = line;
      n->column = column;
      expect_punct(";");
      return n;
    }
    // Label: identifier ':' (not inside a ternary).
    if (t.is(TokenKind::kIdentifier) && peek(1).is_punct(":")) {
      auto label = make_node(NodeKind::kLabel, advance().text);
      label->line = line;
      label->column = column;
      advance();  // ':'
      label->children.push_back(statement());
      return label;
    }
    // Expression statement.
    auto stmt = make_node(NodeKind::kExprStmt);
    stmt->line = line;
    stmt->column = column;
    stmt->children.push_back(comma_expression());
    expect_punct(";");
    return stmt;
  }

  NodePtr if_statement() {
    const Token& kw = advance();  // 'if'
    expect_punct("(");
    auto node = make_node(NodeKind::kIf);
    node->line = kw.line;
    node->column = kw.column;
    node->children.push_back(comma_expression());
    expect_punct(")");
    node->children.push_back(statement());
    if (accept_keyword("else")) node->children.push_back(statement());
    return node;
  }

  NodePtr for_statement() {
    const Token& kw = advance();  // 'for'
    expect_punct("(");
    auto node = make_node(NodeKind::kFor);
    node->line = kw.line;
    node->column = kw.column;
    // init
    if (peek().is_punct(";")) {
      advance();
      node->children.push_back(make_node(NodeKind::kEmpty));
    } else if (starts_type()) {
      std::string type = parse_type();
      if (!peek().is(TokenKind::kIdentifier)) fail("expected loop variable name");
      const std::string name = advance().text;
      node->children.push_back(declarator_rest(type, name, kw.line, kw.column));
      expect_punct(";");
    } else {
      node->children.push_back(comma_expression());
      expect_punct(";");
    }
    // cond
    if (peek().is_punct(";")) {
      node->children.push_back(make_node(NodeKind::kEmpty));
    } else {
      node->children.push_back(comma_expression());
    }
    expect_punct(";");
    // next
    if (peek().is_punct(")")) {
      node->children.push_back(make_node(NodeKind::kEmpty));
    } else {
      node->children.push_back(comma_expression());
    }
    expect_punct(")");
    node->children.push_back(statement());
    return node;
  }

  NodePtr while_statement() {
    const Token& kw = advance();  // 'while'
    expect_punct("(");
    auto node = make_node(NodeKind::kWhile);
    node->line = kw.line;
    node->column = kw.column;
    node->children.push_back(comma_expression());
    expect_punct(")");
    node->children.push_back(statement());
    return node;
  }

  NodePtr do_statement() {
    const Token& kw = advance();  // 'do'
    auto node = make_node(NodeKind::kDoWhile);
    node->line = kw.line;
    node->column = kw.column;
    node->children.push_back(statement());
    if (!accept_keyword("while")) fail("expected 'while' after do body");
    expect_punct("(");
    node->children.push_back(comma_expression());
    expect_punct(")");
    expect_punct(";");
    return node;
  }

  // --- expressions -------------------------------------------------------------

  /// expr (',' expr)* — multiple expressions become an ExprList.
  NodePtr comma_expression() {
    NodePtr first = expression();
    if (!peek().is_punct(",")) return first;
    auto list = make_node(NodeKind::kExprList);
    list->children.push_back(std::move(first));
    while (accept_punct(",")) list->children.push_back(expression());
    return list;
  }

  NodePtr expression() { return assignment_expression(); }

  NodePtr assignment_expression() {
    NodePtr lhs = ternary_expression();
    static constexpr std::array kAssignOps = {"=",  "+=", "-=",  "*=",  "/=", "%=",
                                              "&=", "|=", "^=", "<<=", ">>="};
    for (std::string_view op : kAssignOps) {
      if (peek().is_punct(op)) {
        const Token& op_tok = advance();
        auto node = make_node(NodeKind::kAssignment, std::string(op));
        node->line = op_tok.line;
        node->column = op_tok.column;
        node->children.push_back(std::move(lhs));
        node->children.push_back(assignment_expression());  // right-assoc
        return node;
      }
    }
    return lhs;
  }

  NodePtr ternary_expression() {
    NodePtr cond = binary_expression(0);
    if (!accept_punct("?")) return cond;
    auto node = make_node(NodeKind::kTernaryOp);
    node->children.push_back(std::move(cond));
    node->children.push_back(comma_expression());
    expect_punct(":");
    node->children.push_back(ternary_expression());
    return node;
  }

  /// Precedence-climbing over C's binary operator table.
  NodePtr binary_expression(int min_level) {
    struct Level {
      int level;
      std::string_view op;
    };
    static constexpr std::array<Level, 18> kOps = {{
        {0, "||"}, {1, "&&"}, {2, "|"},  {3, "^"},  {4, "&"},  {5, "=="},
        {5, "!="}, {6, "<"},  {6, ">"},  {6, "<="}, {6, ">="}, {7, "<<"},
        {7, ">>"}, {8, "+"},  {8, "-"},  {9, "*"},  {9, "/"},  {9, "%"},
    }};
    NodePtr lhs = unary_expression();
    while (true) {
      int matched_level = -1;
      std::string_view matched_op;
      for (const Level& entry : kOps) {
        if (entry.level >= min_level && peek().is_punct(entry.op)) {
          matched_level = entry.level;
          matched_op = entry.op;
          break;
        }
      }
      if (matched_level < 0) return lhs;
      const Token& op_tok = advance();
      auto node = make_node(NodeKind::kBinaryOp, std::string(matched_op));
      node->line = op_tok.line;
      node->column = op_tok.column;
      node->children.push_back(std::move(lhs));
      node->children.push_back(binary_expression(matched_level + 1));
      lhs = std::move(node);
    }
  }

  bool looks_like_cast() const {
    return peek().is_punct("(") && starts_type(1);
  }

  NodePtr unary_expression() {
    const Token& t = peek();
    const int line = t.line;
    const int column = t.column;
    if (t.is_punct("++") || t.is_punct("--")) {
      advance();
      auto node = make_node(NodeKind::kUnaryOp, t.text);
      node->line = line;
      node->column = column;
      node->children.push_back(unary_expression());
      return node;
    }
    static constexpr std::array kPrefix = {"+", "-", "!", "~", "*", "&"};
    for (std::string_view op : kPrefix) {
      if (t.is_punct(op)) {
        advance();
        auto node = make_node(NodeKind::kUnaryOp, std::string(op));
        node->line = line;
        node->column = column;
        node->children.push_back(unary_expression());
        return node;
      }
    }
    if (t.is_keyword("sizeof")) {
      advance();
      auto node = make_node(NodeKind::kSizeof);
      node->line = line;
      node->column = column;
      if (peek().is_punct("(") && starts_type(1)) {
        advance();
        std::string type = parse_type();
        while (accept_punct("[")) {  // sizeof(int[4]) — rare but cheap
          type += "[]";
          if (!peek().is_punct("]")) expression();
          expect_punct("]");
        }
        expect_punct(")");
        node->text = type;
      } else {
        node->children.push_back(unary_expression());
      }
      return node;
    }
    if (looks_like_cast()) {
      advance();  // '('
      std::string type = parse_type();
      expect_punct(")");
      auto node = make_node(NodeKind::kCast, type);
      node->line = line;
      node->column = column;
      node->children.push_back(unary_expression());
      return node;
    }
    return postfix_expression();
  }

  NodePtr postfix_expression() {
    NodePtr node = primary_expression();
    while (true) {
      const Token& t = peek();
      if (t.is_punct("[")) {
        advance();
        auto ref = make_node(NodeKind::kArrayRef);
        ref->line = t.line;
        ref->column = t.column;
        ref->children.push_back(std::move(node));
        ref->children.push_back(comma_expression());
        expect_punct("]");
        node = std::move(ref);
      } else if (t.is_punct("(")) {
        advance();
        auto call = make_node(NodeKind::kFuncCall);
        call->line = t.line;
        call->column = t.column;
        call->children.push_back(std::move(node));
        auto args = make_node(NodeKind::kExprList);
        if (!peek().is_punct(")")) {
          args->children.push_back(expression());
          while (accept_punct(",")) args->children.push_back(expression());
        }
        expect_punct(")");
        call->children.push_back(std::move(args));
        node = std::move(call);
      } else if (t.is_punct(".") || t.is_punct("->")) {
        advance();
        if (!peek().is(TokenKind::kIdentifier)) fail("expected member name");
        auto ref = make_node(NodeKind::kStructRef, t.text);
        ref->line = t.line;
        ref->column = t.column;
        ref->children.push_back(std::move(node));
        ref->children.push_back(make_id(advance().text));
        node = std::move(ref);
      } else if (t.is_punct("++") || t.is_punct("--")) {
        advance();
        auto op = make_node(NodeKind::kUnaryOp, "p" + t.text);  // pycparser: p++
        op->line = t.line;
        op->column = t.column;
        op->children.push_back(std::move(node));
        node = std::move(op);
      } else {
        return node;
      }
    }
  }

  NodePtr primary_expression() {
    const Token& t = peek();
    const int line = t.line;
    const int column = t.column;
    switch (t.kind) {
      case TokenKind::kIdentifier: {
        auto node = make_id(advance().text);
        node->line = line;
        node->column = column;
        return node;
      }
      case TokenKind::kIntLiteral: {
        auto node = make_node(NodeKind::kConstant, advance().text, "int");
        node->line = line;
        node->column = column;
        return node;
      }
      case TokenKind::kFloatLiteral: {
        auto node = make_node(NodeKind::kConstant, advance().text, "float");
        node->line = line;
        node->column = column;
        return node;
      }
      case TokenKind::kCharLiteral: {
        auto node = make_node(NodeKind::kConstant, advance().text, "char");
        node->line = line;
        node->column = column;
        return node;
      }
      case TokenKind::kStringLiteral: {
        auto node = make_node(NodeKind::kConstant, advance().text, "string");
        node->line = line;
        node->column = column;
        return node;
      }
      case TokenKind::kPunct:
        if (t.text == "(") {
          advance();
          NodePtr inner = comma_expression();
          expect_punct(")");
          return inner;
        }
        break;
      default:
        break;
    }
    fail("expected an expression");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

NodePtr parse_program(std::string_view source) { return Parser{source}.program(); }

NodePtr parse_snippet(std::string_view source) { return Parser{source}.snippet(); }

NodePtr parse_expression(std::string_view source) {
  return Parser{source}.single_expression();
}

}  // namespace clpp::frontend
