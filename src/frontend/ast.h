// Abstract syntax tree for the C subset.
//
// Nodes are a single generic type (kind + strings + children) in the spirit
// of pycparser's homogeneous node protocol: this makes the DFS
// serialization of §4.2 of the paper (Table 2/5) a direct tree walk, and
// lets analyses pattern-match on kinds without a visitor hierarchy.
//
// Child conventions (fixed positions):
//   For        [init, cond, next, body]
//   While      [cond, body]
//   DoWhile    [body, cond]
//   If         [cond, then] or [cond, then, else]
//   Assignment text=op          [lhs, rhs]
//   BinaryOp   text=op          [lhs, rhs]
//   UnaryOp    text=op          [operand]       ("p++"/"p--" are postfix)
//   TernaryOp  [cond, then, else]
//   ArrayRef   [base, index]
//   FuncCall   [callee, ExprList]
//   StructRef  text="." or "->" [base, field]
//   Cast       text=type        [expr]
//   Decl       text=name aux=type [dims..., init?]  (dims are expressions;
//                                  aux ends with "[]" once per dimension)
//   FuncDef    text=name aux=return type [ExprList(params), Compound]
//   ExprStmt   [expr]
//   Return     [] or [expr]
//   Pragma     text=directive text (without '#')
//   ID         text=name
//   Constant   text=value aux=type ("int"/"float"/"char"/"string")
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/error.h"

namespace clpp::frontend {

enum class NodeKind {
  kTranslationUnit,
  kFuncDef,
  kDecl,
  kCompound,
  kFor,
  kWhile,
  kDoWhile,
  kIf,
  kReturn,
  kBreak,
  kContinue,
  kGoto,
  kLabel,
  kExprStmt,
  kAssignment,
  kBinaryOp,
  kUnaryOp,
  kTernaryOp,
  kID,
  kConstant,
  kArrayRef,
  kFuncCall,
  kExprList,
  kStructRef,
  kCast,
  kSizeof,
  kEmpty,
  kPragma,
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// Generic AST node; see file comment for child conventions.
struct Node {
  NodeKind kind;
  std::string text;  // name / operator / value / directive, by kind
  std::string aux;   // type information, by kind
  std::vector<NodePtr> children;
  int line = 0;    // 1-based source line; 0 = synthesized node
  int column = 0;  // 1-based source column; 0 = synthesized node

  explicit Node(NodeKind k) : kind(k) {}
  Node(NodeKind k, std::string t) : kind(k), text(std::move(t)) {}
  Node(NodeKind k, std::string t, std::string a)
      : kind(k), text(std::move(t)), aux(std::move(a)) {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Deep copy.
  NodePtr clone() const;

  /// Checked child access.
  const Node& child(std::size_t i) const {
    CLPP_CHECK_MSG(i < children.size(), "AST child index out of range");
    return *children[i];
  }
  Node& child(std::size_t i) {
    CLPP_CHECK_MSG(i < children.size(), "AST child index out of range");
    return *children[i];
  }

  bool is(NodeKind k) const { return kind == k; }
};

/// Builders.
NodePtr make_node(NodeKind kind, std::string text = {}, std::string aux = {});
NodePtr make_id(std::string name);
NodePtr make_int(long long value);
NodePtr make_float(std::string value);

/// pycparser-style node label, e.g. "For:", "Assignment: =",
/// "Constant: int, 0" — the exact line format of Table 2 of the paper.
std::string node_label(const Node& node);

/// Pre-order (DFS) visit; `fn(node, depth)` for every node.
void walk(const Node& node,
          const std::function<void(const Node&, int)>& fn, int depth = 0);

/// Mutable pre-order visit.
void walk_mut(Node& node, const std::function<void(Node&, int)>& fn, int depth = 0);

/// Counts nodes of a given kind in the subtree.
std::size_t count_kind(const Node& node, NodeKind kind);

/// Human-readable kind name (diagnostics and serialization).
std::string node_kind_name(NodeKind kind);

}  // namespace clpp::frontend
