#include "frontend/dfs.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"

namespace clpp::frontend {

std::string dfs_lines(const Node& root) {
  std::ostringstream os;
  walk(root, [&](const Node& node, int depth) {
    if (node.kind == NodeKind::kTranslationUnit) return;
    os << repeated("  ", static_cast<std::size_t>(std::max(depth - 1, 0)))
       << node_label(node) << '\n';
  });
  return os.str();
}

std::vector<std::string> dfs_tokens(const Node& root) {
  std::vector<std::string> tokens;
  walk(root, [&](const Node& node, int) {
    switch (node.kind) {
      case NodeKind::kTranslationUnit:
        return;
      case NodeKind::kID:
        tokens.push_back("ID:");
        tokens.push_back(node.text);
        return;
      case NodeKind::kConstant:
        tokens.push_back("Constant:");
        tokens.push_back(node.aux);
        tokens.push_back(node.text);
        return;
      case NodeKind::kAssignment:
      case NodeKind::kBinaryOp:
      case NodeKind::kUnaryOp:
      case NodeKind::kStructRef:
        tokens.push_back(node_kind_name(node.kind) + ":");
        tokens.push_back(node.text);
        return;
      case NodeKind::kDecl:
        tokens.push_back("Decl:");
        tokens.push_back(node.text);
        tokens.push_back(node.aux);
        return;
      case NodeKind::kFuncDef:
        tokens.push_back("FuncDef:");
        tokens.push_back(node.text);
        return;
      case NodeKind::kCast:
        tokens.push_back("Cast:");
        tokens.push_back(node.text);
        return;
      default:
        tokens.push_back(node_kind_name(node.kind) + ":");
        return;
    }
  });
  return tokens;
}

}  // namespace clpp::frontend
