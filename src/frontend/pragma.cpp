#include "frontend/pragma.h"

#include <cctype>
#include <sstream>

#include "support/strings.h"

namespace clpp::frontend {

std::string schedule_name(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kNone: return "none";
    case ScheduleKind::kStatic: return "static";
    case ScheduleKind::kDynamic: return "dynamic";
    case ScheduleKind::kGuided: return "guided";
    case ScheduleKind::kAuto: return "auto";
    case ScheduleKind::kRuntime: return "runtime";
  }
  return "none";
}

std::string reduction_op_name(ReductionOp op) {
  switch (op) {
    case ReductionOp::kAdd: return "+";
    case ReductionOp::kSub: return "-";
    case ReductionOp::kMul: return "*";
    case ReductionOp::kMin: return "min";
    case ReductionOp::kMax: return "max";
    case ReductionOp::kAnd: return "&&";
    case ReductionOp::kOr: return "||";
    case ReductionOp::kBitAnd: return "&";
    case ReductionOp::kBitOr: return "|";
    case ReductionOp::kBitXor: return "^";
  }
  return "+";
}

ReductionOp reduction_op_from(std::string_view symbol) {
  if (symbol == "+") return ReductionOp::kAdd;
  if (symbol == "-") return ReductionOp::kSub;
  if (symbol == "*") return ReductionOp::kMul;
  if (symbol == "min") return ReductionOp::kMin;
  if (symbol == "max") return ReductionOp::kMax;
  if (symbol == "&&") return ReductionOp::kAnd;
  if (symbol == "||") return ReductionOp::kOr;
  if (symbol == "&") return ReductionOp::kBitAnd;
  if (symbol == "|") return ReductionOp::kBitOr;
  if (symbol == "^") return ReductionOp::kBitXor;
  throw ParseError("unknown reduction operator: " + std::string(symbol));
}

namespace {

/// Simple word/paren scanner over the pragma text.
class PragmaScanner {
 public:
  explicit PragmaScanner(std::string_view text) : text_(text) {}

  /// Next identifier-like word; empty at end.
  std::string next_word() {
    skip_ws();
    std::string word;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      word.push_back(text_[pos_++]);
    return word;
  }

  /// If the next non-space char is '(', returns the balanced-paren body.
  bool paren_body(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '(') return false;
    int depth = 0;
    std::string body;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '(') {
        if (depth++ > 0) body.push_back(c);
      } else if (c == ')') {
        if (--depth == 0) break;
        body.push_back(c);
      } else {
        body.push_back(c);
      }
    }
    out = std::string(trim(body));
    return true;
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Consumes one non-word character (malformed input recovery).
  void skip_one() {
    if (pos_ < text_.size()) ++pos_;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::vector<std::string> split_list(const std::string& body) {
  std::vector<std::string> out;
  for (const std::string& item : split(body, ','))
    if (!trim(item).empty()) out.emplace_back(trim(item));
  return out;
}

std::string_view strip_prefix(std::string_view text) {
  std::string_view rest = trim(text);
  if (starts_with(rest, "#")) rest = trim(rest.substr(1));
  if (starts_with(rest, "pragma")) rest = trim(rest.substr(6));
  return rest;
}

}  // namespace

bool is_omp_pragma(std::string_view text) {
  std::string_view rest = strip_prefix(text);
  return starts_with(rest, "omp") &&
         (rest.size() == 3 || !(std::isalnum(static_cast<unsigned char>(rest[3])) ||
                                rest[3] == '_'));
}

OmpDirective parse_omp_pragma(std::string_view text) {
  if (!is_omp_pragma(text))
    throw ParseError("not an OpenMP pragma: " + std::string(text));
  std::string_view rest = trim(strip_prefix(text).substr(3));

  OmpDirective directive;
  PragmaScanner scanner(rest);
  while (!scanner.at_end()) {
    const std::string word = scanner.next_word();
    if (word.empty()) {
      scanner.skip_one();
      continue;
    }
    if (word == "parallel") {
      directive.parallel = true;
    } else if (word == "for") {
      directive.for_loop = true;
    } else if (word == "simd") {
      directive.simd = true;
    } else if (word == "critical") {
      directive.critical = true;
    } else if (word == "atomic") {
      directive.atomic = true;
    } else if (word == "barrier") {
      directive.barrier = true;
    } else if (word == "single") {
      directive.single = true;
    } else if (word == "master") {
      directive.master = true;
    } else if (word == "nowait") {
      directive.nowait = true;
    } else if (word == "schedule") {
      std::string body;
      if (scanner.paren_body(body)) {
        const auto parts = split_list(body);
        if (!parts.empty()) {
          const std::string kind = to_lower(parts[0]);
          if (kind == "static") directive.schedule = ScheduleKind::kStatic;
          else if (kind == "dynamic") directive.schedule = ScheduleKind::kDynamic;
          else if (kind == "guided") directive.schedule = ScheduleKind::kGuided;
          else if (kind == "auto") directive.schedule = ScheduleKind::kAuto;
          else if (kind == "runtime") directive.schedule = ScheduleKind::kRuntime;
          else directive.unknown_clauses.push_back("schedule(" + body + ")");
          if (parts.size() > 1) {
            try {
              directive.schedule_chunk = std::stoi(parts[1]);
            } catch (const std::exception&) {
              directive.schedule_chunk = 0;
            }
          }
        }
      }
    } else if (word == "collapse") {
      std::string body;
      if (scanner.paren_body(body)) {
        try {
          directive.collapse = std::stoi(body);
        } catch (const std::exception&) {
          directive.unknown_clauses.push_back("collapse(" + body + ")");
        }
      }
    } else if (word == "safelen" || word == "simdlen") {
      std::string body;
      if (scanner.paren_body(body)) {
        int& slot = word == "safelen" ? directive.safelen : directive.simdlen;
        try {
          slot = std::stoi(body);
        } catch (const std::exception&) {
          directive.unknown_clauses.push_back(word + "(" + body + ")");
        }
      }
    } else if (word == "num_threads") {
      std::string body;
      if (scanner.paren_body(body)) directive.num_threads = body;
    } else if (word == "private") {
      std::string body;
      if (scanner.paren_body(body))
        for (auto& v : split_list(body)) directive.private_vars.push_back(std::move(v));
    } else if (word == "firstprivate") {
      std::string body;
      if (scanner.paren_body(body))
        for (auto& v : split_list(body))
          directive.firstprivate_vars.push_back(std::move(v));
    } else if (word == "lastprivate") {
      std::string body;
      if (scanner.paren_body(body))
        for (auto& v : split_list(body))
          directive.lastprivate_vars.push_back(std::move(v));
    } else if (word == "shared") {
      std::string body;
      if (scanner.paren_body(body))
        for (auto& v : split_list(body)) directive.shared_vars.push_back(std::move(v));
    } else if (word == "default") {
      std::string body;
      if (scanner.paren_body(body))
        directive.unknown_clauses.push_back("default(" + body + ")");
    } else if (word == "reduction") {
      std::string body;
      if (scanner.paren_body(body)) {
        const std::size_t colon = body.find(':');
        if (colon == std::string::npos) {
          directive.unknown_clauses.push_back("reduction(" + body + ")");
        } else {
          const std::string op{trim(body.substr(0, colon))};
          try {
            const ReductionOp parsed = reduction_op_from(op);
            for (auto& v : split_list(body.substr(colon + 1)))
              directive.reductions.push_back(Reduction{parsed, std::move(v)});
          } catch (const ParseError&) {
            directive.unknown_clauses.push_back("reduction(" + body + ")");
          }
        }
      }
    } else {
      std::string body;
      if (scanner.paren_body(body)) {
        directive.unknown_clauses.push_back(word + "(" + body + ")");
      } else {
        directive.unknown_clauses.push_back(word);
      }
    }
  }
  return directive;
}

std::string OmpDirective::to_string() const {
  std::ostringstream os;
  os << "#pragma omp";
  if (parallel) os << " parallel";
  if (for_loop) os << " for";
  if (simd) os << " simd";
  if (critical) os << " critical";
  if (atomic) os << " atomic";
  if (barrier) os << " barrier";
  if (single) os << " single";
  if (master) os << " master";
  if (schedule != ScheduleKind::kNone) {
    os << " schedule(" << schedule_name(schedule);
    if (schedule_chunk > 0) os << ", " << schedule_chunk;
    os << ')';
  }
  if (collapse > 0) os << " collapse(" << collapse << ')';
  if (safelen > 0) os << " safelen(" << safelen << ')';
  if (simdlen > 0) os << " simdlen(" << simdlen << ')';
  if (!num_threads.empty()) os << " num_threads(" << num_threads << ')';
  auto list = [&os](const char* name, const std::vector<std::string>& vars) {
    if (vars.empty()) return;
    os << ' ' << name << '(' << join(vars, ", ") << ')';
  };
  list("private", private_vars);
  list("firstprivate", firstprivate_vars);
  list("lastprivate", lastprivate_vars);
  list("shared", shared_vars);
  if (!reductions.empty()) {
    // Group by operator for canonical output.
    for (std::size_t i = 0; i < reductions.size(); ++i) {
      if (i > 0 && reductions[i].op == reductions[i - 1].op) continue;
      os << " reduction(" << reduction_op_name(reductions[i].op) << ": ";
      bool first = true;
      for (const Reduction& r : reductions) {
        if (r.op != reductions[i].op) continue;
        if (!first) os << ", ";
        first = false;
        os << r.variable;
      }
      os << ')';
    }
  }
  if (nowait) os << " nowait";
  for (const std::string& clause : unknown_clauses) os << ' ' << clause;
  return os.str();
}

}  // namespace clpp::frontend
