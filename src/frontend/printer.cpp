#include "frontend/printer.h"

#include <sstream>

#include "support/strings.h"

namespace clpp::frontend {

namespace {

/// Pretty-printer with parenthesization driven by re-parse safety: all
/// nested binary/ternary operands are parenthesized unless they are atoms.
/// The output is valid C that round-trips through the parser (possibly with
/// extra parentheses, which the AST does not record).
class Printer {
 public:
  std::string statement(const Node& node, int indent) {
    std::ostringstream os;
    stmt(os, node, indent);
    return os.str();
  }

  std::string expression(const Node& node) { return expr(node, /*top=*/true); }

 private:
  static std::string pad(int indent) {
    return repeated("    ", static_cast<std::size_t>(indent));
  }

  /// Splits "int[][]" style aux strings into base type and dimension count.
  static std::string base_type(const std::string& aux) {
    const std::size_t bracket = aux.find("[]");
    return bracket == std::string::npos ? aux : aux.substr(0, bracket);
  }

  std::string decl_text(const Node& node) {
    // Decl: text=name, aux=type with one "[]" per dimension; dimension
    // expressions are leading children, optional init is the last child.
    const std::size_t dims = count_dims(node.aux);
    std::ostringstream os;
    os << base_type(node.aux) << ' ' << node.text;
    for (std::size_t i = 0; i < dims; ++i) {
      os << '[';
      if (i < node.children.size() &&
          node.children[i]->kind != NodeKind::kEmpty)
        os << expr(*node.children[i], true);
      os << ']';
    }
    if (node.children.size() == dims + 1)
      os << " = " << expr(*node.children[dims], true);
    return os.str();
  }

  static std::size_t count_dims(const std::string& aux) {
    std::size_t n = 0;
    for (std::size_t pos = aux.find("[]"); pos != std::string::npos;
         pos = aux.find("[]", pos + 2))
      ++n;
    return n;
  }

  void stmt(std::ostringstream& os, const Node& node, int indent) {
    switch (node.kind) {
      case NodeKind::kTranslationUnit:
        for (const NodePtr& c : node.children) stmt(os, *c, indent);
        return;
      case NodeKind::kFuncDef: {
        os << pad(indent) << node.aux << ' ' << node.text << '(';
        const Node& params = node.child(0);
        for (std::size_t i = 0; i < params.children.size(); ++i) {
          if (i) os << ", ";
          os << decl_text(params.child(i));
        }
        os << ')';
        if (node.children.size() > 1 && node.child(1).kind == NodeKind::kCompound) {
          os << '\n';
          stmt(os, node.child(1), indent);
        } else {
          os << ";\n";
        }
        return;
      }
      case NodeKind::kCompound:
        os << pad(indent) << "{\n";
        for (const NodePtr& c : node.children) stmt(os, *c, indent + 1);
        os << pad(indent) << "}\n";
        return;
      case NodeKind::kDecl:
        os << pad(indent) << decl_text(node) << ";\n";
        return;
      case NodeKind::kExprList:
        // Statement-position ExprList: multi-declarator declaration.
        if (!node.children.empty() && node.child(0).kind == NodeKind::kDecl) {
          os << pad(indent);
          for (std::size_t i = 0; i < node.children.size(); ++i) {
            if (i) os << ", ";
            if (i == 0) {
              os << decl_text(node.child(i));
            } else {
              // Subsequent declarators share the base type; re-emit name+init.
              const Node& d = node.child(i);
              os << d.text;
              if (!d.children.empty())
                os << " = " << expr(*d.children.back(), true);
            }
          }
          os << ";\n";
          return;
        }
        os << pad(indent) << expr(node, true) << ";\n";
        return;
      case NodeKind::kFor: {
        os << pad(indent) << "for (";
        const Node& init = node.child(0);
        if (init.kind == NodeKind::kDecl) {
          os << decl_text(init);
        } else if (init.kind != NodeKind::kEmpty) {
          os << expr(init, true);
        }
        os << "; ";
        if (node.child(1).kind != NodeKind::kEmpty) os << expr(node.child(1), true);
        os << "; ";
        if (node.child(2).kind != NodeKind::kEmpty) os << expr(node.child(2), true);
        os << ")\n";
        body(os, node.child(3), indent);
        return;
      }
      case NodeKind::kWhile:
        os << pad(indent) << "while (" << expr(node.child(0), true) << ")\n";
        body(os, node.child(1), indent);
        return;
      case NodeKind::kDoWhile:
        os << pad(indent) << "do\n";
        body(os, node.child(0), indent);
        os << pad(indent) << "while (" << expr(node.child(1), true) << ");\n";
        return;
      case NodeKind::kIf:
        os << pad(indent) << "if (" << expr(node.child(0), true) << ")\n";
        body(os, node.child(1), indent);
        if (node.children.size() > 2) {
          os << pad(indent) << "else\n";
          body(os, node.child(2), indent);
        }
        return;
      case NodeKind::kReturn:
        os << pad(indent) << "return";
        if (!node.children.empty()) os << ' ' << expr(node.child(0), true);
        os << ";\n";
        return;
      case NodeKind::kBreak:
        os << pad(indent) << "break;\n";
        return;
      case NodeKind::kContinue:
        os << pad(indent) << "continue;\n";
        return;
      case NodeKind::kGoto:
        os << pad(indent) << "goto " << node.text << ";\n";
        return;
      case NodeKind::kLabel:
        os << pad(indent) << node.text << ":\n";
        stmt(os, node.child(0), indent);
        return;
      case NodeKind::kExprStmt:
        os << pad(indent) << expr(node.child(0), true) << ";\n";
        return;
      case NodeKind::kEmpty:
        os << pad(indent) << ";\n";
        return;
      case NodeKind::kPragma:
        os << pad(indent) << '#' << node.text << '\n';
        return;
      default:
        os << pad(indent) << expr(node, true) << ";\n";
        return;
    }
  }

  void body(std::ostringstream& os, const Node& node, int indent) {
    if (node.kind == NodeKind::kCompound) {
      stmt(os, node, indent);
    } else {
      stmt(os, node, indent + 1);
    }
  }

  std::string expr(const Node& node, bool top) {
    switch (node.kind) {
      case NodeKind::kID:
        return node.text;
      case NodeKind::kConstant:
        if (node.aux == "string") return '"' + node.text + '"';
        if (node.aux == "char") return '\'' + node.text + '\'';
        return node.text;
      case NodeKind::kAssignment: {
        const std::string s = expr(node.child(0), false) + " " + node.text + " " +
                              expr(node.child(1), false);
        return top ? s : "(" + s + ")";
      }
      case NodeKind::kBinaryOp: {
        const std::string s = expr(node.child(0), false) + " " + node.text + " " +
                              expr(node.child(1), false);
        return top ? s : "(" + s + ")";
      }
      case NodeKind::kUnaryOp: {
        if (node.text == "p++" || node.text == "p--")
          return expr(node.child(0), false) + node.text.substr(1);
        const std::string s = node.text + expr(node.child(0), false);
        return top ? s : "(" + s + ")";
      }
      case NodeKind::kTernaryOp: {
        const std::string s = expr(node.child(0), false) + " ? " +
                              expr(node.child(1), false) + " : " +
                              expr(node.child(2), false);
        return "(" + s + ")";
      }
      case NodeKind::kArrayRef:
        return expr(node.child(0), false) + "[" + expr(node.child(1), true) + "]";
      case NodeKind::kFuncCall: {
        std::string s = expr(node.child(0), false) + "(";
        const Node& args = node.child(1);
        for (std::size_t i = 0; i < args.children.size(); ++i) {
          if (i) s += ", ";
          s += expr(args.child(i), true);
        }
        return s + ")";
      }
      case NodeKind::kExprList: {
        std::string s;
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          if (i) s += ", ";
          s += expr(node.child(i), true);
        }
        return top ? s : "(" + s + ")";
      }
      case NodeKind::kStructRef:
        return expr(node.child(0), false) + node.text + node.child(1).text;
      case NodeKind::kCast:
        return "(" + node.text + ") " + expr(node.child(0), false);
      case NodeKind::kSizeof:
        if (node.children.empty()) return "sizeof(" + node.text + ")";
        return "sizeof(" + expr(node.child(0), true) + ")";
      case NodeKind::kEmpty:
        return "";
      default:
        return "/* " + node_kind_name(node.kind) + " */";
    }
  }
};

}  // namespace

std::string print_source(const Node& node, int indent) {
  return Printer{}.statement(node, indent);
}

std::string print_expression(const Node& node) { return Printer{}.expression(node); }

}  // namespace clpp::frontend
