// Recursive-descent parser for the C subset (pycparser substitute).
//
// Two entry points:
//  * parse_program  — a whole translation unit (functions, globals).
//  * parse_snippet  — the corpus form: a free sequence of statements,
//    declarations, pragmas, and helper function definitions, as extracted
//    around a loop. Returned as a TranslationUnit whose children are the
//    items in order.
//
// The subset covers what realistic OpenMP loop snippets use: all statement
// forms, all C operators with correct precedence/associativity, pointers,
// multi-dimensional arrays, casts, sizeof, struct member access, function
// definitions and calls. Unsupported constructs raise ParseError with a
// source position — the same contract pycparser gives the original
// pipeline (and the same failure mode Cetus exhibits on hostile input).
#pragma once

#include <string_view>

#include "frontend/ast.h"

namespace clpp::frontend {

/// Parses a full translation unit.
NodePtr parse_program(std::string_view source);

/// Parses a corpus snippet (statements at top level allowed).
NodePtr parse_snippet(std::string_view source);

/// Parses a single expression (testing / tooling convenience).
NodePtr parse_expression(std::string_view source);

}  // namespace clpp::frontend
