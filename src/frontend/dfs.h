// DFS serialization of the AST (paper §4.2, Tables 2 and 5).
//
// The paper linearizes pycparser ASTs by a depth-first traversal, one node
// label per line ("For:", "Assignment: =", "ID: i", "Constant: int, 0").
// `dfs_lines` reproduces the indented textual form; `dfs_tokens` yields the
// token stream fed to the model's tokenizer (each label split into its
// constituent symbols, e.g. "Assignment:" "=" and "Constant:" "int" "0").
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace clpp::frontend {

/// Indented one-node-per-line rendering (Table 2 of the paper).
std::string dfs_lines(const Node& root);

/// Flat token sequence for model ingestion (AST representation of §4.2).
std::vector<std::string> dfs_tokens(const Node& root);

}  // namespace clpp::frontend
