// Lexical tokens of the C subset understood by clpp::frontend.
#pragma once

#include <string>
#include <vector>

namespace clpp::frontend {

/// Token categories. Punctuation/operators carry their spelling in `text`.
enum class TokenKind {
  kEnd,         // end of input
  kIdentifier,  // names (including type names; the parser disambiguates)
  kKeyword,     // reserved words of the subset
  kIntLiteral,
  kFloatLiteral,
  kCharLiteral,
  kStringLiteral,
  kPunct,   // operators and punctuation, spelled in `text`
  kPragma,  // a whole "#pragma ..." line, text without the leading '#'
};

/// One lexical token with source position (1-based line/column).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;
  int column = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool is_punct(std::string_view spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
  bool is_keyword(std::string_view word) const {
    return kind == TokenKind::kKeyword && text == word;
  }
};

/// Human-readable kind name (diagnostics).
std::string token_kind_name(TokenKind kind);

}  // namespace clpp::frontend
