// Lexer for the C subset.
//
// Handles identifiers/keywords, numeric/char/string literals, all C
// operators, line and block comments, and preprocessor lines. `#pragma`
// lines are preserved as kPragma tokens (they carry OpenMP directives);
// all other preprocessor lines (#include, #define, ...) are skipped, which
// matches how pycparser-based pipelines preprocess snippets.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace clpp::frontend {

/// Tokenizes `source`; throws ParseError with line/column on bad input.
std::vector<Token> lex(std::string_view source);

/// True if `word` is a keyword of the subset.
bool is_c_keyword(std::string_view word);

}  // namespace clpp::frontend
