// AST -> C source pretty-printer.
//
// Used by the S2S compilers to emit annotated output (the "full output in
// the source code" transparency property of §1.1), by the corpus generator
// to render snippets, and by round-trip tests (parse(print(ast)) must be
// structurally identical to ast).
#pragma once

#include <string>

#include "frontend/ast.h"

namespace clpp::frontend {

/// Renders a statement/expression/translation-unit subtree as C source.
std::string print_source(const Node& node, int indent = 0);

/// Renders an expression subtree on one line (no trailing semicolon).
std::string print_expression(const Node& node);

}  // namespace clpp::frontend
