#include "frontend/ast.h"

#include <functional>

namespace clpp::frontend {

NodePtr Node::clone() const {
  auto copy = std::make_unique<Node>(kind, text, aux);
  copy->line = line;
  copy->column = column;
  copy->children.reserve(children.size());
  for (const NodePtr& c : children) copy->children.push_back(c->clone());
  return copy;
}

NodePtr make_node(NodeKind kind, std::string text, std::string aux) {
  return std::make_unique<Node>(kind, std::move(text), std::move(aux));
}

NodePtr make_id(std::string name) {
  return std::make_unique<Node>(NodeKind::kID, std::move(name));
}

NodePtr make_int(long long value) {
  return std::make_unique<Node>(NodeKind::kConstant, std::to_string(value), "int");
}

NodePtr make_float(std::string value) {
  return std::make_unique<Node>(NodeKind::kConstant, std::move(value), "float");
}

std::string node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTranslationUnit: return "FileAST";
    case NodeKind::kFuncDef: return "FuncDef";
    case NodeKind::kDecl: return "Decl";
    case NodeKind::kCompound: return "Compound";
    case NodeKind::kFor: return "For";
    case NodeKind::kWhile: return "While";
    case NodeKind::kDoWhile: return "DoWhile";
    case NodeKind::kIf: return "If";
    case NodeKind::kReturn: return "Return";
    case NodeKind::kBreak: return "Break";
    case NodeKind::kContinue: return "Continue";
    case NodeKind::kGoto: return "Goto";
    case NodeKind::kLabel: return "Label";
    case NodeKind::kExprStmt: return "ExprStmt";
    case NodeKind::kAssignment: return "Assignment";
    case NodeKind::kBinaryOp: return "BinaryOp";
    case NodeKind::kUnaryOp: return "UnaryOp";
    case NodeKind::kTernaryOp: return "TernaryOp";
    case NodeKind::kID: return "ID";
    case NodeKind::kConstant: return "Constant";
    case NodeKind::kArrayRef: return "ArrayRef";
    case NodeKind::kFuncCall: return "FuncCall";
    case NodeKind::kExprList: return "ExprList";
    case NodeKind::kStructRef: return "StructRef";
    case NodeKind::kCast: return "Cast";
    case NodeKind::kSizeof: return "Sizeof";
    case NodeKind::kEmpty: return "Empty";
    case NodeKind::kPragma: return "Pragma";
  }
  return "Unknown";
}

std::string node_label(const Node& node) {
  switch (node.kind) {
    case NodeKind::kAssignment:
    case NodeKind::kBinaryOp:
    case NodeKind::kUnaryOp:
    case NodeKind::kStructRef:
      return node_kind_name(node.kind) + ": " + node.text;
    case NodeKind::kID:
      return "ID: " + node.text;
    case NodeKind::kConstant:
      return "Constant: " + node.aux + ", " + node.text;
    case NodeKind::kDecl:
      return "Decl: " + node.text + ", " + node.aux;
    case NodeKind::kFuncDef:
      return "FuncDef: " + node.text;
    case NodeKind::kCast:
      return "Cast: " + node.text;
    case NodeKind::kPragma:
      return "Pragma: " + node.text;
    default:
      return node_kind_name(node.kind) + ":";
  }
}

void walk(const Node& node, const std::function<void(const Node&, int)>& fn,
          int depth) {
  fn(node, depth);
  for (const NodePtr& c : node.children) walk(*c, fn, depth + 1);
}

void walk_mut(Node& node, const std::function<void(Node&, int)>& fn, int depth) {
  fn(node, depth);
  for (NodePtr& c : node.children) walk_mut(*c, fn, depth + 1);
}

std::size_t count_kind(const Node& node, NodeKind kind) {
  std::size_t n = 0;
  walk(node, [&](const Node& v, int) { n += (v.kind == kind); });
  return n;
}

}  // namespace clpp::frontend
