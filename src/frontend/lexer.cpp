#include "frontend/lexer.h"

#include <array>
#include <cctype>

#include "support/error.h"
#include "support/strings.h"

namespace clpp::frontend {

std::string token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "end-of-input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kKeyword: return "keyword";
    case TokenKind::kIntLiteral: return "integer literal";
    case TokenKind::kFloatLiteral: return "float literal";
    case TokenKind::kCharLiteral: return "char literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kPunct: return "punctuation";
    case TokenKind::kPragma: return "pragma";
  }
  return "unknown";
}

bool is_c_keyword(std::string_view word) {
  static constexpr std::array kKeywords = {
      "auto",     "break",    "case",     "char",   "const",    "continue",
      "default",  "do",       "double",   "else",   "enum",     "extern",
      "float",    "for",      "goto",     "if",     "inline",   "int",
      "long",     "register", "restrict", "return", "short",    "signed",
      "sizeof",   "static",   "struct",   "switch", "typedef",  "union",
      "unsigned", "void",     "volatile", "while",  "size_t"};
  for (std::string_view k : kKeywords)
    if (k == word) return true;
  return false;
}

namespace {

/// Multi-character operators, longest first so maximal munch works.
constexpr std::array<std::string_view, 19> kMultiPunct = {
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=",
    "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%="};
constexpr std::array<std::string_view, 6> kMultiPunct2 = {"&=", "|=", "^=",
                                                          "##", "::", "->"};

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      if (at_end()) break;
      tokens.push_back(next_token());
    }
    tokens.push_back(Token{TokenKind::kEnd, "", line_, column_});
    return tokens;
  }

 private:
  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  [[noreturn]] void fail(const std::string& why) const {
    throw ParseError("lex error at " + std::to_string(line_) + ":" +
                     std::to_string(column_) + ": " + why);
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) fail("unterminated block comment");
        advance();
        advance();
      } else {
        break;
      }
    }
  }

  Token next_token() {
    const int line = line_;
    const int col = column_;
    const char c = peek();

    if (c == '#') return preprocessor_line(line, col);
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_')
      return identifier(line, col);
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
      return number(line, col);
    if (c == '"') return string_literal(line, col);
    if (c == '\'') return char_literal(line, col);
    return punct(line, col);
  }

  Token preprocessor_line(int line, int col) {
    // Consume until an unescaped newline.
    std::string text;
    advance();  // '#'
    while (!at_end() && peek() != '\n') {
      if (peek() == '\\' && peek(1) == '\n') {
        advance();
        advance();
        text.push_back(' ');
        continue;
      }
      text.push_back(advance());
    }
    const std::string trimmed{clpp::trim(text)};
    if (starts_with(trimmed, "pragma"))
      return Token{TokenKind::kPragma, trimmed, line, col};
    // Other preprocessor directives are skipped by re-entering the loop.
    skip_whitespace_and_comments();
    if (at_end()) return Token{TokenKind::kEnd, "", line_, column_};
    return next_token();
  }

  Token identifier(int line, int col) {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                         peek() == '_'))
      text.push_back(advance());
    const TokenKind kind =
        is_c_keyword(text) ? TokenKind::kKeyword : TokenKind::kIdentifier;
    return Token{kind, std::move(text), line, col};
  }

  Token number(int line, int col) {
    std::string text;
    bool is_float = false;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      text.push_back(advance());
      text.push_back(advance());
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek())))
        text.push_back(advance());
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
        text.push_back(advance());
      if (peek() == '.') {
        is_float = true;
        text.push_back(advance());
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
          text.push_back(advance());
      }
      if (peek() == 'e' || peek() == 'E') {
        is_float = true;
        text.push_back(advance());
        if (peek() == '+' || peek() == '-') text.push_back(advance());
        if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad exponent");
        while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())))
          text.push_back(advance());
      }
    }
    // Suffixes (u, l, f) are consumed but not recorded in the value text.
    while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L' ||
           peek() == 'f' || peek() == 'F') {
      if (peek() == 'f' || peek() == 'F') is_float = true;
      advance();
    }
    return Token{is_float ? TokenKind::kFloatLiteral : TokenKind::kIntLiteral,
                 std::move(text), line, col};
  }

  Token string_literal(int line, int col) {
    std::string text;
    advance();  // opening quote
    while (!at_end() && peek() != '"') {
      if (peek() == '\\') text.push_back(advance());
      if (at_end()) break;
      if (peek() == '\n') fail("newline in string literal");
      text.push_back(advance());
    }
    if (at_end()) fail("unterminated string literal");
    advance();  // closing quote
    return Token{TokenKind::kStringLiteral, std::move(text), line, col};
  }

  Token char_literal(int line, int col) {
    std::string text;
    advance();  // opening quote
    while (!at_end() && peek() != '\'') {
      if (peek() == '\\') text.push_back(advance());
      if (at_end()) break;
      text.push_back(advance());
    }
    if (at_end()) fail("unterminated char literal");
    advance();
    if (text.empty()) fail("empty char literal");
    return Token{TokenKind::kCharLiteral, std::move(text), line, col};
  }

  Token punct(int line, int col) {
    const std::string_view rest = src_.substr(pos_);
    for (std::string_view op : kMultiPunct) {
      if (starts_with(rest, op)) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        return Token{TokenKind::kPunct, std::string(op), line, col};
      }
    }
    for (std::string_view op : kMultiPunct2) {
      if (starts_with(rest, op)) {
        for (std::size_t i = 0; i < op.size(); ++i) advance();
        return Token{TokenKind::kPunct, std::string(op), line, col};
      }
    }
    const char c = advance();
    static constexpr std::string_view kSingles = "+-*/%=<>!&|^~?:;,.()[]{}";
    if (kSingles.find(c) == std::string_view::npos)
      fail(std::string("unexpected character '") + c + "'");
    return Token{TokenKind::kPunct, std::string(1, c), line, col};
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) { return Lexer{source}.run(); }

}  // namespace clpp::frontend
