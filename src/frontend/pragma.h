// Structured representation and parsing of OpenMP directives.
//
// Covers the directive/clause surface the paper's corpus uses (Table 3):
// `parallel`, `for`, `parallel for`, schedule(static|dynamic|guided[,chunk]),
// private/firstprivate/lastprivate/shared lists, reduction(op:list),
// nowait, collapse(n), num_threads(n), critical, atomic, barrier, single,
// master. Unknown clauses are preserved verbatim in `unknown_clauses`.
#pragma once

#include <string>
#include <vector>

#include "support/error.h"

namespace clpp::frontend {

enum class ScheduleKind { kNone, kStatic, kDynamic, kGuided, kAuto, kRuntime };

enum class ReductionOp { kAdd, kSub, kMul, kMin, kMax, kAnd, kOr, kBitAnd, kBitOr, kBitXor };

/// One reduction clause entry: operator + variable name.
struct Reduction {
  ReductionOp op;
  std::string variable;

  bool operator==(const Reduction&) const = default;
};

/// A parsed `#pragma omp ...` directive.
struct OmpDirective {
  bool parallel = false;    // has `parallel`
  bool for_loop = false;    // has `for`
  bool critical = false;
  bool atomic = false;
  bool barrier = false;
  bool single = false;
  bool master = false;
  bool simd = false;
  bool nowait = false;
  ScheduleKind schedule = ScheduleKind::kNone;
  int schedule_chunk = 0;  // 0 = unspecified
  int collapse = 0;        // 0 = unspecified
  int safelen = 0;         // simd safelen(k); 0 = unspecified
  int simdlen = 0;         // simd simdlen(k); 0 = unspecified
  std::string num_threads;  // expression text; empty = unspecified
  std::vector<std::string> private_vars;
  std::vector<std::string> firstprivate_vars;
  std::vector<std::string> lastprivate_vars;
  std::vector<std::string> shared_vars;
  std::vector<Reduction> reductions;
  std::vector<std::string> unknown_clauses;

  /// True if this directive governs the loop that follows it: `omp for` in
  /// any form (the corpus inclusion criterion of §3.1.2) or `omp simd`
  /// (a loop directive too — it binds the vectorized loop).
  bool is_loop_directive() const { return for_loop || simd; }

  bool has_private() const { return !private_vars.empty(); }
  bool has_reduction() const { return !reductions.empty(); }

  /// Canonical `#pragma omp ...` rendering.
  std::string to_string() const;

  bool operator==(const OmpDirective&) const = default;
};

/// Parses pragma text (with or without the leading "#"/"pragma").
/// Throws ParseError when the text is not an OpenMP pragma at all;
/// malformed clause bodies land in `unknown_clauses` rather than throwing,
/// mirroring how compilers skip unknown clauses.
OmpDirective parse_omp_pragma(std::string_view text);

/// True if `text` is an OpenMP pragma ("[#]pragma omp ...").
bool is_omp_pragma(std::string_view text);

std::string schedule_name(ScheduleKind kind);
std::string reduction_op_name(ReductionOp op);
ReductionOp reduction_op_from(std::string_view symbol);

}  // namespace clpp::frontend
