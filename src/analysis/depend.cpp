#include "analysis/depend.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>

#include "frontend/printer.h"
#include "obs/metrics.h"

namespace clpp::analysis {

using frontend::Node;
using frontend::NodeKind;
using frontend::Reduction;
using frontend::ReductionOp;

namespace {

bool mentions(const Node& expr, const std::string& name) {
  bool found = false;
  frontend::walk(expr, [&](const Node& n, int) {
    if (n.kind == NodeKind::kID && n.text == name) found = true;
  });
  return found;
}

Dependence array_dep(std::string name, std::string detail, int line, int column) {
  Dependence d;
  d.variable = std::move(name);
  d.detail = std::move(detail);
  d.line = line;
  d.column = column;
  return d;
}

/// Printed form of one access, e.g. "A[i][j + 1]".
std::string access_text(const Access& a) {
  std::string out = a.variable;
  for (const Node* s : a.subscripts)
    out += "[" + frontend::print_expression(*s) + "]";
  return out;
}

/// "(<, =)"-style rendering of a pair's direction vector.
std::string direction_vector(const PairResult& pair) {
  std::string direction = "(";
  for (std::size_t l = 0; l < pair.levels.size(); ++l) {
    if (l > 0) direction += ", ";
    direction += direction_text(pair.levels[l].dirs);
  }
  return direction + ")";
}

/// clpp.ddtest.* decision counters — one per deciding test plus a total.
/// References are resolved once (the registry lookup locks); Counter::add
/// is a relaxed fetch_add gated on obs::enabled().
void count_decision(DepTest test) {
  auto& m = obs::metrics();
  static obs::Counter& pairs = m.counter("clpp.ddtest.pairs");
  static obs::Counter& conservative = m.counter("clpp.ddtest.conservative");
  static obs::Counter& ziv = m.counter("clpp.ddtest.ziv");
  static obs::Counter& strong_siv = m.counter("clpp.ddtest.strong_siv");
  static obs::Counter& gcd = m.counter("clpp.ddtest.gcd");
  static obs::Counter& banerjee = m.counter("clpp.ddtest.banerjee");
  static obs::Counter& text_pinned = m.counter("clpp.ddtest.text_pinned");
  static obs::Counter& legacy_siv = m.counter("clpp.ddtest.legacy_siv");
  static obs::Counter& scalar = m.counter("clpp.ddtest.scalar");
  pairs.add(1);
  switch (test) {
    case DepTest::kConservative: conservative.add(1); break;
    case DepTest::kZiv: ziv.add(1); break;
    case DepTest::kStrongSiv: strong_siv.add(1); break;
    case DepTest::kGcd: gcd.add(1); break;
    case DepTest::kBanerjee: banerjee.add(1); break;
    case DepTest::kTextPinned: text_pinned.add(1); break;
    case DepTest::kLegacySiv: legacy_siv.add(1); break;
    case DepTest::kScalar: scalar.add(1); break;
  }
}

}  // namespace

std::string provenance_text(const PairProvenance& provenance) {
  std::string out = provenance.test;
  out += ": ";
  if (provenance.scalar)
    out += "'" + provenance.array + "' scalar recurrence";
  else
    out += provenance.src_text + " vs " + provenance.snk_text;
  if (!provenance.possible)
    out += ", refuted";
  else if (!provenance.carried)
    out += ", same-iteration only";
  else
    out += ", carried";
  if (!provenance.direction.empty()) out += ", direction " + provenance.direction;
  if (provenance.distance)
    out += ", distance " + std::to_string(*provenance.distance);
  if (!provenance.exact) out += " (conservative)";
  return out;
}

Affine analyze_subscript(const Node& expr, const std::string& induction) {
  // Literal constant.
  if (auto value = literal_value(expr)) {
    return Affine{Affine::Kind::kAffine, 0, *value, {}};
  }
  // The induction variable itself.
  if (expr.kind == NodeKind::kID) {
    if (expr.text == induction) return Affine{Affine::Kind::kAffine, 1, 0, {}};
    return Affine{Affine::Kind::kInvariant, 0, 0, expr.text};
  }
  if (!mentions(expr, induction)) {
    return Affine{Affine::Kind::kInvariant, 0, 0, frontend::print_expression(expr)};
  }
  if (expr.kind == NodeKind::kBinaryOp) {
    // Loop-invariant operands become affine terms with a symbolic addend,
    // so `c - i` / `i + c` stay exactly testable (coeff ±1, symbol `c`).
    auto promote = [](const Affine& a) {
      if (a.kind != Affine::Kind::kInvariant) return a;
      return Affine{Affine::Kind::kAffine, 0, 0, a.invariant_text, +1};
    };
    const Affine lhs = promote(analyze_subscript(expr.child(0), induction));
    const Affine rhs = promote(analyze_subscript(expr.child(1), induction));
    const bool both_affine =
        lhs.kind == Affine::Kind::kAffine && rhs.kind == Affine::Kind::kAffine;
    if ((expr.text == "+" || expr.text == "-") && both_affine) {
      const int rhs_flip = expr.text == "+" ? 1 : -1;
      // At most one symbolic addend survives; two distinct symbols (or the
      // same symbol that does not cancel) would need symbolic arithmetic.
      std::string symbol;
      int sign = 0;
      if (lhs.symbol_sign != 0 && rhs.symbol_sign != 0) return Affine{};  // complex
      if (lhs.symbol_sign != 0) {
        symbol = lhs.invariant_text;
        sign = lhs.symbol_sign;
      } else if (rhs.symbol_sign != 0) {
        symbol = rhs.invariant_text;
        sign = rhs.symbol_sign * rhs_flip;
      }
      return Affine{Affine::Kind::kAffine, lhs.coeff + rhs_flip * rhs.coeff,
                    lhs.offset + rhs_flip * rhs.offset, std::move(symbol), sign};
    }
    if (expr.text == "*" && both_affine) {
      // One side must be a pure constant (no symbol) for the product to
      // stay affine; scaling a symbolic addend is not representable.
      if (lhs.coeff == 0 && lhs.symbol_sign == 0 && rhs.symbol_sign == 0)
        return Affine{Affine::Kind::kAffine, lhs.offset * rhs.coeff,
                      lhs.offset * rhs.offset, {}};
      if (rhs.coeff == 0 && rhs.symbol_sign == 0 && lhs.symbol_sign == 0)
        return Affine{Affine::Kind::kAffine, lhs.coeff * rhs.offset,
                      lhs.offset * rhs.offset, {}};
    }
    return Affine{};  // complex
  }
  if (expr.kind == NodeKind::kUnaryOp && expr.text == "-") {
    const Affine inner = analyze_subscript(expr.child(0), induction);
    if (inner.kind == Affine::Kind::kAffine)
      return Affine{Affine::Kind::kAffine, -inner.coeff, -inner.offset,
                    inner.invariant_text, -inner.symbol_sign};
  }
  if (expr.kind == NodeKind::kUnaryOp && expr.text == "+")
    return analyze_subscript(expr.child(0), induction);
  return Affine{};  // complex
}

DimRelation compare_dimension(const Affine& a, const Affine& b) {
  using K = Affine::Kind;
  if (a.kind == K::kComplex || b.kind == K::kComplex) return DimRelation::kUnknown;
  if (a.kind == K::kInvariant && b.kind == K::kInvariant) {
    // Same loop-invariant expression selects the same element every
    // iteration -> carried if anyone writes; different texts -> unknown
    // aliasing, stay conservative.
    return a.invariant_text == b.invariant_text ? DimRelation::kCarried
                                                : DimRelation::kUnknown;
  }
  if (a.kind == K::kInvariant || b.kind == K::kInvariant) return DimRelation::kUnknown;
  // Both affine. Symbolic addends must agree exactly (same text, same sign)
  // for the constant-distance test to hold; otherwise aliasing is unknown.
  if (a.symbol_sign != b.symbol_sign ||
      (a.symbol_sign != 0 && a.invariant_text != b.invariant_text))
    return DimRelation::kUnknown;
  if (a.coeff == 0 && b.coeff == 0)
    return a.offset == b.offset ? DimRelation::kCarried : DimRelation::kDisjoint;
  if (a.coeff != b.coeff) return DimRelation::kUnknown;
  // Equal non-zero coefficients: distance = (b.offset - a.offset) / coeff.
  const long long diff = b.offset - a.offset;
  if (diff == 0) return DimRelation::kSameIterationOnly;
  if (diff % a.coeff == 0) return DimRelation::kCarried;
  return DimRelation::kDisjoint;
}

DependenceAnalyzer::DependenceAnalyzer(const SideEffectOracle& oracle,
                                       AnalyzerOptions options)
    : oracle_(&oracle), options_(options) {}

LoopVerdict DependenceAnalyzer::analyze(const Node& loop) const {
  LoopVerdict verdict;
  const auto canonical = canonicalize(loop);
  if (!canonical) {
    verdict.notes.push_back("loop is not in canonical form");
    return verdict;
  }
  verdict.canonical = true;
  verdict.induction = canonical->induction;
  verdict.trip_count = canonical->static_trip_count();

  const Node& body = loop.child(3);

  if (has_early_exit(body)) {
    verdict.notes.push_back("body has early exit (break/goto/return)");
    return verdict;
  }

  const AccessSet accesses = collect_accesses(body);

  // Hazards first: these abort analysis entirely (the "bail" behaviour the
  // paper's ComPar exhibits on 526/3547 test snippets).
  if (accesses.hazards.function_pointer_call) {
    verdict.bailed = true;
    verdict.notes.push_back("call through function pointer");
    return verdict;
  }
  if (accesses.hazards.struct_access && options_.bail_on_struct_access) {
    verdict.bailed = true;
    verdict.notes.push_back("struct member access unsupported");
    return verdict;
  }
  if (accesses.hazards.pointer_deref_write) {
    verdict.bailed = true;
    verdict.notes.push_back("write through pointer dereference");
    return verdict;
  }

  // Side effects of calls.
  std::set<std::string> seen_calls;
  for (const std::string& callee : accesses.hazards.called_functions) {
    if (!seen_calls.insert(callee).second) continue;
    const CallEffect effect = oracle_->effect_of(callee);
    switch (effect) {
      case CallEffect::kPure:
        break;
      case CallEffect::kIo:
        verdict.notes.push_back("calls I/O function '" + callee + "'");
        return verdict;
      case CallEffect::kAllocates:
        verdict.notes.push_back("calls allocator '" + callee + "'");
        return verdict;
      case CallEffect::kWritesArgs:
        verdict.notes.push_back("call to '" + callee + "' may write shared memory");
        return verdict;
      case CallEffect::kUnknown:
        if (!options_.assume_unknown_calls_pure) {
          verdict.bailed = true;
          verdict.notes.push_back("unknown side effects of '" + callee + "'");
          return verdict;
        }
        verdict.notes.push_back("assuming unknown call '" + callee + "' is pure");
        break;
    }
  }

  analyze_arrays(loop, canonical->induction, accesses, verdict);
  analyze_scalars(body, canonical->induction, accesses, verdict);

  if (!verdict.dependences.empty()) {
    verdict.parallelizable = false;
    return verdict;
  }

  if (options_.min_trip_count > 0 && verdict.trip_count &&
      *verdict.trip_count < options_.min_trip_count) {
    verdict.notes.push_back("trip count " + std::to_string(*verdict.trip_count) +
                            " below profitability threshold");
    verdict.parallelizable = false;
    return verdict;
  }

  if (options_.suggest_dynamic_schedule && has_conditional_work(body))
    verdict.schedule_hint = frontend::ScheduleKind::kDynamic;

  verdict.parallelizable = true;
  return verdict;
}

void DependenceAnalyzer::analyze_arrays(const Node& loop, const std::string& induction,
                                        const AccessSet& accesses,
                                        LoopVerdict& verdict) const {
  if (!options_.exact_dependence_engine) {
    analyze_arrays_legacy(induction, accesses, verdict);
    return;
  }

  // v2 exact engine: direction/distance vectors per access pair over the
  // whole canonical nest (see ddtest.h).
  const NestContext nest(loop);

  std::map<std::string, std::vector<const Access*>> arrays;
  for (const Access& a : accesses.accesses)
    if (a.is_array) arrays[a.variable].push_back(&a);

  for (const auto& [name, list] : arrays) {
    const bool any_write =
        std::any_of(list.begin(), list.end(), [](const Access* a) { return a->is_write; });
    if (!any_write) continue;

    bool reported = false;
    for (std::size_t wi = 0; wi < list.size() && !reported; ++wi) {
      const Access* w = list[wi];
      if (!w->is_write) continue;
      const int dep_line = w->site ? w->site->line : 0;
      const int dep_column = w->site ? w->site->column : 0;
      // Every (write, other) pair, including the write against itself:
      // `a[0] = i` self-conflicts across iterations (output dependence).
      // Write-write pairs are tested once (oi >= wi).
      for (std::size_t oi = 0; oi < list.size(); ++oi) {
        const Access* other = list[oi];
        if (other->is_write && oi < wi) continue;
        if (w->subscripts.size() != other->subscripts.size()) {
          ++verdict.dep_pairs_tested;
          ++verdict.dep_pairs_unknown;
          count_decision(DepTest::kConservative);
          PairProvenance prov;
          prov.array = name;
          prov.src_text = access_text(*w);
          prov.snk_text = access_text(*other);
          prov.test = dep_test_name(DepTest::kConservative);
          prov.carried = true;
          prov.exact = false;
          prov.line = dep_line;
          verdict.pair_provenance.push_back(std::move(prov));
          Dependence mismatch = array_dep(
              name, "accesses with different dimensionality", dep_line, dep_column);
          mismatch.deciding_test = dep_test_name(DepTest::kConservative);
          verdict.dependences.push_back(std::move(mismatch));
          reported = true;
          break;
        }
        ++verdict.dep_pairs_tested;
        const PairResult pair = nest.test_pair(*w, *other);
        if (!pair.exact) ++verdict.dep_pairs_unknown;
        count_decision(pair.deciding);
        PairProvenance prov;
        prov.array = name;
        prov.src_text = access_text(*w);
        prov.snk_text = access_text(*other);
        prov.test = dep_test_name(pair.deciding);
        prov.possible = pair.possible;
        prov.carried = pair.possible && pair.carried();
        prov.exact = pair.exact;
        prov.distance = pair.carried_distance();
        prov.direction = direction_vector(pair);
        prov.line = dep_line;
        verdict.pair_provenance.push_back(prov);
        if (!pair.possible || !pair.carried()) continue;

        Dependence dep;
        dep.variable = name;
        dep.line = dep_line;
        dep.column = dep_column;
        dep.detail = pair.exact ? "loop-carried dependence"
                                : "subscript too complex for dependence test";
        dep.distance = pair.carried_distance();
        if (dep.distance) dep.distance = std::abs(*dep.distance);
        dep.direction = prov.direction;
        dep.deciding_test = prov.test;
        verdict.dependences.push_back(std::move(dep));
        reported = true;
        break;
      }
    }
  }
}

void DependenceAnalyzer::analyze_arrays_legacy(const std::string& induction,
                                               const AccessSet& accesses,
                                               LoopVerdict& verdict) const {
  // Group array accesses by base variable.
  std::map<std::string, std::vector<const Access*>> arrays;
  for (const Access& a : accesses.accesses)
    if (a.is_array) arrays[a.variable].push_back(&a);

  for (const auto& [name, list] : arrays) {
    const bool any_write =
        std::any_of(list.begin(), list.end(), [](const Access* a) { return a->is_write; });
    if (!any_write) continue;

    for (const Access* w : list) {
      if (!w->is_write) continue;
      const int dep_line = w->site ? w->site->line : 0;
      const int dep_column = w->site ? w->site->column : 0;
      for (const Access* other : list) {
        if (other == w) continue;
        ++verdict.dep_pairs_tested;
        // Dimension-by-dimension comparison. Unequal ranks (A[i] vs A[i][j])
        // is aliasing we do not model: treat as unknown.
        if (w->subscripts.size() != other->subscripts.size()) {
          ++verdict.dep_pairs_unknown;
          count_decision(DepTest::kConservative);
          verdict.dependences.push_back(array_dep(
              name, "accesses with different dimensionality", dep_line, dep_column));
          verdict.dependences.back().deciding_test =
              dep_test_name(DepTest::kConservative);
          break;
        }
        bool disjoint = false;
        bool same_iteration_only = false;
        bool carried = false;
        bool unknown = false;
        for (std::size_t d = 0; d < w->subscripts.size(); ++d) {
          const Affine wa = analyze_subscript(*w->subscripts[d], induction);
          const Affine oa = analyze_subscript(*other->subscripts[d], induction);
          switch (compare_dimension(wa, oa)) {
            case DimRelation::kDisjoint: disjoint = true; break;
            case DimRelation::kCarried: carried = true; break;
            case DimRelation::kUnknown: unknown = true; break;
            case DimRelation::kSameIterationOnly: same_iteration_only = true; break;
          }
        }
        if (unknown) ++verdict.dep_pairs_unknown;
        const DepTest decided =
            unknown ? DepTest::kConservative : DepTest::kLegacySiv;
        count_decision(decided);
        PairProvenance prov;
        prov.array = name;
        prov.src_text = access_text(*w);
        prov.snk_text = access_text(*other);
        prov.test = dep_test_name(decided);
        prov.possible = !disjoint;
        prov.carried =
            !disjoint && !same_iteration_only && (carried || unknown);
        prov.exact = !unknown;
        prov.line = dep_line;
        verdict.pair_provenance.push_back(std::move(prov));
        // The accesses collide on iterations (i1, i2) only if EVERY
        // dimension matches. A disjoint dimension rules out collisions
        // entirely; a same-iteration-only dimension rules out cross-
        // iteration collisions no matter what the other dimensions do
        // (e.g. A[i][j] += ... : dim 0 pins i1 == i2).
        if (disjoint) continue;
        if (same_iteration_only) continue;
        if (unknown) {
          verdict.dependences.push_back(array_dep(
              name, "subscript too complex for dependence test", dep_line, dep_column));
          verdict.dependences.back().deciding_test =
              dep_test_name(DepTest::kConservative);
          break;
        }
        if (carried) {
          verdict.dependences.push_back(
              array_dep(name, "loop-carried dependence", dep_line, dep_column));
          verdict.dependences.back().deciding_test =
              dep_test_name(DepTest::kLegacySiv);
          break;
        }
      }
      if (!verdict.dependences.empty() && verdict.dependences.back().variable == name)
        break;
    }
  }
}

namespace {

/// Recognizes whether `stmt` is a reduction statement over scalar `s`.
/// Returns the operator, and appends every node of the statement subtree to
/// `covered` so the caller can verify no other accesses of `s` exist.
std::optional<ReductionOp> match_reduction_stmt(const Node& stmt, const std::string& s,
                                                bool allow_minmax,
                                                std::set<const Node*>& covered) {
  auto cover = [&covered](const Node& root) {
    frontend::walk(root, [&](const Node& n, int) { covered.insert(&n); });
  };

  const Node* expr = &stmt;
  if (expr->kind == NodeKind::kExprStmt) expr = &expr->child(0);

  if (expr->kind == NodeKind::kAssignment && expr->child(0).kind == NodeKind::kID &&
      expr->child(0).text == s) {
    const Node& rhs = expr->child(1);
    if (expr->text == "+=" && !mentions(rhs, s)) {
      cover(stmt);
      return ReductionOp::kAdd;
    }
    if (expr->text == "-=" && !mentions(rhs, s)) {
      cover(stmt);
      return ReductionOp::kSub;
    }
    if (expr->text == "*=" && !mentions(rhs, s)) {
      cover(stmt);
      return ReductionOp::kMul;
    }
    if (expr->text == "=") {
      // s = s + e | s = e + s | s = s * e | s = e * s | s = fmax(s, e)...
      if (rhs.kind == NodeKind::kBinaryOp && (rhs.text == "+" || rhs.text == "*")) {
        const Node& l = rhs.child(0);
        const Node& r = rhs.child(1);
        const bool l_is_s = l.kind == NodeKind::kID && l.text == s;
        const bool r_is_s = r.kind == NodeKind::kID && r.text == s;
        if (l_is_s != r_is_s) {
          const Node& other = l_is_s ? r : l;
          if (!mentions(other, s)) {
            cover(stmt);
            return rhs.text == "+" ? ReductionOp::kAdd : ReductionOp::kMul;
          }
        }
      }
      if (rhs.kind == NodeKind::kBinaryOp && rhs.text == "-") {
        const Node& l = rhs.child(0);
        if (l.kind == NodeKind::kID && l.text == s && !mentions(rhs.child(1), s)) {
          cover(stmt);
          return ReductionOp::kSub;
        }
      }
      if (rhs.kind == NodeKind::kFuncCall && rhs.child(0).kind == NodeKind::kID) {
        const std::string& fn = rhs.child(0).text;
        if ((fn == "fmax" || fn == "fmin" || fn == "max" || fn == "min" ||
             fn == "MAX" || fn == "MIN") &&
            rhs.child(1).children.size() == 2) {
          const Node& a0 = rhs.child(1).child(0);
          const Node& a1 = rhs.child(1).child(1);
          const bool first_is_s = a0.kind == NodeKind::kID && a0.text == s;
          const bool second_is_s = a1.kind == NodeKind::kID && a1.text == s;
          if (first_is_s != second_is_s) {
            cover(stmt);
            const bool is_max = fn == "fmax" || fn == "max" || fn == "MAX";
            return is_max ? ReductionOp::kMax : ReductionOp::kMin;
          }
        }
      }
    }
    return std::nullopt;
  }

  // if (e REL s) s = e;  — min/max via comparison.
  if (allow_minmax && expr->kind == NodeKind::kIf && expr->children.size() == 2) {
    const Node& cond = expr->child(0);
    const Node* assign = &expr->child(1);
    if (assign->kind == NodeKind::kCompound && assign->children.size() == 1)
      assign = &assign->child(0);
    if (assign->kind == NodeKind::kExprStmt) assign = &assign->child(0);
    if (cond.kind == NodeKind::kBinaryOp && assign->kind == NodeKind::kAssignment &&
        assign->text == "=" && assign->child(0).kind == NodeKind::kID &&
        assign->child(0).text == s) {
      const Node& value = assign->child(1);
      const std::string value_text = frontend::print_expression(value);
      const std::string l_text = frontend::print_expression(cond.child(0));
      const std::string r_text = frontend::print_expression(cond.child(1));
      const bool l_is_s = cond.child(0).kind == NodeKind::kID && cond.child(0).text == s;
      const bool r_is_s = cond.child(1).kind == NodeKind::kID && cond.child(1).text == s;
      if ((cond.text == ">" || cond.text == ">=") && r_is_s && l_text == value_text) {
        cover(stmt);
        return ReductionOp::kMax;  // if (e > s) s = e
      }
      if ((cond.text == "<" || cond.text == "<=") && r_is_s && l_text == value_text) {
        cover(stmt);
        return ReductionOp::kMin;
      }
      if ((cond.text == "<" || cond.text == "<=") && l_is_s && r_text == value_text) {
        cover(stmt);
        return ReductionOp::kMax;  // if (s < e) s = e
      }
      if ((cond.text == ">" || cond.text == ">=") && l_is_s && r_text == value_text) {
        cover(stmt);
        return ReductionOp::kMin;
      }
    }
  }
  return std::nullopt;
}

/// Collects the reduction statements for `s` anywhere in the body.
std::optional<ReductionOp> find_reduction(const Node& body, const std::string& s,
                                          bool allow_minmax,
                                          std::set<const Node*>& covered) {
  std::optional<ReductionOp> op;
  bool conflict = false;
  std::function<void(const Node&)> scan = [&](const Node& node) {
    std::set<const Node*> local;
    if (auto matched = match_reduction_stmt(node, s, allow_minmax, local)) {
      if (op && *op != *matched) conflict = true;
      op = matched;
      covered.insert(local.begin(), local.end());
      return;  // statement consumed; don't descend further
    }
    for (const auto& c : node.children) scan(*c);
  };
  scan(body);
  if (conflict) return std::nullopt;
  return op;
}

}  // namespace

void DependenceAnalyzer::analyze_scalars(const Node& body, const std::string& induction,
                                         const AccessSet& accesses,
                                         LoopVerdict& verdict) const {
  // Scalars declared inside the body are iteration-local by construction.
  std::set<std::string> local_decls;
  frontend::walk(body, [&](const Node& node, int) {
    if (node.kind == NodeKind::kDecl) local_decls.insert(node.text);
  });

  // Sites that execute conditionally (inside an If branch or a ternary
  // arm). A conditional first write does NOT privatize: on iterations where
  // the guard is false the stale value is observed — the lastprivate trap.
  std::set<const Node*> conditional_sites;
  frontend::walk(body, [&](const Node& node, int) {
    const std::size_t first_branch =
        node.kind == NodeKind::kIf || node.kind == NodeKind::kTernaryOp ? 1 : SIZE_MAX;
    for (std::size_t b = first_branch; b < node.children.size(); ++b)
      frontend::walk(node.child(b), [&](const Node& inner, int) {
        conditional_sites.insert(&inner);
      });
  });

  // Induction variables of nested canonical loops are privatizable.
  std::set<std::string> nested_inductions;
  frontend::walk(body, [&](const Node& node, int) {
    if (node.kind != NodeKind::kFor) return;
    if (auto inner = canonicalize(node)) nested_inductions.insert(inner->induction);
  });

  std::set<std::string> handled;
  for (const Access& access : accesses.accesses) {
    if (access.is_array || !access.is_write) continue;
    const std::string& name = access.variable;
    if (name == induction) continue;  // privatized by the runtime
    if (!handled.insert(name).second) continue;

    if (local_decls.count(name)) continue;  // block-scoped: already private

    if (nested_inductions.count(name)) {
      verdict.private_candidates.push_back(name);
      continue;
    }

    // Reduction idiom?
    if (options_.recognize_reduction) {
      std::set<const Node*> covered;
      if (auto op = find_reduction(body, name, options_.recognize_minmax_reduction,
                                   covered)) {
        // Every access of this scalar must belong to a reduction statement.
        const bool all_covered = std::all_of(
            accesses.accesses.begin(), accesses.accesses.end(), [&](const Access& a) {
              return a.variable != name || covered.count(a.site) > 0;
            });
        if (all_covered && !covered.empty()) {
          verdict.reductions.push_back(Reduction{*op, name});
          continue;
        }
      }
    }

    // Privatizable? Def-before-use within the body: the first access in
    // program order must be a write that executes unconditionally.
    const Access* first = nullptr;
    for (const Access& a : accesses.accesses) {
      if (a.variable == name && !a.is_array) {
        first = &a;
        break;
      }
    }
    if (first && first->is_write && conditional_sites.count(first->site) == 0) {
      verdict.private_candidates.push_back(name);
      continue;
    }

    Dependence dep;
    dep.variable = name;
    dep.detail = "loop-carried scalar dependence";
    dep.line = access.site ? access.site->line : 0;
    dep.column = access.site ? access.site->column : 0;
    dep.scalar = true;
    dep.distance = 1;  // each iteration reads the previous iteration's value
    dep.deciding_test = dep_test_name(DepTest::kScalar);
    count_decision(DepTest::kScalar);
    PairProvenance prov;
    prov.array = name;
    prov.src_text = name;
    prov.snk_text = name;
    prov.test = dep.deciding_test;
    prov.carried = true;
    prov.scalar = true;
    prov.distance = 1;
    prov.direction = "(<)";
    prov.line = dep.line;
    verdict.pair_provenance.push_back(std::move(prov));
    verdict.dependences.push_back(std::move(dep));
  }
}

}  // namespace clpp::analysis
