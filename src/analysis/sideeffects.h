// Function side-effect analysis.
//
// The paper identifies "determining function side effects" as a major S2S
// pitfall [24]: Cetus-class compilers must prove a called function pure (or
// at least loop-safe) before parallelizing a loop that calls it. This
// module classifies callees as pure / io / alloc / writes-memory / unknown,
// analyzing snippet-local function bodies recursively and falling back to a
// whitelist of libm-style pure functions.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "frontend/ast.h"

namespace clpp::analysis {

/// Effect classification of a callee, ordered by severity.
enum class CallEffect {
  kPure,         // no memory effects beyond its own locals (safe)
  kWritesArgs,   // may write through pointer/array arguments
  kAllocates,    // malloc/free family — not thread-safe to reorder freely
  kIo,           // printf/scanf family — ordering matters, never parallel
  kUnknown,      // no body available and not whitelisted
};

std::string call_effect_name(CallEffect effect);

/// Side-effect oracle over a snippet: knows whitelisted library functions
/// and analyzes locally defined functions (FuncDef nodes in the unit).
class SideEffectOracle {
 public:
  /// Builds the oracle from a snippet translation unit: indexes every
  /// FuncDef with a body and classifies it bottom-up.
  explicit SideEffectOracle(const frontend::Node& unit);

  /// Effect of calling `name`.
  CallEffect effect_of(const std::string& name) const;

  /// Worst effect among `names` (kPure when empty).
  CallEffect worst_effect(const std::vector<std::string>& names) const;

  /// True if the function's body was found in the snippet.
  bool has_local_body(const std::string& name) const;

  /// True if `name` is on the built-in pure whitelist (libm etc.).
  static bool is_whitelisted_pure(const std::string& name);
  /// True if `name` is a known I/O function.
  static bool is_known_io(const std::string& name);
  /// True if `name` is a known allocation function.
  static bool is_known_alloc(const std::string& name);

 private:
  CallEffect classify(const std::string& name,
                      std::vector<std::string>& in_progress) const;

  std::map<std::string, const frontend::Node*> bodies_;
  mutable std::map<std::string, CallEffect> cache_;
};

/// Severity order for combining effects.
CallEffect worse(CallEffect a, CallEffect b);

}  // namespace clpp::analysis
