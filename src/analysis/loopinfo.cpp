#include "analysis/loopinfo.h"

#include <cmath>

namespace clpp::analysis {

using frontend::Node;
using frontend::NodeKind;

std::optional<long long> literal_value(const Node& expr) {
  if (expr.kind == NodeKind::kConstant && expr.aux == "int") {
    try {
      return std::stoll(expr.text);
    } catch (const std::exception&) {
      return std::nullopt;
    }
  }
  if (expr.kind == NodeKind::kUnaryOp && expr.text == "-") {
    if (auto inner = literal_value(expr.child(0))) return -*inner;
  }
  return std::nullopt;
}

std::optional<long long> CanonicalLoop::static_trip_count() const {
  if (!lower || !upper) return std::nullopt;
  const auto lo = literal_value(*lower);
  const auto hi = literal_value(*upper);
  if (!lo || !hi || step == 0) return std::nullopt;
  long long span = 0;
  if (direction == LoopDirection::kUp) {
    span = *hi - *lo + (relation == "<=" ? 1 : 0);
  } else {
    span = *lo - *hi + (relation == ">=" ? 1 : 0);
  }
  if (span <= 0) return 0;
  const long long mag = std::abs(step);
  return (span + mag - 1) / mag;
}

namespace {

/// Extracts (var, lower) from the init clause.
bool match_init(const Node& init, std::string& var, const Node*& lower,
                bool& declared) {
  if (init.kind == NodeKind::kDecl) {
    // `int i = expr` — dims would make this non-canonical.
    if (init.aux.find("[]") != std::string::npos || init.children.size() != 1)
      return false;
    var = init.text;
    lower = &init.child(0);
    declared = true;
    return true;
  }
  if (init.kind == NodeKind::kAssignment && init.text == "=" &&
      init.child(0).kind == NodeKind::kID) {
    var = init.child(0).text;
    lower = &init.child(1);
    declared = false;
    return true;
  }
  return false;
}

/// Extracts the relation and bound from the condition clause.
bool match_cond(const Node& cond, const std::string& var, std::string& relation,
                const Node*& upper) {
  if (cond.kind != NodeKind::kBinaryOp) return false;
  if (cond.text != "<" && cond.text != "<=" && cond.text != ">" && cond.text != ">=")
    return false;
  if (cond.child(0).kind == NodeKind::kID && cond.child(0).text == var) {
    relation = cond.text;
    upper = &cond.child(1);
    return true;
  }
  // Reversed form `N > i`.
  if (cond.child(1).kind == NodeKind::kID && cond.child(1).text == var) {
    if (cond.text == "<") relation = ">";
    else if (cond.text == "<=") relation = ">=";
    else if (cond.text == ">") relation = "<";
    else relation = "<=";
    upper = &cond.child(0);
    return true;
  }
  return false;
}

/// Extracts the signed step from the increment clause.
bool match_step(const Node& next, const std::string& var, long long& step) {
  if (next.kind == NodeKind::kUnaryOp) {
    if (next.child(0).kind != NodeKind::kID || next.child(0).text != var) return false;
    if (next.text == "++" || next.text == "p++") {
      step = 1;
      return true;
    }
    if (next.text == "--" || next.text == "p--") {
      step = -1;
      return true;
    }
    return false;
  }
  if (next.kind == NodeKind::kAssignment) {
    if (next.child(0).kind != NodeKind::kID || next.child(0).text != var) return false;
    if (next.text == "+=" || next.text == "-=") {
      const auto value = literal_value(next.child(1));
      if (!value || *value <= 0) return false;
      step = next.text == "+=" ? *value : -*value;
      return true;
    }
    if (next.text == "=") {
      // i = i + c / i = i - c
      const Node& rhs = next.child(1);
      if (rhs.kind != NodeKind::kBinaryOp || (rhs.text != "+" && rhs.text != "-"))
        return false;
      if (rhs.child(0).kind != NodeKind::kID || rhs.child(0).text != var) return false;
      const auto value = literal_value(rhs.child(1));
      if (!value || *value <= 0) return false;
      step = rhs.text == "+" ? *value : -*value;
      return true;
    }
  }
  return false;
}

}  // namespace

std::optional<CanonicalLoop> canonicalize(const Node& loop) {
  CLPP_CHECK_MSG(loop.kind == NodeKind::kFor, "canonicalize expects a For node");
  if (loop.children.size() != 4) return std::nullopt;

  CanonicalLoop out;
  if (!match_init(loop.child(0), out.induction, out.lower, out.declared_in_init))
    return std::nullopt;
  if (!match_cond(loop.child(1), out.induction, out.relation, out.upper))
    return std::nullopt;
  if (!match_step(loop.child(2), out.induction, out.step)) return std::nullopt;

  const bool upward = out.relation == "<" || out.relation == "<=";
  out.direction = upward ? LoopDirection::kUp : LoopDirection::kDown;
  // Step must move toward the bound.
  if (upward && out.step <= 0) return std::nullopt;
  if (!upward && out.step >= 0) return std::nullopt;
  return out;
}

bool has_early_exit(const Node& body) {
  bool found = false;
  frontend::walk(body, [&](const Node& node, int) {
    switch (node.kind) {
      case NodeKind::kBreak:
      case NodeKind::kGoto:
      case NodeKind::kReturn:
        found = true;
        break;
      case NodeKind::kFor:
      case NodeKind::kWhile:
      case NodeKind::kDoWhile:
        // `break` inside a nested loop exits that loop, not ours — but the
        // generic walk cannot tell; stay conservative only for goto/return,
        // which always escape. (break handled by the nested scan below.)
        break;
      default:
        break;
    }
  });
  if (found) {
    // Refine: allow break/goto only if none actually escapes the outer body.
    // A precise scan: break directly in our body (not nested in a loop or
    // switch) escapes; goto/return always escape.
    found = false;
    std::function<void(const Node&, bool)> scan = [&](const Node& node, bool in_nested) {
      switch (node.kind) {
        case NodeKind::kReturn:
        case NodeKind::kGoto:
          found = true;
          return;
        case NodeKind::kBreak:
          if (!in_nested) found = true;
          return;
        case NodeKind::kFor:
        case NodeKind::kWhile:
        case NodeKind::kDoWhile:
          for (const auto& c : node.children) scan(*c, true);
          return;
        default:
          for (const auto& c : node.children) scan(*c, in_nested);
          return;
      }
    };
    scan(body, false);
  }
  return found;
}

bool has_conditional_work(const Node& body) {
  bool found = false;
  frontend::walk(body, [&](const Node& node, int) {
    if (node.kind != NodeKind::kIf) return;
    // "Work" under the condition = a call or a nested loop in either branch.
    for (std::size_t i = 1; i < node.children.size(); ++i) {
      const Node& branch = node.child(i);
      if (frontend::count_kind(branch, NodeKind::kFuncCall) > 0 ||
          frontend::count_kind(branch, NodeKind::kFor) > 0 ||
          frontend::count_kind(branch, NodeKind::kWhile) > 0)
        found = true;
    }
  });
  return found;
}

}  // namespace clpp::analysis
