#include "analysis/sideeffects.h"

#include <algorithm>
#include <array>

#include "analysis/accesses.h"

namespace clpp::analysis {

using frontend::Node;
using frontend::NodeKind;

std::string call_effect_name(CallEffect effect) {
  switch (effect) {
    case CallEffect::kPure: return "pure";
    case CallEffect::kWritesArgs: return "writes-args";
    case CallEffect::kAllocates: return "allocates";
    case CallEffect::kIo: return "io";
    case CallEffect::kUnknown: return "unknown";
  }
  return "unknown";
}

CallEffect worse(CallEffect a, CallEffect b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

bool SideEffectOracle::is_whitelisted_pure(const std::string& name) {
  static constexpr std::array kPure = {
      "sqrt",  "sqrtf", "fabs",  "fabsf", "abs",   "sin",   "cos",   "tan",
      "asin",  "acos",  "atan",  "atan2", "exp",   "expf",  "log",   "logf",
      "log2",  "log10", "pow",   "powf",  "fmax",  "fmin",  "fmod",  "floor",
      "ceil",  "round", "hypot", "cbrt",  "min",   "max",   "MIN",   "MAX"};
  return std::find(kPure.begin(), kPure.end(), name) != kPure.end();
}

bool SideEffectOracle::is_known_io(const std::string& name) {
  static constexpr std::array kIo = {"printf",  "fprintf", "sprintf", "snprintf",
                                     "scanf",   "fscanf",  "sscanf",  "puts",
                                     "fputs",   "fgets",   "getchar", "putchar",
                                     "fopen",   "fclose",  "fread",   "fwrite",
                                     "fflush",  "exit",    "abort",   "perror",
                                     "rand",    "srand",   "time",    "clock"};
  return std::find(kIo.begin(), kIo.end(), name) != kIo.end();
}

bool SideEffectOracle::is_known_alloc(const std::string& name) {
  static constexpr std::array kAlloc = {"malloc", "calloc", "realloc", "free",
                                        "memcpy", "memset", "memmove", "strcpy",
                                        "strcat", "strlen"};
  return std::find(kAlloc.begin(), kAlloc.end(), name) != kAlloc.end();
}

SideEffectOracle::SideEffectOracle(const Node& unit) {
  frontend::walk(unit, [&](const Node& node, int) {
    if (node.kind == NodeKind::kFuncDef && node.children.size() > 1 &&
        node.child(1).kind == NodeKind::kCompound)
      bodies_.emplace(node.text, &node);
  });
}

bool SideEffectOracle::has_local_body(const std::string& name) const {
  return bodies_.count(name) > 0;
}

CallEffect SideEffectOracle::effect_of(const std::string& name) const {
  std::vector<std::string> in_progress;
  return classify(name, in_progress);
}

CallEffect SideEffectOracle::worst_effect(const std::vector<std::string>& names) const {
  CallEffect effect = CallEffect::kPure;
  for (const std::string& name : names) effect = worse(effect, effect_of(name));
  return effect;
}

CallEffect SideEffectOracle::classify(const std::string& name,
                                      std::vector<std::string>& in_progress) const {
  if (auto it = cache_.find(name); it != cache_.end()) return it->second;
  if (is_known_io(name)) return cache_[name] = CallEffect::kIo;
  if (is_known_alloc(name)) return cache_[name] = CallEffect::kAllocates;
  if (is_whitelisted_pure(name)) return cache_[name] = CallEffect::kPure;

  auto it = bodies_.find(name);
  if (it == bodies_.end()) return cache_[name] = CallEffect::kUnknown;
  // Recursion guard: a cycle means we cannot prove purity.
  if (std::find(in_progress.begin(), in_progress.end(), name) != in_progress.end())
    return CallEffect::kUnknown;
  in_progress.push_back(name);

  const Node& fn = *it->second;
  const Node& params = fn.child(0);
  const Node& body = fn.child(1);
  const AccessSet accesses = collect_accesses(body);

  CallEffect effect = CallEffect::kPure;
  // Callee's own calls.
  for (const std::string& callee : accesses.hazards.called_functions)
    effect = worse(effect, classify(callee, in_progress));
  if (accesses.hazards.function_pointer_call) effect = CallEffect::kUnknown;

  // Writes: local declarations are fine; writes to parameters passed as
  // pointers/arrays (or to names not declared locally = globals) are not.
  std::vector<std::string> locals;
  frontend::walk(body, [&](const Node& node, int) {
    if (node.kind == NodeKind::kDecl) locals.push_back(node.text);
  });
  std::vector<std::string> pointer_params;
  std::vector<std::string> value_params;
  for (const auto& p : params.children) {
    const bool is_pointer = p->aux.find('*') != std::string::npos ||
                            p->aux.find("[]") != std::string::npos;
    (is_pointer ? pointer_params : value_params).push_back(p->text);
  }
  for (const Access& a : accesses.accesses) {
    if (!a.is_write) continue;
    if (std::find(locals.begin(), locals.end(), a.variable) != locals.end()) continue;
    if (std::find(value_params.begin(), value_params.end(), a.variable) !=
        value_params.end())
      continue;  // writing a by-value scalar param touches only the copy
    if (std::find(pointer_params.begin(), pointer_params.end(), a.variable) !=
        pointer_params.end()) {
      effect = worse(effect, a.is_array ? CallEffect::kWritesArgs
                                        : CallEffect::kPure);  // p = ... rebinds copy
      continue;
    }
    // Write to something not local and not a parameter: a global.
    effect = worse(effect, CallEffect::kWritesArgs);
  }
  if (accesses.hazards.pointer_deref_write)
    effect = worse(effect, CallEffect::kWritesArgs);

  in_progress.pop_back();
  return cache_[name] = effect;
}

}  // namespace clpp::analysis
