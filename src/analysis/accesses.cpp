#include "analysis/accesses.h"

#include <algorithm>
#include <set>

namespace clpp::analysis {

using frontend::Node;
using frontend::NodeKind;

namespace {

/// Recursive collector distinguishing read and write contexts.
class Collector {
 public:
  explicit Collector(AccessSet& out) : out_(out) {}

  void scan(const Node& node) { expr(node, /*write=*/false); }

 private:
  /// Peels ArrayRef chains down to the base, collecting subscripts
  /// outermost-first; returns the base node.
  const Node* peel_array(const Node& node, std::vector<const Node*>& subscripts) {
    if (node.kind == NodeKind::kArrayRef) {
      const Node* base = peel_array(node.child(0), subscripts);
      subscripts.push_back(&node.child(1));
      return base;
    }
    return &node;
  }

  void record(const std::string& name, bool write, bool array,
              std::vector<const Node*> subscripts, const Node* site) {
    out_.accesses.push_back(
        Access{name, write, array, std::move(subscripts), site});
  }

  /// Handles an lvalue occurrence (assignment target, ++/--). For
  /// read-modify-write forms the read is recorded *before* the write, so
  /// def-before-use privatization tests see the true program order.
  void lvalue(const Node& node, bool also_read) {
    switch (node.kind) {
      case NodeKind::kID:
        if (also_read) record(node.text, false, false, {}, &node);
        record(node.text, /*write=*/true, /*array=*/false, {}, &node);
        return;
      case NodeKind::kArrayRef: {
        std::vector<const Node*> subscripts;
        const Node* base = peel_array(node, subscripts);
        // Subscript expressions themselves are reads.
        for (const Node* s : subscripts) expr(*s, false);
        if (base->kind == NodeKind::kID) {
          if (also_read) record(base->text, false, true, subscripts, &node);
          record(base->text, true, true, subscripts, &node);
        } else {
          // Writing through a computed base (struct member array, deref).
          out_.hazards.pointer_deref_write = true;
          expr(*base, false);
        }
        return;
      }
      case NodeKind::kUnaryOp:
        if (node.text == "*") {
          out_.hazards.pointer_deref_write = true;
          expr(node.child(0), false);
          return;
        }
        expr(node, false);
        return;
      case NodeKind::kStructRef:
        out_.hazards.struct_access = true;
        out_.hazards.pointer_deref_write = true;
        expr(node.child(0), false);
        return;
      default:
        expr(node, false);
        return;
    }
  }

  void expr(const Node& node, bool write) {
    switch (node.kind) {
      case NodeKind::kID:
        record(node.text, write, false, {}, &node);
        return;
      case NodeKind::kAssignment: {
        // The rhs is evaluated before the store, so record its reads first:
        // def-before-use analyses rely on this program order. Compound
        // assignments also read the target before writing it.
        expr(node.child(1), false);
        lvalue(node.child(0), /*also_read=*/node.text != "=");
        return;
      }
      case NodeKind::kUnaryOp: {
        if (node.text == "++" || node.text == "--" || node.text == "p++" ||
            node.text == "p--") {
          lvalue(node.child(0), /*also_read=*/true);
          return;
        }
        if (node.text == "&") {
          out_.hazards.address_taken = true;
          expr(node.child(0), false);
          return;
        }
        expr(node.child(0), false);
        return;
      }
      case NodeKind::kArrayRef: {
        std::vector<const Node*> subscripts;
        const Node* base = peel_array(node, subscripts);
        for (const Node* s : subscripts) expr(*s, false);
        if (base->kind == NodeKind::kID) {
          record(base->text, write, true, subscripts, &node);
        } else {
          if (write) out_.hazards.pointer_deref_write = true;
          expr(*base, false);
        }
        return;
      }
      case NodeKind::kFuncCall: {
        const Node& callee = node.child(0);
        if (callee.kind == NodeKind::kID) {
          out_.hazards.called_functions.push_back(callee.text);
        } else {
          out_.hazards.function_pointer_call = true;
          expr(callee, false);
        }
        // Arguments are reads; arrays/pointers passed by value may still be
        // written through — the side-effect analysis decides what that means.
        for (const auto& arg : node.child(1).children) expr(*arg, false);
        return;
      }
      case NodeKind::kStructRef:
        out_.hazards.struct_access = true;
        expr(node.child(0), write);
        return;
      case NodeKind::kDecl: {
        // Declarations write their name; dims and init are reads.
        record(node.text, true, false, {}, &node);
        for (const auto& c : node.children) expr(*c, false);
        return;
      }
      case NodeKind::kConstant:
      case NodeKind::kEmpty:
      case NodeKind::kPragma:
      case NodeKind::kBreak:
      case NodeKind::kContinue:
      case NodeKind::kGoto:
        return;
      default:
        for (const auto& c : node.children) expr(*c, false);
        return;
    }
  }

  AccessSet& out_;
};

}  // namespace

std::vector<const Access*> AccessSet::writes_of(const std::string& variable) const {
  std::vector<const Access*> out;
  for (const Access& a : accesses)
    if (a.is_write && a.variable == variable) out.push_back(&a);
  return out;
}

std::vector<const Access*> AccessSet::reads_of(const std::string& variable) const {
  std::vector<const Access*> out;
  for (const Access& a : accesses)
    if (!a.is_write && a.variable == variable) out.push_back(&a);
  return out;
}

bool AccessSet::is_written(const std::string& variable) const {
  return std::any_of(accesses.begin(), accesses.end(), [&](const Access& a) {
    return a.is_write && a.variable == variable;
  });
}

bool AccessSet::is_read(const std::string& variable) const {
  return std::any_of(accesses.begin(), accesses.end(), [&](const Access& a) {
    return !a.is_write && a.variable == variable;
  });
}

std::vector<std::string> AccessSet::variables() const {
  std::set<std::string> names;
  for (const Access& a : accesses) names.insert(a.variable);
  return {names.begin(), names.end()};
}

AccessSet collect_accesses(const frontend::Node& node) {
  AccessSet out;
  Collector{out}.scan(node);
  return out;
}

}  // namespace clpp::analysis
