#include "analysis/ddtest.h"

#include <algorithm>
#include <functional>
#include <numeric>

#include "frontend/printer.h"
#include "support/error.h"

namespace clpp::analysis {

using frontend::Node;
using frontend::NodeKind;

namespace {

// Interval arithmetic saturates well below the LLONG range so that sums of
// products of user literals cannot wrap; only the sign and 0-membership of
// bounds matter, so clamping is sound.
constexpr long long kBig = 1LL << 62;

long long sat(long long v) { return std::clamp(v, -kBig, kBig); }

long long sat_add(long long a, long long b) {
  return sat(static_cast<long long>(
      std::clamp(static_cast<__int128>(a) + b, static_cast<__int128>(-kBig),
                 static_cast<__int128>(kBig))));
}

long long sat_mul(long long a, long long b) {
  return sat(static_cast<long long>(
      std::clamp(static_cast<__int128>(a) * b, static_cast<__int128>(-kBig),
                 static_cast<__int128>(kBig))));
}

bool mentions_outside(const Node& expr, const SubscriptEnv& env) {
  bool bad = false;
  frontend::walk(expr, [&](const Node& n, int) {
    if (n.kind == NodeKind::kID &&
        (env.vars.count(n.text) > 0 || env.mutated.count(n.text) > 0))
      bad = true;
  });
  return bad;
}

bool has_assignment(const Node& expr) {
  bool found = false;
  frontend::walk(expr, [&](const Node& n, int) {
    if (n.kind == NodeKind::kAssignment) found = true;
    if (n.kind == NodeKind::kUnaryOp &&
        (n.text == "++" || n.text == "--" || n.text == "p++" || n.text == "p--"))
      found = true;
  });
  return found;
}

AffineForm not_affine() { return AffineForm{}; }

void fold_in(AffineForm& out, const AffineForm& in, long long scale) {
  for (const auto& [v, c] : in.coeffs) out.coeffs[v] += scale * c;
  for (const auto& [s, c] : in.symbols) out.symbols[s] += scale * c;
  out.offset += scale * in.offset;
}

void prune_zeros(AffineForm& f) {
  std::erase_if(f.coeffs, [](const auto& e) { return e.second == 0; });
  std::erase_if(f.symbols, [](const auto& e) { return e.second == 0; });
}

}  // namespace

AffineForm analyze_affine(const Node& expr, const SubscriptEnv& env) {
  if (auto value = literal_value(expr)) {
    AffineForm f;
    f.affine = true;
    f.offset = *value;
    return f;
  }
  if (expr.kind == NodeKind::kID) {
    AffineForm f;
    f.affine = true;
    if (env.vars.count(expr.text) > 0) {
      f.coeffs[expr.text] = 1;
    } else if (env.mutated.count(expr.text) == 0) {
      f.symbols[expr.text] = 1;
    } else {
      return not_affine();  // value changes inside the body: not cancelable
    }
    return f;
  }
  if (expr.kind == NodeKind::kBinaryOp &&
      (expr.text == "+" || expr.text == "-" || expr.text == "*")) {
    const AffineForm lhs = analyze_affine(expr.child(0), env);
    const AffineForm rhs = analyze_affine(expr.child(1), env);
    if (lhs.affine && rhs.affine) {
      if (expr.text == "+" || expr.text == "-") {
        AffineForm out = lhs;
        fold_in(out, rhs, expr.text == "+" ? 1 : -1);
        prune_zeros(out);
        return out;
      }
      // Multiplication stays affine only against a pure literal factor;
      // symbolic coefficients (i*N) would need delinearization.
      const bool lhs_const = lhs.coeffs.empty() && lhs.symbols.empty();
      const bool rhs_const = rhs.coeffs.empty() && rhs.symbols.empty();
      if (lhs_const || rhs_const) {
        AffineForm out;
        out.affine = true;
        fold_in(out, lhs_const ? rhs : lhs, lhs_const ? lhs.offset : rhs.offset);
        prune_zeros(out);
        return out;
      }
    }
    // fall through to the opaque-invariant rule
  }
  if (expr.kind == NodeKind::kUnaryOp && (expr.text == "-" || expr.text == "+")) {
    const AffineForm inner = analyze_affine(expr.child(0), env);
    if (inner.affine) {
      AffineForm out;
      out.affine = true;
      fold_in(out, inner, expr.text == "-" ? -1 : 1);
      prune_zeros(out);
      return out;
    }
  }
  // Loop-invariant but non-affine subtree (n*m, f(n), c[k] with invariant
  // k...): usable as one opaque symbol keyed by printed text — it cancels
  // against a textually identical subtree, the same-text rule the seed
  // engine applied. Mutated names or quantified vars inside disqualify it.
  if (!mentions_outside(expr, env) && !has_assignment(expr)) {
    AffineForm f;
    f.affine = true;
    f.symbols[frontend::print_expression(expr)] = 1;
    return f;
  }
  return not_affine();
}

const char* dep_test_name(DepTest test) {
  switch (test) {
    case DepTest::kConservative: return "conservative";
    case DepTest::kZiv: return "ziv";
    case DepTest::kStrongSiv: return "strong-siv";
    case DepTest::kGcd: return "gcd";
    case DepTest::kBanerjee: return "banerjee";
    case DepTest::kTextPinned: return "text-pinned";
    case DepTest::kLegacySiv: return "legacy-siv";
    case DepTest::kScalar: return "scalar-recurrence";
  }
  return "unknown";
}

std::string direction_text(unsigned dirs) {
  switch (dirs & kDirAll) {
    case 0: return "0";
    case kDirLt: return "<";
    case kDirEq: return "=";
    case kDirGt: return ">";
    case kDirLt | kDirEq: return "<=";
    case kDirEq | kDirGt: return ">=";
    case kDirLt | kDirGt: return "<>";
    default: return "*";
  }
}

bool PairResult::carried() const {
  if (!possible) return false;
  if (levels.empty()) return true;  // conservative: no level information
  return (levels.front().dirs & (kDirLt | kDirGt)) != 0;
}

std::optional<long long> PairResult::carried_distance() const {
  if (!possible || levels.empty()) return std::nullopt;
  return levels.front().distance;
}

// ---------------------------------------------------------------------------
// NestContext

NestContext::NestContext(const Node& loop) : loop_(&loop) {
  const auto canonical = canonicalize(loop);
  CLPP_CHECK_MSG(canonical.has_value(), "NestContext expects a canonical loop");
  analyzed_ = *canonical;

  // Record every canonical `for` in the nest and, for every AST node, the
  // chain of enclosing canonical loops (analyzed loop first). Non-canonical
  // loops contribute no binding: their inductions stay in `mutated` and any
  // subscript that mentions one degrades to a conservative answer.
  std::vector<const LoopRec*> stack;
  std::function<void(const Node&)> visit = [&](const Node& node) {
    const LoopRec* entered = nullptr;
    if (node.kind == NodeKind::kFor) {
      if (auto canon = canonicalize(node)) {
        auto rec = std::make_unique<LoopRec>();
        rec->node = &node;
        rec->canon = *canon;
        rec->trip = canon->static_trip_count();
        entered = rec.get();
        loops_.push_back(std::move(rec));
        stack.push_back(entered);
      }
    }
    chains_[&node] = stack;
    for (const auto& c : node.children) visit(*c);
    if (entered != nullptr) stack.pop_back();
  };
  visit(loop);

  for (const auto& rec : loops_) env_.vars.insert(rec->canon.induction);
  const AccessSet accesses = collect_accesses(loop.child(3));
  for (const Access& a : accesses.accesses)
    if (a.is_write && !a.is_array) env_.mutated.insert(a.variable);
}

const std::vector<const NestContext::LoopRec*>* NestContext::chain_of(
    const Node* site) const {
  const auto it = chains_.find(site);
  if (it == chains_.end() || it->second.empty()) return nullptr;
  return &it->second;
}

namespace {

/// One side-tagged iteration-count variable t(side, loop).
using IterKey = std::pair<int, const void*>;

/// Linear difference src - snk over iteration-count variables.
struct LinearDiff {
  bool ok = true;  // false: fell back to conservative (no constraint)
  /// Non-affine dimension resolved by the identical-subscript rule: it
  /// contributes `=` pins instead of numeric terms and does not degrade
  /// the result to inexact.
  bool text_pinned = false;
  std::map<IterKey, long long> terms;
  long long constant = 0;
};

}  // namespace

PairResult NestContext::test_pair(const Access& src, const Access& snk) const {
  PairResult conservative;
  conservative.exact = false;
  conservative.levels.push_back({analyzed_.induction, kDirAll, std::nullopt});

  const auto* chain_src = chain_of(src.site);
  const auto* chain_snk = chain_of(snk.site);
  if (chain_src == nullptr || chain_snk == nullptr) return conservative;

  // Common enclosing canonical loops: the shared root-down prefix.
  std::vector<const LoopRec*> common;
  for (std::size_t i = 0; i < chain_src->size() && i < chain_snk->size(); ++i) {
    if ((*chain_src)[i] != (*chain_snk)[i]) break;
    common.push_back((*chain_src)[i]);
  }
  if (common.empty() || common.front()->node != loop_) return conservative;

  // Lower one side of one subscript into iteration-count variables:
  // value(v bound at loop L) = lower_L + step_L * t(side, L), recursing
  // into lower bounds that reference outer inductions.
  std::function<bool(const AffineForm&, int, std::size_t,
                     const std::vector<const LoopRec*>&, long long, LinearDiff&,
                     std::map<std::string, long long>&)>
      lower_form = [&](const AffineForm& form, int side, std::size_t depth,
                       const std::vector<const LoopRec*>& chain, long long scale,
                       LinearDiff& out, std::map<std::string, long long>& syms) {
        if (!form.affine) return false;
        out.constant = sat_add(out.constant, sat_mul(scale, form.offset));
        for (const auto& [sym, c] : form.symbols) syms[sym] += scale * c;
        for (const auto& [name, c] : form.coeffs) {
          // Innermost binding of `name` along this access's chain.
          std::size_t bind = depth;
          while (bind > 0 && chain[bind - 1]->canon.induction != name) --bind;
          if (bind == 0) return false;  // not bound here: stay conservative
          const LoopRec* rec = chain[bind - 1];
          const long long coeff = sat_mul(scale, c);
          out.terms[{side, rec}] += sat_mul(coeff, rec->canon.step);
          const AffineForm low = analyze_affine(*rec->canon.lower, env_);
          if (!lower_form(low, side, bind - 1, chain, coeff, out, syms))
            return false;
        }
        return true;
      };

  const std::size_t rank = std::min(src.subscripts.size(), snk.subscripts.size());
  std::vector<LinearDiff> dims;
  // Levels an identical-text dimension pins to the `=` direction (below).
  std::set<const LoopRec*> force_eq;
  for (std::size_t d = 0; d < rank; ++d) {
    LinearDiff diff;
    std::map<std::string, long long> syms;
    const AffineForm fs = analyze_affine(*src.subscripts[d], env_);
    const AffineForm fk = analyze_affine(*snk.subscripts[d], env_);
    LinearDiff pos, neg;
    std::map<std::string, long long> syms_pos, syms_neg;
    if (!lower_form(fs, 1, chain_src->size(), *chain_src, 1, pos, syms_pos) ||
        !lower_form(fk, 2, chain_snk->size(), *chain_snk, 1, neg, syms_neg)) {
      diff.ok = false;
      dims.push_back(diff);
      // Identical-subscript rule: two textually identical subscripts —
      // G[(i*NL)+j] on both sides — address the same element exactly when
      // the mentioned inductions agree, because a pure arithmetic index
      // expression is injective in practice for real linearized subscripts
      // (row-major i*N+j with j < N). That pins every mentioned level to
      // the `=` direction. The rule is OFF for subscripts routed through
      // memory or calls (A[idx[i]], A[f(i)]) — those maps are arbitrary
      // and can collide across iterations — and for expressions reading
      // body-mutated scalars, where text equality no longer means value
      // equality.
      if (frontend::print_expression(*src.subscripts[d]) ==
              frontend::print_expression(*snk.subscripts[d]) &&
          !has_assignment(*src.subscripts[d])) {
        bool opaque = false;
        std::set<std::string> mentioned;
        frontend::walk(*src.subscripts[d], [&](const Node& n, int) {
          if (n.kind == NodeKind::kArrayRef || n.kind == NodeKind::kFuncCall)
            opaque = true;
          if (n.kind != NodeKind::kID) return;
          mentioned.insert(n.text);
          // Canonical inductions are "mutated" by their own loop headers;
          // they are exactly what the rule pins, so only other written
          // scalars disqualify it.
          if (env_.mutated.count(n.text) > 0 && env_.vars.count(n.text) == 0)
            opaque = true;
        });
        if (!opaque) {
          dims.back().text_pinned = true;
          for (const LoopRec* lvl : common)
            if (mentioned.count(lvl->canon.induction) > 0) force_eq.insert(lvl);
        }
      }
      continue;
    }
    for (const auto& [k, c] : pos.terms) diff.terms[k] += c;
    for (const auto& [k, c] : neg.terms) diff.terms[k] -= c;
    diff.constant = sat_add(pos.constant, -neg.constant);
    for (const auto& [s, c] : syms_pos) syms[s] += c;
    for (const auto& [s, c] : syms_neg) syms[s] -= c;
    std::erase_if(diff.terms, [](const auto& e) { return e.second == 0; });
    const bool syms_cancel =
        std::all_of(syms.begin(), syms.end(), [](const auto& e) { return e.second == 0; });
    if (!syms_cancel) diff.ok = false;  // unresolved symbolic difference
    dims.push_back(diff);
  }

  // Provenance bookkeeping: which hierarchy members actually ran on this
  // pair, and which one fired the most recent refutation. `refuter` is only
  // meaningful right after a class_possible call returned false.
  struct Mechanisms {
    bool ziv = false, gcd = false, banerjee = false;
    DepTest refuter = DepTest::kBanerjee;
  } mech;

  // Direction-class test for dimension `diff` at level `lvl`: substitute the
  // class constraint on (t_src, t_snk) of `lvl`, then refute with a GCD
  // divisibility test and Banerjee-style interval bounds. Every remaining
  // variable v ranges over [0, hi] (hi == nullopt: unbounded).
  const auto class_possible = [&](const LinearDiff& diff, const LoopRec* lvl,
                                  unsigned cls) {
    if (!diff.ok) return true;  // no constraint from this dimension
    std::vector<std::pair<long long, std::optional<long long>>> vars;
    long long constant = diff.constant;

    const auto bound_of = [](const LoopRec* rec,
                             long long less) -> std::optional<long long> {
      if (!rec->trip) return std::nullopt;
      return *rec->trip - less;
    };

    long long c_src = 0, c_snk = 0;
    for (const auto& [key, c] : diff.terms) {
      if (key.second == static_cast<const void*>(lvl)) {
        (key.first == 1 ? c_src : c_snk) = c;
        continue;
      }
      const auto* rec = static_cast<const LoopRec*>(key.second);
      vars.push_back({c, bound_of(rec, 1)});
    }
    if (cls == kDirEq) {
      // t_src == t_snk == t in [0, trip-1].
      vars.push_back({c_src + c_snk, bound_of(lvl, 1)});
    } else {
      // t_snk = t_src + d (or t_src = t_snk + d), d = 1 + d', d' >= 0.
      const long long c_far = cls == kDirLt ? c_snk : c_src;
      vars.push_back({c_src + c_snk, bound_of(lvl, 2)});
      vars.push_back({c_far, bound_of(lvl, 2)});
      constant = sat_add(constant, c_far);
    }

    long long g = 0;
    for (const auto& [c, hi] : vars) {
      if (hi && *hi < 0) {
        mech.refuter = DepTest::kBanerjee;  // bounds argument: empty range
        return false;
      }
      if (c != 0) g = std::gcd(g, c < 0 ? -c : c);
    }
    if (g == 0) {
      // No free variables left: a pure constant difference — ZIV.
      mech.ziv = true;
      if (constant != 0) mech.refuter = DepTest::kZiv;
      return constant == 0;
    }
    mech.gcd = true;
    if (constant % g != 0) {
      mech.refuter = DepTest::kGcd;
      return false;
    }

    long long lo_sum = constant, hi_sum = constant;
    bool lo_inf = false, hi_inf = false;
    for (const auto& [c, hi] : vars) {
      if (c == 0) continue;
      if (!hi) {
        (c > 0 ? hi_inf : lo_inf) = true;
        continue;
      }
      const long long extent = sat_mul(c, *hi);
      lo_sum = sat_add(lo_sum, std::min(0LL, extent));
      hi_sum = sat_add(hi_sum, std::max(0LL, extent));
    }
    mech.banerjee = true;
    const bool feasible = (lo_inf || lo_sum <= 0) && (hi_inf || hi_sum >= 0);
    if (!feasible) mech.refuter = DepTest::kBanerjee;
    return feasible;
  };

  // Strong-SIV pinning: a dimension whose only variables are this level's
  // pair with opposite coefficients fixes the iteration distance exactly.
  const auto pinned_distance =
      [&](const LinearDiff& diff, const LoopRec* lvl) -> std::optional<long long> {
    if (!diff.ok || diff.terms.size() != 2) return std::nullopt;
    const auto s = diff.terms.find({1, lvl});
    const auto k = diff.terms.find({2, lvl});
    if (s == diff.terms.end() || k == diff.terms.end()) return std::nullopt;
    if (s->second != -k->second || s->second == 0) return std::nullopt;
    if (diff.constant % s->second != 0) return std::nullopt;
    return diff.constant / s->second;  // delta = t_snk - t_src
  };

  PairResult result;
  for (const LinearDiff& diff : dims) {
    if (!diff.ok && !diff.text_pinned) result.exact = false;
  }

  for (const LoopRec* lvl : common) {
    DepLevel level;
    level.var = lvl->canon.induction;
    level.dirs = 0;
    DepTest kill = DepTest::kBanerjee;
    for (unsigned cls : {kDirLt, kDirEq, kDirGt}) {
      const bool ok = std::all_of(dims.begin(), dims.end(), [&](const LinearDiff& d) {
        return class_possible(d, lvl, cls);
      });
      if (ok)
        level.dirs |= cls;
      else
        kill = mech.refuter;
    }
    std::optional<long long> pin;
    bool conflict = false;
    for (const LinearDiff& diff : dims) {
      if (auto delta = pinned_distance(diff, lvl)) {
        if (pin && *pin != *delta) conflict = true;
        pin = delta;
      }
    }
    if (conflict) {
      level.dirs = 0;  // two dimensions demand different distances
      kill = DepTest::kStrongSiv;
    }
    if (pin && level.dirs != 0) {
      // A pinned distance must also survive the class test (trip bounds).
      const unsigned cls = *pin == 0 ? kDirEq : (*pin > 0 ? kDirLt : kDirGt);
      if ((level.dirs & cls) == 0) {
        level.dirs = 0;
        kill = DepTest::kStrongSiv;
      } else {
        level.dirs = cls;
        level.distance = pin;
      }
    }
    if (force_eq.count(lvl) > 0) {
      const unsigned before = level.dirs;
      level.dirs &= kDirEq;
      if (level.dirs == 0 && before != 0) kill = DepTest::kTextPinned;
    }
    result.levels.push_back(level);
    if (level.dirs == 0) {
      result.possible = false;
      result.deciding = kill;
      return result;
    }
  }

  // A dimension that rules out every class of every level independently can
  // only happen when the dimension itself has no solution at all (ZIV).
  for (const LinearDiff& diff : dims) {
    if (!diff.ok) continue;
    if (diff.terms.empty() && diff.constant != 0) {
      result.possible = false;
      result.deciding = DepTest::kZiv;
      return result;
    }
  }

  // Provenance of a surviving pair: the deepest test that constrained it.
  // A pinned analyzed-level distance is a strong-SIV result; `=`-pins from
  // the identical-subscript rule are text-pinned; otherwise credit the
  // furthest hierarchy member that ran (Banerjee > GCD > ZIV).
  if (!result.exact) {
    result.deciding = DepTest::kConservative;
  } else if (!result.levels.empty() && result.levels.front().distance) {
    result.deciding = DepTest::kStrongSiv;
  } else if (!common.empty() && force_eq.count(common.front()) > 0) {
    result.deciding = DepTest::kTextPinned;
  } else if (mech.banerjee) {
    result.deciding = DepTest::kBanerjee;
  } else if (mech.gcd) {
    result.deciding = DepTest::kGcd;
  } else {
    result.deciding = DepTest::kZiv;
  }
  return result;
}

}  // namespace clpp::analysis
