// Canonical loop-nest structure recognition.
//
// S2S compilers only parallelize loops they can put in canonical form
// (OpenMP's "canonical loop form"): `for (i = L; i REL U; STEP)` with an
// integer induction variable and a loop-invariant bound. This module
// extracts that shape plus a static trip-count estimate when bounds are
// literal.
#pragma once

#include <optional>
#include <string>

#include "frontend/ast.h"

namespace clpp::analysis {

/// Direction of the canonical induction.
enum class LoopDirection { kUp, kDown };

/// Canonical form of one `for` loop.
struct CanonicalLoop {
  std::string induction;         // induction variable name
  const frontend::Node* lower = nullptr;  // init expression (rhs)
  const frontend::Node* upper = nullptr;  // bound expression
  std::string relation;          // "<", "<=", ">", ">="
  long long step = 1;            // signed step (from i++, i+=c, i-=c, i--)
  LoopDirection direction = LoopDirection::kUp;
  bool declared_in_init = false; // `for (int i = ...)`

  /// Trip count when both bounds are integer literals; nullopt otherwise.
  std::optional<long long> static_trip_count() const;
};

/// Tries to canonicalize `loop` (must be a For node). Returns nullopt for
/// non-canonical loops (multiple inductions, non-unit complex steps,
/// pointer walks, missing pieces) — exactly the cases real S2S compilers
/// refuse to transform.
std::optional<CanonicalLoop> canonicalize(const frontend::Node& loop);

/// Integer literal value of an expression node, if it is one.
std::optional<long long> literal_value(const frontend::Node& expr);

/// True when the subtree contains any of: break, goto, return — control
/// flow that forbids worksharing.
bool has_early_exit(const frontend::Node& body);

/// True when the body contains an If/TernaryOp whose branches differ in
/// weight (used for the schedule(dynamic) heuristic of Table 1 example 2).
bool has_conditional_work(const frontend::Node& body);

}  // namespace clpp::analysis
