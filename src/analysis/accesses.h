// Memory-access collection over AST subtrees.
//
// First stage of the classic S2S pipeline (§1.1 step 2): gather every read
// and write of every variable in a loop body, with array subscripts kept
// for the dependence tests. The collector is conservative: constructs it
// cannot reason about (pointer dereferences, address-taken variables,
// calls with out-parameters) are flagged rather than ignored.
#pragma once

#include <string>
#include <vector>

#include "frontend/ast.h"

namespace clpp::analysis {

/// One variable access.
struct Access {
  std::string variable;           // base variable name
  bool is_write = false;
  bool is_array = false;
  std::vector<const frontend::Node*> subscripts;  // innermost-last, may be empty
  const frontend::Node* site = nullptr;           // the expression node
};

/// Aggregated facts that make the enclosing analysis conservative.
struct AccessHazards {
  bool pointer_deref_write = false;   // *p = ..., p->f = ...
  bool address_taken = false;         // &x passed around
  bool struct_access = false;         // a.b or a->b anywhere
  bool function_pointer_call = false; // call through a non-ID callee
  std::vector<std::string> called_functions;  // direct callees, in order
};

/// Result of scanning a subtree.
struct AccessSet {
  std::vector<Access> accesses;
  AccessHazards hazards;

  std::vector<const Access*> writes_of(const std::string& variable) const;
  std::vector<const Access*> reads_of(const std::string& variable) const;
  bool is_written(const std::string& variable) const;
  bool is_read(const std::string& variable) const;
  /// All distinct variable names accessed.
  std::vector<std::string> variables() const;
};

/// Collects all accesses in the subtree rooted at `node`.
AccessSet collect_accesses(const frontend::Node& node);

}  // namespace clpp::analysis
