// Exact data-dependence testing over affine loop nests (engine v2).
//
// The seed engine compared one subscript against one induction variable and
// degraded to "unknown" on strides, scaled coefficients, multi-variable
// subscripts (a*i + b*j + c), and imperfect nests. This module replaces the
// per-dimension comparison with a dependence-equation solver:
//
//   * every access site is located on its chain of enclosing canonical
//     loops (the analyzed loop at depth 0);
//   * each subscript dimension is lowered to a linear form over per-side
//     iteration-count variables (index = lower + step * t, t in [0, trip)),
//     so strides and non-zero lower bounds are handled exactly, including
//     lower bounds that reference outer inductions (triangular nests);
//   * the dependence equation src_d = snk_d is tested per dimension with
//     the classic hierarchy — ZIV, strong SIV (exact distance), weak SIV
//     and restricted MIV via a GCD divisibility test plus Banerjee-style
//     interval bounds — separately for each direction class (<, =, >) of
//     the tracked loop level;
//   * per-dimension results are intersected across dimensions
//     (subscript-by-subscript); coupled subscripts stay sound because every
//     per-dimension class set is a necessary condition, so the intersection
//     over-approximates the simultaneous solution set.
//
// The result is a direction/distance vector indexed by nest depth. All
// conservatism is one-sided: the solver may report a dependence that does
// not exist, never the reverse (see tests/depend_oracle_test.cpp).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "analysis/accesses.h"
#include "analysis/loopinfo.h"
#include "frontend/ast.h"

namespace clpp::analysis {

/// Multi-variable affine form: sum of coeff*var over quantified induction
/// variables, plus a literal offset, plus symbolic loop-invariant addends
/// with literal coefficients (`n - 1` is symbols{n: 1}, offset -1).
/// `affine == false` means the expression is not representable.
struct AffineForm {
  bool affine = false;
  std::map<std::string, long long> coeffs;   // induction var -> coefficient
  std::map<std::string, long long> symbols;  // invariant text -> coefficient
  long long offset = 0;

  bool operator==(const AffineForm&) const = default;
};

/// Environment for affine analysis of one subscript expression.
struct SubscriptEnv {
  /// Names that are quantified induction variables of the nest.
  std::set<std::string> vars;
  /// Names written anywhere in the analyzed body. A mutated name is neither
  /// a usable induction nor a cancelable invariant; mentioning one outside
  /// `vars` makes the form non-affine (conservative).
  std::set<std::string> mutated;
};

/// Analyzes `expr` as an affine function over `env.vars`. Loop-invariant
/// subtrees (no vars, no mutated names) that are not otherwise affine fold
/// into a single opaque symbol keyed by their printed text, matching the
/// seed engine's same-text cancellation rule.
AffineForm analyze_affine(const frontend::Node& expr, const SubscriptEnv& env);

/// Direction classes of one nest level, as a bitmask over the sign of
/// (t_snk - t_src) in iteration space: "<" means the source iteration is
/// earlier, "=" same iteration, ">" later.
enum : unsigned {
  kDirLt = 1u << 0,
  kDirEq = 1u << 1,
  kDirGt = 1u << 2,
  kDirAll = kDirLt | kDirEq | kDirGt,
};

/// Per-level entry of a direction/distance vector.
struct DepLevel {
  std::string var;          // induction variable of this level
  unsigned dirs = kDirAll;  // admissible direction classes
  std::optional<long long> distance;  // exact iteration distance when pinned

  bool operator==(const DepLevel&) const = default;
};

/// Renders one direction set as "<", "=", ">", "<=", "*", ...
std::string direction_text(unsigned dirs);

/// Which member of the test hierarchy decided a pair — the provenance of
/// the verdict. "Decided" means: for a refuted pair, the test that proved
/// the dependence equation unsolvable; for a surviving exact pair, the
/// deepest test that constrained it (a pinned distance beats interval
/// bounds beats divisibility); for a conservative answer, kConservative.
enum class DepTest {
  kConservative,  // engine fell back; no proof either way
  kZiv,           // zero-index-variable: constant difference decides
  kStrongSiv,     // single-level opposite-coefficient pair: exact distance
  kGcd,           // divisibility of the constant by the coefficient gcd
  kBanerjee,      // interval bounds on the dependence equation
  kTextPinned,    // identical-subscript rule pinned levels to `=`
  kLegacySiv,     // seed per-dimension engine (exact_dependence_engine off)
  kScalar,        // scalar recurrence reasoning, not a subscript test
};

/// Human-readable name ("ziv", "strong-siv", "gcd", "banerjee",
/// "text-pinned", "conservative", "legacy-siv", "scalar").
const char* dep_test_name(DepTest test);

/// Result of testing one pair of accesses to the same array.
struct PairResult {
  /// False when the solver proved no two iterations of the analyzed loop
  /// (equal or distinct) can touch the same element.
  bool possible = true;
  /// False when any step fell back to a conservative answer (non-affine
  /// subscript, unresolved symbol, unknown binding).
  bool exact = true;
  /// Provenance: the test that decided this pair.
  DepTest deciding = DepTest::kConservative;
  /// Direction/distance vector; levels[0] is the analyzed loop, deeper
  /// entries are the common enclosing canonical loops in nesting order.
  std::vector<DepLevel> levels;

  /// True when the accesses can collide on two distinct iterations of the
  /// analyzed loop (levels[0] admits "<" or ">").
  bool carried() const;
  /// Exact carried distance at the analyzed level, when pinned.
  std::optional<long long> carried_distance() const;
};

/// Loop-nest context for one analyzed loop: canonical info for every `for`
/// in the nest plus the chain of enclosing loops for every AST node.
class NestContext {
 public:
  /// `loop` must be a For node that canonicalizes.
  explicit NestContext(const frontend::Node& loop);

  /// Tests whether `src` and `snk` (accesses inside the analyzed loop, at
  /// least one a write) can reference the same element, and on which
  /// iteration-distance vectors. Ranks must match (caller's concern).
  PairResult test_pair(const Access& src, const Access& snk) const;

  const CanonicalLoop& analyzed() const { return analyzed_; }

 private:
  struct LoopRec {
    const frontend::Node* node = nullptr;
    CanonicalLoop canon;
    std::optional<long long> trip;
  };

  const std::vector<const LoopRec*>* chain_of(const frontend::Node* site) const;

  const frontend::Node* loop_ = nullptr;
  CanonicalLoop analyzed_;
  std::vector<std::unique_ptr<LoopRec>> loops_;
  std::map<const frontend::Node*, std::vector<const LoopRec*>> chains_;
  SubscriptEnv env_;
};

}  // namespace clpp::analysis
