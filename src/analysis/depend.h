// Loop-carried data-dependence analysis and the per-loop verdict.
//
// This is step (2) of the S2S workflow in §1.1 of the paper: given a
// canonical loop, decide whether any pair of accesses to the same array can
// touch the same element on *different* iterations (a loop-carried
// dependence), whether scalars can be privatized, and whether written
// scalars follow a reduction idiom. Affine subscripts (a*i + b) get an
// exact single-index test (ZIV/SIV class); everything else is handled
// conservatively — which is precisely how Cetus-class compilers end up
// with high precision and low recall.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/accesses.h"
#include "analysis/ddtest.h"
#include "analysis/loopinfo.h"
#include "analysis/sideeffects.h"
#include "frontend/pragma.h"

namespace clpp::analysis {

/// Classification of a subscript expression relative to one induction var.
///
/// kAffine subscripts may additionally carry one symbolic loop-invariant
/// addend (e.g. `c - i` is coeff = -1 with symbol `+c`, `i - c` is
/// coeff = 1 with symbol `-c`): the distance test stays exact between two
/// subscripts whose symbolic addends are textually identical with the same
/// sign, and degrades to kUnknown otherwise.
struct Affine {
  enum class Kind {
    kAffine,     // coeff * i + offset [+ sign*symbol] with literal coeff/offset
    kInvariant,  // does not mention the induction variable
    kComplex,    // mentions it non-affinely (i*i, a[i], f(i), i*j ...)
  };
  Kind kind = Kind::kComplex;
  long long coeff = 0;
  long long offset = 0;
  std::string invariant_text;  // kInvariant: whole expr; kAffine: symbolic addend
  int symbol_sign = 0;         // kAffine only: 0 = no symbolic addend, else ±1

  bool operator==(const Affine&) const = default;
};

/// Analyzes `expr` as a function of `induction`.
Affine analyze_subscript(const frontend::Node& expr, const std::string& induction);

/// Relation between two accesses in one array dimension.
enum class DimRelation {
  kSameIterationOnly,  // equal exactly when iterations are equal
  kDisjoint,           // never equal
  kCarried,            // equal across distinct iterations
  kUnknown,            // cannot tell — treat as carried
};

/// Compares one dimension of two subscript classifications.
DimRelation compare_dimension(const Affine& a, const Affine& b);

/// A detected (or suspected) loop-carried dependence, for diagnostics.
/// `line`/`column` point at the access that triggered the report (0 when
/// the snippet carries no position info, e.g. hand-built ASTs).
struct Dependence {
  std::string variable;
  std::string detail;
  int line = 0;
  int column = 0;
  bool scalar = false;  // scalar recurrence (vs array dependence)
  /// Exact iteration distance at the analyzed loop's level, when the v2
  /// engine pinned it (strong SIV). Unset for conservative findings.
  std::optional<long long> distance;
  /// Direction vector indexed by nest depth, e.g. "(<, =)"; empty when the
  /// engine produced no level information (legacy engine, scalars).
  std::string direction;
  /// Provenance: name of the dependence test that decided this finding
  /// (dep_test_name of the deciding DepTest).
  std::string deciding_test;
};

/// Provenance record for one tested access pair — which test of the
/// hierarchy decided it and what it concluded. Recorded for EVERY pair fed
/// to the engine (refuted, same-iteration, and carried alike), so a proof
/// trace can show why a loop was judged (non-)parallel, not only the first
/// blocking dependence.
struct PairProvenance {
  std::string array;     // base variable ("sum" for scalar entries)
  std::string src_text;  // printed source access, e.g. "A[i][j]"
  std::string snk_text;  // printed sink access
  std::string test;      // deciding test (dep_test_name)
  std::string direction; // "(<, =)" style; empty without level info
  std::optional<long long> distance;  // exact distance when pinned
  bool possible = true;  // false: dependence refuted
  bool carried = false;  // true: collides across distinct iterations
  bool exact = true;     // false: conservative answer
  bool scalar = false;   // scalar recurrence entry, not a subscript pair
  int line = 0;          // write site
};

/// One-line human rendering of a provenance record, e.g.
///   "banerjee: y[j] vs y[j], carried, direction (*), distance unknown"
/// Used by lint diagnostics and `clpp-lint --explain` proof traces.
std::string provenance_text(const PairProvenance& provenance);

/// Final analysis verdict for one loop.
struct LoopVerdict {
  bool canonical = false;         // loop matched the canonical form
  bool parallelizable = false;    // no blocking dependence/hazard found
  bool bailed = false;            // analysis aborted on a hazard
  std::vector<std::string> notes; // human-readable reasons, in order found
  std::vector<Dependence> dependences;
  std::vector<std::string> private_candidates;   // scalars to privatize
  frontend::ScheduleKind schedule_hint = frontend::ScheduleKind::kStatic;
  std::vector<frontend::Reduction> reductions;
  std::optional<long long> trip_count;
  std::string induction;

  /// Dependence-test precision accounting (EXPERIMENTS.md comparisons).
  std::size_t dep_pairs_tested = 0;   // access pairs fed to the engine
  std::size_t dep_pairs_unknown = 0;  // pairs answered conservatively

  /// Per-pair decision provenance, in test order (clpp-lint --explain).
  std::vector<PairProvenance> pair_provenance;

  /// True when every tested pair resolved exactly and nothing bailed: the
  /// verdict is a proof, not a conservative default.
  bool exact() const { return !bailed && dep_pairs_unknown == 0; }
};

/// Personality knobs: each S2S compiler profile instantiates the analyzer
/// with different capabilities (see clpp::s2s).
struct AnalyzerOptions {
  /// Treat calls with unknown side effects as pure (aggressive) instead of
  /// bailing (conservative).
  bool assume_unknown_calls_pure = false;
  /// Abort on struct member accesses (Cetus-class parsers often do).
  bool bail_on_struct_access = true;
  /// Recognize `if (x > m) m = x;` style min/max reductions.
  bool recognize_minmax_reduction = false;
  /// Recognize reductions at all (+/-/*).
  bool recognize_reduction = true;
  /// Suggest schedule(dynamic) for bodies with conditional work.
  bool suggest_dynamic_schedule = false;
  /// Loops with a static trip count below this are not worth parallelizing.
  long long min_trip_count = 0;
  /// Use the v2 exact GCD+Banerjee direction/distance engine for array
  /// dependences. False falls back to the seed per-subscript SIV test
  /// (kept for precision comparisons; see EXPERIMENTS.md).
  bool exact_dependence_engine = true;
};

/// Dependence analyzer bound to a snippet's side-effect oracle.
class DependenceAnalyzer {
 public:
  DependenceAnalyzer(const SideEffectOracle& oracle, AnalyzerOptions options);

  /// Analyzes one For node in full.
  LoopVerdict analyze(const frontend::Node& loop) const;

 private:
  void analyze_arrays(const frontend::Node& loop, const std::string& induction,
                      const AccessSet& accesses, LoopVerdict& verdict) const;
  void analyze_arrays_legacy(const std::string& induction, const AccessSet& accesses,
                             LoopVerdict& verdict) const;
  void analyze_scalars(const frontend::Node& body, const std::string& induction,
                       const AccessSet& accesses, LoopVerdict& verdict) const;

  const SideEffectOracle* oracle_;
  AnalyzerOptions options_;
};

}  // namespace clpp::analysis
