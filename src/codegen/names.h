// Identifier sampling for the synthetic Open-OMP generator.
//
// §5.1 of the paper observes an implicit naming convention in parallelizable
// loops (i/j/k inductions, A/B/arr/vec arrays) which explains why the raw
// Text representation beats Replaced-Text by ~2%. The sampler reproduces
// that statistical signal: parallel-style snippets draw mostly from the
// HPC pool, serial-style snippets mix pools — so replacing identifiers
// removes a real (but modest) amount of label information.
#pragma once

#include <set>
#include <string>

#include "support/rng.h"

namespace clpp::codegen {

/// Naming style of a snippet. kHpc draws 85% from the HPC pool (i/j/k,
/// A/B/vec/arr...), kSerial draws 85% from the serial pool, kMixed is an
/// even blend. The asymmetry between kHpc and kSerial snippets is the
/// naming-convention signal §5.1 credits for Text beating R-Text.
enum class NameStyle { kHpc, kMixed, kSerial };

/// Per-snippet identifier sampler; guarantees distinct names per snippet.
class NamePool {
 public:
  NamePool(Rng& rng, NameStyle style) : rng_(&rng), style_(style) {}

  /// Induction variable (i, j, k, ...) — already-issued names are skipped.
  std::string induction();
  /// Array / matrix name.
  std::string array();
  /// Scalar temporary / accumulator name.
  std::string scalar();
  /// Accumulator name that *suggests* reduction (sum, total, acc, ...).
  std::string accumulator();
  /// Loop bound name (n, N, len, size...).
  std::string bound();
  /// Function name with a compute flavour (used for extern kernels).
  std::string compute_function();
  /// Pointer-ish / serial-flavoured name (ptr, node, cur, fp...).
  std::string serial_name();

 private:
  std::string draw(std::span<const char* const> hpc,
                   std::span<const char* const> mixed);
  std::string unique(std::string candidate);

  Rng* rng_;
  NameStyle style_;
  std::set<std::string> used_;
};

}  // namespace clpp::codegen
