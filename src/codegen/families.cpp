#include "codegen/families.h"

#include <sstream>

#include "codegen/names.h"
#include "support/strings.h"

namespace clpp::codegen {

using frontend::OmpDirective;
using frontend::Reduction;
using frontend::ReductionOp;
using frontend::ScheduleKind;

namespace {

/// Builds the canonical directive for a positive snippet.
OmpDirective loop_directive(ScheduleKind schedule = ScheduleKind::kNone,
                            std::vector<std::string> private_vars = {},
                            std::vector<Reduction> reductions = {}) {
  OmpDirective d;
  d.parallel = true;
  d.for_loop = true;
  d.schedule = schedule;
  d.private_vars = std::move(private_vars);
  d.reductions = std::move(reductions);
  return d;
}

/// A loop bound: symbolic most of the time, literal otherwise.
std::string sampled_bound(Rng& rng, NamePool& names, long long lit_lo = 256,
                          long long lit_hi = 1 << 20) {
  if (rng.chance(0.7)) return names.bound();
  return std::to_string(rng.range(lit_lo, lit_hi));
}

/// A small arithmetic expression over `terms` (reads only).
std::string arith(Rng& rng, const std::vector<std::string>& terms) {
  static constexpr const char* kOps[] = {" + ", " - ", " * "};
  std::string out = terms[rng.index(terms.size())];
  const int extra = static_cast<int>(rng.range(0, 2));
  for (int t = 0; t < extra; ++t) {
    out += kOps[rng.index(3)];
    if (rng.chance(0.3)) {
      out += std::to_string(rng.range(1, 9));
    } else {
      out += terms[rng.index(terms.size())];
    }
  }
  return out;
}

std::string fmt_float(Rng& rng) {
  static constexpr const char* kVals[] = {"0.5", "2.0", "0.25", "1.5", "0.2",
                                          "3.0", "0.1", "4.0",  "0.9", "1e-6"};
  return kVals[rng.index(10)];
}

GeneratedSnippet snippet(std::string family, std::string code) {
  GeneratedSnippet s;
  s.family = std::move(family);
  s.code = std::move(code);
  return s;
}

GeneratedSnippet positive(std::string family, std::string code, OmpDirective d) {
  GeneratedSnippet s = snippet(std::move(family), std::move(code));
  s.has_directive = true;
  s.directive = std::move(d);
  return s;
}

// ===== positive families ======================================================

/// p_init_1d: plain array initialization — the first-touch case of §2.1.
GeneratedSnippet p_init_1d(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string arr = names.array();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n";
  const int variant = static_cast<int>(rng.range(0, 2));
  if (variant == 0) os << "    " << arr << "[" << i << "] = 0;\n";
  else if (variant == 1) os << "    " << arr << "[" << i << "] = " << i << ";\n";
  else os << "    " << arr << "[" << i << "] = " << fmt_float(rng) << ";\n";
  return positive("init_1d", os.str(), loop_directive(ScheduleKind::kStatic));
}

/// p_init_2d: nested initialization, inner index privatized.
GeneratedSnippet p_init_2d(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string arr = names.array();
  const std::string rows = names.bound();
  const std::string cols = names.bound();
  // C99-style inline declaration of the inner index makes it block-scoped:
  // no private clause needed. Same structure, different clause label — the
  // kind of distinction that requires more than a bag of tokens.
  const bool inline_decl = rng.chance(0.25);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << rows << "; " << i << "++)\n"
     << "    for (" << (inline_decl ? "int " : "") << j << " = 0; " << j << " < "
     << cols << "; " << j << "++)\n"
     << "        " << arr << "[" << i << "][" << j << "] = "
     << (rng.chance(0.5) ? "0" : i + " + " + j) << ";\n";
  return positive("init_2d", os.str(),
                  loop_directive(ScheduleKind::kStatic,
                                 inline_decl ? std::vector<std::string>{}
                                             : std::vector<std::string>{j}));
}

/// p_elementwise: c[i] = f(a[i], b[i]) with optional libm call.
GeneratedSnippet p_elementwise(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string c = names.array();
  const std::string n = sampled_bound(rng, names);
  static constexpr const char* kPure[] = {"sqrt", "fabs", "exp", "log", "sin", "cos"};
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  const int variant = static_cast<int>(rng.range(0, 4));
  if (variant == 0) {
    os << c << "[" << i << "] = " << a << "[" << i << "] + " << b << "[" << i << "];\n";
  } else if (variant == 1) {
    os << c << "[" << i << "] = " << a << "[" << i << "] * " << fmt_float(rng)
       << " + " << b << "[" << i << "];\n";
  } else if (variant == 2) {
    os << c << "[" << i << "] = " << kPure[rng.index(6)] << "(" << a << "[" << i
       << "]);\n";
  } else if (variant == 3) {
    os << b << "[" << i << "] = " << a << "[" << i << "] * " << a << "[" << i
       << "];\n";
  } else {
    // Per-element accumulation: `+=` on an *array* element — independent
    // across iterations, so parallel WITHOUT a reduction clause. The bag of
    // tokens is nearly identical to a scalar reduction; only structure
    // (the subscripted lhs) tells them apart.
    os << c << "[" << i << "] += " << a << "[" << i << "] * " << b << "[" << i
       << "];\n";
  }
  return positive("elementwise", os.str(),
                  loop_directive(rng.chance(0.15) ? ScheduleKind::kStatic
                                                  : ScheduleKind::kNone));
}

/// p_offset_read: a[i] = b[i-1] ... — parallel-safe offset read of ANOTHER
/// array. Token-level twin of the n_recurrence negatives; only structure
/// (which array repeats) separates them.
GeneratedSnippet p_offset_read(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string n = sampled_bound(rng, names);
  const int offset = static_cast<int>(rng.range(1, 2));
  std::ostringstream os;
  os << "for (" << i << " = " << offset << "; " << i << " < " << n << "; " << i
     << "++)\n    " << a << "[" << i << "] = " << b << "[" << i << " - " << offset
     << "] + " << (rng.chance(0.5) ? b : a) << "[" << i << "];\n";
  return positive("offset_read", os.str(), loop_directive());
}

/// p_stencil: Jacobi-style 2D update into a second array, like the paper's
/// Table 8 example 1; 30% also carry a max-reduction on the residual.
GeneratedSnippet p_stencil(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string n = names.bound();
  const std::string m = names.bound();
  const bool with_residual = rng.chance(0.35);
  const bool inline_decl = rng.chance(0.25);
  std::ostringstream os;
  os << "for (" << i << " = 1; " << i << " < " << n << " - 1; " << i << "++)\n"
     << "    for (" << (inline_decl ? "int " : "") << j << " = 1; " << j << " < " << m
     << " - 1; " << j << "++) {\n"
     << "        " << b << "[" << i << "][" << j << "] = " << fmt_float(rng) << " * ("
     << a << "[" << i << "][" << j << "] + " << a << "[" << i << " - 1][" << j
     << "] + " << a << "[" << i << " + 1][" << j << "] + " << a << "[" << i << "]["
     << j << " - 1] + " << a << "[" << i << "][" << j << " + 1]);\n";
  std::vector<Reduction> reds;
  std::string resid;
  if (with_residual) {
    resid = names.accumulator();
    os << "        if (fabs(" << b << "[" << i << "][" << j << "] - " << a << "["
       << i << "][" << j << "]) > " << resid << ")\n"
       << "            " << resid << " = fabs(" << b << "[" << i << "][" << j
       << "] - " << a << "[" << i << "][" << j << "]);\n";
    reds.push_back(Reduction{ReductionOp::kMax, resid});
  }
  os << "    }\n";
  return positive("stencil", os.str(),
                  loop_directive(ScheduleKind::kStatic,
                                 inline_decl ? std::vector<std::string>{}
                                             : std::vector<std::string>{j},
                                 std::move(reds)));
}

/// p_sum_reduction: additive reductions. Only ~30% are spelled in the
/// canonical textbook form an S2S recognizer catches; the rest accumulate
/// through an extern kernel call the S2S cannot prove pure — the Table 10
/// recall pitfall (ComPar R=0.16 in the paper).
GeneratedSnippet p_sum_reduction(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  // Half the accumulators carry tell-tale names (sum/total/...), half are
  // generic scalars — the name alone must not give the label away.
  const std::string acc = rng.chance(0.5) ? names.accumulator() : names.scalar();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  if (rng.chance(0.7)) {
    // Reduction over an opaque (but actually pure) kernel.
    const std::string fn = names.compute_function();
    if (rng.chance(0.5)) {
      os << acc << " += " << fn << "(" << a << "[" << i << "]);\n";
    } else {
      os << acc << " += " << fn << "(" << a << "[" << i << "], " << i << ");\n";
    }
  } else {
    const int variant = static_cast<int>(rng.range(0, 3));
    if (variant == 0) {
      os << acc << " += " << a << "[" << i << "];\n";
    } else if (variant == 1) {
      const std::string b = names.array();
      os << acc << " += " << a << "[" << i << "] * " << b << "[" << i << "];\n";
    } else if (variant == 2) {
      os << acc << " = " << acc << " + " << a << "[" << i << "] * " << a << "[" << i
         << "];\n";
    } else {
      os << acc << " += fabs(" << a << "[" << i << "]);\n";
    }
  }
  return positive("sum_reduction", os.str(),
                  loop_directive(ScheduleKind::kNone, {},
                                 {Reduction{ReductionOp::kAdd, acc}}));
}

/// p_minmax_reduction: conditional min/max — humans label reduction(max);
/// canonical-form-only S2S compilers miss it (Table 10 recall pitfall).
GeneratedSnippet p_minmax_reduction(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string m = names.accumulator();
  const std::string n = sampled_bound(rng, names);
  const bool is_max = rng.chance(0.6);
  const char* rel = is_max ? ">" : "<";
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n";
  std::vector<std::string> private_vars;
  const int variant = static_cast<int>(rng.range(0, 2));
  if (variant == 0) {
    os << "    if (" << a << "[" << i << "] " << rel << " " << m << ")\n"
       << "        " << m << " = " << a << "[" << i << "];\n";
  } else if (variant == 1) {
    os << "    " << m << " = " << (is_max ? "fmax" : "fmin") << "(" << m << ", " << a
       << "[" << i << "]);\n";
  } else {
    // Staged through a (pre-declared) temporary that also needs private.
    const std::string t = names.scalar();
    os << "    " << t << " = " << a << "[" << i << "];\n"
       << "    if (" << t << " " << rel << " " << m << ")\n"
       << "        " << m << " = " << t << ";\n";
    private_vars.push_back(t);
  }
  os << "}\n";
  return positive("minmax_reduction", os.str(),
                  loop_directive(ScheduleKind::kNone, std::move(private_vars),
                                 {Reduction{is_max ? ReductionOp::kMax
                                                   : ReductionOp::kMin,
                                            m}}));
}

/// p_prod_reduction: multiplicative reduction.
GeneratedSnippet p_prod_reduction(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string p = names.accumulator();
  const std::string n = sampled_bound(rng, names, 64, 4096);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    " << p
     << " *= " << a << "[" << i << "];\n";
  return positive("prod_reduction", os.str(),
                  loop_directive(ScheduleKind::kNone, {},
                                 {Reduction{ReductionOp::kMul, p}}));
}

/// p_matmul: classic triple nest; 35% use the linearized G[(i*NL)+j] form
/// whose subscripts defeat the S2S dependence test (Table 8 example 4).
GeneratedSnippet p_matmul(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string k = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string c = names.array();
  const std::string ni = names.bound();
  const std::string nj = names.bound();
  const std::string nl = names.bound();
  std::ostringstream os;
  if (rng.chance(0.35)) {
    os << "for (" << i << " = 0; " << i << " < " << ni << "; " << i << "++) {\n"
       << "    for (" << j << " = 0; " << j << " < " << nl << "; " << j << "++) {\n"
       << "        " << c << "[(" << i << " * " << nl << ") + " << j << "] = 0;\n"
       << "        for (" << k << " = 0; " << k << " < " << nj << "; ++" << k
       << ")\n"
       << "            " << c << "[(" << i << " * " << nl << ") + " << j << "] += "
       << a << "[(" << i << " * " << nj << ") + " << k << "] * " << b << "[(" << k
       << " * " << nl << ") + " << j << "];\n"
       << "    }\n}\n";
    return positive("matmul", os.str(), loop_directive(ScheduleKind::kStatic, {j, k}));
  }
  const bool inline_decl = rng.chance(0.25);
  const std::string decl = inline_decl ? "int " : "";
  os << "for (" << i << " = 0; " << i << " < " << ni << "; " << i << "++)\n"
     << "    for (" << decl << j << " = 0; " << j << " < " << nl << "; " << j
     << "++)\n"
     << "        for (" << decl << k << " = 0; " << k << " < " << nj << "; " << k
     << "++)\n"
     << "            " << c << "[" << i << "][" << j << "] += " << a << "[" << i
     << "][" << k << "] * " << b << "[" << k << "][" << j << "];\n";
  return positive("matmul", os.str(),
                  loop_directive(ScheduleKind::kStatic,
                                 inline_decl ? std::vector<std::string>{}
                                             : std::vector<std::string>{j, k}));
}

/// p_private_temp: t = f(a[i]); b[i] = g(t) — def-before-use temporary.
/// Token-level twin of n_scalar_carried (same bag, different order).
GeneratedSnippet p_private_temp(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string t = names.scalar();
  const std::string n = sampled_bound(rng, names);
  // Inline-declared temps are block-scoped: no private clause needed.
  const bool inline_decl = rng.chance(0.2);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    " << (inline_decl ? "double " : "") << t << " = " << a << "[" << i
     << "] * " << fmt_float(rng) << ";\n";
  if (rng.chance(0.55)) {
    // Variant routed through an extern kernel: same human label, but the
    // S2S bails on the unknown callee.
    os << "    " << b << "[" << i << "] = " << names.compute_function() << "(" << t
       << ");\n";
  } else {
    os << "    " << b << "[" << i << "] = " << t << " + "
       << arith(rng, {t, a + "[" + i + "]"}) << ";\n";
  }
  os << "}\n";
  return positive("private_temp", os.str(),
                  loop_directive(ScheduleKind::kNone,
                                 inline_decl ? std::vector<std::string>{}
                                             : std::vector<std::string>{t}));
}

/// p_extern_kernel: calls a compute kernel whose body is NOT in the snippet.
/// The developer knows it is pure; an S2S compiler cannot (recall pitfall).
GeneratedSnippet p_extern_kernel(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string fn = names.compute_function();
  const std::string n = sampled_bound(rng, names);
  const bool dynamic = rng.chance(0.5);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  if (rng.chance(0.5)) {
    os << a << "[" << i << "] = " << fn << "(" << a << "[" << i << "], " << i
       << ");\n";
  } else {
    os << a << "[" << i << "] = " << fn << "(" << i << ");\n";
  }
  return positive("extern_kernel", os.str(),
                  loop_directive(dynamic ? ScheduleKind::kDynamic
                                         : ScheduleKind::kNone));
}

/// p_unbalanced_if: conditional heavy work — the schedule(dynamic) case of
/// Table 1 example 2; the heavy helper's body ships with the snippet.
GeneratedSnippet p_unbalanced_if(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string heavy = names.compute_function();
  const std::string n = sampled_bound(rng, names);
  const std::string x = names.scalar();
  std::ostringstream os;
  // Half the time the heavy helper's body is elsewhere in the project —
  // the developer knows it is pure, the S2S compiler does not.
  if (rng.chance(0.5)) {
    os << "double " << heavy << "(double " << x << ") {\n"
       << "    return " << x << " * " << x << " + sqrt(fabs(" << x << "));\n"
       << "}\n";
  }
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    if (" << a << "[" << i << "] > " << fmt_float(rng) << ")\n"
     << "        " << a << "[" << i << "] = " << heavy << "(" << a << "[" << i
     << "]);\n"
     << "}\n";
  return positive("unbalanced_if", os.str(),
                  loop_directive(ScheduleKind::kDynamic));
}

/// p_triangular: inner loop starts at i+1 (pairwise interactions).
GeneratedSnippet p_triangular(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string a = names.array();
  const std::string f = names.array();
  const std::string n = names.bound();
  const bool inline_decl = rng.chance(0.25);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    for (" << (inline_decl ? "int " : "") << j << " = " << i << " + 1; "
     << j << " < " << n << "; " << j << "++)\n"
     << "        " << f << "[" << i << "][" << j << "] = " << a << "[" << i
     << "][" << j << "] - " << a << "[" << j << "][" << i << "];\n";
  return positive("triangular", os.str(),
                  loop_directive(rng.chance(0.5) ? ScheduleKind::kDynamic
                                                 : ScheduleKind::kStatic,
                                 inline_decl ? std::vector<std::string>{}
                                             : std::vector<std::string>{j}));
}

/// p_local_pure_call: helper with visible pure body; both humans and a
/// good S2S can parallelize — an "easy positive" for every system.
GeneratedSnippet p_local_pure_call(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string fn = names.compute_function();
  const std::string x = names.scalar();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "double " << fn << "(double " << x << ") {\n"
     << "    return " << arith(rng, {x, x}) << ";\n"
     << "}\n"
     << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    " << b << "[" << i << "] = " << fn << "(" << a << "[" << i << "]);\n";
  return positive("local_pure_call", os.str(), loop_directive());
}

// ===== negative families ======================================================

/// n_io_loop: printing/reading per element (Table 8 example 2). A third
/// use HPC naming — dumping a simulation array to disk is exactly where
/// I/O meets HPC names, and it teaches the model that the I/O call
/// dominates the naming-convention prior.
GeneratedSnippet n_io_loop(Rng& rng) {
  NamePool names(rng, rng.chance(0.35) ? NameStyle::kHpc : NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string arr = names.array();
  const std::string n = sampled_bound(rng, names, 16, 4096);
  std::ostringstream os;
  const int variant = static_cast<int>(rng.range(0, 2));
  if (variant == 0) {
    const std::string f = names.serial_name();
    os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
       << "    fprintf(" << f << ", \"%d\\n\", " << arr << "[" << i << "]);\n";
  } else if (variant == 1) {
    os << "for (int " << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
       << "    printf(\"%f \", " << arr << "[" << i << "]);\n";
  } else {
    os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
       << "    scanf(\"%d\", " << arr << " + " << i << ");\n";
  }
  return snippet("io_loop", os.str());
}

/// n_recurrence: true loop-carried array recurrence.
GeneratedSnippet n_recurrence(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);  // recurrences look "HPC" too
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  const int variant = static_cast<int>(rng.range(0, 2));
  if (variant == 0) {
    os << "for (" << i << " = 1; " << i << " < " << n << "; " << i << "++)\n"
       << "    " << a << "[" << i << "] = " << a << "[" << i << " - 1] + " << b
       << "[" << i << "];\n";
  } else if (variant == 1) {
    os << "for (" << i << " = 1; " << i << " < " << n << "; " << i << "++)\n"
       << "    " << a << "[" << i << "] = " << a << "[" << i << " - 1] * "
       << fmt_float(rng) << " + " << a << "[" << i << "];\n";
  } else {
    os << "for (" << i << " = 2; " << i << " < " << n << "; " << i << "++)\n"
       << "    " << a << "[" << i << "] = " << a << "[" << i << " - 1] + " << a
       << "[" << i << " - 2];\n";
  }
  return snippet("recurrence", os.str());
}

/// n_pointer_chase: linked-structure walk (hostile to every S2S parser).
GeneratedSnippet n_pointer_chase(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string p = names.serial_name();
  const std::string head = names.serial_name();
  const std::string total = names.accumulator();
  const std::string n = names.bound();
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    " << total << " += " << p << "->value;\n"
     << "    " << p << " = " << p << "->next;\n"
     << "}\n";
  if (rng.chance(0.4))
    os << head << " = " << p << ";\n";
  return snippet("pointer_chase", os.str());
}

/// n_small_trip: technically parallel but pointless (tiny literal bound).
/// Half stay below Cetus' profitability threshold; the other half make the
/// S2S insert a directive that humans did not (precision pitfall, §5.2).
GeneratedSnippet n_small_trip(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string arr = names.array();
  const long long trip = rng.chance(0.5) ? rng.range(2, 7) : rng.range(8, 64);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << trip << "; " << i << "++)\n"
     << "    " << arr << "[" << i << "] = " << (rng.chance(0.5) ? "0" : i) << ";\n";
  return snippet("small_trip", os.str());
}

/// n_scalar_carried: use-before-def scalar — the order twin of
/// p_private_temp with an identical token bag.
GeneratedSnippet n_scalar_carried(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string t = names.scalar();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    " << b << "[" << i << "] = " << t << " + "
     << arith(rng, {t, a + "[" + i + "]"}) << ";\n"
     << "    " << t << " = " << a << "[" << i << "] * " << fmt_float(rng) << ";\n"
     << "}\n";
  return snippet("scalar_carried", os.str());
}

/// n_alloc_loop: allocation/free inside the loop body.
GeneratedSnippet n_alloc_loop(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string p = names.serial_name();
  const std::string a = names.array();
  const std::string n = sampled_bound(rng, names, 16, 1024);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    " << p << " = (double *) malloc(" << rng.range(8, 256)
     << " * sizeof(double));\n"
     << "    " << p << "[0] = " << a << "[" << i << "];\n"
     << "    " << a << "[" << i << "] = " << p << "[0] * 2;\n"
     << "    free(" << p << ");\n"
     << "}\n";
  return snippet("alloc_loop", os.str());
}

/// n_early_exit: search loop with break.
GeneratedSnippet n_early_exit(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string key = names.scalar();
  const std::string found = names.scalar();
  const std::string n = sampled_bound(rng, names, 64, 1 << 16);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    if (" << a << "[" << i << "] == " << key << ") {\n"
     << "        " << found << " = " << i << ";\n"
     << "        break;\n"
     << "    }\n"
     << "}\n";
  return snippet("early_exit", os.str());
}

/// n_indirect_write: scatter through an index array — potential write race.
GeneratedSnippet n_indirect_write(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string hist = names.array();
  const std::string idx = names.array();
  const std::string w = names.array();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    " << hist << "[" << idx << "[" << i << "]] += " << w << "[" << i
     << "];\n";
  return snippet("indirect_write", os.str());
}

/// n_opaque_accumulate: s = combine(s, a[i]) — non-reducible accumulation.
GeneratedSnippet n_opaque_accumulate(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string s = names.accumulator();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  const int variant = static_cast<int>(rng.range(0, 1));
  if (variant == 0) {
    os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
       << "    " << s << " = " << s << " * " << a << "[" << i << "] + "
       << fmt_float(rng) << ";\n";  // Horner step: not a reduction
  } else {
    const std::string fn = names.compute_function();
    os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
       << "    " << s << " = " << fn << "(" << s << ", " << a << "[" << i
       << "]);\n";
  }
  return snippet("opaque_accumulate", os.str());
}

/// n_rand_loop: rand()/time() in the body.
GeneratedSnippet n_rand_loop(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string n = sampled_bound(rng, names, 16, 1 << 14);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    " << a << "[" << i << "] = rand() % " << rng.range(2, 1000) << ";\n";
  return snippet("rand_loop", os.str());
}

/// n_goto_cleanup: error-handling with goto (ComPar compile failure).
GeneratedSnippet n_goto_cleanup(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string err = names.scalar();
  const std::string n = sampled_bound(rng, names, 16, 4096);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    if (" << a << "[" << i << "] < 0)\n"
     << "        goto fail;\n"
     << "    " << a << "[" << i << "] = " << a << "[" << i << "] + 1;\n"
     << "}\n"
     << "fail:\n"
     << err << " = 1;\n";
  return snippet("goto_cleanup", os.str());
}

/// n_outer_dependent: inner loop writes a shared row — outer is serial.
GeneratedSnippet n_outer_dependent(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string row = names.array();
  const std::string a = names.array();
  const std::string n = names.bound();
  const std::string m = names.bound();
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    for (" << j << " = 0; " << j << " < " << m << "; " << j << "++)\n"
     << "        " << row << "[" << j << "] += " << a << "[" << i << "][" << j
     << "];\n";
  return snippet("outer_dependent", os.str());
}

/// n_string_ops: byte-wise string handling.
GeneratedSnippet n_string_ops(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string s = names.serial_name();
  const std::string d = names.serial_name();
  std::ostringstream os;
  os << "for (" << i << " = 0; " << s << "[" << i << "] != 0; " << i << "++)\n"
     << "    " << d << "[" << i << "] = " << s << "[" << i << "]"
     << (rng.chance(0.5) ? " + 32" : "") << ";\n";
  return snippet("string_ops", os.str());
}

/// n_last_index: remembers the last matching index — carried scalar.
GeneratedSnippet n_last_index(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string pos = names.scalar();
  const std::string key = names.scalar();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++) {\n"
     << "    if (" << a << "[" << i << "] == " << key << ")\n"
     << "        " << pos << " = " << i << ";\n"
     << "    " << a << "[" << i << "] = " << a << "[" << i << "];\n"
     << "}\n";
  return snippet("last_index", os.str());
}

/// n_unannotated: dependence-free loops that developers left serial — the
/// dominant source of ComPar's false positives in §5.2 (precision 0.35).
/// These are cold-path setup/copy loops: small-ish bounds, serial naming
/// style, often a setup preamble. A dependence test says "parallelizable";
/// a human (and a model that reads the style/size cues) says "not worth a
/// thread team".
GeneratedSnippet n_unannotated(Rng& rng) {
  // Half are *style twins*: bodies bit-compatible with the init_1d /
  // elementwise positive families, distinguishable only by the serial
  // naming style (and a 15% residue that is genuinely undecidable). This
  // is the mechanism behind the paper's Text > R-Text result: replacing
  // identifiers erases the one feature that separates these negatives.
  const bool style_twin = rng.chance(0.5);
  NamePool names(rng, style_twin ? NameStyle::kSerial : NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string dst = names.array();
  std::ostringstream os;

  if (style_twin) {
    const std::string n = sampled_bound(rng, names);
    os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
    const int variant = static_cast<int>(rng.range(0, 3));
    if (variant == 0) {
      os << dst << "[" << i << "] = 0;\n";
    } else if (variant == 1) {
      os << dst << "[" << i << "] = " << i << ";\n";
    } else if (variant == 2) {
      os << dst << "[" << i << "] = " << fmt_float(rng) << ";\n";
    } else {
      const std::string a = names.array();
      const std::string b = names.array();
      os << dst << "[" << i << "] = " << a << "[" << i << "] + " << b << "[" << i
         << "];\n";
    }
    return snippet("unannotated", os.str());
  }

  // Cold-path setup/copy loops: small literal bounds, preambles.
  const std::string n =
      rng.chance(0.6) ? std::to_string(rng.range(8, 128)) : names.bound();
  if (rng.chance(0.5)) {
    const std::string s = names.scalar();
    os << s << " = 0;\n";
    if (rng.chance(0.4)) os << names.scalar() << " = " << rng.range(1, 64) << ";\n";
  }
  const int variant = static_cast<int>(rng.range(0, 2));
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  if (variant == 0) {
    os << dst << "[" << i << "] = " << (rng.chance(0.5) ? "0" : "-1") << ";\n";
  } else if (variant == 1) {
    const std::string src = names.array();
    os << dst << "[" << i << "] = " << src << "[" << i << "];\n";
  } else {
    os << dst << "[" << i << "] = " << i << " * " << rng.range(1, 8) << ";\n";
  }
  return snippet("unannotated", os.str());
}

/// n_impure_local_call: helper writing a global — visible impurity.
GeneratedSnippet n_impure_local_call(Rng& rng) {
  NamePool names(rng, NameStyle::kMixed);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string fn = names.compute_function();
  const std::string g = names.scalar();
  const std::string x = names.scalar();
  const std::string n = sampled_bound(rng, names, 64, 1 << 16);
  std::ostringstream os;
  os << "double " << fn << "(double " << x << ") {\n"
     << "    " << g << " += " << x << ";\n"
     << "    return " << g << ";\n"
     << "}\n"
     << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n"
     << "    " << a << "[" << i << "] = " << fn << "(" << a << "[" << i << "]);\n";
  return snippet("impure_local_call", os.str());
}

// ===== simd families =========================================================
//
// Vectorizable single loops labeled with `#pragma omp simd` (not worksharing).
// Kept out of all_families() so every corpus generated before the simd rule
// family existed stays bit-identical; generator.simd_families opts in.

/// Builds the canonical directive for a simd-labeled snippet.
OmpDirective simd_directive(int safelen = 0, std::vector<Reduction> reductions = {}) {
  OmpDirective d;
  d.simd = true;
  d.safelen = safelen;
  d.reductions = std::move(reductions);
  return d;
}

/// s_simd_saxpy: dependence-free streaming update — clean bare `omp simd`.
GeneratedSnippet s_simd_saxpy(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string x = names.array();
  const std::string y = names.array();
  const std::string alpha = names.scalar();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  const int variant = static_cast<int>(rng.range(0, 2));
  if (variant == 0)
    os << y << "[" << i << "] = " << alpha << " * " << x << "[" << i << "] + " << y
       << "[" << i << "];\n";
  else if (variant == 1)
    os << y << "[" << i << "] += " << alpha << " * " << x << "[" << i << "];\n";
  else
    os << y << "[" << i << "] = " << x << "[" << i << "] * " << fmt_float(rng)
       << ";\n";
  return positive("simd_saxpy", os.str(), simd_directive());
}

/// s_simd_offset_stream: a[i] = a[i-K] + b[i] — carried distance exactly K,
/// legal under the declared safelen(K). The distance label exercises the
/// exact dependence engine end to end.
GeneratedSnippet s_simd_offset_stream(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string b = names.array();
  const std::string n = sampled_bound(rng, names);
  const int k = static_cast<int>(rng.range(2, 8));
  std::ostringstream os;
  os << "for (" << i << " = " << k << "; " << i << " < " << n << "; " << i
     << "++)\n    " << a << "[" << i << "] = " << a << "[" << i << " - " << k
     << "] + " << b << "[" << i << "];\n";
  return positive("simd_offset_stream", os.str(), simd_directive(k));
}

/// s_simd_reduction: horizontal sum under `omp simd reduction(+: s)`.
GeneratedSnippet s_simd_reduction(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string a = names.array();
  const std::string acc = names.accumulator();
  const std::string n = sampled_bound(rng, names);
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << n << "; " << i << "++)\n    ";
  if (rng.chance(0.5)) {
    const std::string b = names.array();
    os << acc << " += " << a << "[" << i << "] * " << b << "[" << i << "];\n";
  } else {
    os << acc << " += " << a << "[" << i << "];\n";
  }
  return positive("simd_reduction", os.str(),
                  simd_directive(0, {Reduction{ReductionOp::kAdd, acc}}));
}

/// s_simd_nest: clean two-level nest labeled `parallel for private(j)`.
/// Its seeded bug adds `simd` to the *outer* directive — the
/// simd-on-non-innermost defect.
GeneratedSnippet s_simd_nest(Rng& rng) {
  NamePool names(rng, NameStyle::kHpc);
  const std::string i = names.induction();
  const std::string j = names.induction();
  const std::string in = names.array();
  const std::string out = names.array();
  const std::string rows = names.bound();
  const std::string cols = names.bound();
  std::ostringstream os;
  os << "for (" << i << " = 0; " << i << " < " << rows << "; " << i << "++)\n"
     << "    for (" << j << " = 0; " << j << " < " << cols << "; " << j << "++)\n"
     << "        " << out << "[" << i << "][" << j << "] = " << in << "[" << i
     << "][" << j << "] * " << fmt_float(rng) << ";\n";
  return positive("simd_nest", os.str(),
                  loop_directive(ScheduleKind::kStatic, {j}));
}

}  // namespace

const std::vector<Family>& simd_families() {
  static const std::vector<Family> kSimd = {
      {"simd_saxpy", 2.0, true, s_simd_saxpy},
      {"simd_offset_stream", 2.0, true, s_simd_offset_stream},
      {"simd_reduction", 2.0, true, s_simd_reduction},
      {"simd_nest", 1.5, true, s_simd_nest},
  };
  return kSimd;
}

const std::vector<Family>& all_families() {
  static const std::vector<Family> kFamilies = {
      // --- positives (total weight 49.5; weights calibrated so corpus
      // statistics land near Table 3 — see codegen_test) ---
      {"init_1d", 3.0, true, p_init_1d},
      {"init_2d", 5.0, true, p_init_2d},
      {"elementwise", 3.5, true, p_elementwise},
      {"offset_read", 2.5, true, p_offset_read},
      {"stencil", 3.5, true, p_stencil},
      {"sum_reduction", 7.0, true, p_sum_reduction},
      {"minmax_reduction", 3.0, true, p_minmax_reduction},
      {"prod_reduction", 1.0, true, p_prod_reduction},
      {"matmul", 3.5, true, p_matmul},
      {"private_temp", 9.0, true, p_private_temp},
      {"extern_kernel", 5.0, true, p_extern_kernel},
      {"unbalanced_if", 3.0, true, p_unbalanced_if},
      {"triangular", 3.0, true, p_triangular},
      {"local_pure_call", 1.5, true, p_local_pure_call},
      // --- negatives (total weight ~58) ---
      {"io_loop", 5.0, false, n_io_loop},
      {"recurrence", 4.5, false, n_recurrence},
      {"pointer_chase", 3.0, false, n_pointer_chase},
      {"small_trip", 4.0, false, n_small_trip},
      {"scalar_carried", 4.5, false, n_scalar_carried},
      {"unannotated", 20.0, false, n_unannotated},
      {"alloc_loop", 3.0, false, n_alloc_loop},
      {"early_exit", 3.0, false, n_early_exit},
      {"indirect_write", 3.0, false, n_indirect_write},
      {"opaque_accumulate", 3.0, false, n_opaque_accumulate},
      {"rand_loop", 1.5, false, n_rand_loop},
      {"goto_cleanup", 2.5, false, n_goto_cleanup},
      {"outer_dependent", 3.0, false, n_outer_dependent},
      {"string_ops", 1.5, false, n_string_ops},
      {"last_index", 1.5, false, n_last_index},
      {"impure_local_call", 1.5, false, n_impure_local_call},
  };
  return kFamilies;
}

const Family& family_by_name(const std::string& name) {
  for (const Family& f : all_families())
    if (f.name == name) return f;
  for (const Family& f : simd_families())
    if (f.name == name) return f;
  throw InvalidArgument("unknown snippet family: " + name);
}

}  // namespace clpp::codegen
