#include "codegen/names.h"

#include <array>

namespace clpp::codegen {

namespace {
constexpr std::array kInductionHpc = {"i", "j", "k", "l", "ii", "jj"};
constexpr std::array kInductionMixed = {"i", "idx", "pos", "step", "it", "p"};
constexpr std::array kArrayHpc = {"A",   "B",   "C",    "a",    "b",   "c",
                                  "arr", "vec", "data", "u",    "v",   "w",
                                  "x",   "y",   "mat",  "grid", "out", "in"};
constexpr std::array kArrayMixed = {"buf",   "items", "list", "table", "values",
                                    "cache", "queue", "heap", "field", "bytes"};
constexpr std::array kScalarHpc = {"t", "tmp", "val", "s", "d", "q", "h", "z"};
constexpr std::array kScalarMixed = {"ret",  "flag", "state", "err",
                                     "code", "key",  "cur",   "next_val"};
constexpr std::array kAccumulator = {"sum",  "total", "acc",  "prod", "norm",
                                     "dot",  "mean",  "sigma", "energy", "res"};
constexpr std::array kBoundHpc = {"n", "N", "len", "size", "m", "M", "dim", "count"};
constexpr std::array kBoundMixed = {"n", "limit", "max_items", "nelems", "sz"};
constexpr std::array kComputeFn = {"compute_flux",  "update_cell", "advance",
                                   "body_force",    "evolve",      "relax_point",
                                   "apply_kernel",  "transform",   "integrate",
                                   "eval_rhs",      "smooth_step", "project"};
constexpr std::array kSerial = {"node", "ptr", "cur",  "head", "fp",  "file",
                                "f",    "str", "tok",  "ctx",  "conn", "req",
                                "resp"};
}  // namespace

std::string NamePool::unique(std::string candidate) {
  if (used_.insert(candidate).second) return candidate;
  for (int suffix = 2;; ++suffix) {
    std::string numbered = candidate + std::to_string(suffix);
    if (used_.insert(numbered).second) return numbered;
  }
}

std::string NamePool::draw(std::span<const char* const> hpc,
                           std::span<const char* const> mixed) {
  // The naming-convention signal of §5.1: HPC-style snippets use the HPC
  // pool 95% of the time, serial-style ones 5%, mixed ones 50%.
  double hpc_probability = 0.5;
  if (style_ == NameStyle::kHpc) hpc_probability = 0.95;
  if (style_ == NameStyle::kSerial) hpc_probability = 0.05;
  const auto& pool = rng_->chance(hpc_probability) ? hpc : mixed;
  return unique(pool[rng_->index(pool.size())]);
}

std::string NamePool::induction() { return draw(kInductionHpc, kInductionMixed); }

std::string NamePool::array() { return draw(kArrayHpc, kArrayMixed); }

std::string NamePool::scalar() { return draw(kScalarHpc, kScalarMixed); }

std::string NamePool::accumulator() {
  return unique(kAccumulator[rng_->index(kAccumulator.size())]);
}

std::string NamePool::bound() { return draw(kBoundHpc, kBoundMixed); }

std::string NamePool::compute_function() {
  return unique(kComputeFn[rng_->index(kComputeFn.size())]);
}

std::string NamePool::serial_name() {
  return unique(kSerial[rng_->index(kSerial.size())]);
}

}  // namespace clpp::codegen
