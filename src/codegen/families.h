// Snippet template families of the synthetic Open-OMP generator.
//
// Each family models one loop archetype observed in OpenMP corpora, with
// randomized identifiers, bounds, constants, operators, and benign extra
// statements. Positive families carry a ground-truth directive (with
// clause/schedule labels); negative families are loops a developer would
// leave serial — for one of the concrete reasons the paper discusses
// (I/O, recurrences, tiny trip counts, opaque accumulation, early exits,
// pointer chasing, allocation, indirect writes).
//
// The family mix is calibrated in generator.cpp so corpus statistics land
// near Table 3 of the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "frontend/pragma.h"
#include "support/rng.h"

namespace clpp::codegen {

/// One generated snippet plus its ground-truth labels.
struct GeneratedSnippet {
  std::string family;
  std::string code;  // no directive line inside
  bool has_directive = false;
  frontend::OmpDirective directive;  // meaningful iff has_directive
};

/// A registered template family.
struct Family {
  std::string name;
  double weight;   // relative sampling weight
  bool positive;   // produces directive-labeled snippets
  std::function<GeneratedSnippet(Rng&)> make;
};

/// The full registry (positives + negatives), weights included.
const std::vector<Family>& all_families();

/// Vectorizable `omp simd` families (simd_saxpy, simd_offset_stream,
/// simd_reduction, simd_nest). Kept out of all_families() so corpora
/// generated before the simd rule family stay bit-identical; enable via
/// GeneratorConfig::simd_families.
const std::vector<Family>& simd_families();

/// Looks a family up by name (all_families + simd_families); throws
/// InvalidArgument when missing.
const Family& family_by_name(const std::string& name);

}  // namespace clpp::codegen
