// Synthetic Open-OMP corpus generation (DESIGN.md §1 substitution).
#pragma once

#include <cstdint>

#include "corpus/corpus.h"

namespace clpp::codegen {

/// Generator configuration.
struct GeneratorConfig {
  /// Number of snippets; the paper's corpus has 28,374 (Table 3).
  std::size_t size = 28374;
  /// Master seed — every corpus with the same config is bit-identical.
  std::uint64_t seed = 2023;
  /// Developer-inconsistency noise: probability that a snippet's directive
  /// label is flipped (annotated code that isn't parallel-worthy, or
  /// parallelizable code whose author skipped the pragma). Flipped-positive
  /// records receive a bare `#pragma omp parallel for`.
  double label_noise = 0.03;
  /// Probability that a record's directive is deliberately corrupted into a
  /// specific clpp::lint-detectable defect, tagging `Record::bug` with the
  /// ground-truth rule id: positives lose their reduction clause
  /// (missing-reduction), lose their private list (missing-private), or get
  /// the iterator forced into shared(...) (shared-induction); negatives of
  /// provably racy families gain a bare pragma (loop-carried-dependence).
  /// Disjoint from label_noise flips. 0 = every label stays faithful.
  double buggy_directive_rate = 0.0;
};

/// Generates the corpus. Record ids are "omp-<index>".
corpus::Corpus generate_corpus(const GeneratorConfig& config);

}  // namespace clpp::codegen
