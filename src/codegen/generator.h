// Synthetic Open-OMP corpus generation (DESIGN.md §1 substitution).
#pragma once

#include <cstdint>

#include "corpus/corpus.h"

namespace clpp::codegen {

/// Generator configuration.
struct GeneratorConfig {
  /// Number of snippets; the paper's corpus has 28,374 (Table 3).
  std::size_t size = 28374;
  /// Master seed — every corpus with the same config is bit-identical.
  std::uint64_t seed = 2023;
  /// Developer-inconsistency noise: probability that a snippet's directive
  /// label is flipped (annotated code that isn't parallel-worthy, or
  /// parallelizable code whose author skipped the pragma). Flipped-positive
  /// records receive a bare `#pragma omp parallel for`.
  double label_noise = 0.03;
  /// Probability that a record's directive is deliberately corrupted into a
  /// specific clpp::lint-detectable defect, tagging `Record::bug` with the
  /// ground-truth rule id: positives lose their reduction clause
  /// (missing-reduction), lose their private list (missing-private), or get
  /// the iterator forced into shared(...) (shared-induction); negatives of
  /// provably racy families gain a bare pragma (loop-carried-dependence).
  /// Disjoint from label_noise flips. 0 = every label stays faithful.
  /// Simd-family records corrupt into the simd rule family instead:
  /// safelen dropped (simd-misses-safelen), safelen inflated past the
  /// carried distance (simd-unsafe-carried-dependence), reduction clause
  /// dropped (simd-reduction-mismatch), or `simd` added to the outer
  /// directive of a nest (simd-on-non-innermost).
  double buggy_directive_rate = 0.0;
  /// Mix in the `omp simd`-labeled families (codegen::simd_families()).
  /// Off by default so every pre-existing seeded corpus stays bit-identical.
  bool simd_families = false;
};

/// Generates the corpus. Record ids are "omp-<index>".
corpus::Corpus generate_corpus(const GeneratorConfig& config);

}  // namespace clpp::codegen
