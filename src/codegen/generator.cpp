#include "codegen/generator.h"

#include <algorithm>

#include "analysis/loopinfo.h"
#include "codegen/families.h"
#include "frontend/parser.h"
#include "lint/diagnostics.h"

namespace clpp::codegen {

namespace {

/// Families whose loop body carries a dependence the dependence test
/// provably detects: attaching a bare `parallel for` to them is a
/// guaranteed loop-carried-dependence finding.
bool provably_racy_family(const std::string& family) {
  return family == "recurrence" || family == "scalar_carried" ||
         family == "outer_dependent" || family == "indirect_write";
}

/// Canonical induction variable of the snippet's first loop ("" when the
/// loop cannot be canonicalized — nothing to corrupt then).
std::string induction_of(const std::string& code) {
  try {
    const frontend::NodePtr unit = frontend::parse_snippet(code);
    const frontend::Node* loop = nullptr;
    frontend::walk(*unit, [&](const frontend::Node& node, int) {
      if (loop == nullptr && node.kind == frontend::NodeKind::kFor) loop = &node;
    });
    if (loop != nullptr)
      if (const auto canonical = analysis::canonicalize(*loop))
        return canonical->induction;
  } catch (const ParseError&) {
  }
  return {};
}

/// Corrupts `record`'s label into one lint-detectable defect and tags
/// `record.bug` with the rule id the linter must report. No-op when the
/// record offers nothing corruptible. `rng` is only drawn from on simd
/// records, keeping the sequence of every pre-simd corpus untouched.
void seed_directive_bug(corpus::Record& record, Rng& rng) {
  if (!record.has_directive) {
    if (!provably_racy_family(record.family)) return;
    frontend::OmpDirective bare;
    bare.parallel = true;
    bare.for_loop = true;
    record.has_directive = true;
    record.directive_text = bare.to_string();
    record.bug = lint::rule::kLoopCarried;
    return;
  }

  frontend::OmpDirective directive = frontend::parse_omp_pragma(record.directive_text);
  if (directive.simd && !directive.for_loop) {
    // Bare `omp simd`: corrupt into the simd legality family.
    if (directive.safelen > 0) {
      if (rng.chance(0.5)) {
        directive.safelen = 0;  // distance still carried, nothing licenses it
        record.bug = lint::rule::kSimdMissesSafelen;
      } else {
        directive.safelen *= 2;  // now exceeds the carried distance
        record.bug = lint::rule::kSimdUnsafeDep;
      }
    } else if (!directive.reductions.empty()) {
      directive.reductions.clear();
      record.bug = lint::rule::kSimdReductionMismatch;
    } else {
      return;  // dependence-free bare simd offers nothing corruptible
    }
    record.directive_text = directive.to_string();
    return;
  }
  if (record.family == "simd_nest") {
    directive.simd = true;
    record.bug = lint::rule::kSimdNonInnermost;
    record.directive_text = directive.to_string();
    return;
  }
  const std::string induction = induction_of(record.code);
  if (!directive.reductions.empty()) {
    directive.reductions.clear();
    record.bug = lint::rule::kMissingReduction;
  } else {
    // The implicitly private iterator doesn't count: dropping it changes
    // nothing the linter can see.
    const auto dropped = std::remove_if(
        directive.private_vars.begin(), directive.private_vars.end(),
        [&](const std::string& name) { return name != induction; });
    const bool any_dropped = dropped != directive.private_vars.end();
    directive.private_vars.erase(dropped, directive.private_vars.end());
    if (any_dropped) {
      record.bug = lint::rule::kMissingPrivate;
    } else if (!induction.empty()) {
      directive.shared_vars.push_back(induction);
      record.bug = lint::rule::kSharedInduction;
    } else {
      return;
    }
  }
  record.directive_text = directive.to_string();
}

}  // namespace

corpus::Corpus generate_corpus(const GeneratorConfig& config) {
  CLPP_CHECK_MSG(config.size > 0, "corpus size must be positive");
  CLPP_CHECK_MSG(config.label_noise >= 0.0 && config.label_noise < 0.5,
                 "label noise must be in [0, 0.5)");
  CLPP_CHECK_MSG(config.buggy_directive_rate >= 0.0 && config.buggy_directive_rate < 1.0,
                 "buggy directive rate must be in [0, 1)");
  Rng rng(config.seed);

  std::vector<Family> families = all_families();
  if (config.simd_families) {
    const auto& simd = simd_families();
    families.insert(families.end(), simd.begin(), simd.end());
  }
  std::vector<double> weights;
  weights.reserve(families.size());
  for (const Family& f : families) weights.push_back(f.weight);

  corpus::Corpus corpus;
  for (std::size_t index = 0; index < config.size; ++index) {
    const Family& family = families[rng.weighted(weights)];
    GeneratedSnippet snippet = family.make(rng);

    corpus::Record record;
    record.id = "omp-" + std::to_string(index);
    record.family = snippet.family;
    record.code = std::move(snippet.code);
    record.has_directive = snippet.has_directive;
    if (snippet.has_directive) record.directive_text = snippet.directive.to_string();

    // The `> 0` guard on the bug draw keeps the rng sequence — and thus
    // every existing seeded corpus — bit-identical when the knob is off.
    if (rng.chance(config.label_noise)) {
      if (record.has_directive) {
        record.has_directive = false;
        record.directive_text.clear();
      } else {
        record.has_directive = true;
        frontend::OmpDirective bare;
        bare.parallel = true;
        bare.for_loop = true;
        record.directive_text = bare.to_string();
      }
    } else if (config.buggy_directive_rate > 0 &&
               rng.chance(config.buggy_directive_rate)) {
      seed_directive_bug(record, rng);
    }
    record.refresh_labels();
    corpus.add(std::move(record));
  }
  return corpus;
}

}  // namespace clpp::codegen
