#include "codegen/generator.h"

#include "codegen/families.h"

namespace clpp::codegen {

corpus::Corpus generate_corpus(const GeneratorConfig& config) {
  CLPP_CHECK_MSG(config.size > 0, "corpus size must be positive");
  CLPP_CHECK_MSG(config.label_noise >= 0.0 && config.label_noise < 0.5,
                 "label noise must be in [0, 0.5)");
  Rng rng(config.seed);

  const auto& families = all_families();
  std::vector<double> weights;
  weights.reserve(families.size());
  for (const Family& f : families) weights.push_back(f.weight);

  corpus::Corpus corpus;
  for (std::size_t index = 0; index < config.size; ++index) {
    const Family& family = families[rng.weighted(weights)];
    GeneratedSnippet snippet = family.make(rng);

    corpus::Record record;
    record.id = "omp-" + std::to_string(index);
    record.family = snippet.family;
    record.code = std::move(snippet.code);
    record.has_directive = snippet.has_directive;
    if (snippet.has_directive) record.directive_text = snippet.directive.to_string();

    if (rng.chance(config.label_noise)) {
      if (record.has_directive) {
        record.has_directive = false;
        record.directive_text.clear();
      } else {
        record.has_directive = true;
        frontend::OmpDirective bare;
        bare.parallel = true;
        bare.for_loop = true;
        record.directive_text = bare.to_string();
      }
    }
    record.refresh_labels();
    corpus.add(std::move(record));
  }
  return corpus;
}

}  // namespace clpp::codegen
