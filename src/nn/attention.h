// Multi-head scaled-dot-product self-attention with padding masks.
#pragma once

#include <memory>

#include "nn/batch.h"
#include "nn/linear.h"

namespace clpp::nn {

/// Self-attention block: Q/K/V/O projections plus masked softmax attention.
///
/// Input and output are rank-2 activations [B*S, d]; the sequence geometry
/// (B, S, per-sample valid lengths) is supplied per forward call. Keys and
/// values at padded positions are excluded via the mask; padded query rows
/// produce don't-care outputs that downstream masked pooling ignores.
class MultiHeadSelfAttention {
 public:
  MultiHeadSelfAttention(std::string name, std::size_t dim, std::size_t heads, Rng& rng);

  /// Forward pass; `lengths.size() == batch`, each in [1, seq].
  Tensor forward(const Tensor& x, std::size_t batch, std::size_t seq,
                 std::span<const int> lengths, bool train);

  /// Backward pass; returns dL/dx.
  Tensor backward(const Tensor& grad_out);

  void collect_parameters(std::vector<Parameter*>& out);

  std::size_t dim() const { return dim_; }
  std::size_t heads() const { return heads_; }
  std::size_t head_dim() const { return dim_ / heads_; }

  /// Attention probabilities of the last forward: rank-3 [B*H, S, S].
  /// Exposed for interpretability tooling (attention maps over code tokens).
  const Tensor& last_probs() const { return probs_; }

 private:
  std::size_t dim_;
  std::size_t heads_;
  Linear q_proj_;
  Linear k_proj_;
  Linear v_proj_;
  Linear o_proj_;

  // Cached forward state.
  std::size_t batch_ = 0;
  std::size_t seq_ = 0;
  std::vector<int> lengths_;
  Tensor q_, k_, v_;  // [B*S, d]
  Tensor probs_;      // [B*H, S, S]
};

}  // namespace clpp::nn
