// Layer normalization over the feature (last) dimension.
#pragma once

#include "nn/layer.h"

namespace clpp::nn {

/// y = gamma * (x - mean) / sqrt(var + eps) + beta, per row.
class LayerNorm : public Layer {
 public:
  LayerNorm(std::string name, std::size_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  Parameter gamma;
  Parameter beta;

 private:
  float eps_;
  Tensor normalized_;  // cached x̂
  Tensor inv_std_;     // cached 1/σ per row
};

}  // namespace clpp::nn
