#include "nn/activations.h"

#include <cmath>

namespace clpp::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y = x;
  for (float& v : y.values())
    if (v < 0.0f) v = 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(!input_.empty(), "ReLU::backward without forward");
  CLPP_CHECK(grad_out.shape() == input_.shape());
  Tensor grad_in = grad_out;
  const float* x = input_.data();
  float* g = grad_in.data();
  const std::size_t n = grad_in.numel();
  for (std::size_t i = 0; i < n; ++i)
    if (x[i] <= 0.0f) g[i] = 0.0f;
  return grad_in;
}

namespace {
constexpr float kSqrt2OverPi = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluCoeff = 0.044715f;

inline float gelu_value(float x) {
  const float inner = kSqrt2OverPi * (x + kGeluCoeff * x * x * x);
  return 0.5f * x * (1.0f + std::tanh(inner));
}

inline float gelu_derivative(float x) {
  const float x3 = x * x * x;
  const float inner = kSqrt2OverPi * (x + kGeluCoeff * x3);
  const float t = std::tanh(inner);
  const float sech2 = 1.0f - t * t;
  return 0.5f * (1.0f + t) +
         0.5f * x * sech2 * kSqrt2OverPi * (1.0f + 3.0f * kGeluCoeff * x * x);
}
}  // namespace

Tensor Gelu::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y = x;
  for (float& v : y.values()) v = gelu_value(v);
  return y;
}

Tensor Gelu::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(!input_.empty(), "Gelu::backward without forward");
  CLPP_CHECK(grad_out.shape() == input_.shape());
  Tensor grad_in = grad_out;
  const float* x = input_.data();
  float* g = grad_in.data();
  const std::size_t n = grad_in.numel();
  for (std::size_t i = 0; i < n; ++i) g[i] *= gelu_derivative(x[i]);
  return grad_in;
}

Dropout::Dropout(float p, Rng& rng) : p_(p), rng_(&rng) {
  CLPP_CHECK_MSG(p >= 0.0f && p < 1.0f, "dropout rate must be in [0,1), got " << p);
}

Tensor Dropout::forward(const Tensor& x, bool train) {
  last_train_ = train && p_ > 0.0f;
  if (!last_train_) return x;
  mask_ = Tensor(x.shape());
  const float keep_scale = 1.0f / (1.0f - p_);
  Tensor y = x;
  float* m = mask_.data();
  float* v = y.data();
  const std::size_t n = y.numel();
  for (std::size_t i = 0; i < n; ++i) {
    m[i] = rng_->chance(p_) ? 0.0f : keep_scale;
    v[i] *= m[i];
  }
  return y;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_train_) return grad_out;
  CLPP_CHECK(grad_out.shape() == mask_.shape());
  Tensor grad_in = grad_out;
  const float* m = mask_.data();
  float* g = grad_in.data();
  const std::size_t n = grad_in.numel();
  for (std::size_t i = 0; i < n; ++i) g[i] *= m[i];
  return grad_in;
}

}  // namespace clpp::nn
