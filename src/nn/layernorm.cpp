#include "nn/layernorm.h"

#include <cmath>

namespace clpp::nn {

LayerNorm::LayerNorm(std::string name, std::size_t features, float eps)
    : gamma(name + ".gamma", Tensor::full({features}, 1.0f)),
      beta(name + ".beta", Tensor({features})),
      eps_(eps) {}

Tensor LayerNorm::forward(const Tensor& x, bool /*train*/) {
  const std::size_t n = gamma.value.dim(0);
  CLPP_CHECK_MSG(x.rank() == 2 && x.cols() == n,
                 "LayerNorm input " << x.shape_str() << " incompatible with features="
                                    << n);
  const std::size_t rows = x.rows();
  normalized_ = Tensor({rows, n});
  inv_std_ = Tensor({rows});
  Tensor y({rows, n});
  const float* g = gamma.value.data();
  const float* b = beta.value.data();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* xr = x.row(i);
    float mean = 0.0f;
    for (std::size_t j = 0; j < n; ++j) mean += xr[j];
    mean /= static_cast<float>(n);
    float var = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float d = xr[j] - mean;
      var += d * d;
    }
    var /= static_cast<float>(n);
    const float inv = 1.0f / std::sqrt(var + eps_);
    inv_std_(i) = inv;
    float* nr = normalized_.row(i);
    float* yr = y.row(i);
    for (std::size_t j = 0; j < n; ++j) {
      nr[j] = (xr[j] - mean) * inv;
      yr[j] = g[j] * nr[j] + b[j];
    }
  }
  return y;
}

Tensor LayerNorm::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(!normalized_.empty(), "LayerNorm::backward without forward");
  const std::size_t rows = normalized_.rows();
  const std::size_t n = normalized_.cols();
  CLPP_CHECK(grad_out.shape() == normalized_.shape());
  Tensor grad_in({rows, n});
  const float* g = gamma.value.data();
  float* dgamma = gamma.grad.data();
  float* dbeta = beta.grad.data();
  for (std::size_t i = 0; i < rows; ++i) {
    const float* go = grad_out.row(i);
    const float* xh = normalized_.row(i);
    float* gi = grad_in.row(i);
    // dL/dx̂ = go * gamma; then the standard LayerNorm input gradient:
    // dx = (1/σ) (dx̂ - mean(dx̂) - x̂ * mean(dx̂ ∘ x̂)).
    float sum_dxhat = 0.0f;
    float sum_dxhat_xhat = 0.0f;
    for (std::size_t j = 0; j < n; ++j) {
      const float dxhat = go[j] * g[j];
      sum_dxhat += dxhat;
      sum_dxhat_xhat += dxhat * xh[j];
      dgamma[j] += go[j] * xh[j];
      dbeta[j] += go[j];
    }
    const float inv_n = 1.0f / static_cast<float>(n);
    const float inv_std = inv_std_(i);
    for (std::size_t j = 0; j < n; ++j) {
      const float dxhat = go[j] * g[j];
      gi[j] = inv_std * (dxhat - sum_dxhat * inv_n - xh[j] * sum_dxhat_xhat * inv_n);
    }
  }
  return grad_in;
}

void LayerNorm::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma);
  out.push_back(&beta);
}

}  // namespace clpp::nn
