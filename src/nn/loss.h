// Classification losses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace clpp::nn {

/// Mean softmax cross-entropy over rows of `logits` [N, C].
///
/// Labels with value kIgnore contribute neither loss nor gradient (used by
/// the MLM objective, where only masked positions are predicted). For the
/// binary tasks of the paper (C = 2), this reduces exactly to the BCE of
/// Eq. 1 applied to the positive-class softmax probability.
class SoftmaxCrossEntropy {
 public:
  static constexpr std::int32_t kIgnore = -1;

  /// Computes the mean loss; caches probabilities for backward.
  /// Returns 0 when every label is ignored.
  float forward(const Tensor& logits, std::span<const std::int32_t> labels);

  /// Gradient of the mean loss w.r.t. logits: (softmax - onehot) / n_active.
  Tensor backward() const;

  /// Row-wise probabilities from the last forward (softmax of logits).
  const Tensor& probabilities() const { return probs_; }

 private:
  Tensor probs_;
  std::vector<std::int32_t> labels_;
  std::size_t active_ = 0;
};

/// Probability assigned to class 1 for each row of binary `logits` [N, 2].
std::vector<float> positive_probabilities(const Tensor& logits);

}  // namespace clpp::nn
