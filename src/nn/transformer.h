// Transformer encoder: the backbone of PragFormer.
//
// Pre-LayerNorm variant (LN -> sublayer -> residual). The paper fine-tunes
// a post-LN RoBERTa; pre-LN is the standard choice when training from
// scratch at small scale because it keeps gradients well-conditioned
// without a long warmup — the substitution is recorded in DESIGN.md.
#pragma once

#include <memory>
#include <vector>

#include "nn/activations.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/layernorm.h"
#include "nn/linear.h"

namespace clpp::nn {

/// Hyperparameters of the encoder stack.
struct EncoderConfig {
  std::size_t vocab_size = 0;
  std::size_t max_seq = 110;  // paper §4.3: longest snippet is 110 tokens
  std::size_t dim = 64;
  std::size_t heads = 4;
  std::size_t layers = 2;
  std::size_t ffn_dim = 128;
  float dropout = 0.1f;

  void validate() const;
};

/// One pre-LN encoder block: x + Attn(LN(x)), then h + FFN(LN(h)).
class TransformerEncoderLayer {
 public:
  TransformerEncoderLayer(std::string name, const EncoderConfig& cfg, Rng& rng);

  Tensor forward(const Tensor& x, std::size_t batch, std::size_t seq,
                 std::span<const int> lengths, bool train);
  Tensor backward(const Tensor& grad_out);
  void collect_parameters(std::vector<Parameter*>& out);

  /// Attention sublayer (read access for interpretability tooling).
  const MultiHeadSelfAttention& attention() const { return attn_; }

 private:
  LayerNorm ln1_;
  MultiHeadSelfAttention attn_;
  Dropout drop1_;
  LayerNorm ln2_;
  Linear ffn1_;
  Gelu gelu_;
  Linear ffn2_;
  Dropout drop2_;
};

/// Full encoder: embeddings -> N blocks -> final LayerNorm.
///
/// Produces contextualized activations [B*S, dim]; classification heads
/// pool these (see pooled_cls / scatter_cls_grad).
class TransformerEncoder {
 public:
  TransformerEncoder(const EncoderConfig& cfg, Rng& rng);

  /// Encodes a batch; returns activations [B*S, dim].
  Tensor forward(const TokenBatch& batch, bool train);

  /// Propagates gradients back to all parameters including embeddings.
  void backward(const Tensor& grad_out);

  void collect_parameters(std::vector<Parameter*>& out);
  const EncoderConfig& config() const { return cfg_; }

  /// Encoder block `i` (read access for interpretability tooling).
  const TransformerEncoderLayer& block(std::size_t i) const {
    CLPP_CHECK_MSG(i < blocks_.size(), "encoder block index out of range");
    return *blocks_[i];
  }
  std::size_t block_count() const { return blocks_.size(); }

 private:
  EncoderConfig cfg_;
  SequenceEmbedding embedding_;
  Dropout embed_drop_;
  std::vector<std::unique_ptr<TransformerEncoderLayer>> blocks_;
  LayerNorm final_ln_;
  // Geometry of the in-flight batch.
  std::size_t batch_ = 0;
  std::size_t seq_ = 0;
  std::vector<int> lengths_;
};

/// Extracts the first-token ([CLS]) row of each sample: [B*S, d] -> [B, d].
Tensor pooled_cls(const Tensor& activations, std::size_t batch, std::size_t seq);

/// Scatters a [B, d] gradient back into a zero [B*S, d] tensor at each
/// sample's CLS row (backward of pooled_cls).
Tensor scatter_cls_grad(const Tensor& grad_pooled, std::size_t batch, std::size_t seq);

}  // namespace clpp::nn
