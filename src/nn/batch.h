// Token batch representation shared by the encoder and trainers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.h"

namespace clpp::nn {

/// A padded batch of token-id sequences.
///
/// `ids` is row-major [batch, seq]; positions >= lengths[b] hold the pad id
/// and are excluded from attention and pooling.
struct TokenBatch {
  std::size_t batch = 0;
  std::size_t seq = 0;
  std::vector<std::int32_t> ids;
  std::vector<int> lengths;

  std::int32_t id(std::size_t b, std::size_t s) const { return ids[b * seq + s]; }

  /// Validates internal consistency; throws InvalidArgument when broken.
  void validate(std::size_t vocab_size) const {
    CLPP_CHECK_MSG(ids.size() == batch * seq, "TokenBatch: ids size mismatch");
    CLPP_CHECK_MSG(lengths.size() == batch, "TokenBatch: lengths size mismatch");
    for (int len : lengths)
      CLPP_CHECK_MSG(len >= 1 && static_cast<std::size_t>(len) <= seq,
                     "TokenBatch: length " << len << " out of [1," << seq << "]");
    for (std::int32_t tok : ids)
      CLPP_CHECK_MSG(tok >= 0 && static_cast<std::size_t>(tok) < vocab_size,
                     "TokenBatch: token id " << tok << " outside vocab " << vocab_size);
  }
};

}  // namespace clpp::nn
