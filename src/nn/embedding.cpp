#include "nn/embedding.h"

#include <cstring>

namespace clpp::nn {

SequenceEmbedding::SequenceEmbedding(std::string name, std::size_t vocab_size,
                                     std::size_t max_seq, std::size_t dim, Rng& rng)
    : token(name + ".token", Tensor::randn({vocab_size, dim}, rng, 0.0f, 0.02f)),
      position(name + ".position", Tensor::randn({max_seq, dim}, rng, 0.0f, 0.02f)) {}

Tensor SequenceEmbedding::forward(const TokenBatch& batch) {
  batch.validate(vocab_size());
  CLPP_CHECK_MSG(batch.seq <= max_seq(),
                 "sequence length " << batch.seq << " exceeds max " << max_seq());
  last_ = batch;
  const std::size_t d = dim();
  Tensor out({batch.batch * batch.seq, d});
  for (std::size_t b = 0; b < batch.batch; ++b) {
    for (std::size_t s = 0; s < batch.seq; ++s) {
      const std::size_t row = b * batch.seq + s;
      const float* tok = token.value.row(static_cast<std::size_t>(batch.id(b, s)));
      const float* pos = position.value.row(s);
      float* o = out.row(row);
      for (std::size_t j = 0; j < d; ++j) o[j] = tok[j] + pos[j];
    }
  }
  return out;
}

void SequenceEmbedding::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(last_.batch > 0, "SequenceEmbedding::backward without forward");
  const std::size_t d = dim();
  CLPP_CHECK(grad_out.rank() == 2 && grad_out.cols() == d &&
             grad_out.rows() == last_.batch * last_.seq);
  for (std::size_t b = 0; b < last_.batch; ++b) {
    // Gradients from padded positions are zeroed by the masked loss /
    // pooling upstream, so accumulating them unconditionally is safe and
    // branch-free.
    for (std::size_t s = 0; s < last_.seq; ++s) {
      const std::size_t row = b * last_.seq + s;
      const float* g = grad_out.row(row);
      float* gt = token.grad.row(static_cast<std::size_t>(last_.id(b, s)));
      float* gp = position.grad.row(s);
      for (std::size_t j = 0; j < d; ++j) {
        gt[j] += g[j];
        gp[j] += g[j];
      }
    }
  }
}

void SequenceEmbedding::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&token);
  out.push_back(&position);
}

}  // namespace clpp::nn
