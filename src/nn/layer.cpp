#include "nn/layer.h"

namespace clpp::nn {

void Layer::collect_parameters(std::vector<Parameter*>&) {}

std::vector<Parameter*> parameters_of(Layer& layer) {
  std::vector<Parameter*> out;
  layer.collect_parameters(out);
  return out;
}

std::size_t parameter_count(const std::vector<Parameter*>& params) {
  std::size_t n = 0;
  for (const Parameter* p : params) n += p->numel();
  return n;
}

void zero_gradients(const std::vector<Parameter*>& params) {
  for (Parameter* p : params) p->grad.zero();
}

}  // namespace clpp::nn
