#include "nn/loss.h"

#include <cmath>

#include "support/error.h"
#include "tensor/ops.h"

namespace clpp::nn {

float SoftmaxCrossEntropy::forward(const Tensor& logits,
                                   std::span<const std::int32_t> labels) {
  CLPP_CHECK_MSG(logits.rank() == 2, "loss expects [N, C] logits");
  CLPP_CHECK_MSG(labels.size() == logits.rows(), "one label per logit row required");
  probs_ = logits;
  softmax_rows(probs_);
  labels_.assign(labels.begin(), labels.end());

  const std::size_t classes = logits.cols();
  double total = 0.0;
  active_ = 0;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    const std::int32_t y = labels_[i];
    if (y == kIgnore) continue;
    CLPP_CHECK_MSG(y >= 0 && static_cast<std::size_t>(y) < classes,
                   "label " << y << " outside [0," << classes << ")");
    ++active_;
    const float p = probs_(i, static_cast<std::size_t>(y));
    total -= std::log(std::max(p, 1e-12f));
  }
  return active_ == 0 ? 0.0f : static_cast<float>(total / static_cast<double>(active_));
}

Tensor SoftmaxCrossEntropy::backward() const {
  CLPP_CHECK_MSG(!probs_.empty(), "loss backward without forward");
  Tensor grad({probs_.rows(), probs_.cols()});
  if (active_ == 0) return grad;
  const float inv = 1.0f / static_cast<float>(active_);
  for (std::size_t i = 0; i < probs_.rows(); ++i) {
    const std::int32_t y = labels_[i];
    if (y == kIgnore) continue;
    const float* p = probs_.row(i);
    float* g = grad.row(i);
    for (std::size_t c = 0; c < probs_.cols(); ++c) g[c] = p[c] * inv;
    g[static_cast<std::size_t>(y)] -= inv;
  }
  return grad;
}

std::vector<float> positive_probabilities(const Tensor& logits) {
  CLPP_CHECK_MSG(logits.rank() == 2 && logits.cols() == 2,
                 "positive_probabilities expects [N, 2] logits");
  std::vector<float> out(logits.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float a = logits(i, 0);
    const float b = logits(i, 1);
    const float m = std::max(a, b);
    const float ea = std::exp(a - m);
    const float eb = std::exp(b - m);
    out[i] = eb / (ea + eb);
  }
  return out;
}

}  // namespace clpp::nn
