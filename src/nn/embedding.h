// Token + learned positional embeddings.
#pragma once

#include "nn/batch.h"
#include "nn/layer.h"
#include "support/rng.h"

namespace clpp::nn {

/// Maps a TokenBatch to activations [B*S, d] as token_emb[id] + pos_emb[s].
///
/// Not a Layer (its input is ids, not a tensor); exposes the same
/// forward/backward pairing discipline.
class SequenceEmbedding {
 public:
  SequenceEmbedding(std::string name, std::size_t vocab_size, std::size_t max_seq,
                    std::size_t dim, Rng& rng);

  /// Embeds the batch. Padded positions receive embeddings too; downstream
  /// masking makes them inert.
  Tensor forward(const TokenBatch& batch);

  /// Accumulates gradients into the token/position tables.
  void backward(const Tensor& grad_out);

  void collect_parameters(std::vector<Parameter*>& out);

  std::size_t vocab_size() const { return token.value.dim(0); }
  std::size_t max_seq() const { return position.value.dim(0); }
  std::size_t dim() const { return token.value.dim(1); }

  Parameter token;     // [vocab, dim]
  Parameter position;  // [max_seq, dim]

 private:
  TokenBatch last_;  // cached ids for backward
};

}  // namespace clpp::nn
