#include "nn/optimizer.h"

#include <cmath>

#include "tensor/ops.h"

namespace clpp::nn {

AdamW::AdamW(AdamWConfig config) : config_(config) {
  CLPP_CHECK_MSG(config_.lr > 0, "learning rate must be positive");
  CLPP_CHECK_MSG(config_.beta1 >= 0 && config_.beta1 < 1, "beta1 in [0,1) required");
  CLPP_CHECK_MSG(config_.beta2 >= 0 && config_.beta2 < 1, "beta2 in [0,1) required");
}

void AdamW::step(const std::vector<Parameter*>& params) {
  if (m_.empty()) {
    m_.reserve(params.size());
    v_.reserve(params.size());
    for (const Parameter* p : params) {
      m_.emplace_back(p->value.shape());
      v_.emplace_back(p->value.shape());
    }
  }
  CLPP_CHECK_MSG(m_.size() == params.size(),
                 "parameter list changed size between optimizer steps");
  ++t_;
  const float bc1 = 1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Parameter& p = *params[pi];
    CLPP_CHECK_MSG(m_[pi].shape() == p.value.shape(),
                   "parameter " << p.name << " changed shape between steps");
    float* w = p.value.data();
    const float* g = p.grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::size_t n = p.value.numel();
    // LayerNorm/bias parameters (rank 1) are conventionally exempt from
    // weight decay; decaying them hurts small models disproportionately.
    const float decay = p.value.rank() >= 2 ? config_.weight_decay : 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * g[i];
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * g[i] * g[i];
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) + decay * w[i]);
    }
  }
}

void AdamW::restore_state(std::size_t steps, std::vector<Tensor> m,
                          std::vector<Tensor> v,
                          const std::vector<Parameter*>& params) {
  if (m.size() != params.size() || v.size() != params.size())
    throw ParseError("optimizer checkpoint has " + std::to_string(m.size()) + "/" +
                     std::to_string(v.size()) + " moment tensors for " +
                     std::to_string(params.size()) + " parameters");
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (m[i].shape() != params[i]->value.shape() ||
        v[i].shape() != params[i]->value.shape())
      throw ParseError("optimizer checkpoint shape mismatch for parameter " +
                       params[i]->name);
  }
  t_ = steps;
  m_ = std::move(m);
  v_ = std::move(v);
}

double clip_gradient_norm(const std::vector<Parameter*>& params, double max_norm) {
  CLPP_CHECK(max_norm > 0);
  double total = 0.0;
  for (const Parameter* p : params) total += squared_norm(p->grad);
  const double norm = std::sqrt(total);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) scale_inplace(p->grad, scale);
  }
  return norm;
}

WarmupLinearSchedule::WarmupLinearSchedule(float base_lr, std::size_t warmup_steps,
                                           std::size_t total_steps, float floor_fraction)
    : base_lr_(base_lr),
      warmup_steps_(warmup_steps),
      total_steps_(total_steps),
      floor_fraction_(floor_fraction) {
  CLPP_CHECK(base_lr > 0);
  CLPP_CHECK(total_steps_ > warmup_steps_);
  CLPP_CHECK(floor_fraction_ >= 0.0f && floor_fraction_ <= 1.0f);
}

float WarmupLinearSchedule::lr_at(std::size_t step) const {
  if (warmup_steps_ > 0 && step < warmup_steps_)
    return base_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_steps_);
  if (step >= total_steps_) return base_lr_ * floor_fraction_;
  const float progress = static_cast<float>(step - warmup_steps_) /
                         static_cast<float>(total_steps_ - warmup_steps_);
  return base_lr_ * (1.0f - (1.0f - floor_fraction_) * progress);
}

}  // namespace clpp::nn
