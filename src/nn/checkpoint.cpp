#include "nn/checkpoint.h"

#include <fstream>
#include <sstream>

#include "resil/container.h"
#include "resil/fault.h"
#include "tensor/io.h"

namespace clpp::nn {

namespace {

std::map<std::string, Tensor> read_entries(std::istream& in, const std::string& path) {
  const std::uint64_t count = read_u64(in);
  if (count > 1'000'000) throw ParseError("implausible checkpoint entry count");
  std::map<std::string, Tensor> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    Tensor value = read_tensor(in);
    if (!out.emplace(std::move(name), std::move(value)).second)
      throw ParseError("duplicate parameter name in checkpoint: " + path);
  }
  return out;
}

}  // namespace

void save_checkpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ostringstream payload;
  write_u64(payload, params.size());
  for (const Parameter* p : params) {
    write_string(payload, p->name);
    write_tensor(payload, p->value);
  }
  resil::write_container(path, payload.view());
}

std::map<std::string, Tensor> load_checkpoint(const std::string& path) {
  resil::fault_point("ckpt.open");
  if (resil::is_container_file(path)) {
    const std::string payload = resil::read_container(path);
    std::istringstream in(payload);
    return read_entries(in, path);
  }
  // Legacy (pre-container) checkpoints: the raw entry stream with no
  // checksum. Kept readable so existing saved models survive the upgrade.
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint for reading: " + path);
  return read_entries(in, path);
}

std::size_t restore_parameters(const std::map<std::string, Tensor>& checkpoint,
                               const std::vector<Parameter*>& params, bool strict) {
  std::size_t restored = 0;
  for (Parameter* p : params) {
    auto it = checkpoint.find(p->name);
    if (it == checkpoint.end()) {
      if (strict) throw ParseError("checkpoint missing parameter: " + p->name);
      continue;
    }
    if (it->second.shape() != p->value.shape()) {
      if (strict)
        throw ParseError("checkpoint shape mismatch for " + p->name + ": expected " +
                         p->value.shape_str() + ", found " + it->second.shape_str());
      continue;
    }
    p->value = it->second;
    ++restored;
  }
  return restored;
}

}  // namespace clpp::nn
