#include "nn/checkpoint.h"

#include <fstream>

#include "tensor/io.h"

namespace clpp::nn {

void save_checkpoint(const std::string& path, const std::vector<Parameter*>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open checkpoint for writing: " + path);
  write_u64(out, params.size());
  for (const Parameter* p : params) {
    write_string(out, p->name);
    write_tensor(out, p->value);
  }
  if (!out) throw IoError("checkpoint write failed: " + path);
}

std::map<std::string, Tensor> load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint for reading: " + path);
  const std::uint64_t count = read_u64(in);
  if (count > 1'000'000) throw ParseError("implausible checkpoint entry count");
  std::map<std::string, Tensor> out;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = read_string(in);
    Tensor value = read_tensor(in);
    if (!out.emplace(std::move(name), std::move(value)).second)
      throw ParseError("duplicate parameter name in checkpoint: " + path);
  }
  return out;
}

std::size_t restore_parameters(const std::map<std::string, Tensor>& checkpoint,
                               const std::vector<Parameter*>& params, bool strict) {
  std::size_t restored = 0;
  for (Parameter* p : params) {
    auto it = checkpoint.find(p->name);
    if (it == checkpoint.end()) {
      if (strict) throw ParseError("checkpoint missing parameter: " + p->name);
      continue;
    }
    if (it->second.shape() != p->value.shape()) {
      if (strict)
        throw ParseError("checkpoint shape mismatch for " + p->name + ": expected " +
                         p->value.shape_str() + ", found " + it->second.shape_str());
      continue;
    }
    p->value = it->second;
    ++restored;
  }
  return restored;
}

}  // namespace clpp::nn
