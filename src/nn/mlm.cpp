#include "nn/mlm.h"

#include <algorithm>
#include <numeric>

#include "tensor/ops.h"

namespace clpp::nn {

MaskedBatch mask_tokens(const TokenBatch& batch, const MlmVocabInfo& vocab, Rng& rng,
                        float mask_prob) {
  CLPP_CHECK_MSG(vocab.vocab_size > 0, "vocab_size must be set");
  CLPP_CHECK_MSG(mask_prob > 0.0f && mask_prob < 1.0f, "mask_prob in (0,1) required");
  MaskedBatch out;
  out.inputs = batch;
  out.targets.assign(batch.ids.size(), -1);
  for (std::size_t b = 0; b < batch.batch; ++b) {
    const std::size_t len = static_cast<std::size_t>(batch.lengths[b]);
    for (std::size_t s = 0; s < len; ++s) {
      const std::size_t idx = b * batch.seq + s;
      const std::int32_t original = batch.ids[idx];
      if (original < vocab.special_below) continue;
      if (!rng.chance(mask_prob)) continue;
      out.targets[idx] = original;
      const double r = rng.uniform();
      if (r < 0.8) {
        out.inputs.ids[idx] = vocab.mask_id;
      } else if (r < 0.9) {
        out.inputs.ids[idx] = static_cast<std::int32_t>(
            rng.range(vocab.special_below,
                      static_cast<std::int64_t>(vocab.vocab_size) - 1));
      }  // else keep the original token
    }
  }
  return out;
}

namespace {

TokenBatch make_batch(const std::vector<std::vector<std::int32_t>>& sequences,
                      std::span<const std::size_t> indices, std::size_t max_seq) {
  TokenBatch batch;
  batch.batch = indices.size();
  std::size_t longest = 1;
  for (std::size_t i : indices)
    longest = std::max(longest, std::min(sequences[i].size(), max_seq));
  batch.seq = longest;
  batch.ids.assign(batch.batch * batch.seq, 0);
  batch.lengths.resize(batch.batch);
  for (std::size_t row = 0; row < indices.size(); ++row) {
    const auto& seq = sequences[indices[row]];
    const std::size_t len = std::min(seq.size(), max_seq);
    batch.lengths[row] = static_cast<int>(len);
    std::copy_n(seq.begin(), len, batch.ids.begin() + row * batch.seq);
  }
  return batch;
}

}  // namespace

std::vector<MlmEpochStats> pretrain_mlm(
    TransformerEncoder& encoder, const std::vector<std::vector<std::int32_t>>& sequences,
    const MlmVocabInfo& vocab, const MlmConfig& config, Rng& rng,
    const std::function<void(const MlmEpochStats&)>& on_epoch) {
  CLPP_CHECK_MSG(!sequences.empty(), "MLM pretraining requires sequences");
  for (const auto& seq : sequences)
    CLPP_CHECK_MSG(seq.size() >= 2, "MLM sequences must have length >= 2");

  const std::size_t dim = encoder.config().dim;
  Linear head("mlm.head", dim, vocab.vocab_size, rng);

  std::vector<Parameter*> params;
  encoder.collect_parameters(params);
  head.collect_parameters(params);
  AdamW optimizer(AdamWConfig{.lr = config.lr});

  std::vector<std::size_t> order(sequences.size());
  std::iota(order.begin(), order.end(), 0);

  std::vector<MlmEpochStats> stats;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    rng.shuffle(order);
    double loss_sum = 0.0;
    std::size_t loss_batches = 0;
    std::size_t correct = 0;
    std::size_t masked_total = 0;

    for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
      const std::size_t count = std::min(config.batch_size, order.size() - start);
      TokenBatch batch = make_batch(
          sequences, std::span<const std::size_t>{order.data() + start, count},
          encoder.config().max_seq);
      MaskedBatch masked = mask_tokens(batch, vocab, rng, config.mask_prob);
      if (std::all_of(masked.targets.begin(), masked.targets.end(),
                      [](std::int32_t t) { return t < 0; }))
        continue;  // nothing was masked in this batch; skip

      zero_gradients(params);
      Tensor hidden = encoder.forward(masked.inputs, /*train=*/true);
      Tensor logits = head.forward(hidden, /*train=*/true);

      SoftmaxCrossEntropy loss;
      const float batch_loss = loss.forward(logits, masked.targets);
      loss_sum += batch_loss;
      ++loss_batches;

      const Tensor& probs = loss.probabilities();
      for (std::size_t i = 0; i < masked.targets.size(); ++i) {
        if (masked.targets[i] < 0) continue;
        ++masked_total;
        if (argmax(probs.row_span(i)) == static_cast<std::size_t>(masked.targets[i]))
          ++correct;
      }

      Tensor grad = loss.backward();
      grad = head.backward(grad);
      encoder.backward(grad);
      clip_gradient_norm(params, config.clip_norm);
      optimizer.step(params);
    }

    MlmEpochStats s;
    s.epoch = epoch;
    s.loss = loss_batches ? static_cast<float>(loss_sum / loss_batches) : 0.0f;
    s.masked_accuracy =
        masked_total ? static_cast<float>(correct) / static_cast<float>(masked_total)
                     : 0.0f;
    stats.push_back(s);
    if (on_epoch) on_epoch(s);
  }
  return stats;
}

}  // namespace clpp::nn
