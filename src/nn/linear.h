// Fully-connected (dense) layer: y = x W + b.
#pragma once

#include "nn/layer.h"
#include "support/rng.h"

namespace clpp::nn {

/// Dense layer with Xavier-uniform initialized weight [in, out] and zero
/// bias [out].
class Linear : public Layer {
 public:
  /// `name` prefixes parameter names ("<name>.weight", "<name>.bias").
  Linear(std::string name, std::size_t in_features, std::size_t out_features, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;

  std::size_t in_features() const { return weight.value.dim(0); }
  std::size_t out_features() const { return weight.value.dim(1); }

  Parameter weight;
  Parameter bias;

 private:
  Tensor input_;  // cached forward input
};

}  // namespace clpp::nn
