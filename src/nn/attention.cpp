#include "nn/attention.h"

#include <cmath>
#include <numeric>

#include "obs/trace.h"
#include "prof/flops.h"
#include "support/parallel.h"
#include "tensor/ops.h"

namespace clpp::nn {

namespace {

/// Sum of valid key counts across the batch — the `len` factor in every
/// per-(b,h,s) attention loop.
std::uint64_t total_valid(std::span<const int> lengths) {
  return std::accumulate(lengths.begin(), lengths.end(), std::uint64_t{0},
                         [](std::uint64_t acc, int len) {
                           return acc + static_cast<std::uint64_t>(len);
                         });
}

}  // namespace

MultiHeadSelfAttention::MultiHeadSelfAttention(std::string name, std::size_t dim,
                                               std::size_t heads, Rng& rng)
    : dim_(dim),
      heads_(heads),
      q_proj_(name + ".q", dim, dim, rng),
      k_proj_(name + ".k", dim, dim, rng),
      v_proj_(name + ".v", dim, dim, rng),
      o_proj_(name + ".o", dim, dim, rng) {
  CLPP_CHECK_MSG(heads > 0 && dim % heads == 0,
                 "attention dim " << dim << " must be divisible by heads " << heads);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, std::size_t batch,
                                       std::size_t seq, std::span<const int> lengths,
                                       bool train) {
  CLPP_TRACE_SPAN("attention.forward");
  CLPP_CHECK_MSG(x.rank() == 2 && x.cols() == dim_ && x.rows() == batch * seq,
                 "attention input " << x.shape_str() << " incompatible with B=" << batch
                                    << " S=" << seq << " d=" << dim_);
  CLPP_CHECK_MSG(lengths.size() == batch, "one length per sample required");
  batch_ = batch;
  seq_ = seq;
  lengths_.assign(lengths.begin(), lengths.end());

  q_ = q_proj_.forward(x, train);
  k_ = k_proj_.forward(x, train);
  v_ = v_proj_.forward(x, train);

  const std::size_t dh = head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));
  probs_ = Tensor({batch * heads_, seq, seq});
  Tensor context({batch * seq, dim_});

  const std::uint64_t attn_begin_ns = obs::enabled() ? obs::Tracer::now_ns() : 0;
  parallel_for(
      batch * heads_,
      [&](std::size_t bh) {
        const std::size_t b = bh / heads_;
        const std::size_t h = bh % heads_;
        const std::size_t len = static_cast<std::size_t>(lengths_[b]);
        const float* qb = q_.data() + (b * seq) * dim_ + h * dh;
        const float* kb = k_.data() + (b * seq) * dim_ + h * dh;
        const float* vb = v_.data() + (b * seq) * dim_ + h * dh;
        float* ctx = context.data() + (b * seq) * dim_ + h * dh;
        float* pb = probs_.data() + bh * seq * seq;

        for (std::size_t s = 0; s < seq; ++s) {
          float* prow = pb + s * seq;
          const float* qrow = qb + s * dim_;
          // Scores over valid keys only.
          float mx = -1e30f;
          for (std::size_t t = 0; t < len; ++t) {
            const float* krow = kb + t * dim_;
            float acc = 0.0f;
            for (std::size_t j = 0; j < dh; ++j) acc += qrow[j] * krow[j];
            acc *= scale;
            prow[t] = acc;
            mx = std::max(mx, acc);
          }
          float total = 0.0f;
          for (std::size_t t = 0; t < len; ++t) {
            prow[t] = std::exp(prow[t] - mx);
            total += prow[t];
          }
          const float inv = 1.0f / total;
          for (std::size_t t = 0; t < len; ++t) prow[t] *= inv;
          for (std::size_t t = len; t < seq; ++t) prow[t] = 0.0f;

          float* crow = ctx + s * dim_;
          for (std::size_t j = 0; j < dh; ++j) crow[j] = 0.0f;
          for (std::size_t t = 0; t < len; ++t) {
            const float p = prow[t];
            const float* vrow = vb + t * dim_;
            for (std::size_t j = 0; j < dh; ++j) crow[j] += p * vrow[j];
          }
        }
      },
      2);

  // Roofline accounting for the attention core (QKᵀ scores + softmax + A·V;
  // the linear projections account themselves through the gemm kernel).
  // Per (head, query, valid key): 2·dh score + 2·dh context + ~5 softmax
  // ops; traffic is compulsory — Q/K/V read, probs and context written once.
  if (obs::enabled()) {
    static prof::KernelCounters& kc = prof::kernel_counters("attention");
    prof::record_kernel(
        kc,
        static_cast<std::uint64_t>(heads_) * seq * total_valid(lengths) *
            (4ull * dh + 5ull),
        sizeof(float) * (3ull * batch * seq * dim_ +
                         static_cast<std::uint64_t>(batch) * heads_ * seq * seq +
                         static_cast<std::uint64_t>(batch) * seq * dim_),
        obs::Tracer::now_ns() - attn_begin_ns);
  }

  return o_proj_.forward(context, train);
}

Tensor MultiHeadSelfAttention::backward(const Tensor& grad_out) {
  CLPP_TRACE_SPAN("attention.backward");
  CLPP_CHECK_MSG(batch_ > 0, "attention backward without forward");
  const std::size_t dh = head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(dh));

  Tensor d_context = o_proj_.backward(grad_out);
  Tensor dq({batch_ * seq_, dim_});
  Tensor dk({batch_ * seq_, dim_});
  Tensor dv({batch_ * seq_, dim_});

  const std::uint64_t attn_begin_ns = obs::enabled() ? obs::Tracer::now_ns() : 0;
  parallel_for(
      batch_ * heads_,
      [&](std::size_t bh) {
        const std::size_t b = bh / heads_;
        const std::size_t h = bh % heads_;
        const std::size_t len = static_cast<std::size_t>(lengths_[b]);
        const std::size_t off = (b * seq_) * dim_ + h * dh;
        const float* qb = q_.data() + off;
        const float* kb = k_.data() + off;
        const float* vb = v_.data() + off;
        const float* dcb = d_context.data() + off;
        float* dqb = dq.data() + off;
        float* dkb = dk.data() + off;
        float* dvb = dv.data() + off;
        const float* pb = probs_.data() + bh * seq_ * seq_;

        std::vector<float> d_probs(len);
        for (std::size_t s = 0; s < seq_; ++s) {
          const float* prow = pb + s * seq_;
          const float* dcrow = dcb + s * dim_;
          // dV[t] += A[s,t] * dC[s]; dA[s,t] = dot(dC[s], V[t]).
          float dot_pa = 0.0f;
          for (std::size_t t = 0; t < len; ++t) {
            const float* vrow = vb + t * dim_;
            float acc = 0.0f;
            const float p = prow[t];
            float* dvrow = dvb + t * dim_;
            for (std::size_t j = 0; j < dh; ++j) {
              acc += dcrow[j] * vrow[j];
              dvrow[j] += p * dcrow[j];
            }
            d_probs[t] = acc;
            dot_pa += acc * prow[t];
          }
          // Softmax backward: dZ = A ∘ (dA − Σ dA∘A); then through scaling.
          const float* qrow = qb + s * dim_;
          float* dqrow = dqb + s * dim_;
          for (std::size_t t = 0; t < len; ++t) {
            const float dz = prow[t] * (d_probs[t] - dot_pa) * scale;
            if (dz == 0.0f) continue;
            const float* krow = kb + t * dim_;
            float* dkrow = dkb + t * dim_;
            for (std::size_t j = 0; j < dh; ++j) {
              dqrow[j] += dz * krow[j];
              dkrow[j] += dz * qrow[j];
            }
          }
        }
      },
      2);

  // dV/dA accumulation (4·dh) plus dQ/dK through softmax backward (4·dh)
  // per (head, query, valid key); traffic: Q/K/V/probs/dC read, dQ/dK/dV
  // written.
  if (obs::enabled()) {
    static prof::KernelCounters& kc = prof::kernel_counters("attention.backward");
    prof::record_kernel(
        kc,
        static_cast<std::uint64_t>(heads_) * seq_ *
            total_valid({lengths_.data(), lengths_.size()}) * 8ull * dh,
        sizeof(float) * (7ull * batch_ * seq_ * dim_ +
                         static_cast<std::uint64_t>(batch_) * heads_ * seq_ * seq_),
        obs::Tracer::now_ns() - attn_begin_ns);
  }

  Tensor grad_in = q_proj_.backward(dq);
  add_inplace(grad_in, k_proj_.backward(dk));
  add_inplace(grad_in, v_proj_.backward(dv));
  return grad_in;
}

void MultiHeadSelfAttention::collect_parameters(std::vector<Parameter*>& out) {
  q_proj_.collect_parameters(out);
  k_proj_.collect_parameters(out);
  v_proj_.collect_parameters(out);
  o_proj_.collect_parameters(out);
}

}  // namespace clpp::nn
