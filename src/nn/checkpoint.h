// Named-parameter checkpoints (save / load / transfer).
//
// Transfer is the mechanism behind the paper's DeepSCC -> PragFormer
// initialization: an MLM-pretrained encoder's parameters are loaded by name
// into a fresh classification model whose encoder shares the architecture.
//
// Durability: saves go through the clpp::resil checkpoint container
// (write-to-temp + fsync + rename, CRC32-checksummed payload), so a crash
// mid-save leaves the previous checkpoint intact and corruption is detected
// deterministically at load. Legacy uncontainered files remain loadable.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace clpp::nn {

/// Writes all parameters (name -> tensor) to `path`.
void save_checkpoint(const std::string& path, const std::vector<Parameter*>& params);

/// Reads a checkpoint into a name -> tensor map.
std::map<std::string, Tensor> load_checkpoint(const std::string& path);

/// Assigns checkpoint tensors into matching parameters by name.
///
/// Returns the number of parameters restored. When `strict`, every
/// parameter must be present in the checkpoint with a matching shape;
/// otherwise unmatched parameters keep their initialization (partial
/// transfer, e.g. loading an MLM encoder into a classifier that adds a
/// fresh FC head).
std::size_t restore_parameters(const std::map<std::string, Tensor>& checkpoint,
                               const std::vector<Parameter*>& params, bool strict);

}  // namespace clpp::nn
