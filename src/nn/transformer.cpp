#include "nn/transformer.h"

#include "tensor/ops.h"

namespace clpp::nn {

void EncoderConfig::validate() const {
  CLPP_CHECK_MSG(vocab_size > 0, "vocab_size must be set");
  CLPP_CHECK_MSG(max_seq > 0, "max_seq must be positive");
  CLPP_CHECK_MSG(dim > 0 && heads > 0 && dim % heads == 0,
                 "dim must be a positive multiple of heads");
  CLPP_CHECK_MSG(layers > 0, "at least one encoder layer required");
  CLPP_CHECK_MSG(ffn_dim > 0, "ffn_dim must be positive");
  CLPP_CHECK_MSG(dropout >= 0.0f && dropout < 1.0f, "dropout must be in [0,1)");
}

TransformerEncoderLayer::TransformerEncoderLayer(std::string name,
                                                 const EncoderConfig& cfg, Rng& rng)
    : ln1_(name + ".ln1", cfg.dim),
      attn_(name + ".attn", cfg.dim, cfg.heads, rng),
      drop1_(cfg.dropout, rng),
      ln2_(name + ".ln2", cfg.dim),
      ffn1_(name + ".ffn1", cfg.dim, cfg.ffn_dim, rng),
      ffn2_(name + ".ffn2", cfg.ffn_dim, cfg.dim, rng),
      drop2_(cfg.dropout, rng) {}

Tensor TransformerEncoderLayer::forward(const Tensor& x, std::size_t batch,
                                        std::size_t seq, std::span<const int> lengths,
                                        bool train) {
  Tensor h = x;
  {
    Tensor a = ln1_.forward(x, train);
    a = attn_.forward(a, batch, seq, lengths, train);
    a = drop1_.forward(a, train);
    add_inplace(h, a);
  }
  Tensor y = h;
  {
    Tensor f = ln2_.forward(h, train);
    f = ffn1_.forward(f, train);
    f = gelu_.forward(f, train);
    f = ffn2_.forward(f, train);
    f = drop2_.forward(f, train);
    add_inplace(y, f);
  }
  return y;
}

Tensor TransformerEncoderLayer::backward(const Tensor& grad_out) {
  // FFN residual branch.
  Tensor g = drop2_.backward(grad_out);
  g = ffn2_.backward(g);
  g = gelu_.backward(g);
  g = ffn1_.backward(g);
  g = ln2_.backward(g);
  add_inplace(g, grad_out);  // residual: dL/dh = branch grad + passthrough

  // Attention residual branch.
  Tensor a = drop1_.backward(g);
  a = attn_.backward(a);
  a = ln1_.backward(a);
  add_inplace(a, g);
  return a;
}

void TransformerEncoderLayer::collect_parameters(std::vector<Parameter*>& out) {
  ln1_.collect_parameters(out);
  attn_.collect_parameters(out);
  ln2_.collect_parameters(out);
  ffn1_.collect_parameters(out);
  ffn2_.collect_parameters(out);
}

namespace {
const EncoderConfig& validated(const EncoderConfig& cfg) {
  cfg.validate();
  return cfg;
}
}  // namespace

TransformerEncoder::TransformerEncoder(const EncoderConfig& cfg, Rng& rng)
    : cfg_(validated(cfg)),
      embedding_("encoder.embed", cfg.vocab_size, cfg.max_seq, cfg.dim, rng),
      embed_drop_(cfg.dropout, rng),
      final_ln_("encoder.final_ln", cfg.dim) {
  blocks_.reserve(cfg.layers);
  for (std::size_t i = 0; i < cfg.layers; ++i)
    blocks_.push_back(std::make_unique<TransformerEncoderLayer>(
        "encoder.block" + std::to_string(i), cfg, rng));
}

Tensor TransformerEncoder::forward(const TokenBatch& batch, bool train) {
  batch_ = batch.batch;
  seq_ = batch.seq;
  lengths_ = batch.lengths;
  Tensor h = embedding_.forward(batch);
  h = embed_drop_.forward(h, train);
  for (auto& block : blocks_) h = block->forward(h, batch_, seq_, lengths_, train);
  return final_ln_.forward(h, train);
}

void TransformerEncoder::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(batch_ > 0, "encoder backward without forward");
  Tensor g = final_ln_.backward(grad_out);
  for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) g = (*it)->backward(g);
  g = embed_drop_.backward(g);
  embedding_.backward(g);
}

void TransformerEncoder::collect_parameters(std::vector<Parameter*>& out) {
  embedding_.collect_parameters(out);
  for (auto& block : blocks_) block->collect_parameters(out);
  final_ln_.collect_parameters(out);
}

Tensor pooled_cls(const Tensor& activations, std::size_t batch, std::size_t seq) {
  CLPP_CHECK_MSG(activations.rank() == 2 && activations.rows() == batch * seq,
                 "pooled_cls geometry mismatch");
  const std::size_t d = activations.cols();
  Tensor out({batch, d});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* src = activations.row(b * seq);
    float* dst = out.row(b);
    for (std::size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

Tensor scatter_cls_grad(const Tensor& grad_pooled, std::size_t batch, std::size_t seq) {
  CLPP_CHECK_MSG(grad_pooled.rank() == 2 && grad_pooled.rows() == batch,
                 "scatter_cls_grad geometry mismatch");
  const std::size_t d = grad_pooled.cols();
  Tensor out({batch * seq, d});
  for (std::size_t b = 0; b < batch; ++b) {
    const float* src = grad_pooled.row(b);
    float* dst = out.row(b * seq);
    for (std::size_t j = 0; j < d; ++j) dst[j] = src[j];
  }
  return out;
}

}  // namespace clpp::nn
