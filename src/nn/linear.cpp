#include "nn/linear.h"

#include <cmath>

#include "tensor/ops.h"

namespace clpp::nn {

namespace {
Tensor xavier_uniform(std::size_t in, std::size_t out, Rng& rng) {
  Tensor w({in, out});
  const float bound = std::sqrt(6.0f / static_cast<float>(in + out));
  for (float& v : w.values()) v = rng.uniform(-bound, bound);
  return w;
}
}  // namespace

Linear::Linear(std::string name, std::size_t in_features, std::size_t out_features,
               Rng& rng)
    : weight(name + ".weight", xavier_uniform(in_features, out_features, rng)),
      bias(name + ".bias", Tensor({out_features})) {}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  CLPP_CHECK_MSG(x.rank() == 2 && x.cols() == in_features(),
                 "Linear input " << x.shape_str() << " incompatible with in="
                                 << in_features());
  input_ = x;
  Tensor y = matmul(x, weight.value);
  add_row_broadcast(y, bias.value);
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  CLPP_CHECK_MSG(!input_.empty(), "Linear::backward without forward");
  // dW += xᵀ g ; db += Σ_rows g ; dx = g Wᵀ.
  gemm(input_, grad_out, weight.grad, /*trans_a=*/true, /*trans_b=*/false, 1.0f, 1.0f);
  Tensor db({bias.value.dim(0)});
  sum_rows(grad_out, db);
  add_inplace(bias.grad, db);
  return matmul(grad_out, weight.value, /*trans_a=*/false, /*trans_b=*/true);
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight);
  out.push_back(&bias);
}

}  // namespace clpp::nn
