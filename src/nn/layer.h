// Layer abstraction with explicit forward/backward.
//
// CLPP's NN substrate uses layer-wise manual backpropagation rather than a
// taped autograd: each layer caches exactly the activations its gradient
// needs, which keeps memory predictable and the code auditable. A layer
// holds *one* in-flight activation set — callers must pair each forward
// with at most one backward before the next forward (the trainer does).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace clpp::nn {

/// A named trainable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}

  std::size_t numel() const { return value.numel(); }
};

/// Base class for differentiable modules operating on rank-2 activations
/// shaped [rows, features] (rows is typically batch*seq).
class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `train` enables stochastic behaviour
  /// (dropout); evaluation passes must use train=false.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must follow a forward() on the same activation.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Appends pointers to this layer's parameters (default: none).
  virtual void collect_parameters(std::vector<Parameter*>& out);
};

/// Collects parameters from a layer into a fresh vector.
std::vector<Parameter*> parameters_of(Layer& layer);

/// Total number of scalar parameters.
std::size_t parameter_count(const std::vector<Parameter*>& params);

/// Sets every parameter gradient to zero.
void zero_gradients(const std::vector<Parameter*>& params);

}  // namespace clpp::nn
