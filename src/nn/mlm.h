// Masked-language-model pretraining (the DeepSCC stand-in, DESIGN.md §1).
//
// The paper initializes PragFormer from DeepSCC, a RoBERTa fine-tuned on
// source code with the MLM objective. We reproduce the ingredient at small
// scale: pretrain our encoder with MLM over the unlabeled snippet corpus,
// then transfer the encoder parameters into the classifier by name.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/batch.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/transformer.h"

namespace clpp::nn {

/// Output of the BERT-style masking procedure.
struct MaskedBatch {
  TokenBatch inputs;                  // ids with masked positions replaced
  std::vector<std::int32_t> targets;  // original id at masked positions, else -1
};

/// Token-id layout conventions required by mask_tokens.
struct MlmVocabInfo {
  std::int32_t mask_id = 0;       // the [MASK] token
  std::int32_t special_below = 0; // ids < special_below are never masked
  std::size_t vocab_size = 0;     // for random replacement draws
};

/// Applies the BERT masking recipe to `batch`: each non-pad, non-special
/// position is selected with probability `mask_prob`; selected positions
/// become [MASK] 80% of the time, a random token 10%, unchanged 10%.
MaskedBatch mask_tokens(const TokenBatch& batch, const MlmVocabInfo& vocab, Rng& rng,
                        float mask_prob = 0.15f);

/// MLM pretraining configuration.
struct MlmConfig {
  std::size_t epochs = 3;
  std::size_t batch_size = 16;
  float lr = 3e-4f;
  float mask_prob = 0.15f;
  float clip_norm = 1.0f;
};

/// Per-epoch pretraining metrics.
struct MlmEpochStats {
  std::size_t epoch = 0;
  float loss = 0.0f;
  float masked_accuracy = 0.0f;
};

/// Pretrains `encoder` in place with MLM over `sequences` (already-encoded
/// token id vectors, each length >= 2). Returns per-epoch stats.
/// `on_epoch`, when set, is invoked after each epoch (progress reporting).
std::vector<MlmEpochStats> pretrain_mlm(
    TransformerEncoder& encoder, const std::vector<std::vector<std::int32_t>>& sequences,
    const MlmVocabInfo& vocab, const MlmConfig& config, Rng& rng,
    const std::function<void(const MlmEpochStats&)>& on_epoch = nullptr);

}  // namespace clpp::nn
