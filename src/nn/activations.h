// Pointwise activation layers (ReLU, GELU) and dropout.
#pragma once

#include "nn/layer.h"
#include "support/rng.h"

namespace clpp::nn {

/// Rectified linear unit (used in PragFormer's FC head, paper §4.3).
class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor input_;
};

/// Gaussian error linear unit (tanh approximation), used inside the
/// transformer's position-wise FFN as in RoBERTa.
class Gelu : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor input_;
};

/// Inverted dropout: scales surviving activations by 1/(1-p) during
/// training; identity at evaluation. Paper §4.3 uses dropout as the
/// regularization strategy.
class Dropout : public Layer {
 public:
  /// `rng` must outlive the layer; `p` in [0, 1).
  Dropout(float p, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

  float rate() const { return p_; }

 private:
  float p_;
  Rng* rng_;
  Tensor mask_;      // per-element keep mask scaled by 1/(1-p)
  bool last_train_ = false;
};

}  // namespace clpp::nn
