// AdamW optimizer with decoupled weight decay (paper §4.3) and utilities.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace clpp::nn {

/// AdamW hyperparameters.
struct AdamWConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.01f;
};

/// AdamW: Adam moments on gradients, weight decay applied directly to the
/// weights (Loshchilov & Hutter). State is lazily allocated on first step
/// and bound to the parameter list by position, which must not change.
class AdamW {
 public:
  explicit AdamW(AdamWConfig config = {});

  /// Applies one update using the gradients currently accumulated in
  /// `params`; does not zero them.
  void step(const std::vector<Parameter*>& params);

  /// Current learning rate (mutable for schedules).
  float learning_rate() const { return config_.lr; }
  void set_learning_rate(float lr) { config_.lr = lr; }

  std::size_t steps_taken() const { return t_; }

  /// Checkpoint access: Adam moment estimates, positionally parallel to the
  /// parameter list passed to step(). Empty before the first step.
  const std::vector<Tensor>& first_moments() const { return m_; }
  const std::vector<Tensor>& second_moments() const { return v_; }

  /// Restores optimizer state from a checkpoint. `m`/`v` must be parallel
  /// to `params` with matching shapes (throws ParseError otherwise), so a
  /// corrupt or incompatible checkpoint is rejected before any state is
  /// touched.
  void restore_state(std::size_t steps, std::vector<Tensor> m, std::vector<Tensor> v,
                     const std::vector<Parameter*>& params);

 private:
  AdamWConfig config_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

/// Scales all gradients so their global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
double clip_gradient_norm(const std::vector<Parameter*>& params, double max_norm);

/// Linear warmup followed by linear decay to `floor_fraction` of the base
/// LR at `total_steps` — the fine-tuning schedule used in practice with
/// AdamW on transformers.
class WarmupLinearSchedule {
 public:
  WarmupLinearSchedule(float base_lr, std::size_t warmup_steps, std::size_t total_steps,
                       float floor_fraction = 0.1f);

  /// LR for (0-based) optimization step `step`.
  float lr_at(std::size_t step) const;

 private:
  float base_lr_;
  std::size_t warmup_steps_;
  std::size_t total_steps_;
  float floor_fraction_;
};

}  // namespace clpp::nn
