#include "resil/fault.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <new>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "support/strings.h"

namespace clpp::resil {

namespace {

struct SeamState {
  std::vector<std::uint64_t> triggers;  // sorted, 1-based arrival numbers
  std::uint64_t hits = 0;
};

struct FaultState {
  std::mutex mu;
  std::map<std::string, SeamState> seams;
};

FaultState& state() {
  static FaultState* s = new FaultState;  // leaked: usable during exit handlers
  return *s;
}

std::atomic<bool> g_active{false};

/// Counts the arrival and reports whether it is scheduled to fail.
bool arm_seam(const char* seam) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  SeamState& seam_state = s.seams[seam];
  ++seam_state.hits;
  const auto& t = seam_state.triggers;
  if (!std::binary_search(t.begin(), t.end(), seam_state.hits)) return false;
  obs::metrics().counter("clpp.resil.faults_injected").add(1);
  obs::flight_record("resil.fault",
                     static_cast<std::int64_t>(seam_state.hits));
  if (obs::log_enabled(obs::LogLevel::kWarn)) {
    Json fields = Json::object();
    fields["seam"] = seam;
    fields["arrival"] = static_cast<std::int64_t>(seam_state.hits);
    obs::log_warn("resil", "injecting fault", std::move(fields));
  }
  // An injected fault models a production failure about to unwind the
  // stack: when a dump destination is configured, ship the flight recorder
  // *before* throwing so the artifact exists even if nothing catches.
  if (obs::flight_dump_on_fault())
    obs::dump_flight(std::string("resil.fault:") + seam);
  return true;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : split(spec, ',')) {
    const std::string entry{trim(raw)};
    if (entry.empty()) continue;
    const std::size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == entry.size())
      throw InvalidArgument("fault plan entry must be seam:N, got '" + entry + "'");
    const std::string seam{trim(entry.substr(0, colon))};
    const std::string count{trim(entry.substr(colon + 1))};
    std::uint64_t n = 0;
    for (char c : count) {
      if (c < '0' || c > '9')
        throw InvalidArgument("fault plan arrival must be a number, got '" + entry + "'");
      n = n * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (n == 0)
      throw InvalidArgument("fault plan arrivals are 1-based, got '" + entry + "'");
    plan.triggers[seam].push_back(n);
  }
  for (auto& [seam, arrivals] : plan.triggers)
    std::sort(arrivals.begin(), arrivals.end());
  return plan;
}

void set_fault_plan(FaultPlan plan) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.seams.clear();
  for (auto& [seam, arrivals] : plan.triggers)
    s.seams[seam].triggers = std::move(arrivals);
  g_active.store(!s.seams.empty(), std::memory_order_relaxed);
}

void clear_fault_plan() { set_fault_plan(FaultPlan{}); }

bool fault_injection_active() { return g_active.load(std::memory_order_relaxed); }

std::uint64_t fault_hits(const std::string& seam) {
  FaultState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.seams.find(seam);
  return it == s.seams.end() ? 0 : it->second.hits;
}

void fault_point(const char* seam) {
  if (!fault_injection_active()) return;
  if (arm_seam(seam))
    throw InjectedFault(std::string("injected fault at seam ") + seam);
}

void alloc_fault_point(const char* seam) {
  if (!fault_injection_active()) return;
  if (arm_seam(seam)) throw std::bad_alloc();
}

void init_faults_from_env() {
  const char* spec = std::getenv("CLPP_FAULTS");
  if (spec == nullptr || spec[0] == '\0') return;
  set_fault_plan(FaultPlan::parse(spec));
}

}  // namespace clpp::resil
