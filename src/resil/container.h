// Versioned, CRC32-checksummed checkpoint container.
//
// Layout (little-endian):
//
//   magic "CLPC"  u32 version  u32 crc32(payload)  u64 payload_size  payload
//
// The checksum turns silent corruption (torn writes that slipped past
// rename, bit rot, truncation) into a deterministic ParseError at load
// time instead of garbage tensors. Writes go through atomic_write_file and
// are retried on transient I/O failures; reads are retried on open/read
// failures but never on checksum or size mismatches (corruption does not
// heal on retry).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace clpp::resil {

/// Standard CRC-32 (polynomial 0xEDB88320, as in zlib/PNG).
std::uint32_t crc32(std::string_view data);

/// Atomically writes `payload` wrapped in a checksummed container.
/// Records `clpp.resil.ckpt_save_us` and counts `clpp.resil.ckpt_saves`.
void write_container(const std::string& path, std::string_view payload);

/// Reads and validates a container, returning the payload. Throws IoError
/// when the file cannot be opened/read, ParseError on bad magic, unknown
/// version, size mismatch (truncation or trailing bytes), or checksum
/// failure. Records `clpp.resil.ckpt_load_us` / `clpp.resil.ckpt_loads`.
std::string read_container(const std::string& path);

/// True when `path` exists and starts with the container magic. Used to
/// keep loading legacy (pre-container) checkpoint files.
bool is_container_file(const std::string& path);

}  // namespace clpp::resil
