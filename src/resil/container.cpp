#include "resil/container.h"

#include <array>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "resil/atomic_file.h"
#include "resil/fault.h"
#include "resil/retry.h"
#include "support/error.h"
#include "support/stopwatch.h"

namespace clpp::resil {

namespace {

constexpr char kMagic[4] = {'C', 'L', 'P', 'C'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderSize = 4 + 4 + 4 + 8;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

void put_u32(char* p, std::uint32_t v) { std::memcpy(p, &v, sizeof v); }
void put_u64(char* p, std::uint64_t v) { std::memcpy(p, &v, sizeof v); }

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const char ch : data)
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

void write_container(const std::string& path, std::string_view payload) {
  const Stopwatch clock;
  char header[kHeaderSize];
  std::memcpy(header, kMagic, sizeof kMagic);
  put_u32(header + 4, kVersion);
  put_u32(header + 8, crc32(payload));
  put_u64(header + 12, static_cast<std::uint64_t>(payload.size()));
  with_retry("container.write", [&] {
    atomic_write_file(path, [&](std::ostream& out) {
      out.write(header, kHeaderSize);
      out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    });
  });
  obs::metrics().histogram("clpp.resil.ckpt_save_us").record(clock.seconds() * 1e6);
  obs::metrics().counter("clpp.resil.ckpt_saves").add(1);
}

std::string read_container(const std::string& path) {
  const Stopwatch clock;
  std::string bytes = with_retry("container.read", [&] {
    fault_point("container.open");
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open checkpoint container: " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (in.bad()) throw IoError("read failed for checkpoint container: " + path);
    return std::move(buffer).str();
  });
  if (bytes.size() < kHeaderSize)
    throw ParseError("truncated checkpoint container header: " + path);
  if (std::memcmp(bytes.data(), kMagic, sizeof kMagic) != 0)
    throw ParseError("not a CLPP checkpoint container: " + path);
  const std::uint32_t version = get_u32(bytes.data() + 4);
  if (version != kVersion)
    throw ParseError("unsupported checkpoint container version " +
                     std::to_string(version) + ": " + path);
  const std::uint32_t stored_crc = get_u32(bytes.data() + 8);
  const std::uint64_t payload_size = get_u64(bytes.data() + 12);
  if (payload_size != bytes.size() - kHeaderSize)
    throw ParseError("checkpoint container size mismatch (truncated or trailing "
                     "bytes): " + path);
  const std::string_view payload{bytes.data() + kHeaderSize,
                                 static_cast<std::size_t>(payload_size)};
  if (crc32(payload) != stored_crc)
    throw ParseError("checkpoint container checksum mismatch (corrupt file): " + path);
  std::string out{payload};
  obs::metrics().histogram("clpp.resil.ckpt_load_us").record(clock.seconds() * 1e6);
  obs::metrics().counter("clpp.resil.ckpt_loads").add(1);
  return out;
}

bool is_container_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[4] = {};
  in.read(magic, sizeof magic);
  return in.gcount() == sizeof magic &&
         std::memcmp(magic, kMagic, sizeof magic) == 0;
}

}  // namespace clpp::resil
