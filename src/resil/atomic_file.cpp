#include "resil/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "resil/fault.h"
#include "support/error.h"

namespace clpp::resil {

namespace {

/// Flushes `path`'s data to stable storage via open + fsync.
void fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0)
    throw IoError("atomic write: cannot reopen for fsync: " + path + ": " +
                  std::strerror(errno));
  fault_point("atomic.fsync");
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("atomic write: fsync failed: " + path + ": " + std::strerror(err));
  }
  ::close(fd);
}

/// Makes the rename itself durable. Best effort: some filesystems reject
/// directory fsync, and the data is already safe in either the old or the
/// new file, so errors here are swallowed.
void fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(),
                        O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  // Any throw below removes the temp so failed saves leave no debris.
  struct TmpGuard {
    const std::string& tmp_path;
    bool armed = true;
    ~TmpGuard() {
      if (armed) std::remove(tmp_path.c_str());
    }
  } guard{tmp};

  {
    fault_point("atomic.open");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("atomic write: cannot open temp file: " + tmp);
    fault_point("atomic.write");
    writer(out);
    out.flush();
    if (!out) throw IoError("atomic write: write failed: " + tmp);
  }
  fsync_file(tmp);
  fault_point("atomic.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw IoError("atomic write: rename failed: " + path + ": " +
                  std::strerror(errno));
  guard.armed = false;
  fsync_parent_dir(path);
}

void atomic_write_file(const std::string& path, std::string_view content) {
  atomic_write_file(path, [&](std::ostream& out) {
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  });
}

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::is_regular_file(path, ec);
}

}  // namespace clpp::resil
