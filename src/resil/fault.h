// Deterministic fault injection for resilience testing.
//
// A FaultPlan schedules failures at named *seams* — fixed points in the I/O
// and training stack where a production failure could strike (file open,
// write, fsync, rename, allocation, record parse, batch boundary). Each
// seam call counts its arrivals; when the active plan schedules the current
// arrival number, the seam throws instead of returning, so a test can
// script a crash at an exact point and prove the stack survives it.
//
// Plans are written as comma-separated `seam:N` pairs (N is the 1-based
// arrival that fails; a seam may appear multiple times):
//
//   CLPP_FAULTS=atomic.rename:1,atomic.rename:2,train.batch:8
//
// Seams compiled into the library:
//   atomic.open / atomic.write / atomic.fsync / atomic.rename  (atomic_file)
//   container.open                                             (container)
//   ckpt.open                                                  (nn checkpoint)
//   tensor.read / tensor.write / tensor.alloc                  (tensor I/O)
//   corpus.open / corpus.parse                                 (corpus load)
//   train.batch                                                (trainer loop)
//
// With no plan installed (the default), every seam is one relaxed atomic
// load — cheap enough to stay compiled into release builds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.h"

namespace clpp::resil {

/// Thrown by a seam whose arrival the plan scheduled to fail. Derives from
/// IoError so retry/degradation paths treat injected faults exactly like
/// real I/O failures.
class InjectedFault : public IoError {
 public:
  explicit InjectedFault(const std::string& what) : IoError(what) {}
};

/// A schedule of seam failures: seam name -> sorted 1-based arrival numbers.
struct FaultPlan {
  std::map<std::string, std::vector<std::uint64_t>> triggers;

  /// Parses "seam:N,seam:M,...". Whitespace around entries is ignored;
  /// an empty spec yields an empty plan. Throws InvalidArgument on
  /// malformed entries (missing ':', non-numeric or zero N).
  static FaultPlan parse(const std::string& spec);

  bool empty() const { return triggers.empty(); }
};

/// Installs `plan` process-wide and resets all arrival counters.
void set_fault_plan(FaultPlan plan);

/// Removes the active plan (seams become no-ops again).
void clear_fault_plan();

/// True when a non-empty plan is installed.
bool fault_injection_active();

/// Arrivals observed at `seam` since the plan was installed (0 with no plan).
std::uint64_t fault_hits(const std::string& seam);

/// Counts one arrival at `seam`; throws InjectedFault when scheduled.
void fault_point(const char* seam);

/// Allocation-seam variant: throws std::bad_alloc when scheduled, modelling
/// an out-of-memory failure inside the guarded allocation.
void alloc_fault_point(const char* seam);

/// Installs a plan from CLPP_FAULTS (no-op when unset/empty). Runs
/// automatically at process start for binaries linking clpp_resil.
void init_faults_from_env();

}  // namespace clpp::resil
