// clpp::resil — fault tolerance: atomic durable artifacts, checksummed
// checkpoint containers, retry with backoff, and deterministic fault
// injection. See DESIGN.md "Fault tolerance & checkpointing".
//
// Environment integration (applied once at process start for any binary
// that links clpp_resil):
//   CLPP_FAULTS=seam:N,...   install a fault-injection plan (fault.h)
//   CLPP_CKPT_DIR=PATH       default trainer checkpoint directory
//   CLPP_CKPT_EVERY=N        checkpoint every N batches (0: epoch ends only)
#pragma once

#include <cstddef>
#include <string>

#include "resil/atomic_file.h"
#include "resil/container.h"
#include "resil/fault.h"
#include "resil/retry.h"

namespace clpp::resil {

/// CLPP_CKPT_DIR, or "" when unset.
std::string checkpoint_dir_from_env();

/// CLPP_CKPT_EVERY parsed as a batch count; 0 when unset or non-numeric.
std::size_t checkpoint_every_from_env();

}  // namespace clpp::resil
