// Retry with exponential backoff and deterministic jitter.
//
// `with_retry` re-runs an operation that failed with an IoError (the class
// of transient failures: NFS hiccups, ENOSPC races, injected faults).
// ParseError and other exceptions propagate immediately — corruption is
// deterministic, retrying it only wastes time. Backoff delays multiply per
// attempt and are jittered by a seam-seeded splitmix64 stream so reruns of
// a test produce identical schedules. Every retry is counted under
// `clpp.resil.retries` and logged at warn level.
#pragma once

#include <cstdint>

#include "support/error.h"
#include "support/rng.h"

namespace clpp::resil {

struct RetryPolicy {
  int max_attempts = 3;        // total tries, including the first
  double base_delay_ms = 1.0;  // delay after the first failure
  double multiplier = 4.0;     // growth per subsequent failure
  double max_delay_ms = 50.0;  // backoff ceiling
  /// Total backoff budget across all retries; 0 = unbounded. Accounted from
  /// the *scheduled* (deterministically jittered) delays, not wall-clock
  /// reads, so a CLPP_FAULTS-driven test reproduces the exact same
  /// give-up point on every run. A retry whose backoff would push the
  /// cumulative delay past this budget is not taken: the failure rethrows
  /// and `clpp.resil.retry_exhausted` counts it.
  double max_elapsed_ms = 0.0;
  std::uint64_t jitter_seed = 0x7e57ab1eULL;
};

namespace detail {

/// Jittered backoff before retry number `attempt` (1-based): the
/// exponential delay scaled by a uniform factor in [0.5, 1.5).
inline double backoff_delay_ms(const RetryPolicy& policy, int attempt,
                               std::uint64_t& jitter_state) {
  double delay = policy.base_delay_ms;
  for (int i = 1; i < attempt; ++i) delay *= policy.multiplier;
  if (delay > policy.max_delay_ms) delay = policy.max_delay_ms;
  const double unit =
      static_cast<double>(splitmix64(jitter_state) >> 11) * 0x1.0p-53;
  return delay * (0.5 + unit);
}

void sleep_ms(double ms);
void note_retry(const char* what, int attempt, const std::exception& error,
                double delay_ms);
void note_exhausted(const char* what, int attempts, double elapsed_ms,
                    const char* why);

}  // namespace detail

/// Runs `fn`, retrying on IoError up to `policy.max_attempts` total tries
/// and at most `policy.max_elapsed_ms` of cumulative backoff; the final
/// failure is rethrown and counted under `clpp.resil.retry_exhausted` (so a
/// supervisor restart storm is visible as a rate, not just log noise).
/// Returns whatever `fn` returns.
template <typename Fn>
auto with_retry(const char* what, Fn&& fn, RetryPolicy policy = {}) -> decltype(fn()) {
  std::uint64_t jitter_state = policy.jitter_seed;
  double elapsed_ms = 0.0;
  for (int attempt = 1;; ++attempt) {
    try {
      return fn();
    } catch (const IoError& e) {
      if (attempt >= policy.max_attempts) {
        detail::note_exhausted(what, attempt, elapsed_ms, "max_attempts");
        throw;
      }
      const double delay = detail::backoff_delay_ms(policy, attempt, jitter_state);
      if (policy.max_elapsed_ms > 0.0 &&
          elapsed_ms + delay > policy.max_elapsed_ms) {
        detail::note_exhausted(what, attempt, elapsed_ms, "max_elapsed_ms");
        throw;
      }
      detail::note_retry(what, attempt, e, delay);
      detail::sleep_ms(delay);
      elapsed_ms += delay;
    }
  }
}

}  // namespace clpp::resil
