// Atomic durable file writes: write-to-temp + fsync + rename.
//
// A crash (or injected fault) at any point leaves either the complete old
// file or the complete new file — never a torn mix, and never a stray temp
// file on the failure paths this layer controls. The temp lives next to the
// target (`<path>.tmp`) so the final rename stays within one filesystem.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

namespace clpp::resil {

/// Atomically replaces `path` with the bytes produced by `writer`:
/// writes `<path>.tmp`, fsyncs it, renames over `path`, then fsyncs the
/// parent directory (best effort). Throws IoError on failure; the previous
/// contents of `path`, if any, are untouched and the temp file is removed.
/// Fault seams: atomic.open, atomic.write, atomic.fsync, atomic.rename.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

/// Convenience overload for ready-made bytes.
void atomic_write_file(const std::string& path, std::string_view content);

/// True when `path` names an existing regular file.
bool file_exists(const std::string& path);

}  // namespace clpp::resil
