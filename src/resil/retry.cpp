#include "resil/retry.h"

#include <chrono>
#include <thread>

#include "obs/log.h"
#include "obs/metrics.h"

namespace clpp::resil::detail {

void sleep_ms(double ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
}

void note_retry(const char* what, int attempt, const std::exception& error,
                double delay_ms) {
  obs::metrics().counter("clpp.resil.retries").add(1);
  if (obs::log_enabled(obs::LogLevel::kWarn)) {
    Json fields = Json::object();
    fields["op"] = what;
    fields["attempt"] = attempt;
    fields["delay_ms"] = delay_ms;
    fields["error"] = error.what();
    obs::log_warn("resil", "transient I/O failure, retrying", std::move(fields));
  }
}

void note_exhausted(const char* what, int attempts, double elapsed_ms,
                    const char* why) {
  obs::metrics().counter("clpp.resil.retry_exhausted").add(1);
  if (obs::log_enabled(obs::LogLevel::kWarn)) {
    Json fields = Json::object();
    fields["op"] = what;
    fields["attempts"] = attempts;
    fields["elapsed_ms"] = elapsed_ms;
    fields["budget"] = why;
    obs::log_warn("resil", "retry budget exhausted, giving up",
                  std::move(fields));
  }
}

}  // namespace clpp::resil::detail
