#include "resil/resil.h"

#include <cstdlib>

namespace clpp::resil {

std::string checkpoint_dir_from_env() {
  const char* dir = std::getenv("CLPP_CKPT_DIR");
  return dir == nullptr ? std::string{} : std::string{dir};
}

std::size_t checkpoint_every_from_env() {
  const char* every = std::getenv("CLPP_CKPT_EVERY");
  if (every == nullptr || every[0] == '\0') return 0;
  std::size_t n = 0;
  for (const char* p = every; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    n = n * 10 + static_cast<std::size_t>(*p - '0');
  }
  return n;
}

namespace {
// Any binary linking clpp_resil picks up CLPP_FAULTS at start.
[[maybe_unused]] const bool g_env_applied = (init_faults_from_env(), true);
}  // namespace

}  // namespace clpp::resil
