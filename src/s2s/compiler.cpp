#include "s2s/compiler.h"

#include <algorithm>

#include "frontend/printer.h"

namespace clpp::s2s {

using frontend::Node;
using frontend::NodeKind;
using frontend::OmpDirective;

CompilerProfile cetus_profile() {
  CompilerProfile p;
  p.name = "cetus";
  p.analyzer.assume_unknown_calls_pure = false;
  p.analyzer.bail_on_struct_access = true;
  p.analyzer.recognize_reduction = true;
  p.analyzer.recognize_minmax_reduction = false;  // canonical forms only
  p.analyzer.suggest_dynamic_schedule = false;    // Table 1 example 2 pitfall
  p.analyzer.min_trip_count = 8;                  // §5.2: skips low-trip loops
  p.explicit_iterator_private = true;             // §5.3 pitfall
  p.emit_schedule = true;
  p.fail_on_local_functions = false;
  p.fail_on_structs = false;  // bails during analysis instead
  p.fail_on_goto = true;
  return p;
}

CompilerProfile autopar_profile() {
  CompilerProfile p;
  p.name = "autopar";
  p.analyzer.assume_unknown_calls_pure = false;
  p.analyzer.bail_on_struct_access = true;
  p.analyzer.recognize_reduction = false;  // ROSE/AutoPar weak on reductions
  p.analyzer.min_trip_count = 0;
  p.explicit_iterator_private = true;
  p.emit_schedule = false;
  p.fail_on_local_functions = true;  // no interprocedural analysis
  p.fail_on_structs = true;
  p.fail_on_goto = true;
  return p;
}

CompilerProfile par4all_profile() {
  CompilerProfile p;
  p.name = "par4all";
  p.analyzer.assume_unknown_calls_pure = false;
  p.analyzer.bail_on_struct_access = true;
  p.analyzer.recognize_reduction = true;
  p.analyzer.recognize_minmax_reduction = false;
  p.analyzer.min_trip_count = 0;
  p.explicit_iterator_private = false;
  p.emit_schedule = false;
  p.fail_on_local_functions = true;
  p.fail_on_structs = true;
  p.fail_on_goto = true;
  p.max_statements = 40;  // gives up on long snippets
  return p;
}

const Node* find_target_loop(const Node& unit) {
  for (const auto& child : unit.children)
    if (child->kind == NodeKind::kFor) return child.get();
  // Fall back to the first loop anywhere (snippet wrapped in a function).
  const Node* found = nullptr;
  frontend::walk(unit, [&](const Node& node, int) {
    if (!found && node.kind == NodeKind::kFor) found = &node;
  });
  return found;
}

S2SCompiler::S2SCompiler(CompilerProfile profile) : profile_(std::move(profile)) {}

bool S2SCompiler::compile_gate(const Node& unit, S2SResult& result) const {
  bool has_goto = false;
  bool has_struct = false;
  bool has_local_fn = false;
  std::size_t statements = 0;
  frontend::walk(unit, [&](const Node& node, int) {
    switch (node.kind) {
      case NodeKind::kGoto:
      case NodeKind::kLabel:
        has_goto = true;
        break;
      case NodeKind::kStructRef:
        has_struct = true;
        break;
      case NodeKind::kDecl:
        if (node.aux == "struct-def" || node.aux.rfind("struct", 0) == 0)
          has_struct = true;
        break;
      case NodeKind::kFuncDef:
        if (node.children.size() > 1 && node.child(1).kind == NodeKind::kCompound)
          has_local_fn = true;
        break;
      case NodeKind::kExprStmt:
      case NodeKind::kIf:
      case NodeKind::kFor:
      case NodeKind::kWhile:
      case NodeKind::kDoWhile:
      case NodeKind::kReturn:
        ++statements;
        break;
      default:
        break;
    }
  });
  if (has_goto && profile_.fail_on_goto) {
    result.status = S2SResult::Status::kFailed;
    result.notes.push_back(profile_.name + ": goto/label unsupported");
    return false;
  }
  if (has_struct && profile_.fail_on_structs) {
    result.status = S2SResult::Status::kFailed;
    result.notes.push_back(profile_.name + ": struct constructs unsupported");
    return false;
  }
  if (has_local_fn && profile_.fail_on_local_functions) {
    result.status = S2SResult::Status::kFailed;
    result.notes.push_back(profile_.name + ": local function definitions unsupported");
    return false;
  }
  if (profile_.max_statements > 0 && statements > profile_.max_statements) {
    result.status = S2SResult::Status::kFailed;
    result.notes.push_back(profile_.name + ": snippet too large (" +
                           std::to_string(statements) + " statements)");
    return false;
  }
  return true;
}

S2SResult S2SCompiler::process(const Node& unit) const {
  S2SResult result;
  if (!compile_gate(unit, result)) return result;
  const Node* loop = find_target_loop(unit);
  if (!loop) {
    result.status = S2SResult::Status::kNoDirective;
    result.notes.push_back(profile_.name + ": no for-loop found");
    return result;
  }
  return process_loop(unit, *loop);
}

S2SResult S2SCompiler::process_loop(const Node& unit, const Node& loop) const {
  S2SResult result;
  if (!compile_gate(unit, result)) return result;

  const analysis::SideEffectOracle oracle(unit);
  const analysis::DependenceAnalyzer analyzer(oracle, profile_.analyzer);
  const analysis::LoopVerdict verdict = analyzer.analyze(loop);
  result.notes.insert(result.notes.end(), verdict.notes.begin(), verdict.notes.end());

  if (verdict.bailed) {
    result.status = S2SResult::Status::kFailed;
    return result;
  }
  if (!verdict.parallelizable) {
    result.status = S2SResult::Status::kNoDirective;
    return result;
  }

  result.status = S2SResult::Status::kParallelized;
  result.directive = directive_from_verdict(verdict, profile_.explicit_iterator_private,
                                            profile_.emit_schedule);
  return result;
}

OmpDirective directive_from_verdict(const analysis::LoopVerdict& verdict,
                                    bool explicit_iterator_private,
                                    bool emit_schedule) {
  OmpDirective directive;
  directive.parallel = true;
  directive.for_loop = true;
  if (emit_schedule) {
    directive.schedule = verdict.schedule_hint;
  } else if (verdict.schedule_hint != frontend::ScheduleKind::kStatic) {
    directive.schedule = verdict.schedule_hint;
  }
  if (explicit_iterator_private && !verdict.induction.empty())
    directive.private_vars.push_back(verdict.induction);
  for (const std::string& name : verdict.private_candidates)
    directive.private_vars.push_back(name);
  directive.reductions = verdict.reductions;
  return directive;
}

std::string S2SCompiler::annotate(const std::string& source) const {
  frontend::NodePtr unit;
  try {
    unit = frontend::parse_snippet(source);
  } catch (const ParseError&) {
    return source;  // robustness contract: hand back the input untouched
  }
  const S2SResult result = process(*unit);
  if (!result.parallelized()) return source;

  // Re-emit the snippet with the directive inserted before the target loop.
  const Node* target = find_target_loop(*unit);
  std::string out;
  for (const auto& item : unit->children) {
    if (item.get() == target) out += result.directive->to_string() + "\n";
    out += frontend::print_source(*item);
  }
  return out;
}

}  // namespace clpp::s2s
