// Source-to-source automatic parallelization compilers.
//
// Three personalities model the members of the ComPar ensemble evaluated by
// the paper (Cetus, AutoPar/ROSE, Par4All). Each is a *real* compiler over
// our frontend + dependence analysis — their differing behaviour comes from
// capability knobs (what they bail on, which reductions they recognize,
// whether they privatize the iterator explicitly), not from canned outputs.
// The documented pitfalls of §1.1 and §5 emerge from these knobs:
//   * explicit `private(i)` although OpenMP privatizes the iterator anyway
//     (hurts ComPar's private-clause precision, §5.3);
//   * canonical-form-only reduction recognition (high precision / low
//     recall on reduction, Table 10);
//   * refusal to parallelize loops with unknown call side effects
//     (low recall on directives, Table 7);
//   * outright compile failure on hostile constructs (526/3547 in §5.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "analysis/depend.h"
#include "frontend/parser.h"
#include "frontend/pragma.h"

namespace clpp::s2s {

/// Outcome of running one S2S compiler on a snippet.
struct S2SResult {
  enum class Status {
    kParallelized,  // directive produced
    kNoDirective,   // compiled fine; judged not parallelizable / not worth it
    kFailed,        // could not process the input at all
  };
  Status status = Status::kFailed;
  std::optional<frontend::OmpDirective> directive;
  std::vector<std::string> notes;

  bool parallelized() const { return status == Status::kParallelized; }
  bool failed() const { return status == Status::kFailed; }
};

/// Capability envelope of one S2S compiler.
struct CompilerProfile {
  std::string name;
  analysis::AnalyzerOptions analyzer;
  /// Emit private(<iterator>) explicitly (Cetus does; see §5.3).
  bool explicit_iterator_private = false;
  /// Always spell out schedule(static) even when default.
  bool emit_schedule = false;
  /// Refuse snippets containing locally defined helper functions
  /// (no interprocedural analysis).
  bool fail_on_local_functions = false;
  /// Refuse snippets containing struct definitions or struct access.
  bool fail_on_structs = false;
  /// Refuse snippets containing goto/labels.
  bool fail_on_goto = true;
  /// Maximum statement count the compiler will analyze (0 = unlimited);
  /// models the cost blow-up of dependence testing on long bodies (§1.1).
  std::size_t max_statements = 0;
};

/// Built-in personalities.
CompilerProfile cetus_profile();
CompilerProfile autopar_profile();
CompilerProfile par4all_profile();

/// One S2S compiler instance.
class S2SCompiler {
 public:
  explicit S2SCompiler(CompilerProfile profile);

  const CompilerProfile& profile() const { return profile_; }

  /// Processes a parsed snippet: finds the first top-level loop and decides.
  S2SResult process(const frontend::Node& unit) const;

  /// Processes a specific loop within the snippet.
  S2SResult process_loop(const frontend::Node& unit,
                         const frontend::Node& loop) const;

  /// End-to-end S2S transformation: parse `source`, insert the directive
  /// above the target loop if one is produced, and return the new source.
  /// Returns the input unchanged (plus notes) when nothing is inserted.
  std::string annotate(const std::string& source) const;

 private:
  /// Pre-analysis robustness gate; fills `result` and returns false on
  /// refusal.
  bool compile_gate(const frontend::Node& unit, S2SResult& result) const;

  CompilerProfile profile_;
};

/// Finds the first top-level For loop of a snippet (the corpus target
/// convention); nullptr when there is none.
const frontend::Node* find_target_loop(const frontend::Node& unit);

/// Synthesizes the `parallel for` directive a verdict implies: schedule
/// hint, private list (optionally with the iterator spelled explicitly, the
/// Cetus §5.3 habit), and reduction clauses. Shared by the S2S compilers
/// and the clpp::lint fix-it engine.
frontend::OmpDirective directive_from_verdict(const analysis::LoopVerdict& verdict,
                                              bool explicit_iterator_private = false,
                                              bool emit_schedule = false);

}  // namespace clpp::s2s
