// ComPar: the multi-compiler ensemble of Mosseri et al. [52].
//
// Runs every member S2S compiler on the snippet and combines their outputs
// into the "best" directive, exactly as the paper's comparison system does:
// prefer any member that parallelizes; among those, prefer richer clause
// information (reductions > privatization > bare). The ensemble *fails*
// only when every member fails — the paper reports 526/3547 such cases and
// evaluates them with a fall-back-negative strategy, which clpp::core
// replicates.
#pragma once

#include <memory>
#include <vector>

#include "s2s/compiler.h"

namespace clpp::s2s {

/// Ensemble result: the combined outcome plus each member's verdict.
struct ComParResult {
  S2SResult combined;
  std::vector<std::pair<std::string, S2SResult>> members;

  /// Binary views used by the paper's evaluation (§5.2, §5.3).
  bool predicts_directive() const { return combined.parallelized(); }
  bool predicts_private() const {
    return combined.parallelized() && combined.directive->has_private();
  }
  bool predicts_reduction() const {
    return combined.parallelized() && combined.directive->has_reduction();
  }
  bool compile_failed() const { return combined.failed(); }
};

/// The ComPar ensemble.
class ComPar {
 public:
  /// Default ensemble: Cetus + AutoPar + Par4All personalities.
  ComPar();
  /// Custom ensemble.
  explicit ComPar(std::vector<CompilerProfile> profiles);

  /// Runs all members on a parsed snippet and combines.
  ComParResult process(const frontend::Node& unit) const;

  /// Convenience: parse + process; a snippet that fails to parse counts as
  /// a compile failure of the whole ensemble.
  ComParResult process_source(const std::string& source) const;

  const std::vector<S2SCompiler>& members() const { return members_; }

 private:
  static int directive_score(const S2SResult& result);

  std::vector<S2SCompiler> members_;
};

}  // namespace clpp::s2s
