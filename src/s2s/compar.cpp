#include "s2s/compar.h"

namespace clpp::s2s {

ComPar::ComPar()
    : ComPar(std::vector<CompilerProfile>{cetus_profile(), autopar_profile(),
                                          par4all_profile()}) {}

ComPar::ComPar(std::vector<CompilerProfile> profiles) {
  CLPP_CHECK_MSG(!profiles.empty(), "ComPar needs at least one member compiler");
  members_.reserve(profiles.size());
  for (CompilerProfile& p : profiles) members_.emplace_back(std::move(p));
}

int ComPar::directive_score(const S2SResult& result) {
  if (!result.parallelized()) return 0;
  int score = 1;
  const frontend::OmpDirective& d = *result.directive;
  if (!d.private_vars.empty()) score += 1;
  if (!d.reductions.empty()) score += 2;
  if (d.schedule != frontend::ScheduleKind::kNone) score += 1;
  return score;
}

ComParResult ComPar::process(const frontend::Node& unit) const {
  ComParResult out;
  int best_score = 0;
  const S2SResult* best = nullptr;
  bool any_compiled = false;
  bool any_no_directive = false;

  for (const S2SCompiler& compiler : members_) {
    S2SResult result = compiler.process(unit);
    if (!result.failed()) any_compiled = true;
    if (result.status == S2SResult::Status::kNoDirective) any_no_directive = true;
    out.members.emplace_back(compiler.profile().name, std::move(result));
  }
  for (const auto& [name, result] : out.members) {
    const int score = directive_score(result);
    if (score > best_score) {
      best_score = score;
      best = &result;
    }
  }

  if (best) {
    out.combined = *best;
  } else if (any_compiled) {
    out.combined.status = S2SResult::Status::kNoDirective;
    if (any_no_directive)
      out.combined.notes.push_back("no member produced a directive");
  } else {
    out.combined.status = S2SResult::Status::kFailed;
    out.combined.notes.push_back("all member compilers failed");
  }
  return out;
}

ComParResult ComPar::process_source(const std::string& source) const {
  frontend::NodePtr unit;
  try {
    unit = frontend::parse_snippet(source);
  } catch (const ParseError& e) {
    ComParResult out;
    out.combined.status = S2SResult::Status::kFailed;
    out.combined.notes.push_back(std::string("frontend parse failure: ") + e.what());
    return out;
  }
  return process(*unit);
}

}  // namespace clpp::s2s
