#include "shard/supervisor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>

#include "obs/flight.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "shard/worker.h"
#include "support/error.h"
#include "support/json.h"

namespace clpp::shard {

namespace {

void count(const char* name, std::uint64_t n = 1) {
  if (!obs::enabled() || n == 0) return;
  obs::metrics().counter(name).add(n);
}

std::string flight_path(const std::string& dir, std::size_t index,
                        std::uint64_t generation) {
  return dir + "/shard" + std::to_string(index) + ".gen" +
         std::to_string(generation) + ".flight.jsonl";
}

/// Remaining deadline budget as a frame-header value: the worker re-anchors
/// it on its own clock, so only the *budget* crosses the process boundary.
std::uint32_t remaining_ms(std::uint64_t deadline_ns, std::uint64_t now_ns) {
  if (deadline_ns == 0) return 0;
  // The deadline can pass between route()'s expiry check and this clock
  // read (handle_death on a failed earlier dispatch blocks on poll+waitpid).
  // An unguarded subtraction would wrap and truncate to an arbitrary budget
  // — possibly 0, the frame encoding for "no deadline". Hand the worker a
  // 1ms budget instead; its queue prunes it as expired at dequeue.
  if (now_ns >= deadline_ns) return 1;
  const std::uint64_t remaining = (deadline_ns - now_ns) / 1'000'000ULL;
  // A not-yet-expired deadline rounds up to 1ms so it never turns into the
  // frame encoding for "no deadline"; huge budgets clamp rather than wrap.
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::max<std::uint64_t>(1, remaining), 0xffffffffULL));
}

std::int64_t payload_id(const std::string& payload) {
  try {
    return Json::parse(payload).get_int("id", -1);
  } catch (const std::exception&) {
    return -1;
  }
}

}  // namespace

ShardSupervisor::ShardSupervisor(const core::ParallelAdvisor& advisor,
                                 SupervisorConfig config)
    : advisor_(advisor),
      config_(std::move(config)),
      admission_(config_.admission),
      cache_("frontend", config_.cache) {
  CLPP_CHECK_MSG(config_.shards > 0, "supervisor needs at least one shard");
  shards_.resize(config_.shards);
  for (std::size_t i = 0; i < shards_.size(); ++i)
    shards_[i].jitter_state = config_.restart.jitter_seed + i;
}

ShardSupervisor::~ShardSupervisor() {
  for (Shard& shard : shards_) {
    if (shard.fd != -1) ::close(shard.fd);
    shard.fd = -1;
    if (shard.pid != -1 && !shard.reaped) {
      ::kill(shard.pid, SIGKILL);
      int status = 0;
      ::waitpid(shard.pid, &status, 0);
    }
    shard.pid = -1;
  }
}

void ShardSupervisor::start() {
  CLPP_CHECK_MSG(!started_, "supervisor already started");
  started_ = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) spawn(i);
}

void ShardSupervisor::set_on_response(Completion on_response) {
  on_response_ = std::move(on_response);
}

void ShardSupervisor::also_close_in_child(int fd) {
  close_in_child_.push_back(fd);
}

void ShardSupervisor::spawn(std::size_t index) {
  Shard& shard = shards_[index];
  int sv[2];
  CLPP_CHECK_MSG(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) == 0,
                 "socketpair failed: " << std::strerror(errno));
  shard.generation += 1;
  const std::uint64_t generation = shard.generation;
  const pid_t pid = ::fork();
  CLPP_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
  if (pid == 0) {
    // Child. Drop every parent-side fd we know about: an inherited copy of
    // another shard's pipe would keep that pipe open after its owner dies
    // and defeat the supervisor's EOF death detection.
    ::close(sv[0]);
    for (const Shard& other : shards_)
      if (other.fd != -1) ::close(other.fd);
    for (int fd : close_in_child_) ::close(fd);
    // The injected shard.batch crash models ONE fault event. A replacement
    // worker inherits the parent's (unconsumed) plan and would re-crash at
    // the same arrival forever, so restarts come up with the seams cleared.
    if (generation > 1) resil::clear_fault_plan();
    WorkerOptions options;
    options.serve = config_.serve;
    options.shard_index = index;
    if (!config_.flight_dir.empty())
      options.flight_out = flight_path(config_.flight_dir, index, generation);
    int rc = kWorkerErrorExit;
    try {
      rc = run_shard_worker(sv[1], advisor_, options);
    } catch (...) {
    }
    std::_Exit(rc);
  }
  // Parent.
  ::close(sv[1]);
  const int flags = ::fcntl(sv[0], F_GETFL, 0);
  ::fcntl(sv[0], F_SETFL, flags | O_NONBLOCK);
  shard.pid = pid;
  shard.fd = sv[0];
  shard.decoder = FrameDecoder();
  shard.reaped = false;
  shard.exit_status = 0;
  shard.restart_due_ns = 0;
  if (generation > 1) {
    shard.restarts += 1;
    count("clpp.shard.restarts");
  }
  if (obs::enabled())
    obs::metrics().gauge("clpp.shard.live").set(
        static_cast<double>(live_shards()));
  obs::log_info("shard", "shard up",
                [&] {
                  Json f = Json::object();
                  f["index"] = index;
                  f["pid"] = static_cast<std::int64_t>(pid);
                  f["generation"] = static_cast<std::int64_t>(generation);
                  return f;
                }());
  flush_backlog();
}

AdmissionDecision ShardSupervisor::submit(
    std::string payload, const std::string& client, std::uint32_t deadline_ms,
    std::uint64_t* ticket_out,
    const std::function<void(std::uint64_t)>& on_accept) {
  CLPP_CHECK_MSG(started_, "submit before start()");
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  // Parse once: the id feeds error/cached replies, the digest keys both the
  // front cache and rendezvous routing. Admin verbs ({"cmd":...}) and
  // unparseable payloads get digest 0 — never cached, routed by ticket.
  std::uint64_t digest = 0;
  std::int64_t id = -1;
  try {
    const Json request = Json::parse(payload);
    id = request.get_int("id", -1);
    if (!request.contains("cmd") && request.contains("code"))
      digest = cache::snippet_digest(request.at("code").as_string());
  } catch (const std::exception&) {
  }
  if (digest != 0) {
    std::string stored;
    if (cache_.get(digest, &stored)) {
      // Answer before admission: a cached snippet consumes no quota token
      // and no in-flight slot (the increment below is undone inside
      // complete() on the same call stack), so repeat traffic can never be
      // shed and the quota protects only inference work (DESIGN.md §13).
      const std::uint64_t ticket = next_ticket_++;
      if (ticket_out) *ticket_out = ticket;
      if (on_accept) on_accept(ticket);
      ++inflight_;
      count("clpp.shard.cache_served");
      Json body = Json::parse(stored);
      body["id"] = id;
      body["cached"] = true;
      complete(ticket, body.dump());
      return AdmissionDecision{};  // kAccept, no deadline
    }
  }
  AdmissionDecision decision =
      admission_.admit(client, deadline_ms, now_ns, inflight_);
  switch (decision.verdict) {
    case Admit::kOverQuota:
      count("clpp.shard.over_quota");
      return decision;
    case Admit::kOverloaded:
      count("clpp.shard.overloaded");
      return decision;
    case Admit::kAccept:
      break;
  }
  Pending pending;
  pending.ticket = next_ticket_++;
  pending.payload = std::move(payload);
  pending.deadline_ns = decision.deadline_ns;
  pending.digest = digest;
  pending.id = id;
  if (ticket_out) *ticket_out = pending.ticket;
  // Must run before route(): routing can complete synchronously (e.g. every
  // shard retired), and the completion callback needs any ticket-keyed
  // caller state to already exist.
  if (on_accept) on_accept(pending.ticket);
  ++inflight_;
  route(std::move(pending), /*is_redispatch=*/false);
  return decision;
}

void ShardSupervisor::route(Pending pending, bool is_redispatch) {
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  if (pending.deadline_ns != 0 && now_ns >= pending.deadline_ns) {
    ++expired_;
    count("clpp.shard.expired");
    complete(pending.ticket,
             error_json(payload_id(pending.payload), "deadline_exceeded")
                 .dump());
    return;
  }
  if (is_redispatch) {
    ++redispatched_;
    count("clpp.shard.redispatched");
  }
  // Rendezvous (HRW) hashing: every shard slot scores the digest
  // independently and the highest-scoring live slot owns it, so one snippet
  // always lands on one shard (its private result cache shards cleanly,
  // no duplication) and a dead shard only displaces *its own* keys — they
  // fall to their next-highest score and come back home after the restart.
  // Requests without a digest (admin verbs) spread by ticket. A failed
  // write marks the target dead and the loop falls through score order;
  // handle_death() may have requeued other work by the time we return —
  // that work went through route() itself, so ordering stays per-request
  // FIFO per pipe.
  const std::uint64_t key = pending.digest != 0 ? pending.digest
                                                : pending.ticket;
  std::vector<std::pair<std::uint64_t, std::size_t>> ranked;
  ranked.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    if (shards_[i].fd != -1)
      ranked.emplace_back(cache::rendezvous_score(key, i), i);
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (const auto& [score, index] : ranked) {
    (void)score;
    if (shards_[index].fd == -1) continue;  // died on an earlier dispatch
    if (dispatch_to(index, pending)) return;
  }
  // No shard could take it right now.
  const bool any_hope =
      !draining_ &&
      std::any_of(shards_.begin(), shards_.end(),
                  [](const Shard& s) { return !s.retired; });
  if (any_hope) {
    backlog_.push_back(std::move(pending));
    return;
  }
  ++unavailable_;
  count("clpp.shard.unavailable");
  complete(pending.ticket,
           error_json(payload_id(pending.payload), "unavailable").dump());
}

bool ShardSupervisor::dispatch_to(std::size_t index, Pending& pending) {
  Shard& shard = shards_[index];
  Frame frame;
  frame.payload = pending.payload;  // keep a copy for possible redispatch
  frame.deadline_ms = remaining_ms(pending.deadline_ns, obs::Tracer::now_ns());
  if (!write_frame_fd(shard.fd, frame)) {
    obs::log_warn("shard", "dispatch write failed", [&] {
      Json f = Json::object();
      f["index"] = index;
      return f;
    }());
    handle_death(index);
    return false;
  }
  shard.pending.push_back(std::move(pending));
  return true;
}

void ShardSupervisor::flush_backlog() {
  std::deque<Pending> parked;
  parked.swap(backlog_);
  while (!parked.empty()) {
    Pending pending = std::move(parked.front());
    parked.pop_front();
    route(std::move(pending), /*is_redispatch=*/true);
  }
}

void ShardSupervisor::maybe_cache_response(const Pending& pending,
                                           const std::string& payload) {
  if (pending.digest == 0 || !config_.cache.enabled()) return;
  // Only verdicts are memoizable: error payloads (deadline_exceeded,
  // unavailable, a worker-side parse failure) depend on transient state,
  // never on the snippet text alone.
  try {
    if (Json::parse(payload).contains("error")) return;
  } catch (const std::exception&) {
    return;
  }
  cache_.put(pending.digest, payload, payload.size());
}

void ShardSupervisor::complete(std::uint64_t ticket, std::string payload) {
  CLPP_CHECK_MSG(inflight_ > 0, "completion without an inflight request");
  --inflight_;
  ++turn_completions_;
  if (on_response_) on_response_(ticket, std::move(payload));
}

void ShardSupervisor::drain_fd(std::size_t index) {
  Shard& shard = shards_[index];
  char buf[16 * 1024];
  for (;;) {
    const ssize_t rc = ::read(shard.fd, buf, sizeof buf);
    if (rc > 0) {
      shard.decoder.feed(buf, static_cast<std::size_t>(rc));
      Frame frame;
      std::string error;
      FrameDecoder::Result result;
      while ((result = shard.decoder.next(&frame, &error)) ==
             FrameDecoder::Result::kFrame) {
        if (shard.pending.empty()) {
          obs::log_error("shard", "response without a pending request", [&] {
            Json f = Json::object();
            f["index"] = index;
            return f;
          }());
          continue;
        }
        Pending pending = std::move(shard.pending.front());
        shard.pending.pop_front();
        shard.served += 1;
        // A served response proves the worker is healthy: reset its
        // crash-loop backoff streak so an isolated fault next week gets
        // the full restart budget again.
        shard.restart_attempt = 0;
        shard.backoff_elapsed_ms = 0.0;
        maybe_cache_response(pending, frame.payload);
        complete(pending.ticket, std::move(frame.payload));
      }
      if (result == FrameDecoder::Result::kBadFrame) {
        // The worker wrote garbage on its own pipe — treat it like a crash.
        obs::log_error("shard", "corrupt response frame", [&] {
          Json f = Json::object();
          f["index"] = index;
          f["error"] = error;
          return f;
        }());
        handle_death(index);
        return;
      }
      continue;
    }
    if (rc == 0) {  // EOF: the worker is gone
      handle_death(index);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    obs::log_error("shard", "pipe read failed", [&] {
      Json f = Json::object();
      f["index"] = index;
      f["errno"] = std::string(std::strerror(errno));
      return f;
    }());
    handle_death(index);
    return;
  }
}

void ShardSupervisor::handle_death(std::size_t index) {
  Shard& shard = shards_[index];
  if (shard.fd == -1) return;  // already handled

  // Responses the worker wrote before dying are still buffered in the
  // socket; deliver every complete frame before declaring its pending work
  // lost. The child's end is closed, so this read loop ends at EOF, never
  // EAGAIN-forever.
  {
    char buf[16 * 1024];
    for (;;) {
      const ssize_t rc = ::read(shard.fd, buf, sizeof buf);
      if (rc > 0) {
        shard.decoder.feed(buf, static_cast<std::size_t>(rc));
        continue;
      }
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Process not reaped yet but nothing buffered: poll once for the
        // hangup so we never spin; the child is exiting.
        struct pollfd pfd{shard.fd, POLLIN, 0};
        if (::poll(&pfd, 1, 100) > 0) continue;
      }
      break;
    }
    Frame frame;
    std::string error;
    while (shard.decoder.next(&frame, &error) ==
           FrameDecoder::Result::kFrame) {
      if (shard.pending.empty()) continue;
      Pending pending = std::move(shard.pending.front());
      shard.pending.pop_front();
      shard.served += 1;
      maybe_cache_response(pending, frame.payload);
      complete(pending.ticket, std::move(frame.payload));
    }
  }

  ::close(shard.fd);
  shard.fd = -1;
  if (!shard.reaped && shard.pid != -1) {
    int status = 0;
    if (::waitpid(shard.pid, &status, 0) == shard.pid) {
      shard.reaped = true;
      shard.exit_status = status;
    }
  }
  const int status = shard.exit_status;
  const bool faulted =
      WIFSIGNALED(status) ||
      (WIFEXITED(status) && WEXITSTATUS(status) == kWorkerFaultExit);
  if (faulted) shard.faults += 1;
  shard.pid = -1;
  ++deaths_;
  count("clpp.shard.deaths");
  obs::flight_record("shard.death", static_cast<std::int64_t>(index),
                     static_cast<std::int64_t>(shard.pending.size()));
  if (obs::enabled())
    obs::metrics().gauge("clpp.shard.live").set(
        static_cast<double>(live_shards()));

  // Harvest the dead generation's flight dump (the only forensics an
  // abruptly-dead process leaves behind).
  std::string dump;
  if (!config_.flight_dir.empty()) {
    const std::string path =
        flight_path(config_.flight_dir, index, shard.generation);
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && st.st_size > 0) {
      ++flight_dumps_;
      dump = path;
    }
  }
  obs::log_warn("shard", "shard died", [&] {
    Json f = Json::object();
    f["index"] = index;
    f["status"] = static_cast<std::int64_t>(status);
    f["pending"] = shard.pending.size();
    f["faulted"] = faulted;
    if (!dump.empty()) f["flight_dump"] = dump;
    return f;
  }());

  // Replay is safe (advice is a pure function of the code text), so every
  // accepted-but-unanswered request just goes around again.
  std::deque<Pending> orphans;
  orphans.swap(shard.pending);
  while (!orphans.empty()) {
    Pending pending = std::move(orphans.front());
    orphans.pop_front();
    route(std::move(pending), /*is_redispatch=*/true);
  }

  if (draining_ || shard.retired) return;
  // Schedule the restart with the same deterministic backoff contract as
  // resil::with_retry: bounded attempts AND a bounded cumulative scheduled
  // delay, both reset whenever the shard proves healthy.
  shard.restart_attempt += 1;
  if (shard.restart_attempt >= config_.restart.max_attempts) {
    shard.retired = true;
    resil::detail::note_exhausted("shard.restart", shard.restart_attempt,
                                  shard.backoff_elapsed_ms, "max_attempts");
    return;
  }
  const double delay = resil::detail::backoff_delay_ms(
      config_.restart, shard.restart_attempt, shard.jitter_state);
  if (config_.restart.max_elapsed_ms > 0.0 &&
      shard.backoff_elapsed_ms + delay > config_.restart.max_elapsed_ms) {
    shard.retired = true;
    resil::detail::note_exhausted("shard.restart", shard.restart_attempt,
                                  shard.backoff_elapsed_ms, "max_elapsed_ms");
    return;
  }
  shard.backoff_elapsed_ms += delay;
  shard.restart_due_ns =
      obs::Tracer::now_ns() +
      static_cast<std::uint64_t>(delay * 1'000'000.0) + 1;
}

std::size_t ShardSupervisor::pump(int timeout_ms) {
  if (!started_) return 0;
  turn_completions_ = 0;

  const std::uint64_t now_ns = obs::Tracer::now_ns();
  // Bring up any shard whose backoff expired; cap the poll timeout at the
  // next due restart so a quiet pipe never delays recovery.
  int wait_ms = timeout_ms;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (draining_ || shard.restart_due_ns == 0 || shard.fd != -1) continue;
    if (now_ns >= shard.restart_due_ns) {
      spawn(i);
      continue;
    }
    const int due_ms = static_cast<int>(
        (shard.restart_due_ns - now_ns) / 1'000'000ULL + 1);
    if (wait_ms < 0 || due_ms < wait_ms) wait_ms = due_ms;
  }

  std::vector<struct pollfd> fds;
  std::vector<std::size_t> owner;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].fd == -1) continue;
    fds.push_back({shards_[i].fd, POLLIN, 0});
    owner.push_back(i);
  }
  if (!fds.empty()) {
    const int rc = ::poll(fds.data(), fds.size(), wait_ms);
    if (rc > 0) {
      for (std::size_t k = 0; k < fds.size(); ++k)
        if (fds[k].revents & (POLLIN | POLLHUP | POLLERR))
          if (shards_[owner[k]].fd != -1) drain_fd(owner[k]);
    }
  }

  // Belt-and-braces: a SIGKILLed worker whose pipe carried no traffic this
  // turn still gets noticed here rather than waiting for the next write.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.pid == -1 || shard.reaped) continue;
    int status = 0;
    const pid_t rc = ::waitpid(shard.pid, &status, WNOHANG);
    if (rc == shard.pid) {
      shard.reaped = true;
      shard.exit_status = status;
      if (shard.fd != -1) handle_death(i);
    }
  }
  return turn_completions_;
}

void ShardSupervisor::drain() {
  if (!started_ || draining_) return;
  draining_ = true;
  // EOF is the worker's graceful-drain signal: it answers what it already
  // read, shuts its server down, and exits 0.
  for (Shard& shard : shards_)
    if (shard.fd != -1) ::shutdown(shard.fd, SHUT_WR);
  while (inflight_ > 0 && live_shards() > 0) pump(200);
  // Anything still unanswered has no shard left to serve it.
  std::deque<Pending> leftovers;
  leftovers.swap(backlog_);
  for (Shard& shard : shards_) {
    while (!shard.pending.empty()) {
      leftovers.push_back(std::move(shard.pending.front()));
      shard.pending.pop_front();
    }
  }
  while (!leftovers.empty()) {
    Pending pending = std::move(leftovers.front());
    leftovers.pop_front();
    ++unavailable_;
    complete(pending.ticket,
             error_json(payload_id(pending.payload), "unavailable").dump());
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.fd != -1) {
      ::close(shard.fd);
      shard.fd = -1;
    }
    if (shard.pid != -1 && !shard.reaped) {
      int status = 0;
      ::waitpid(shard.pid, &status, 0);
      shard.reaped = true;
      shard.exit_status = status;
    }
    shard.pid = -1;
  }
}

std::vector<int> ShardSupervisor::pipe_fds() const {
  std::vector<int> fds;
  for (const Shard& shard : shards_)
    if (shard.fd != -1) fds.push_back(shard.fd);
  return fds;
}

int ShardSupervisor::next_restart_ms() const {
  if (draining_) return -1;
  const std::uint64_t now_ns = obs::Tracer::now_ns();
  int best = -1;
  for (const Shard& shard : shards_) {
    if (shard.restart_due_ns == 0 || shard.fd != -1) continue;
    const int due_ms =
        shard.restart_due_ns <= now_ns
            ? 0
            : static_cast<int>((shard.restart_due_ns - now_ns) / 1'000'000ULL +
                               1);
    if (best < 0 || due_ms < best) best = due_ms;
  }
  return best;
}

std::size_t ShardSupervisor::inflight() const { return inflight_; }

std::size_t ShardSupervisor::live_shards() const {
  std::size_t live = 0;
  for (const Shard& shard : shards_)
    if (shard.fd != -1) ++live;
  return live;
}

pid_t ShardSupervisor::shard_pid(std::size_t i) const {
  return shards_[i].fd != -1 ? shards_[i].pid : -1;
}

Json ShardSupervisor::stats_json() const {
  Json out = Json::object();
  out["schema"] = "clpp.shard_stats.v1";
  out["shards"] = shards_.size();
  out["live"] = live_shards();
  out["inflight"] = inflight_;
  out["backlog"] = backlog_.size();
  out["deaths"] = deaths_;
  out["redispatched"] = redispatched_;
  out["expired"] = expired_;
  out["unavailable"] = unavailable_;
  out["flight_dumps"] = flight_dumps_;
  Json per_shard = Json::array();
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = shards_[i];
    Json row = Json::object();
    row["index"] = i;
    row["live"] = shard.fd != -1;
    row["pid"] = static_cast<std::int64_t>(shard.fd != -1 ? shard.pid : -1);
    row["restarts"] = shard.restarts;
    row["served"] = shard.served;
    row["pending"] = shard.pending.size();
    row["faults"] = shard.faults;
    row["retired"] = shard.retired;
    per_shard.push_back(std::move(row));
  }
  out["per_shard"] = std::move(per_shard);
  const AdmissionController::Stats& stats = admission_.stats();
  Json admission = Json::object();
  admission["accepted"] = stats.accepted;
  admission["over_quota"] = stats.over_quota;
  admission["overloaded"] = stats.overloaded;
  out["admission"] = std::move(admission);
  // Front-end result cache: hits here are exactly the requests answered
  // without touching admission or a shard (`admission.accepted` excludes
  // them by design — see SupervisorConfig::cache).
  out["cache"] = cache_.stats_json();
  return out;
}

}  // namespace clpp::shard
