// Shard supervisor: the parent-process side of sharded serving
// (DESIGN.md §12). It forks N worker processes (shard/worker.h), each
// hosting one InferenceServer replica behind a UNIX socketpair, and runs a
// single-threaded event loop over those pipes:
//
//   submit() — front-end result-cache lookup (a digest hit answers
//     immediately, before admission — see SupervisorConfig::cache), then
//     admission control (token buckets, in-flight ceiling, deadline
//     stamping), then dispatch to a live shard by rendezvous-hashing the
//     snippet digest (so each shard's private result cache sees a disjoint
//     slice of the key space).
//   pump()   — poll the pipes, deliver responses through the completion
//     callback, detect worker death (EOF/POLLHUP + a waitpid sweep),
//     harvest the dead shard's flight-recorder dump, restart it with
//     deterministic exponential backoff, and transparently re-dispatch its
//     accepted-but-unanswered requests to surviving shards.
//
// Replay is always safe: advice is a pure function of the code text, so a
// request served twice (once by the shard that died after reading it, once
// by its replacement) yields bitwise-identical verdicts — the supervisor
// never needs to know how far a dead worker got.
//
// Fork discipline: spawns happen only from the thread that calls start()
// and pump(). Keep the supervisor's thread the only one alive when shards
// can (re)start — the CLI does this by running listener and supervisor in
// one event loop thread.
//
// Ordering contract with the worker: each worker answers frames in arrival
// order, so the k-th response frame on a pipe resolves the k-th
// still-pending dispatch — a per-shard FIFO is the whole correlation state.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "resil/retry.h"
#include "serve/serve.h"
#include "shard/admission.h"
#include "shard/frame.h"

namespace clpp {
class Json;  // support/json.h
}

namespace clpp::core {
class ParallelAdvisor;
}

namespace clpp::shard {

struct SupervisorConfig {
  /// Worker processes to fork. Two or more keeps redispatch local; with one
  /// shard a crash parks pending work in the backlog until restart.
  std::size_t shards = 2;
  /// Per-shard InferenceServer configuration (workers, batching, queue).
  serve::ServeConfig serve;
  AdmissionConfig admission;
  /// Front-end result cache (DESIGN.md §13), shared across every client
  /// connection. A hit is answered *before* admission control, so cached
  /// snippets consume no token-bucket slot and no in-flight slot — cheap
  /// repeat traffic can never be shed, and the quota protects exactly the
  /// expensive (inference) work. Off by default (max_entries == 0);
  /// clpp-serve wires `--cache-cap` / `CLPP_CACHE_CAP` into it.
  cache::CacheConfig cache{};
  /// Directory for per-shard flight-recorder dumps ("" = no dumps). Each
  /// worker generation dumps to shard<i>.gen<g>.flight.jsonl on a crash
  /// seam; the supervisor harvests (counts + logs) dumps on death.
  std::string flight_dir;
  /// Restart backoff for crashed shards. max_attempts bounds restarts per
  /// unhealthy streak (a shard that serves a response resets its streak);
  /// max_elapsed_ms bounds the cumulative scheduled backoff the same way
  /// resil::with_retry does. Exhaustion permanently retires the shard and
  /// counts under clpp.resil.retry_exhausted.
  resil::RetryPolicy restart{.max_attempts = 5,
                             .base_delay_ms = 10.0,
                             .multiplier = 2.0,
                             .max_delay_ms = 500.0};
};

class ShardSupervisor {
 public:
  /// Called once per accepted request with the response payload (a JSON
  /// text: either a verdict object or `{"id":...,"error":...}`).
  using Completion =
      std::function<void(std::uint64_t ticket, std::string payload)>;

  /// Keeps a reference to `advisor` — it must outlive the supervisor.
  /// Workers clone their replicas from it after fork.
  ShardSupervisor(const core::ParallelAdvisor& advisor,
                  SupervisorConfig config);
  /// Closes pipes and reaps every worker (without draining — call drain()
  /// first for a graceful stop).
  ~ShardSupervisor();

  ShardSupervisor(const ShardSupervisor&) = delete;
  ShardSupervisor& operator=(const ShardSupervisor&) = delete;

  /// Forks the shard workers. Call from a single-threaded process (fork
  /// safety) before any submit/pump.
  void start();

  void set_on_response(Completion on_response);

  /// Registers an fd the worker must not inherit (e.g. the TCP listen
  /// socket); applied to every subsequent spawn, including restarts.
  void also_close_in_child(int fd);

  /// Admission + dispatch of one request payload. On kAccept, `*ticket_out`
  /// identifies the request in the completion callback. Shed verdicts
  /// (kOverQuota/kOverloaded) carry retry_after_ms and never consume a
  /// ticket. `deadline_ms` is the frame-header budget (0 = config default).
  ///
  /// A front-cache hit completes synchronously too — before admission, so
  /// it consumes no quota token and no in-flight slot; the decision comes
  /// back kAccept with deadline_ns == 0.
  ///
  /// Routing can complete synchronously (expired deadline, every shard
  /// retired): the completion callback then fires *inside* submit. Callers
  /// that key state on the ticket must set it up before routing runs —
  /// `on_accept(ticket)` is invoked exactly then, after the ticket is
  /// assigned and before any dispatch or completion.
  AdmissionDecision submit(
      std::string payload, const std::string& client,
      std::uint32_t deadline_ms, std::uint64_t* ticket_out,
      const std::function<void(std::uint64_t)>& on_accept = nullptr);

  /// One event-loop turn: waits up to `timeout_ms` for pipe activity (or a
  /// due restart), delivers responses, handles deaths and restarts.
  /// Returns the number of completions delivered (responses + expiries).
  std::size_t pump(int timeout_ms);

  /// Graceful stop: sends EOF to every live shard, pumps until all pending
  /// work is answered or every shard is gone, then reaps. Requests still
  /// unanswered after that fail with an "unavailable" error completion.
  void drain();

  /// Parent-side pipe fds of live shards, for embedding pump() in an
  /// external poll loop (poll these for POLLIN, then call pump(0)).
  std::vector<int> pipe_fds() const;

  /// Milliseconds until the next scheduled restart is due (0 = due now,
  /// -1 = none scheduled). Callers cap their poll timeout at this so a
  /// quiet front end never delays a recovery.
  int next_restart_ms() const;

  /// Accepted-but-unanswered requests (pending on pipes + backlog).
  std::size_t inflight() const;
  std::size_t live_shards() const;
  /// Worker pid, or -1 when shard `i` is down (for tests to SIGKILL).
  pid_t shard_pid(std::size_t i) const;

  const AdmissionController::Stats& admission_stats() const {
    return admission_.stats();
  }

  /// `clpp.shard_stats.v1`: per-shard liveness/pid/restarts/served counts,
  /// admission stats, death/redispatch/flight-dump totals.
  Json stats_json() const;

 private:
  struct Pending {
    std::uint64_t ticket = 0;
    std::string payload;
    std::uint64_t deadline_ns = 0;  // absolute, obs::Tracer::now_ns; 0=none
    /// Canonical snippet digest (0 for admin/cmd or unparseable payloads):
    /// the routing key and the front-cache key.
    std::uint64_t digest = 0;
    std::int64_t id = -1;  // request id, parsed once at submit
  };

  struct Shard {
    pid_t pid = -1;
    int fd = -1;  // parent side of the socketpair, O_NONBLOCK
    FrameDecoder decoder;
    std::deque<Pending> pending;  // FIFO: k-th response answers k-th entry
    std::uint64_t generation = 0;  // spawns so far (0 before first start)
    std::uint64_t restarts = 0;    // successful restarts (generation - 1)
    std::uint64_t served = 0;
    std::uint64_t faults = 0;  // deaths with kWorkerFaultExit status
    // Backoff streak state (reset when the shard serves a response).
    int restart_attempt = 0;
    double backoff_elapsed_ms = 0.0;
    std::uint64_t jitter_state = 0;
    std::uint64_t restart_due_ns = 0;  // 0 = not scheduled
    bool retired = false;              // restart budget exhausted
    bool reaped = false;               // waitpid sweep already collected it
    int exit_status = 0;               // raw waitpid status when reaped
  };

  void spawn(std::size_t index);
  /// Drains buffered responses off a dead shard's pipe, reaps the process,
  /// harvests its flight dump, schedules the restart, and re-dispatches its
  /// pending requests.
  void handle_death(std::size_t index);
  /// Routes one pending request to a live shard (rendezvous hashing on the
  /// snippet digest, falling through score order when the winner is down),
  /// the backlog when none is up, or an expiry completion when its deadline
  /// passed.
  void route(Pending pending, bool is_redispatch);
  /// Caches a successful verdict payload under the request's digest.
  void maybe_cache_response(const Pending& pending,
                            const std::string& payload);
  bool dispatch_to(std::size_t index, Pending& pending);
  void complete(std::uint64_t ticket, std::string payload);
  void drain_fd(std::size_t index);
  void flush_backlog();

  const core::ParallelAdvisor& advisor_;
  SupervisorConfig config_;
  AdmissionController admission_;
  /// Cross-connection result cache: response payloads (id stripped of
  /// meaning — it is re-patched per hit) keyed by snippet digest.
  cache::ShardedLruCache<std::string> cache_;
  Completion on_response_;
  std::vector<Shard> shards_;
  std::deque<Pending> backlog_;  // no live shard could take these yet
  std::vector<int> close_in_child_;
  std::uint64_t next_ticket_ = 1;
  std::size_t inflight_ = 0;
  bool started_ = false;
  bool draining_ = false;
  std::size_t turn_completions_ = 0;  // completions in the current pump()

  // Lifetime totals for stats_json.
  std::uint64_t deaths_ = 0;
  std::uint64_t redispatched_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t unavailable_ = 0;
  std::uint64_t flight_dumps_ = 0;
};

}  // namespace clpp::shard
