// Shard worker: the child-process side of the shard supervisor
// (DESIGN.md §12). After fork, the child calls `run_shard_worker` on its
// end of the supervisor socketpair and never returns to the caller's code.
//
// The worker hosts one `serve::InferenceServer` replica and speaks the
// frame protocol (shard/frame.h): it blocks for one request frame, drains
// whatever else already arrived (up to max_batch — a burst on the pipe
// becomes one micro-batch), submits the lot, and answers in arrival order.
// EOF on the pipe is the graceful-drain signal: the worker serves what it
// already read, shuts the server down, and exits 0.
//
// Crash seam: `CLPP_FAULTS=shard.batch:N` makes the N-th burst die like a
// real crash — the worker dumps its flight recorder (when a dump path is
// armed) and exits abruptly with `kWorkerFaultExit`, losing every request
// it had accepted. The supervisor's redispatch path is what turns that
// loss back into answers.
#pragma once

#include <cstdint>
#include <string>

#include "serve/serve.h"

namespace clpp {
class Json;  // support/json.h
}

namespace clpp::core {
class ParallelAdvisor;
}

namespace clpp::shard {

/// Exit status of a worker killed by an injected `shard.batch` fault.
inline constexpr int kWorkerFaultExit = 40;
/// Exit status when the worker dies on an unexpected exception.
inline constexpr int kWorkerErrorExit = 41;

struct WorkerOptions {
  serve::ServeConfig serve;
  std::size_t shard_index = 0;
  /// Flight-recorder dump path for this shard ("" = leave process default).
  std::string flight_out;
};

/// Serializes one served verdict as the JSON-lines response object (the
/// same shape clpp-serve prints on stdout: probabilities, suggestion,
/// trace id, queue/batch/infer split).
Json response_json(std::int64_t id, const serve::ServedAdvice& served);

/// `{"id":id,"error":what}` (id omitted when negative).
Json error_json(std::int64_t id, const std::string& what);

/// Runs the worker loop until EOF (returns 0) or a fatal protocol/IO error
/// (returns kWorkerErrorExit). Injected shard.batch faults exit the
/// process directly with kWorkerFaultExit.
int run_shard_worker(int fd, const core::ParallelAdvisor& advisor,
                     const WorkerOptions& options);

}  // namespace clpp::shard
