#include "shard/worker.h"

#include <poll.h>

#include <cstdio>
#include <cstdlib>
#include <future>
#include <utility>
#include <vector>

#include "core/advisor.h"
#include "obs/flight.h"
#include "obs/trace.h"
#include "resil/fault.h"
#include "serve/server.h"
#include "shard/frame.h"
#include "support/json.h"

namespace clpp::shard {

namespace {

std::string trace_id_hex(std::uint64_t trace_id) {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(trace_id));
  return hex;
}

bool readable_now(int fd) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  return ::poll(&pfd, 1, 0) > 0;
}

/// One request of a burst: either a future to resolve, a ready admin
/// reply, or an error determined before submission.
struct Slot {
  std::int64_t id = -1;
  std::future<serve::ServedAdvice> future;
  std::string preformatted;
  std::string error;
};

}  // namespace

Json response_json(std::int64_t id, const serve::ServedAdvice& served) {
  const core::Advice& advice = served.advice;
  Json obj = Json::object();
  obj["id"] = id;
  obj["p_directive"] = static_cast<double>(advice.p_directive);
  obj["needs_directive"] = advice.needs_directive;
  if (advice.needs_directive) {
    obj["p_private"] = static_cast<double>(advice.p_private);
    obj["p_reduction"] = static_cast<double>(advice.p_reduction);
    obj["p_dynamic"] = static_cast<double>(advice.p_dynamic);
    obj["needs_private"] = advice.needs_private;
    obj["needs_reduction"] = advice.needs_reduction;
    obj["dynamic_schedule"] = advice.wants_dynamic_schedule;
    obj["suggestion"] = advice.suggestion;
  }
  if (!advice.compar_suggestion.empty()) obj["compar"] = advice.compar_suggestion;
  obj["trace_id"] = trace_id_hex(served.timing.trace_id);
  obj["queue_us"] = static_cast<std::int64_t>(served.timing.queue_us);
  obj["batch_us"] = static_cast<std::int64_t>(served.timing.batch_us);
  obj["infer_us"] = static_cast<std::int64_t>(served.timing.infer_us);
  obj["coalesced"] = served.timing.coalesced;
  obj["cached"] = served.timing.cached;
  return obj;
}

Json error_json(std::int64_t id, const std::string& what) {
  Json obj = Json::object();
  if (id >= 0) obj["id"] = id;
  obj["error"] = what;
  return obj;
}

int run_shard_worker(int fd, const core::ParallelAdvisor& advisor,
                     const WorkerOptions& options) {
  if (!options.flight_out.empty()) obs::set_flight_out(options.flight_out);
  serve::InferenceServer server(advisor, options.serve);
  std::string error;
  bool eof = false;
  while (!eof) {
    Frame first;
    const ReadStatus status = read_frame_fd(fd, &first, &error);
    if (status == ReadStatus::kEof) break;
    if (status == ReadStatus::kError) {
      // The supervisor pipe never carries hostile bytes; a broken frame
      // here means the parent died mid-write. Nothing left to serve.
      std::fprintf(stderr, "shard %zu: %s\n", options.shard_index,
                   error.c_str());
      return kWorkerErrorExit;
    }

    // Drain the burst that already arrived: a pipe full of dispatches
    // becomes one micro-batch instead of max_batch singleton batches.
    std::vector<Frame> burst;
    burst.push_back(std::move(first));
    while (burst.size() < server.config().max_batch && readable_now(fd)) {
      Frame more;
      const ReadStatus s = read_frame_fd(fd, &more, &error);
      if (s == ReadStatus::kEof) {
        eof = true;
        break;
      }
      if (s == ReadStatus::kError) {
        std::fprintf(stderr, "shard %zu: %s\n", options.shard_index,
                     error.c_str());
        return kWorkerErrorExit;
      }
      burst.push_back(std::move(more));
    }

    // The crash seam: one arrival per burst, so CLPP_FAULTS=shard.batch:N
    // kills this worker exactly when its N-th burst lands — after the
    // supervisor has accepted (and counted) every request in it. Exit
    // abruptly like a real crash would; the flight dump is the only
    // forensics the process leaves behind.
    try {
      resil::fault_point("shard.batch");
    } catch (const resil::InjectedFault&) {
      obs::flight_record("shard.fault",
                         static_cast<std::int64_t>(options.shard_index),
                         static_cast<std::int64_t>(burst.size()));
      obs::dump_flight("shard.batch injected fault");
      std::_Exit(kWorkerFaultExit);
    }

    std::vector<Slot> slots;
    slots.reserve(burst.size());
    const std::uint64_t now_ns = obs::Tracer::now_ns();
    for (Frame& frame : burst) {
      Slot slot;
      try {
        const Json request = Json::parse(frame.payload);
        slot.id = request.get_int("id", -1);
        if (request.contains("cmd")) {
          const std::string cmd = request.at("cmd").as_string();
          if (cmd == "stats") {
            Json reply = Json::object();
            reply["id"] = slot.id;
            reply["stats"] = server.stats_json();
            slot.preformatted = reply.dump();
          } else if (cmd == "quality") {
            Json reply = Json::object();
            reply["id"] = slot.id;
            reply["quality"] = server.quality_json();
            slot.preformatted = reply.dump();
          } else {
            slot.error = "unknown cmd: " + cmd;
          }
        } else {
          const std::uint64_t deadline_ns =
              frame.deadline_ms != 0
                  ? now_ns + static_cast<std::uint64_t>(frame.deadline_ms) *
                                 1'000'000ULL
                  : 0;
          slot.future =
              server.submit(request.at("code").as_string(), deadline_ns);
        }
      } catch (const std::exception& e) {
        slot.error = e.what();
      }
      slots.push_back(std::move(slot));
    }

    for (Slot& slot : slots) {
      std::string payload;
      if (!slot.preformatted.empty()) {
        payload = std::move(slot.preformatted);
      } else if (!slot.error.empty()) {
        payload = error_json(slot.id, slot.error).dump();
      } else {
        try {
          payload = response_json(slot.id, slot.future.get()).dump();
        } catch (const serve::ServeDeadline&) {
          payload = error_json(slot.id, "deadline_exceeded").dump();
        } catch (const std::exception& e) {
          payload = error_json(slot.id, e.what()).dump();
        }
      }
      Frame reply;
      reply.payload = std::move(payload);
      if (!write_frame_fd(fd, reply)) return kWorkerErrorExit;
    }
  }
  server.shutdown();
  return 0;
}

}  // namespace clpp::shard
