#include "shard/frame.h"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "support/error.h"

namespace clpp::shard {

namespace {

void put_u32_le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32_le(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<std::uint32_t>(u[0]) |
         (static_cast<std::uint32_t>(u[1]) << 8) |
         (static_cast<std::uint32_t>(u[2]) << 16) |
         (static_cast<std::uint32_t>(u[3]) << 24);
}

/// Blocks until `fd` reports the given poll events (read or write side).
bool wait_fd(int fd, short events) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  for (;;) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) return true;
    if (rc < 0 && errno == EINTR) continue;
    return false;
  }
}

/// Reads exactly `n` bytes. Returns n on success, 0 when EOF struck before
/// the first byte, -1 on mid-read EOF or error.
ssize_t read_exact(int fd, char* buf, std::size_t n, std::string* error) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::read(fd, buf + got, n - got);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0) return 0;
      if (error) *error = "EOF mid-frame (" + std::to_string(got) + "/" +
                          std::to_string(n) + " bytes)";
      return -1;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (wait_fd(fd, POLLIN)) continue;
      if (error) *error = "poll failed while reading frame";
      return -1;
    }
    if (error) *error = std::string("read failed: ") + std::strerror(errno);
    return -1;
  }
  return static_cast<ssize_t>(got);
}

}  // namespace

std::string encode_frame(const Frame& frame) {
  CLPP_CHECK_MSG(!frame.payload.empty(), "frame payload must be non-empty");
  CLPP_CHECK_MSG(frame.payload.size() <= kMaxFramePayload,
                 "frame payload " << frame.payload.size()
                                  << " bytes exceeds the "
                                  << kMaxFramePayload << "-byte cap");
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  put_u32_le(out, static_cast<std::uint32_t>(frame.payload.size()));
  put_u32_le(out, frame.deadline_ms);
  out.append(frame.payload);
  return out;
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived keep-alive
  // connection doesn't grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(Frame* out, std::string* error) {
  const std::size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;
  const char* header = buffer_.data() + consumed_;
  const std::uint32_t len = get_u32_le(header);
  if (len == 0 || len > kMaxFramePayload) {
    if (error)
      *error = "bad frame length " + std::to_string(len) + " (cap " +
               std::to_string(kMaxFramePayload) + ")";
    buffer_.clear();  // length prefix is garbage: the stream cannot resync
    consumed_ = 0;
    return Result::kBadFrame;
  }
  if (available < kFrameHeaderBytes + len) return Result::kNeedMore;
  out->deadline_ms = get_u32_le(header + 4);
  out->payload.assign(header + kFrameHeaderBytes, len);
  consumed_ += kFrameHeaderBytes + len;
  return Result::kFrame;
}

ReadStatus read_frame_fd(int fd, Frame* out, std::string* error) {
  char header[kFrameHeaderBytes];
  const ssize_t rc = read_exact(fd, header, kFrameHeaderBytes, error);
  if (rc == 0) return ReadStatus::kEof;
  if (rc < 0) {
    if (error && error->rfind("EOF mid-frame", 0) == 0)
      *error = "truncated frame header (" + *error + ")";
    return ReadStatus::kError;
  }
  const std::uint32_t len = get_u32_le(header);
  if (len == 0 || len > kMaxFramePayload) {
    if (error)
      *error = "bad frame length " + std::to_string(len) + " (cap " +
               std::to_string(kMaxFramePayload) + ")";
    return ReadStatus::kError;
  }
  out->deadline_ms = get_u32_le(header + 4);
  out->payload.resize(len);
  if (read_exact(fd, out->payload.data(), len, error) <= 0)
    return ReadStatus::kError;
  return ReadStatus::kFrame;
}

bool write_frame_fd(int fd, const Frame& frame) {
  const std::string wire = encode_frame(frame);
  std::size_t sent = 0;
  while (sent < wire.size()) {
    // MSG_NOSIGNAL: a peer that died mid-response must surface as EPIPE,
    // not kill the supervisor with SIGPIPE. Pipes reject send() with
    // ENOTSOCK; fall back to write() for them.
    ssize_t rc = ::send(fd, wire.data() + sent, wire.size() - sent,
                        MSG_NOSIGNAL);
    if (rc < 0 && errno == ENOTSOCK)
      rc = ::write(fd, wire.data() + sent, wire.size() - sent);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (wait_fd(fd, POLLOUT)) continue;
      return false;
    }
    return false;
  }
  return true;
}

}  // namespace clpp::shard
