// Length-prefixed JSON frames: the wire format of the sharded serving
// front end (clpp::shard, DESIGN.md §12).
//
// A frame is an 8-byte little-endian header followed by the payload:
//
//   u32 payload_len   bytes of JSON that follow (1 .. kMaxFramePayload)
//   u32 deadline_ms   request deadline budget, milliseconds from receipt
//                     (0 = none; response frames leave it 0)
//
// The payload is exactly the JSON-lines schema clpp-serve speaks on stdin
// ({"id":..,"code":..} / {"cmd":"stats"} requests, verdict/error objects as
// responses), so a frame is "one clpp-serve line plus a deadline".
//
// Robustness contract (exercised by the hostile-input tests in
// tests/shard_test.cpp): a decoder fed arbitrary bytes never reads out of
// bounds, never allocates more than kMaxFramePayload per frame, and
// classifies every violation — truncated header, oversize or zero length,
// mid-frame EOF — as a recoverable error the connection loop can answer
// with one error frame instead of dying.
#pragma once

#include <cstdint>
#include <string>

namespace clpp::shard {

/// Largest payload a peer may send. A 1 MiB snippet is far beyond anything
/// the advisor tokenizes; bigger lengths are treated as protocol garbage
/// (or an attack) rather than honored with an allocation.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

/// Header bytes preceding every payload.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// One decoded frame: the JSON payload plus the header's deadline budget.
struct Frame {
  std::string payload;
  std::uint32_t deadline_ms = 0;
};

/// Serializes header + payload. Throws InvalidArgument when the payload is
/// empty or exceeds kMaxFramePayload.
std::string encode_frame(const Frame& frame);

/// Incremental decoder for a byte stream of frames (one per connection).
/// Feed whatever arrived, then drain complete frames with `next`.
class FrameDecoder {
 public:
  enum class Result {
    kNeedMore,  ///< no complete frame buffered yet
    kFrame,     ///< one frame decoded into *out
    kBadFrame,  ///< header violates the protocol; stream position is lost
  };

  void feed(const char* data, std::size_t n);

  /// Decodes the next buffered frame. After kBadFrame the buffer is
  /// discarded (a corrupt length prefix makes resynchronization
  /// impossible); `error` receives a one-line description.
  Result next(Frame* out, std::string* error);

  /// Bytes buffered but not yet decoded.
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
};

/// Outcome of a blocking single-frame read.
enum class ReadStatus {
  kFrame,  ///< one complete frame read
  kEof,    ///< clean end of stream at a frame boundary
  kError,  ///< truncated header, mid-frame EOF, oversize length, or I/O error
};

/// Blocking read of exactly one frame from `fd` (EINTR-retried; waits out
/// EAGAIN on nonblocking fds). `error` receives a description on kError.
ReadStatus read_frame_fd(int fd, Frame* out, std::string* error);

/// Writes one encoded frame to `fd`, looping over partial writes and
/// waiting out EAGAIN. Uses send(MSG_NOSIGNAL) on sockets so a dead peer
/// yields `false` instead of SIGPIPE. Returns false on any write error.
bool write_frame_fd(int fd, const Frame& frame);

}  // namespace clpp::shard
