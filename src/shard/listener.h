// TCP front end for the shard supervisor (DESIGN.md §12): a poll-based,
// single-threaded event loop that accepts loopback connections speaking the
// length-prefixed frame protocol (shard/frame.h) and bridges them to a
// ShardSupervisor.
//
// Keep-alive: a connection carries any number of request frames; responses
// are written back on the same connection as their verdicts complete (in
// completion order, correlated by the payload's "id" field — the server
// does not promise per-connection response ordering under redispatch).
//
// Quota identity: the payload's optional "client" field keys the token
// bucket; absent, the peer address:port does. The frame header's
// deadline_ms rides through admission to the shard's serve queue.
//
// Robustness contract (tested by shard_test): a malformed payload earns one
// `{"error":...}` response and the connection lives on; an unsyncable frame
// (bad length prefix) earns one error response and closes only that
// connection; the accept loop survives both. Shed requests get
// `{"error":"overloaded","retry_after_ms":...}`.
//
// Single-threaded: run() owns the thread it is called on. Because shard
// restarts fork, the process should keep this the only running thread
// (the CLI does).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "shard/frame.h"

namespace clpp {
class Json;
}

namespace clpp::shard {

class ShardSupervisor;

struct ListenerConfig {
  /// Port to bind on 127.0.0.1 (0 = ephemeral; read back via port()).
  std::uint16_t port = 0;
  /// Concurrent connections; further accepts get one "overloaded" error
  /// frame and an immediate close.
  std::size_t max_connections = 256;
  /// When non-empty, the bound port is written here after listen() — how
  /// scripts discover an ephemeral port.
  std::string port_file;
};

class SocketListener {
 public:
  /// `supervisor` must outlive the listener and must not be started yet
  /// when using restarts: call listener.start() first, so the listen fd is
  /// registered with also_close_in_child() before the first fork.
  SocketListener(ShardSupervisor& supervisor, ListenerConfig config);
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  /// Binds and listens on 127.0.0.1, installs the supervisor response
  /// callback, registers the listen fd for child-side close, and writes
  /// the port file. Throws IoError on bind/listen failure.
  void start();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Event loop: accept, read frames, admit/dispatch, deliver responses,
  /// drive supervisor restarts. Returns when stop() was called.
  void run();

  /// One loop turn with the given poll timeout; returns the number of
  /// response frames written to clients. Test hook — run() is this in a
  /// loop.
  std::size_t poll_once(int timeout_ms);

  /// Stop flag, checked once per loop turn. Atomic (and lock-free on every
  /// supported platform) so the CLI's SIGINT/SIGTERM handler may call this.
  void stop() { stop_.store(true, std::memory_order_relaxed); }

  std::size_t active_connections() const { return conns_.size(); }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string peer;  // "addr:port", the default quota key
  };

  void accept_ready();
  /// Reads everything available; returns false when the connection closed.
  bool read_ready(std::uint64_t conn_id);
  void handle_frame(std::uint64_t conn_id, Frame frame);
  void on_response(std::uint64_t ticket, std::string payload);
  bool send_json(std::uint64_t conn_id, const Json& body);
  void close_conn(std::uint64_t conn_id);

  ShardSupervisor& supervisor_;
  ListenerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Connection> conns_;
  std::map<std::uint64_t, std::uint64_t> ticket_conn_;
  std::size_t responses_written_in_turn_ = 0;

  // Listener-side counters surfaced in the admin stats reply.
  std::uint64_t accepted_conns_ = 0;
  std::uint64_t refused_conns_ = 0;
  std::uint64_t bad_frames_ = 0;
  std::uint64_t bad_payloads_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t orphan_responses_ = 0;  // response after its conn closed
};

}  // namespace clpp::shard
