#include "shard/listener.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "shard/supervisor.h"
#include "shard/worker.h"
#include "support/error.h"
#include "support/json.h"

namespace clpp::shard {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::string peer_name(const struct sockaddr_in& addr) {
  char ip[INET_ADDRSTRLEN] = "?";
  ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof ip);
  return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
}

}  // namespace

SocketListener::SocketListener(ShardSupervisor& supervisor,
                               ListenerConfig config)
    : supervisor_(supervisor), config_(std::move(config)) {}

SocketListener::~SocketListener() {
  for (auto& [id, conn] : conns_)
    if (conn.fd != -1) ::close(conn.fd);
  if (listen_fd_ != -1) ::close(listen_fd_);
}

void SocketListener::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw IoError(std::string("socket failed: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, by design
  addr.sin_port = htons(config_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof addr) != 0)
    throw IoError(std::string("bind failed: ") + std::strerror(errno));
  if (::listen(listen_fd_, 64) != 0)
    throw IoError(std::string("listen failed: ") + std::strerror(errno));
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(listen_fd_);
  supervisor_.also_close_in_child(listen_fd_);
  supervisor_.set_on_response([this](std::uint64_t ticket,
                                     std::string payload) {
    on_response(ticket, std::move(payload));
  });
  if (!config_.port_file.empty()) {
    if (std::FILE* f = std::fopen(config_.port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", static_cast<unsigned>(port_));
      std::fclose(f);
    }
  }
  obs::log_info("shard", "listening", [&] {
    Json f = Json::object();
    f["port"] = static_cast<std::int64_t>(port_);
    return f;
  }());
}

void SocketListener::run() {
  while (!stop_.load(std::memory_order_relaxed)) poll_once(200);
}

std::size_t SocketListener::poll_once(int timeout_ms) {
  responses_written_in_turn_ = 0;

  std::vector<struct pollfd> fds;
  std::vector<std::uint64_t> conn_of;  // parallel to fds; 0 = not a conn
  fds.push_back({listen_fd_, POLLIN, 0});
  conn_of.push_back(0);
  for (const auto& [id, conn] : conns_) {
    fds.push_back({conn.fd, POLLIN, 0});
    conn_of.push_back(id);
  }
  for (int fd : supervisor_.pipe_fds()) {
    fds.push_back({fd, POLLIN, 0});
    conn_of.push_back(0);
  }
  // Never outwait a due restart; recovery beats idling.
  const int restart_ms = supervisor_.next_restart_ms();
  int wait_ms = timeout_ms;
  if (restart_ms >= 0 && (wait_ms < 0 || restart_ms < wait_ms))
    wait_ms = restart_ms;

  const int rc = ::poll(fds.data(), fds.size(), wait_ms);
  if (rc > 0) {
    if (fds[0].revents & POLLIN) accept_ready();
    // Collect ready connection ids first: read_ready can close a
    // connection, invalidating conns_ iterators.
    std::vector<std::uint64_t> ready;
    for (std::size_t i = 1; i < fds.size(); ++i)
      if (conn_of[i] != 0 && (fds[i].revents & (POLLIN | POLLHUP | POLLERR)))
        ready.push_back(conn_of[i]);
    for (std::uint64_t id : ready)
      if (conns_.count(id) && !read_ready(id)) close_conn(id);
  }
  // Always pump: it handles responses, deaths, and due restarts, and with
  // timeout 0 it costs one poll of the pipes when nothing happened.
  supervisor_.pump(0);
  return responses_written_in_turn_;
}

void SocketListener::accept_ready() {
  for (;;) {
    struct sockaddr_in addr;
    socklen_t len = sizeof addr;
    const int fd = ::accept(
        listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient accept error: try again next turn
    }
    if (conns_.size() >= config_.max_connections) {
      ++refused_conns_;
      Frame frame;
      Json body = Json::object();
      body["error"] = "overloaded";
      body["retry_after_ms"] = 100;
      frame.payload = body.dump();
      write_frame_fd(fd, frame);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const std::uint64_t id = next_conn_id_++;
    Connection conn;
    conn.fd = fd;
    conn.peer = peer_name(addr);
    conns_.emplace(id, std::move(conn));
    ++accepted_conns_;
  }
}

bool SocketListener::read_ready(std::uint64_t conn_id) {
  char buf[16 * 1024];
  for (;;) {
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return true;  // closed by a handler
    const ssize_t rc = ::read(it->second.fd, buf, sizeof buf);
    if (rc > 0) {
      it->second.decoder.feed(buf, static_cast<std::size_t>(rc));
      // Drain decoded frames. handle_frame can close this connection (a
      // reply write may hit EPIPE), erasing the Connection and its decoder,
      // so re-look the connection up before every next() — never hold a
      // reference across handle_frame.
      for (;;) {
        const auto cur = conns_.find(conn_id);
        if (cur == conns_.end()) return true;  // closed by a handler
        Frame frame;
        std::string error;
        const FrameDecoder::Result result =
            cur->second.decoder.next(&frame, &error);
        if (result == FrameDecoder::Result::kFrame) {
          handle_frame(conn_id, std::move(frame));
          continue;
        }
        if (result == FrameDecoder::Result::kBadFrame) {
          // The stream cannot resync after a garbage length prefix: answer
          // once, then drop only this connection — the accept loop lives on.
          ++bad_frames_;
          Json body = Json::object();
          body["error"] = "bad_frame: " + error;
          send_json(conn_id, body);
          return false;
        }
        break;  // kNeedMore: read again
      }
      continue;
    }
    if (rc == 0) return false;  // peer closed
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    return false;
  }
}

void SocketListener::handle_frame(std::uint64_t conn_id, Frame frame) {
  Json request;
  try {
    request = Json::parse(frame.payload);
  } catch (const std::exception& e) {
    // Framing was intact, the payload was not: one error, keep the
    // connection — the next frame may be fine.
    ++bad_payloads_;
    Json body = Json::object();
    body["error"] = std::string("bad_request: ") + e.what();
    send_json(conn_id, body);
    return;
  }
  const std::int64_t id = request.get_int("id", -1);
  if (request.get_string("cmd", "") == "stats") {
    // Front-end admin verb: supervisor-level stats (per-shard liveness,
    // restarts, quota rejections), not one shard's server internals.
    Json body = Json::object();
    body["id"] = id;
    Json stats = supervisor_.stats_json();
    Json listener = Json::object();
    listener["accepted_conns"] = accepted_conns_;
    listener["refused_conns"] = refused_conns_;
    listener["active_conns"] = conns_.size();
    listener["bad_frames"] = bad_frames_;
    listener["bad_payloads"] = bad_payloads_;
    listener["shed"] = shed_;
    listener["orphan_responses"] = orphan_responses_;
    stats["listener"] = std::move(listener);
    body["stats"] = std::move(stats);
    send_json(conn_id, body);
    return;
  }

  const std::string client =
      request.get_string("client", conns_.at(conn_id).peer);
  // Register the ticket via on_accept, which fires before the supervisor
  // routes: routing can complete synchronously (all shards retired, expired
  // deadline), and on_response must find the mapping then — otherwise the
  // reply is dropped as an orphan and the client hangs forever.
  const AdmissionDecision decision = supervisor_.submit(
      frame.payload, client, frame.deadline_ms, /*ticket_out=*/nullptr,
      [this, conn_id](std::uint64_t ticket) {
        ticket_conn_[ticket] = conn_id;
      });
  if (decision.verdict == Admit::kOverQuota ||
      decision.verdict == Admit::kOverloaded) {
    ++shed_;
    Json body = Json::object();
    if (id >= 0) body["id"] = id;
    body["error"] = "overloaded";
    body["reason"] =
        decision.verdict == Admit::kOverQuota ? "quota" : "inflight";
    body["retry_after_ms"] =
        static_cast<std::int64_t>(decision.retry_after_ms);
    send_json(conn_id, body);
    return;
  }
}

void SocketListener::on_response(std::uint64_t ticket, std::string payload) {
  const auto it = ticket_conn_.find(ticket);
  if (it == ticket_conn_.end()) {
    ++orphan_responses_;
    return;
  }
  const std::uint64_t conn_id = it->second;
  ticket_conn_.erase(it);
  const auto conn_it = conns_.find(conn_id);
  if (conn_it == conns_.end()) {
    ++orphan_responses_;  // client went away before its verdict landed
    return;
  }
  Frame frame;
  frame.payload = std::move(payload);
  if (!write_frame_fd(conn_it->second.fd, frame)) {
    close_conn(conn_id);
    return;
  }
  ++responses_written_in_turn_;
}

bool SocketListener::send_json(std::uint64_t conn_id, const Json& body) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return false;
  Frame frame;
  frame.payload = body.dump();
  if (!write_frame_fd(it->second.fd, frame)) {
    close_conn(conn_id);
    return false;
  }
  ++responses_written_in_turn_;
  return true;
}

void SocketListener::close_conn(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  if (it->second.fd != -1) ::close(it->second.fd);
  conns_.erase(it);
}

}  // namespace clpp::shard
