// Admission control for the sharded serving front end: per-client token
// buckets, an in-flight ceiling, and deadline stamping (relative frame
// budget -> absolute deadline; expiry itself is enforced downstream at
// route/dequeue time) (DESIGN.md §12).
//
// The controller is deliberately pure: every decision is a function of the
// injected `now_ns` (obs::Tracer::now_ns timebase), so tests replay exact
// admission schedules without sleeping. It is used from the single-threaded
// supervisor/listener event loop and is not thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace clpp::shard {

struct AdmissionConfig {
  /// Steady-state tokens per second granted to each client id; 0 disables
  /// quota enforcement entirely.
  double quota_rps = 0.0;
  /// Bucket capacity: how many requests a client may burst above the
  /// steady-state rate before `overloaded` responses start.
  double quota_burst = 16.0;
  /// Total accepted-but-unanswered requests the front end will hold across
  /// all clients; beyond it every submit sheds with `overloaded`.
  std::size_t max_inflight = 1024;
  /// Deadline applied to requests whose frame carries none (0 = none).
  std::uint32_t default_deadline_ms = 0;
  /// Distinct client buckets tracked before the table resets (bounds the
  /// memory a client-id-spraying peer can pin).
  std::size_t max_clients = 4096;
};

/// Classic token bucket, refilled lazily from elapsed time.
class TokenBucket {
 public:
  TokenBucket(double rate_per_s, double burst, std::uint64_t now_ns)
      : rate_(rate_per_s), burst_(burst), tokens_(burst), last_ns_(now_ns) {}

  /// Refills from elapsed time, then takes one token if available.
  bool try_take(std::uint64_t now_ns);

  /// Milliseconds until one token will be available (0 when one already is).
  std::uint64_t retry_after_ms(std::uint64_t now_ns) const;

 private:
  void refill(std::uint64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_;
};

/// Admission verdict for one request. Deadline expiry is not an admission
/// verdict: the frame carries a *relative* budget, so work cannot be dead
/// on arrival — expiry is enforced downstream (supervisor route() before
/// dispatch, serve-queue prune at dequeue) and counted there.
enum class Admit {
  kAccept,      ///< dispatch it
  kOverQuota,   ///< client exceeded its token bucket — shed with retry_after
  kOverloaded,  ///< global in-flight ceiling reached — shed with retry_after
};

struct AdmissionDecision {
  Admit verdict = Admit::kAccept;
  /// Populated for kOverQuota/kOverloaded: the client's backoff hint.
  std::uint64_t retry_after_ms = 0;
  /// Absolute deadline (now + request or default budget); 0 = none.
  std::uint64_t deadline_ns = 0;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config) : config_(config) {}

  /// Decides one request. `deadline_ms` is the frame-header budget relative
  /// to now (0 = use the configured default); `inflight` is the caller's
  /// current accepted-but-unanswered count.
  AdmissionDecision admit(const std::string& client, std::uint32_t deadline_ms,
                          std::uint64_t now_ns, std::size_t inflight);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t over_quota = 0;
    std::uint64_t overloaded = 0;
  };
  const Stats& stats() const { return stats_; }

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  std::map<std::string, TokenBucket> buckets_;
  Stats stats_;
};

}  // namespace clpp::shard
